#!/usr/bin/env python
"""Quickstart: build a network, open flows, send traffic, read QoS metrics.

This walks the public API end to end in ~60 lines:

1. build the paper's folded-MIN topology (scaled to 32 hosts here);
2. wire it into a fabric running the *Advanced 2 VCs* architecture
   (the paper's proposal: ordered + take-over FIFO pair, EDF heads);
3. open three flows -- a latency-critical control flow, a reserved
   video stream, and a best-effort bulk flow;
4. push messages through them and print what each flow experienced.

Run:  python examples/quickstart.py
"""

from repro import ADVANCED_2VC, Fabric, build_folded_shuffle_min
from repro.core.flow import FlowKind
from repro.sim import units

# 1. Topology: 8 leaf switches x 4 hosts, 4 spines (full bisection).
topology = build_folded_shuffle_min(n_leaves=8, hosts_per_leaf=4, n_spines=4)

# 2. Fabric with the paper's default hardware parameters: 8 Gb/s links,
#    2 KB MTU, 8 KB buffer per VC, 2 virtual channels.
fabric = Fabric(topology, ADVANCED_2VC)

# 3. Flows.  Admission control reserves bandwidth for regulated flows and
#    fixes every flow's route (load-balanced over the spines).
control = fabric.open_flow(0, 17, "control", kind=FlowKind.CONTROL)
video = fabric.open_flow(
    0,
    9,
    "multimedia",
    kind=FlowKind.FRAME,
    bw_bytes_per_ns=0.003,  # 3 MB/s reserved average rate
    target_latency_ns=10 * units.MS,  # every frame lands ~10 ms after submit
    smoothing=True,  # eligible-time pacing
)
bulk = fabric.open_flow(0, 25, "best-effort", bw_bytes_per_ns=0.05)

# 4. Traffic: record every delivery, then submit a few messages.
deliveries = []
fabric.subscribe_delivery(lambda pkt, now: deliveries.append((pkt, now)))

fabric.submit(control, 256)  # one small control message
fabric.submit(video, 80_000)  # one 80 KB video frame -> 40 packets
fabric.submit(bulk, 200_000)  # 200 KB bulk transfer

fabric.run(until=20 * units.MS)

# 5. Report.
print(f"{len(deliveries)} packets delivered\n")
for flow, label in [(control, "control"), (video, "video frame"), (bulk, "bulk")]:
    packets = [(p, t) for p, t in deliveries if p.flow_id == flow.spec.flow_id]
    first = packets[0][0]
    done = max(t for _, t in packets)
    print(
        f"{label:<12} {len(packets):>3} packets, "
        f"message latency {units.ns_to_us(done - first.birth):9.1f} us "
        f"(deadline tag of first packet: {units.ns_to_us(first.deadline):9.1f} us)"
    )

print(
    "\nNote how the video frame completes almost exactly at its 10 ms target:"
    "\nframe-based deadline stamping spreads its 40 packets over the window,"
    "\nwhile the control message (deadline ~ now + wire time) cut ahead of"
    "\neverything, and bulk best-effort used whatever was left."
)
