#!/usr/bin/env python
"""Byte-identical workload comparison via trace record/replay.

Stochastic generators give every architecture the same traffic only *in
distribution*.  For a clean head-to-head, record one run's submissions
and replay the identical trace through every architecture -- then every
latency difference is scheduling, not workload noise.

Bonus: the same machinery loads *real* video frame-size traces (the
one-size-per-line format of the public MPEG-4 trace archives), closing
the gap to the paper's "actual MPEG-4 video sequences".

Run:  python examples/trace_replay.py
"""

import tempfile
from pathlib import Path

from repro import ARCHITECTURES, Fabric, build_folded_shuffle_min
from repro.experiments.config import scaled_video_mix
from repro.sim import units
from repro.sim.rng import RandomStreams
from repro.stats.collectors import MetricsCollector
from repro.traffic.mix import build_mix
from repro.traffic.trace import (
    FrameSizeTrace,
    TraceRecorder,
    load_trace,
    replay_all,
    video_stream_from_trace,
)

HORIZON = 600 * units.US


def topology():
    return build_folded_shuffle_min(4, 4, 4)


# ----------------------------------------------------------------------
# 1. Record one run of the Table 1 mix.
# ----------------------------------------------------------------------
recording_fabric = Fabric(topology(), ARCHITECTURES["advanced-2vc"])
recorder = TraceRecorder()
recorder.attach(recording_fabric)
mix = build_mix(recording_fabric, RandomStreams(7), scaled_video_mix(0.8, 0.02))
mix.start()
recording_fabric.run(until=HORIZON)
recorder.detach()

trace_path = Path(tempfile.mkdtemp()) / "workload.jsonl.gz"
recorder.save(trace_path)
records = load_trace(trace_path)
print(f"recorded {len(records)} messages "
      f"({sum(r[4] for r in records) / 1e6:.1f} MB) -> {trace_path.name}\n")

# ----------------------------------------------------------------------
# 2. Replay the identical trace through every architecture.
# ----------------------------------------------------------------------
print(f"{'architecture':<20} {'control mean':>14} {'control p99':>13}")
for name in ("traditional-2vc", "ideal", "simple-2vc", "advanced-2vc"):
    fabric = Fabric(topology(), ARCHITECTURES[name])
    collector = MetricsCollector(warmup_ns=100 * units.US)
    fabric.subscribe_delivery(collector.on_delivery)
    replay_all(fabric, records)
    fabric.run(until=HORIZON + 200 * units.US)
    collector.finalize(fabric.engine.now)
    control = collector.get("control")
    print(
        f"{ARCHITECTURES[name].label:<20} "
        f"{control.message_latency.mean / 1e3:>11.2f} us "
        f"{control.message_cdf().quantile(0.99) / 1e3:>10.2f} us"
    )

# ----------------------------------------------------------------------
# 3. Real video traces: same API, measured frame sizes.
# ----------------------------------------------------------------------
print("\nReal-trace video (synthesized 'Jurassic-Park-like' frame sizes here;")
print("point FrameSizeTrace.from_file at any one-size-per-line trace file):")

# A stand-in file in the archive format -- a GoP-looking size sequence.
video_file = trace_path.parent / "movie.dat"
video_file.write_text(
    "# frame sizes, bytes\n"
    + "\n".join(
        str(size)
        for _ in range(8)
        for size in (110_000, 18_000, 17_000, 55_000, 16_500, 18_500)
    )
)
movie = FrameSizeTrace.from_file(video_file)
print(f"  loaded {len(movie)} frames, mean {movie.mean / 1024:.0f} KB, "
      f"rate at 25 fps = {movie.rate_bytes_per_ns(25.0) * 1e3:.2f} MB/s")

fabric = Fabric(topology(), ARCHITECTURES["advanced-2vc"])
frame_latency = {}
fabric.subscribe_delivery(
    lambda pkt, now: frame_latency.setdefault(pkt.msg_id, now - pkt.birth)
    if pkt.msg_seq == pkt.msg_parts - 1
    else None
)
stream = video_stream_from_trace(
    fabric, 0, 9, movie, fps=250.0, target_latency_ns=1 * units.MS
)
stream.start(at=0)
fabric.run(until=48 * 4 * units.MS)
values = sorted(frame_latency.values())
print(
    f"  {len(values)} frames delivered; frame latency "
    f"min {values[0] / 1e3:.1f} / median {values[len(values) // 2] / 1e3:.1f} / "
    f"max {values[-1] / 1e3:.1f} us against a 1000 us target"
)
print("  (frame-based deadlines pin real-trace frames to the target too)")
