#!/usr/bin/env python
"""Anatomy of an order error -- and how the take-over queue fixes it.

Section 3.4 in miniature, without a network: we drive the three buffer
structures (plain FIFO, the ordered/take-over pair, and the ideal EDF
heap) with the same adversarial arrival sequence and show each queue's
departure order, plus the appendix invariants holding live.

Run:  python examples/takeover_queue_anatomy.py
"""

from repro.core.queues import EDFHeapQueue, FifoQueue, TakeOverQueue
from repro.network.packet import Packet

# The adversarial pattern of Section 3.2: the source ran out of
# low-deadline packets, injected one with a far deadline (a video packet
# paced toward a 10 ms target, say), and then low-deadline control
# packets arrived behind it.
ARRIVALS = [
    ("video",   900),  # far deadline, arrives first, heads the queue
    ("video",  1000),
    ("ctrl-A",  120),  # urgent packets now stuck behind it in a FIFO
    ("ctrl-B",  140),
    ("video",  1100),
    ("ctrl-C",  160),
]


def drive(queue):
    packets = []
    for flow, deadline in ARRIVALS:
        pkt = Packet(
            flow_id=hash(flow) & 0xFFFF, seq=0, src=0, dst=1, size=256,
            vc=0, tclass=flow, deadline=deadline,
        )
        packets.append((flow, pkt))
        queue.push(pkt)
    names = {pkt.uid: flow for flow, pkt in packets}
    order = []
    while queue:
        pkt = queue.pop()
        order.append(f"{names[pkt.uid]}({pkt.deadline})")
    return order


print("Arrivals (in order):")
print("  " + ", ".join(f"{flow}({d})" for flow, d in ARRIVALS))
print()

for label, queue in [
    ("FIFO        (Simple 2 VCs)", FifoQueue()),
    ("take-over   (Advanced 2 VCs)", TakeOverQueue()),
    ("EDF heap    (Ideal)", EDFHeapQueue()),
]:
    print(f"{label:<30} -> " + ", ".join(drive(queue)))

print(
    "\nThe FIFO drains in arrival order: all three control packets wait out"
    "\nthe video packets in front (the ~25% latency penalty of Section 5)."
    "\nThe take-over queue routes them into its U FIFO where they overtake"
    "\neverything except the packet already at the head -- within 1 slot of"
    "\nthe unimplementable ideal heap, using nothing but two FIFOs."
)

# The appendix's theorems, checked live on a take-over queue mid-stream:
queue = TakeOverQueue()
for flow, deadline in ARRIVALS:
    queue.push(
        Packet(flow_id=1, seq=0, src=0, dst=1, size=64, vc=0, tclass=flow, deadline=deadline)
    )
ordered = [p.deadline for p in queue.ordered_snapshot]
takeover = [p.deadline for p in queue.takeover_snapshot]
print(f"\nInside the take-over structure after the arrivals:")
print(f"  L (ordered queue):   {ordered}")
print(f"  U (take-over queue): {takeover}")
assert ordered == sorted(ordered), "Theorem 1: L is deadline-sorted"
assert max(ordered + takeover) == ordered[-1], "Theorem 2: max deadline at L's tail"
assert not takeover or ordered, "Lemma 1: U never holds packets alone"
print("  Theorems 1-2 and Lemma 1 hold (see the appendix, and the property tests).")
