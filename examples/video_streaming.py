#!/usr/bin/env python
"""Why frame-based deadlines?  (Section 3.1's multimedia argument.)

The paper argues that stamping video with a plain rate-based virtual
clock is wrong twice over: using the *average* rate adds huge delays to
big frames, and using the *peak* rate makes frame latency depend on
frame size.  Its fix: pick a target latency per frame and advance the
clock by ``target / parts`` per packet, so every frame -- tiny B frame or
huge I frame -- completes ~target after it was produced.

This example streams the same GoP-structured video three ways over an
otherwise idle fabric and prints per-frame latency.  Watch the
*variation* column.

Run:  python examples/video_streaming.py
"""

import random

from repro import ADVANCED_2VC, Fabric, build_folded_shuffle_min
from repro.core.flow import FlowKind
from repro.sim import units
from repro.stats.running import RunningStats
from repro.traffic.distributions import GopFrameSizes

FPS = 25.0
FRAME_PERIOD = round(units.S / FPS)
TARGET = 10 * units.MS
AVG_RATE = 1.5e6 / units.S  # 1.5 MB/s average
PEAK_RATE = 120 * 1024 / FRAME_PERIOD  # rate that fits the biggest frame
N_FRAMES = 48


def stream(kind: str, **flow_kwargs):
    """Send N_FRAMES GoP frames on a fresh fabric; return frame latencies."""
    fabric = Fabric(build_folded_shuffle_min(4, 4, 4), ADVANCED_2VC)
    flow = fabric.open_flow(0, 9, "multimedia", kind=kind, smoothing=True, **flow_kwargs)

    frame_done = {}
    fabric.subscribe_delivery(
        lambda pkt, now: frame_done.__setitem__(pkt.msg_id, now - pkt.birth)
    )

    sizes = GopFrameSizes(AVG_RATE * FRAME_PERIOD, sigma=0.2)
    rng = random.Random(7)

    def send_frame(remaining):
        fabric.submit(flow, sizes.next_frame(rng))
        if remaining > 1:
            fabric.engine.after(FRAME_PERIOD, send_frame, remaining - 1)

    fabric.engine.at(0, send_frame, N_FRAMES)
    fabric.run(until=(N_FRAMES + 8) * FRAME_PERIOD)
    return list(frame_done.values())


def report(label, latencies):
    stats = RunningStats()
    for lat in latencies:
        stats.add(lat)
    print(
        f"{label:<28} mean {units.ns_to_ms(stats.mean):7.2f} ms   "
        f"min {units.ns_to_ms(stats.min):7.2f}   max {units.ns_to_ms(stats.max):7.2f}   "
        f"spread {units.ns_to_ms(stats.max - stats.min):6.2f} ms"
    )


print(f"{N_FRAMES} GoP video frames (1-120 KB), one per 40 ms, three stamping policies:\n")

# 1. The paper's frame-based rule: deadline advances by target/parts.
report(
    "frame-based (paper, 10ms)",
    stream(FlowKind.FRAME, bw_bytes_per_ns=AVG_RATE, target_latency_ns=TARGET),
)

# 2. Rate-based at the stream's *average* bandwidth: big frames blow
#    through the average and queue up behind their own virtual clock.
report(
    "rate-based @ average BW",
    stream(FlowKind.RATE, bw_bytes_per_ns=AVG_RATE),
)

# 3. Rate-based at the *peak* bandwidth: latency now tracks frame size
#    (small frames fly, big frames take ~40 ms), i.e. maximal jitter.
report(
    "rate-based @ peak BW",
    stream(FlowKind.RATE, bw_bytes_per_ns=PEAK_RATE),
)

print(
    "\nThe frame-based policy pins every frame near the 10 ms target"
    "\n(small spread = low jitter); average-BW stamping penalizes large"
    "\nframes enormously, and peak-BW stamping makes latency follow frame"
    "\nsize -- exactly the two failure modes Section 3.1 describes."
)
