#!/usr/bin/env python
"""One converged network instead of three: the paper's motivating scenario.

The introduction's motivation is machines like MareNostrum that ran
*three* physical networks -- one for parallel-application traffic, one
for storage, one for management -- because a single conventional network
cannot keep control latency low while bulk traffic saturates it.

This example runs the full Table 1 workload (control + video +
best-effort + background, 25% each) at 100% load over one network, under
a conventional two-VC switch and under the paper's Advanced 2 VCs
architecture, and prints what each class experiences.

Run:  python examples/mixed_datacenter.py        (~1 minute)
"""

from repro.experiments.config import ExperimentConfig, scaled_video_mix
from repro.experiments.runner import run_experiment
from repro.sim import units

LOAD = 1.0
TIME_SCALE = 0.02  # video compressed 50x so the demo finishes quickly


def run(arch: str):
    return run_experiment(
        ExperimentConfig(
            architecture=arch,
            load=LOAD,
            seed=42,
            topology="small",  # 32 hosts, full bisection
            warmup_ns=1_100 * units.US,
            measure_ns=1_500 * units.US,
            mix=scaled_video_mix(LOAD, TIME_SCALE),
        )
    )


print(f"Table 1 workload at {LOAD:.0%} load on 32 hosts; video time-scale {TIME_SCALE}.\n")
results = {}
for arch in ("traditional-2vc", "advanced-2vc"):
    results[arch] = run(arch)
    print(results[arch].summary())
    print()

traditional = results["traditional-2vc"].collector
advanced = results["advanced-2vc"].collector

ctrl_factor = (
    traditional.get("control").message_latency.mean
    / advanced.get("control").message_latency.mean
)
video_target = round(10 * units.MS * TIME_SCALE)
video_err = advanced.get("multimedia").message_latency.mean / video_target

be = results["advanced-2vc"].throughput("best-effort")
bg = results["advanced-2vc"].throughput("background")

print("What the deadline architecture buys on ONE converged network:")
print(f"  - control latency improves {ctrl_factor:.1f}x vs the conventional switch;")
print(f"  - video frames land at {video_err:.2f}x their latency target;")
print(f"  - best-effort classes split leftover bandwidth by weight (2:1 -> {be / bg:.2f}:1).")
print("\nSame switches, same two VCs, same buffers -- only the scheduling differs.")
