#!/usr/bin/env python
"""Evaluate your own switch design with the paper's methodology.

The library's four presets are just `Architecture` records; anything
with a queue factory and a head-picker factory drops into every fabric,
figure sweep, cost analyzer, and the CLI.  This example invents a
design the paper does not evaluate -- a **double take-over queue**
(ordered FIFO + *two* take-over FIFOs, giving low-deadline packets two
chances to overtake) -- and answers the three questions the paper would
ask of it:

1. Does it keep the no-reordering guarantee?  (empirically, here;
   a proof would need an appendix of its own)
2. How close does it get to Ideal on control latency?
3. What does it cost in comparator work and port hardware?

Run:  python examples/evaluate_custom_design.py   (~1 minute)
"""

from collections import deque
from itertools import chain

from repro.core.arbiter import EDFPicker
from repro.core.architectures import ARCHITECTURES, Architecture
from repro.core.queues import PacketQueue
from repro.analysis import measure_scheduling_cost
from repro.experiments.config import scaled_video_mix
from repro.experiments.presets import make_topology
from repro.network.fabric import Fabric, FabricParams
from repro.sim import units
from repro.sim.rng import RandomStreams
from repro.stats.collectors import MetricsCollector
from repro.traffic.mix import build_mix


# ----------------------------------------------------------------------
# 1. The custom buffer structure.
# ----------------------------------------------------------------------
class DoubleTakeOverQueue(PacketQueue):
    """Ordered FIFO L plus a two-stage take-over path U2 -> U1.

    Enqueue: ascending deadlines append to L; a smaller deadline goes to
    U1 if it can also overtake U1's tail, else to U2.  Dequeue: minimum
    deadline among the three heads.  (Three FIFOs per VC instead of two:
    a plausible "what if we spent a bit more silicon" design point.)
    """

    __slots__ = ("_lower", "_u1", "_u2")

    #: fixed comparator work per operation, used by repro.analysis.cost:
    #: up to 2 tail checks on push, a 3-way head minimum on pop.
    COMPARISONS_PER_OP = 2

    def __init__(self, capacity_bytes=None):
        super().__init__(capacity_bytes)
        self._lower: deque = deque()
        self._u1: deque = deque()
        self._u2: deque = deque()

    def push(self, pkt) -> None:
        self._charge(pkt)
        if not self._lower or pkt.deadline >= self._lower[-1].deadline:
            self._lower.append(pkt)
        elif not self._u1 or pkt.deadline >= self._u1[-1].deadline:
            self._u1.append(pkt)
        else:
            self._u2.append(pkt)

    def _heads(self):
        return [q[0] for q in (self._lower, self._u1, self._u2) if q]

    def head(self):
        heads = self._heads()
        if not heads:
            return None
        return min(heads, key=lambda p: (p.deadline, p.uid))

    def pop(self):
        pkt = self.head()
        if pkt is None:
            raise IndexError("pop from empty DoubleTakeOverQueue")
        for q in (self._lower, self._u1, self._u2):
            if q and q[0] is pkt:
                q.popleft()
                break
        self._discharge(pkt)
        return pkt

    def __len__(self):
        return len(self._lower) + len(self._u1) + len(self._u2)

    def __iter__(self):
        return chain(self._lower, self._u1, self._u2)


DOUBLE_TAKEOVER = Architecture(
    name="double-takeover-2vc",
    label="Double take-over 2 VCs",
    queue_factory=DoubleTakeOverQueue,
    picker_factory=EDFPicker,
    host_edf=True,
)

# ----------------------------------------------------------------------
# 2. Run the paper's workload over it and the reference designs.
# ----------------------------------------------------------------------
CONTENDERS = [ARCHITECTURES["ideal"], ARCHITECTURES["simple-2vc"],
              ARCHITECTURES["advanced-2vc"], DOUBLE_TAKEOVER]
WARMUP, END = 1_100 * units.US, 2_700 * units.US

print("Table 1 mix at full load, 16 hosts; video time-scale 0.02\n")
print(f"{'design':<24} {'control mean':>13} {'reorderings':>12} {'cmp/pkt':>8} {'FIFOs/port':>11}")
results = {}
for arch in CONTENDERS:
    fabric = Fabric(make_topology("tiny"), arch,
                    FabricParams(buffer_bytes_per_vc=32 * units.KB,
                                 eligible_offset_ns=None))  # stress order errors
    collector = MetricsCollector(warmup_ns=WARMUP)
    fabric.subscribe_delivery(collector.on_delivery)
    last_seq: dict = {}
    reorder_box = [0]

    def watch(pkt, now, _l=last_seq, _r=reorder_box):
        if pkt.seq < _l.get(pkt.flow_id, -1):
            _r[0] += 1
        _l[pkt.flow_id] = max(_l.get(pkt.flow_id, -1), pkt.seq)

    fabric.subscribe_delivery(watch)
    mix = build_mix(fabric, RandomStreams(1), scaled_video_mix(1.0, 0.02))
    mix.start()
    fabric.run(until=END)
    collector.finalize(fabric.engine.now)
    reorderings = reorder_box[0]

    cost = measure_scheduling_cost(arch, horizon_ns=300 * units.US,
                                   mix_config=scaled_video_mix(1.0, 0.02))
    control = collector.get("control").message_latency.mean
    results[arch.name] = control
    fifos = "3x2" if arch is DOUBLE_TAKEOVER else (
        {"ideal": "heap", "simple-2vc": "1x2", "advanced-2vc": "2x2"}[arch.name])
    print(f"{arch.label:<24} {control / 1e3:>10.2f} us {reorderings:>12} "
          f"{cost.comparisons_per_packet:>8.2f} {fifos:>11}")

ideal = results["ideal"]
print(
    f"\nRelative to Ideal: simple x{results['simple-2vc'] / ideal:.3f}, "
    f"advanced x{results['advanced-2vc'] / ideal:.3f}, "
    f"double take-over x{results['double-takeover-2vc'] / ideal:.3f}"
)
print(
    "\nVerdict: the third FIFO buys essentially nothing -- the paper's"
    "\ntwo-FIFO take-over design already sits at the knee of the curve"
    "\n(~1% from Ideal), so extra overtaking stages add comparator work and"
    "\na FIFO memory per VC without measurable latency gains.  A negative"
    "\nresult, but exactly the kind the harness exists to produce cheaply."
    "\n(Whether the variant even preserves no-reordering in general would"
    "\nneed a proof like the paper's appendix; this run shows zero.)"
)
