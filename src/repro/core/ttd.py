"""Time-to-destination deadline encoding (Section 3.3).

Deadlines are absolute times, which would seem to require synchronized
clocks across every host and switch.  The paper avoids that: when a packet
leaves a node, the header carries ``TTD = deadline - local_clock``; the
next hop reconstructs a *local* deadline by adding its own clock.  All
packets at one node are shifted by the same amount, so the relative order
EDF cares about is untouched -- scheduling decisions are identical to the
synchronized-clock system, which is why the fast simulation path can use
absolute deadlines directly.  ``tests/core/test_ttd.py`` proves the
equivalence over arbitrary clock-offset assignments.

:class:`ClockDomain` models a fleet of free-running clocks (per-node
offsets from simulated "true" time), and the module functions implement
the two header operations.
"""

from __future__ import annotations

from typing import Dict, Hashable

__all__ = ["ClockDomain", "deadline_from_ttd", "ttd_from_deadline"]


def ttd_from_deadline(deadline_local: int, local_clock: int) -> int:
    """Header value written when a packet departs a node.

    May be negative: a packet already past its deadline still carries a
    meaningful (if tardy) TTD.
    """
    return deadline_local - local_clock


def deadline_from_ttd(ttd: int, local_clock: int) -> int:
    """Local deadline reconstructed when a packet arrives at a node."""
    return ttd + local_clock


class ClockDomain:
    """Unsynchronized per-node clocks: ``local = true_time + offset(node)``.

    Offsets are fixed for a run (clock *drift* over the microsecond
    flight times involved is orders of magnitude below nanosecond
    resolution, so modeling skew as constant offset is faithful).
    """

    def __init__(self, offsets: Dict[Hashable, int] | None = None):
        self._offsets: Dict[Hashable, int] = dict(offsets or {})

    def set_offset(self, node: Hashable, offset: int) -> None:
        self._offsets[node] = offset

    def offset(self, node: Hashable) -> int:
        return self._offsets.get(node, 0)

    def local_time(self, node: Hashable, true_time: int) -> int:
        """What ``node``'s free-running clock reads at ``true_time``."""
        return true_time + self.offset(node)

    def rebase(self, deadline_local: int, src: Hashable, dst: Hashable, true_time: int) -> int:
        """Carry a deadline from ``src``'s clock to ``dst``'s clock.

        This composes :func:`ttd_from_deadline` at the sender with
        :func:`deadline_from_ttd` at the receiver.  ``true_time`` is when
        the handoff happens; because both clocks tick at the same rate the
        result does not actually depend on it, a fact the property tests
        exercise.
        """
        ttd = ttd_from_deadline(deadline_local, self.local_time(src, true_time))
        return deadline_from_ttd(ttd, self.local_time(dst, true_time))
