"""Centralized admission control and fixed-path assignment (Section 3).

The paper reserves bandwidth "at a centralized point and no record is
kept in the switches", which also makes fixed routing mandatory.  This
module is that centralized point:

- Regulated flows call :meth:`AdmissionController.reserve`; the
  controller picks, among the candidate minimal paths the routing layer
  offers, the one whose most-loaded link stays least loaded after adding
  the request (greedy water-filling), and rejects the flow if no path can
  carry it within the configured utilization ceiling.
- Best-effort flows call :meth:`AdmissionController.assign_path`; no
  bandwidth is reserved, but paths are still fixed (to preserve in-order
  delivery) and spread across candidates by a running byte-weight
  counter -- the "load balancing when assigning paths" the paper notes as
  an advantage over deterministic routing.

Paths are any objects exposing ``ports`` (source-route port indices) and
``links`` (hashable directed-link ids for accounting); the routing layer
provides them.

The per-link ledgers are kept in **integer bytes/second**
(:func:`repro.sim.units.bps`): requests arrive as float bytes/ns, are
converted once at the ledger boundary, and the same converted integer is
subtracted on release -- so a fully released link reads exactly zero,
with no float drift and no epsilon guard.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Hashable, Optional, Protocol, Sequence, Tuple

from repro.sim.units import bps

__all__ = ["AdmissionController", "AdmissionError", "Reservation"]


class PathLike(Protocol):
    ports: Tuple[int, ...]
    links: Tuple[Hashable, ...]


class AdmissionError(RuntimeError):
    """Raised when no candidate path can accommodate a reservation."""


@dataclass(frozen=True)
class Reservation:
    """A granted bandwidth reservation along a fixed path."""

    flow_id: int
    path: PathLike
    bw_bytes_per_ns: float


class AdmissionController:
    """Tracks per-link reserved bandwidth and balances path assignment.

    ``candidates(src, dst)`` must return the usable (deadlock-free,
    minimal) paths between two hosts.  ``link_capacity`` is the data rate
    of every link in bytes/ns; heterogeneous fabrics can pass a mapping
    via ``capacity_of``.
    """

    def __init__(
        self,
        candidates: Callable[[int, int], Sequence[PathLike]],
        link_capacity: float,
        *,
        max_utilization: float = 1.0,
        capacity_of: Optional[Callable[[Hashable], float]] = None,
    ):
        if link_capacity <= 0:
            raise ValueError(f"link capacity must be positive, got {link_capacity}")
        if not 0 < max_utilization <= 1.0:
            raise ValueError(f"max_utilization must be in (0, 1], got {max_utilization}")
        self._candidates = candidates
        self._default_capacity = link_capacity
        self._capacity_of = capacity_of
        self.max_utilization = max_utilization
        #: reserved bandwidth per directed link id, integer bytes/second
        self.reserved: Dict[Hashable, int] = {}
        #: best-effort balancing weight (integer bytes/second of assigned
        #: deadline-bw)
        self.assigned_weight: Dict[Hashable, int] = {}
        self._reservations: Dict[int, Reservation] = {}

    # ------------------------------------------------------------------
    def capacity(self, link: Hashable) -> float:
        if self._capacity_of is not None:
            return self._capacity_of(link)
        return self._default_capacity

    def utilization(self, link: Hashable) -> float:
        return self.reserved.get(link, 0) / bps(self.capacity(link))

    def _path_profile(
        self, path: PathLike, extra_bw: float, table: Dict[Hashable, int]
    ) -> Tuple[float, ...]:
        """Post-assignment utilizations over the path's links, sorted
        descending.

        Comparing *profiles* lexicographically (not just the maximum)
        matters: every candidate path between two hosts shares the same
        first and last links, so once the host's injection link is the
        busiest element the maxima all tie and a max-only rule would
        collapse onto the first candidate forever -- one spine hot, the
        rest idle.  Lexicographic water-filling keeps spreading load by
        the busiest *distinct* link.
        """
        extra_bps = bps(extra_bw)
        return tuple(
            sorted(
                (
                    (table.get(link, 0) + extra_bps) / bps(self.capacity(link))
                    for link in path.links
                ),
                reverse=True,
            )
        )

    def _path_cost(self, path: PathLike, extra_bw: float, table: Dict[Hashable, int]) -> float:
        """Max post-assignment utilization over the path's links."""
        profile = self._path_profile(path, extra_bw, table)
        return profile[0] if profile else 0.0

    # ------------------------------------------------------------------
    def reserve(self, flow_id: int, src: int, dst: int, bw_bytes_per_ns: float) -> Reservation:
        """Admit a regulated flow or raise :class:`AdmissionError`.

        Deterministic: among equally loaded candidates the first in the
        routing layer's (stable) order wins.
        """
        if bw_bytes_per_ns <= 0:
            raise ValueError(f"reserved bandwidth must be positive, got {bw_bytes_per_ns}")
        if flow_id in self._reservations:
            raise AdmissionError(f"flow {flow_id} already holds a reservation")
        paths = self._candidates(src, dst)
        if not paths:
            raise AdmissionError(f"no route from host {src} to host {dst}")
        best_path = min(
            paths, key=lambda p: self._path_profile(p, bw_bytes_per_ns, self.reserved)
        )
        if self._path_cost(best_path, bw_bytes_per_ns, self.reserved) > self.max_utilization:
            raise AdmissionError(
                f"flow {flow_id} ({src}->{dst}, {bw_bytes_per_ns:.4f} B/ns) rejected: "
                f"all {len(paths)} candidate paths above "
                f"{self.max_utilization:.0%} utilization"
            )
        bw_bps = bps(bw_bytes_per_ns)
        for link in best_path.links:
            self.reserved[link] = self.reserved.get(link, 0) + bw_bps
        reservation = Reservation(flow_id, best_path, bw_bytes_per_ns)
        self._reservations[flow_id] = reservation
        return reservation

    def release(self, flow_id: int) -> None:
        """Return a flow's reserved bandwidth to the pool."""
        reservation = self._reservations.pop(flow_id, None)
        if reservation is None:
            raise AdmissionError(f"flow {flow_id} holds no reservation")
        # bps() is deterministic, so subtracting the same conversion that
        # was added on admit returns the ledger to exactly zero.
        bw_bps = bps(reservation.bw_bytes_per_ns)
        for link in reservation.path.links:
            self.reserved[link] = self.reserved.get(link, 0) - bw_bps

    def assign_path(self, src: int, dst: int, weight: float = 1.0) -> PathLike:
        """Fixed-path assignment for unregulated traffic (no reservation)."""
        paths = self._candidates(src, dst)
        if not paths:
            raise AdmissionError(f"no route from host {src} to host {dst}")
        best_path = min(
            paths, key=lambda p: self._path_profile(p, weight, self.assigned_weight)
        )
        weight_bps = bps(weight)
        for link in best_path.links:
            self.assigned_weight[link] = self.assigned_weight.get(link, 0) + weight_bps
        return best_path

    # ------------------------------------------------------------------
    @property
    def reservation_count(self) -> int:
        return len(self._reservations)

    def reservation_for(self, flow_id: int) -> Optional[Reservation]:
        return self._reservations.get(flow_id)
