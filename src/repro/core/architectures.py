"""The four switch architectures evaluated in Section 4.1.

Each preset bundles the two things that differ between architectures:

- which buffer structure every (input, output, VC) queue uses, and
- which arbiter picks among queue heads at an output port.

Hosts also differ: the EDF-based architectures inject in ascending
deadline order (Section 3.2's dual host queues), while the traditional
architecture injects FIFO per VC -- ``host_edf`` records that.

===================  ===============  ============  =========
preset               switch queues    arbiter       host_edf
===================  ===============  ============  =========
``traditional-2vc``  FIFO             round-robin   no
``ideal``            EDF heap         EDF           yes
``simple-2vc``       FIFO             EDF (heads)   yes
``advanced-2vc``     ordered+takeover EDF (heads)   yes
===================  ===============  ============  =========

In every case VC0 (regulated) has absolute priority over VC1
(best-effort) at the output ports; that policy lives in the switch, not
here, because it is common to all four.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.core.arbiter import EDFPicker, Picker, RoundRobinPicker
from repro.core.queues import (
    EDFHeapQueue,
    FifoQueue,
    PacketQueue,
    PipelinedHeapQueue,
    TakeOverQueue,
)

__all__ = [
    "ADVANCED_2VC",
    "ARCHITECTURES",
    "Architecture",
    "IDEAL",
    "IDEAL_PIPELINED",
    "SIMPLE_2VC",
    "TRADITIONAL_2VC",
    "get_architecture",
]


@dataclass(frozen=True)
class Architecture:
    """A named switch/host configuration (one curve in the paper's figures)."""

    name: str
    #: Label used in the paper's figures.
    label: str
    queue_factory: Callable[[Optional[int]], PacketQueue]
    picker_factory: Callable[[], Picker]
    #: Whether end hosts sort their injection queues by deadline.
    host_edf: bool
    #: Whether the output arbiter may skip candidates that lack downstream
    #: credits (conventional request masking).  The EDF architectures must
    #: keep this off: the appendix's no-reordering proof requires that
    #: *only* the minimum-deadline candidate be checked for credits.
    credit_masking: bool = False

    def make_queue(self, capacity_bytes: Optional[int]) -> PacketQueue:
        return self.queue_factory(capacity_bytes)

    def make_picker(self) -> Picker:
        return self.picker_factory()


TRADITIONAL_2VC = Architecture(
    name="traditional-2vc",
    label="Traditional 2 VCs",
    queue_factory=FifoQueue,
    picker_factory=RoundRobinPicker,
    host_edf=False,
    credit_masking=True,
)

IDEAL = Architecture(
    name="ideal",
    label="Ideal",
    queue_factory=EDFHeapQueue,
    picker_factory=EDFPicker,
    host_edf=True,
)

SIMPLE_2VC = Architecture(
    name="simple-2vc",
    label="Simple 2 VCs",
    queue_factory=FifoQueue,
    picker_factory=EDFPicker,
    host_edf=True,
)

ADVANCED_2VC = Architecture(
    name="advanced-2vc",
    label="Advanced 2 VCs",
    queue_factory=TakeOverQueue,
    picker_factory=EDFPicker,
    host_edf=True,
)

IDEAL_PIPELINED = Architecture(
    name="ideal-pipelined",
    label="Ideal (pipelined heap)",
    # Depth 8 covers 8 KB of minimum-size packets; the fabric binds the
    # queue's clock to the engine so the pipeline's settle window is real
    # simulated time (one level per nanosecond-class cycle).
    queue_factory=lambda cap: PipelinedHeapQueue(cap, depth=8),
    picker_factory=EDFPicker,
    host_edf=True,
)

#: All presets; the first four are the paper's figure order, the fifth is
#: the hardware-honest realization of Ideal via the paper's reference [9].
ARCHITECTURES = {
    arch.name: arch
    for arch in (TRADITIONAL_2VC, IDEAL, SIMPLE_2VC, ADVANCED_2VC, IDEAL_PIPELINED)
}


def get_architecture(name: str) -> Architecture:
    """Look up a preset by name, with a helpful error for typos."""
    try:
        return ARCHITECTURES[name]
    except KeyError:
        known = ", ".join(sorted(ARCHITECTURES))
        raise KeyError(f"unknown architecture {name!r}; known: {known}") from None
