"""Deadline stampers (Section 3.1).

The sender host keeps, per flow, the deadline of the previously stamped
packet and derives the next packet's deadline from it.  Three variants
appear in the paper:

**Rate-based (Virtual Clock)** -- for bandwidth-reserved and aggregated
best-effort flows::

    D(P_i) = max(D(P_{i-1}), T_now) + L(P_i) / BW_avg

**Control** -- latency-critical, nearly zero bandwidth: the same formula
with ``BW_avg`` set to the *link* bandwidth, which makes the increment the
bare serialization time and gives control packets the earliest deadlines
(maximum priority) without any reservation.

**Frame-based** -- for multimedia: the user picks a target latency per
application frame (10 ms in the paper) and every packet of a frame that
splits into ``parts`` MTU-sized pieces advances the virtual clock by
``target / parts``::

    D(P_i) = max(D(P_{i-1}), T_now) + target / Parts(F_i)

so each frame completes about ``target`` after it was handed to the NIC,
independent of frame size, with its packets evenly paced.

All stampers guarantee strictly increasing deadlines within a flow (the
appendix's hypothesis Eq. 1); when a computed increment rounds to zero
nanoseconds it is bumped to one.
"""

from __future__ import annotations

import math

__all__ = [
    "ControlStamper",
    "DeadlineStamper",
    "FrameBasedStamper",
    "RateBasedStamper",
]


class DeadlineStamper:
    """Base class: keeps the per-flow virtual clock (last deadline).

    The clock starts at -infinity (a large negative sentinel), so the
    first packet always anchors at ``T_now`` -- important because hosts
    may stamp on *local* clocks (Section 3.3) whose epoch is not zero.
    """

    __slots__ = ("last_deadline",)

    #: "No packet stamped yet": below any representable local clock.
    UNSET = -(1 << 62)

    def __init__(self) -> None:
        self.last_deadline: int = self.UNSET

    def _advance(self, now: int, increment: int) -> int:
        # Eq. 1 of the appendix requires strictly increasing deadlines.
        base = self.last_deadline if self.last_deadline > now else now
        deadline = base + (increment if increment > 0 else 1)
        self.last_deadline = deadline
        return deadline

    def stamp(self, now: int, size: int) -> int:
        raise NotImplementedError


class RateBasedStamper(DeadlineStamper):
    """Virtual-Clock stamper for a flow with reserved average bandwidth.

    ``bw_bytes_per_ns`` is the reserved average rate.  The increment for a
    packet of ``size`` bytes is ``ceil(size / bw)`` nanoseconds.
    """

    __slots__ = ("bw_bytes_per_ns",)

    def __init__(self, bw_bytes_per_ns: float):
        super().__init__()
        if bw_bytes_per_ns <= 0:
            raise ValueError(f"reserved bandwidth must be positive, got {bw_bytes_per_ns}")
        self.bw_bytes_per_ns = bw_bytes_per_ns

    def stamp(self, now: int, size: int) -> int:
        if size <= 0:
            raise ValueError(f"packet size must be positive, got {size}")
        return self._advance(now, math.ceil(size / self.bw_bytes_per_ns))


class ControlStamper(RateBasedStamper):
    """Rate-based stamper at full link bandwidth (Section 3.1).

    Control traffic gets no admission control; using the link rate makes
    its deadline ``now + serialization`` -- the earliest any packet of that
    size could possibly be delivered, hence maximum priority under EDF.
    """

    __slots__ = ()

    def __init__(self, link_bw_bytes_per_ns: float):
        super().__init__(link_bw_bytes_per_ns)


class FrameBasedStamper(DeadlineStamper):
    """Frame-latency stamper for multimedia (Section 3.1's MPEG example).

    Call :meth:`stamp_frame` once per application frame; it returns the
    deadlines for all ``parts`` packets of the frame.  The per-packet
    increment ``target/parts`` spreads the frame smoothly over the target
    window, so frame latency is ~``target_latency_ns`` regardless of size.
    """

    __slots__ = ("target_latency_ns",)

    def __init__(self, target_latency_ns: int):
        super().__init__()
        if target_latency_ns <= 0:
            raise ValueError(f"target latency must be positive, got {target_latency_ns}")
        self.target_latency_ns = target_latency_ns

    def stamp_frame(self, now: int, parts: int) -> list[int]:
        if parts <= 0:
            raise ValueError(f"frame must split into >= 1 packets, got {parts}")
        increment = self.target_latency_ns // parts
        return [self._advance(now, increment) for _ in range(parts)]

    def stamp(self, now: int, size: int) -> int:
        """Single-packet frame convenience (``parts == 1``)."""
        return self._advance(now, self.target_latency_ns)
