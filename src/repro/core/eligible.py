"""Eligible-time smoothing (Sections 3.1-3.2).

A packet's *eligible time* is the earliest cycle at which the source
interface may inject it.  The paper computes it as ``deadline`` minus a
fixed offset (20 microseconds worked well in their tests) and applies it
only to traffic classes that tolerate smoothing (multimedia); control
traffic must not be held back.

The tag lives only in the source interface -- it is never transmitted, and
switches never see it.
"""

from __future__ import annotations

from repro.sim import units

__all__ = ["EligiblePolicy"]

#: The offset the paper reports to work well (Section 3.1).
DEFAULT_OFFSET_NS = units.us(20)


class EligiblePolicy:
    """Computes eligible times; ``offset_ns=None`` disables smoothing.

    >>> pol = EligiblePolicy(20_000)
    >>> pol.eligible_time(deadline=100_000, now=50_000)
    80000
    >>> pol.eligible_time(deadline=60_000, now=50_000)  # never in the past
    50000
    >>> EligiblePolicy(None).eligible_time(deadline=100_000, now=50_000)
    50000
    """

    __slots__ = ("offset_ns",)

    def __init__(self, offset_ns: int | None = DEFAULT_OFFSET_NS):
        if offset_ns is not None and offset_ns < 0:
            raise ValueError(f"eligible-time offset must be >= 0, got {offset_ns}")
        self.offset_ns = offset_ns

    @property
    def enabled(self) -> bool:
        return self.offset_ns is not None

    def eligible_time(self, *, deadline: int, now: int) -> int:
        """Earliest injection time for a packet stamped with ``deadline``."""
        if self.offset_ns is None:
            return now
        eligible = deadline - self.offset_ns
        return eligible if eligible > now else now
