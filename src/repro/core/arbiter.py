"""Output-port arbiters.

An arbiter picks, among the candidate queues feeding one output port and
VC, the queue whose head should be transmitted next.  Per the paper's
implementability constraint it may look only at queue *heads*:

- :class:`EDFPicker` -- minimum head deadline (ties by arrival order).
  Over FIFO queues this is the *Simple* scheme, over take-over queues the
  *Advanced* scheme, and over heap queues it realizes exact EDF (*Ideal*),
  because then every queue's head is its true minimum.
- :class:`RoundRobinPicker` -- deadline-blind rotating priority, as a
  conventional switch (*Traditional 2 VCs*) would use.

``pick`` accepts an optional ``sendable`` predicate used for credit
masking (skipping candidates that would not fit downstream).  The
traditional architecture masks, as real request-grant arbiters do.  The
EDF architectures must *not* mask: the appendix's no-reordering proof
requires that only the minimum-deadline candidate be checked for
credits, so their switch calls ``pick`` without a predicate and then
checks the single winner itself.  (An ablation benchmark measures what
masking would break.)

``pick`` is side-effect free; the switch calls :meth:`Picker.granted`
once the chosen head actually wins the credit check and is sent, so a
blocked candidate does not perturb stateful pickers.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from repro.core.queues.base import DeadlineTagged, PacketQueue

__all__ = ["EDFPicker", "MeteredPicker", "Picker", "RoundRobinPicker"]

SendablePredicate = Callable[[DeadlineTagged], bool]


class Picker:
    """Interface: choose an index into ``queues`` or None if nothing to send."""

    __slots__ = ()

    def pick(
        self,
        queues: Sequence[PacketQueue],
        sendable: Optional[SendablePredicate] = None,
    ) -> Optional[int]:
        raise NotImplementedError

    def granted(self, index: int) -> None:
        """Notification that the pick at ``index`` was transmitted."""
        return None


class EDFPicker(Picker):
    """Earliest-deadline-first over queue heads.

    Ties break on packet uid (global arrival order), which both keeps the
    simulation deterministic and matches the hardware intuition that the
    older packet wins a deadline tie.
    """

    __slots__ = ()

    def pick(
        self,
        queues: Sequence[PacketQueue],
        sendable: Optional[SendablePredicate] = None,
    ) -> Optional[int]:
        best_index: Optional[int] = None
        best_key: Optional[tuple[int, int]] = None
        for index, queue in enumerate(queues):
            head = queue.head()
            if head is None:
                continue
            if sendable is not None and not sendable(head):
                continue
            key = (head.deadline, head.uid)
            if best_key is None or key < best_key:
                best_key = key
                best_index = index
        return best_index


class RoundRobinPicker(Picker):
    """Rotating-priority arbiter, one rotation pointer per instance.

    The pointer advances past a queue only when it is actually *granted*
    (transmitted), giving the long-run fairness a conventional crossbar
    scheduler provides between input ports.
    """

    __slots__ = ("_next",)

    def __init__(self) -> None:
        self._next = 0

    def pick(
        self,
        queues: Sequence[PacketQueue],
        sendable: Optional[SendablePredicate] = None,
    ) -> Optional[int]:
        n = len(queues)
        if n == 0:
            return None
        start = self._next % n
        for offset in range(n):
            index = (start + offset) % n
            head = queues[index].head()
            if head is None:
                continue
            if sendable is not None and not sendable(head):
                continue
            return index
        return None

    def granted(self, index: int) -> None:
        self._next = index + 1


class MeteredPicker(Picker):
    """Transparent wrapper counting arbitration attempts and grants.

    The counters are injected (any object with ``inc()``) so this module
    stays free of an ``repro.obs`` import; the switch only wraps its
    pickers when metrics are enabled, so the disabled path never pays the
    extra indirection.
    """

    __slots__ = ("inner", "picks", "grants")

    def __init__(self, inner: Picker, picks, grants):
        self.inner = inner
        self.picks = picks
        self.grants = grants

    def pick(
        self,
        queues: Sequence[PacketQueue],
        sendable: Optional[SendablePredicate] = None,
    ) -> Optional[int]:
        self.picks.inc()
        return self.inner.pick(queues, sendable)

    def granted(self, index: int) -> None:
        self.grants.inc()
        self.inner.granted(index)
