"""The ordered/take-over queue pair (Section 3.4 and the appendix).

Two FIFOs share one buffer budget:

- **L**, the *ordered queue*: packets whose deadline is >= the deadline
  of L's current tail are appended here, so L stays sorted
  (appendix Theorem 1).
- **U**, the *take-over queue*: packets that arrive with a deadline
  *smaller* than L's tail go here; they get a chance to overtake the
  high-deadline packets already queued in L.

Dequeue (appendix Definition 2) offers the smaller-deadline of the two
FIFO heads.  Crucially, the flow-control rule from the appendix applies:
**only that one candidate is checked for credits** -- if it does not fit
downstream, the other head must not sneak past it, or the no-reordering
proof breaks.  The switch honours this by only ever calling
:meth:`head` and transmitting exactly that packet.

The appendix proves (Theorems 1-3, Lemma 1) that this structure never
delivers packets of one flow out of order, given the sender-side
guarantees of Eq. 1-2 (per-flow deadlines strictly increase and packets
arrive in order).  Those theorems are verified as executable invariants
by ``tests/core/test_takeover_properties.py``.
"""

from __future__ import annotations

from collections import deque
from itertools import chain
from typing import Iterator, Optional

from repro.core.invariants import invariant
from repro.core.queues.base import DeadlineTagged, PacketQueue

__all__ = ["TakeOverQueue"]


class TakeOverQueue(PacketQueue):
    """Ordered FIFO *L* plus take-over FIFO *U* behind one dequeue head.

    The two queues "can dynamically take all the memory allowed for the
    VC" (Section 3.4's appendix note), so capacity is tracked jointly.
    """

    __slots__ = ("_lower", "_upper", "takeover_hits")

    def __init__(self, capacity_bytes: Optional[int] = None):
        super().__init__(capacity_bytes)
        self._lower: deque[DeadlineTagged] = deque()  # L, the ordered queue
        self._upper: deque[DeadlineTagged] = deque()  # U, the take-over queue
        #: How many arrivals went to U (deadline below L's tail) -- the
        #: paper's measure of how often take-over actually pays off.  A
        #: bare int bump, cheap enough to keep even with metrics off.
        self.takeover_hits = 0

    # -- enqueuing (appendix Definition 1) ---------------------------------
    def push(self, pkt: DeadlineTagged) -> None:
        self._charge(pkt)
        lower = self._lower
        if not lower and not self._upper:
            lower.append(pkt)
        elif lower and pkt.deadline >= lower[-1].deadline:
            lower.append(pkt)
        else:
            # Lemma 1 guarantees L is never empty while U holds packets, so
            # reaching here with an empty L would mean the invariant broke.
            invariant(lower, "take-over queue occupied while ordered queue empty")
            self._upper.append(pkt)
            self.takeover_hits += 1

    # -- dequeuing (appendix Definition 2) ----------------------------------
    def head(self) -> Optional[DeadlineTagged]:
        lower, upper = self._lower, self._upper
        if not lower:
            invariant(not upper, "Lemma 1 violated: packets only in take-over queue")
            return None
        if not upper:
            return lower[0]
        l_head, u_head = lower[0], upper[0]
        # Tie-break on uid (arrival order) so equal deadlines stay FIFO.
        if (u_head.deadline, u_head.uid) < (l_head.deadline, l_head.uid):
            return u_head
        return l_head

    def pop(self) -> DeadlineTagged:
        pkt = self.head()
        if pkt is None:
            raise IndexError("pop from empty TakeOverQueue")
        if self._upper and pkt is self._upper[0]:
            self._upper.popleft()
        else:
            self._lower.popleft()
        self._discharge(pkt)
        return pkt

    # -- introspection -------------------------------------------------------
    def __len__(self) -> int:
        return len(self._lower) + len(self._upper)

    def __iter__(self) -> Iterator[DeadlineTagged]:
        return chain(self._lower, self._upper)

    @property
    def ordered_snapshot(self) -> tuple[DeadlineTagged, ...]:
        """Contents of L, front to back (for invariant tests)."""
        return tuple(self._lower)

    @property
    def takeover_snapshot(self) -> tuple[DeadlineTagged, ...]:
        """Contents of U, front to back (for invariant tests)."""
        return tuple(self._upper)
