"""Exact-EDF heap buffer (the paper's *Ideal* reference architecture).

Always exposes the stored packet with the smallest deadline, breaking
ties by arrival order (uid) so equal-deadline packets of one flow cannot
reorder.  The paper considers this unimplementable at high link rates and
radix (it corresponds to the pipelined-heap hardware of Ioannou &
Katevenis [9]); it serves as the upper bound the FIFO-based proposals are
measured against.
"""

from __future__ import annotations

import heapq
from typing import Iterator, Optional

from repro.core.queues.base import DeadlineTagged, PacketQueue

__all__ = ["EDFHeapQueue"]


class EDFHeapQueue(PacketQueue):
    """Priority queue ordered by ``(deadline, uid)``."""

    __slots__ = ("_heap",)

    def __init__(self, capacity_bytes: Optional[int] = None):
        super().__init__(capacity_bytes)
        self._heap: list[tuple[int, int, DeadlineTagged]] = []

    def push(self, pkt: DeadlineTagged) -> None:
        self._charge(pkt)
        heapq.heappush(self._heap, (pkt.deadline, pkt.uid, pkt))

    def pop(self) -> DeadlineTagged:
        _, _, pkt = heapq.heappop(self._heap)
        self._discharge(pkt)
        return pkt

    def head(self) -> Optional[DeadlineTagged]:
        return self._heap[0][2] if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)

    def __iter__(self) -> Iterator[DeadlineTagged]:
        return (entry[2] for entry in self._heap)
