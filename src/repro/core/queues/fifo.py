"""Plain FIFO buffer.

This is what real high-speed switch ports implement (strict arrival
order, single read port).  Under an EDF head-arbiter it yields the
paper's *Simple 2 VCs* architecture: the head is simply the oldest
packet, so *order errors* (a high-deadline packet in front of later
low-deadline arrivals) are possible and cost ~25% extra latency for the
most demanding flows (Section 3.4).
"""

from __future__ import annotations

from collections import deque
from typing import Iterator, Optional

from repro.core.queues.base import DeadlineTagged, PacketQueue

__all__ = ["FifoQueue"]


class FifoQueue(PacketQueue):
    """First-in first-out packet buffer."""

    __slots__ = ("_items",)

    def __init__(self, capacity_bytes: Optional[int] = None):
        super().__init__(capacity_bytes)
        self._items: deque[DeadlineTagged] = deque()

    def push(self, pkt: DeadlineTagged) -> None:
        self._charge(pkt)
        self._items.append(pkt)

    def pop(self) -> DeadlineTagged:
        pkt = self._items.popleft()
        self._discharge(pkt)
        return pkt

    def head(self) -> Optional[DeadlineTagged]:
        return self._items[0] if self._items else None

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[DeadlineTagged]:
        return iter(self._items)
