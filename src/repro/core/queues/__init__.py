"""The buffer structures evaluated by the paper.

All three expose the same interface (:class:`~repro.core.queues.base.PacketQueue`):

- :class:`~repro.core.queues.fifo.FifoQueue` -- a plain FIFO; with an EDF
  arbiter over queue *heads* this is the paper's **Simple 2 VCs**
  architecture, and with a round-robin arbiter it is **Traditional 2 VCs**.
- :class:`~repro.core.queues.heap.EDFHeapQueue` -- a heap that always
  exposes the minimum-deadline packet; the paper's unimplementable
  **Ideal** reference (pipelined-heap hardware, Ioannou & Katevenis).
- :class:`~repro.core.queues.takeover.TakeOverQueue` -- the ordered +
  take-over FIFO pair of Section 3.4 (**Advanced 2 VCs**), which the
  appendix proves never reorders packets of the same flow.
"""

from repro.core.queues.base import PacketQueue, QueueFullError
from repro.core.queues.fifo import FifoQueue
from repro.core.queues.heap import EDFHeapQueue
from repro.core.queues.pipelined_heap import PipelinedHeapQueue
from repro.core.queues.takeover import TakeOverQueue

__all__ = [
    "EDFHeapQueue",
    "FifoQueue",
    "PacketQueue",
    "PipelinedHeapQueue",
    "QueueFullError",
    "TakeOverQueue",
]
