"""Common interface for switch buffer structures.

A queue stores packets (anything with ``deadline``, ``uid`` and ``size``
attributes) and exposes exactly one *head* -- the packet its dequeuing
discipline would hand to the arbiter next.  Switch arbiters only ever
look at heads; that restriction is the point of the paper (full buffer
scans are not implementable at link rate).

Queues track their occupancy in bytes because the credit-based flow
control of :mod:`repro.network.link` accounts buffer space in bytes
(8 KB per VC in the paper's configuration).  Capacity enforcement is a
*backstop*: with correct credit flow control upstream, a queue can never
be offered more bytes than it advertised, and :class:`QueueFullError`
firing in a simulation indicates a flow-control bug, not a packet drop --
these networks are lossless.
"""

from __future__ import annotations

from typing import Iterable, Optional, Protocol, runtime_checkable

from repro.core.invariants import invariant

__all__ = ["PacketQueue", "QueueFullError", "DeadlineTagged"]


@runtime_checkable
class DeadlineTagged(Protocol):
    """What a queue needs from its items (satisfied by
    :class:`repro.network.packet.Packet`)."""

    deadline: int
    uid: int
    size: int


class QueueFullError(RuntimeError):
    """Offered a packet that does not fit; indicates broken flow control."""


class PacketQueue:
    """Abstract buffer with a single dequeue head.

    Subclasses implement ``push``/``pop``/``head``/``__iter__``.
    """

    __slots__ = ("capacity_bytes", "used_bytes")

    def __init__(self, capacity_bytes: Optional[int] = None):
        if capacity_bytes is not None and capacity_bytes <= 0:
            raise ValueError(f"capacity must be positive, got {capacity_bytes}")
        self.capacity_bytes = capacity_bytes
        self.used_bytes = 0

    # -- subclass interface -------------------------------------------------
    def push(self, pkt: DeadlineTagged) -> None:
        """Accept a packet (raises :class:`QueueFullError` if it cannot fit)."""
        raise NotImplementedError

    def pop(self) -> DeadlineTagged:
        """Remove and return the head packet (raises IndexError when empty)."""
        raise NotImplementedError

    def head(self) -> Optional[DeadlineTagged]:
        """The packet the dequeue discipline offers next, or None when empty."""
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def __iter__(self) -> Iterable[DeadlineTagged]:
        """All stored packets, in no particular order (for tests/metrics)."""
        raise NotImplementedError

    # -- shared helpers ------------------------------------------------------
    def __bool__(self) -> bool:
        return len(self) > 0

    @property
    def free_bytes(self) -> int:
        """Remaining capacity; unbounded queues report a large sentinel."""
        if self.capacity_bytes is None:
            return 1 << 62
        return self.capacity_bytes - self.used_bytes

    def _charge(self, pkt: DeadlineTagged) -> None:
        if self.capacity_bytes is not None and pkt.size > self.free_bytes:
            raise QueueFullError(
                f"packet of {pkt.size} B offered to queue with "
                f"{self.free_bytes} B free (flow-control violation)"
            )
        self.used_bytes += pkt.size

    def _discharge(self, pkt: DeadlineTagged) -> None:
        self.used_bytes -= pkt.size
        invariant(self.used_bytes >= 0, "queue byte accounting went negative")
