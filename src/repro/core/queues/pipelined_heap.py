"""A pipelined-heap buffer (Ioannou & Katevenis, ICC 2001 -- the paper's [9]).

The paper's *Ideal* architecture assumes a buffer that always exposes
the minimum-deadline packet.  The hardware the authors cite for that is
the **pipelined heap**: a binary heap laid out one level per pipeline
stage, so an insert or extract occupies each level for one cycle and a
new operation can enter every cycle -- full throughput, but each
operation still takes ``depth`` cycles to settle, and the structure
needs one comparator + one dual-port memory per level.

This module models that hardware faithfully enough to answer the
question the paper raises (is it affordable?):

- logical behaviour is exact EDF (delegated to a binary heap -- the
  pipelined hardware computes the same order);
- **timing**: the head produced by :meth:`head` only reflects operations
  that have *settled*, i.e. were issued at least ``depth`` cycles ago.
  An arbitration decision made while an earlier-deadline insert is still
  rippling through the pipeline will miss it -- a real, measurable
  source of scheduling error that the ideal abstraction hides;
- **cost accounting**: levels (= comparators/memories) required for the
  configured capacity, and per-operation cycle occupancy.

With ``settle_cycles=0`` the structure degenerates to the abstract
ideal heap, which is how the unit tests pin the logical behaviour.
"""

from __future__ import annotations

import heapq
import math
from collections import deque
from typing import Callable, Iterator, Optional

from repro.core.queues.base import DeadlineTagged, PacketQueue

__all__ = ["PipelinedHeapQueue"]


class PipelinedHeapQueue(PacketQueue):
    """Exact-EDF heap with a settle-time window modeling pipeline depth.

    ``now_fn`` supplies the current cycle (wire it to ``engine.now`` --
    the fabric does this via the architecture factory).  ``depth`` is the
    number of heap levels; inserts issued fewer than ``settle_cycles``
    ( = ``depth`` by default) ago are *not yet visible* to :meth:`head`.

    Pops always remove the visible minimum (extraction hardware replays
    from the root, which is always valid).
    """

    __slots__ = ("_heap", "_staging", "now_fn", "depth", "settle_cycles")

    def __init__(
        self,
        capacity_bytes: Optional[int] = None,
        *,
        now_fn: Optional[Callable[[], int]] = None,
        depth: int = 16,
        settle_cycles: Optional[int] = None,
    ):
        super().__init__(capacity_bytes)
        if depth < 1:
            raise ValueError(f"heap depth must be >= 1, got {depth}")
        self._heap: list[tuple[int, int, DeadlineTagged]] = []
        #: inserts still rippling down the pipeline: (visible_at, pkt)
        self._staging: deque[tuple[int, DeadlineTagged]] = deque()
        self.now_fn = now_fn or (lambda: 0)
        self.depth = depth
        self.settle_cycles = depth if settle_cycles is None else settle_cycles

    # ------------------------------------------------------------------
    def _now(self) -> int:
        return self.now_fn()

    def _absorb_settled(self) -> None:
        now = self._now()
        staging = self._staging
        while staging and staging[0][0] <= now:
            _, pkt = staging.popleft()
            heapq.heappush(self._heap, (pkt.deadline, pkt.uid, pkt))

    # ------------------------------------------------------------------
    def push(self, pkt: DeadlineTagged) -> None:
        self._charge(pkt)
        if self.settle_cycles:
            self._staging.append((self._now() + self.settle_cycles, pkt))
        else:
            heapq.heappush(self._heap, (pkt.deadline, pkt.uid, pkt))

    def head(self) -> Optional[DeadlineTagged]:
        self._absorb_settled()
        if self._heap:
            return self._heap[0][2]
        # Nothing settled: hardware would bypass the pipeline for an
        # empty heap (the root register is free), so expose the oldest
        # in-flight insert rather than stalling the port entirely.
        if self._staging:
            return self._staging[0][1]
        return None

    def pop(self) -> DeadlineTagged:
        self._absorb_settled()
        if self._heap:
            _, _, pkt = heapq.heappop(self._heap)
        elif self._staging:
            _, pkt = self._staging.popleft()
        else:
            raise IndexError("pop from empty PipelinedHeapQueue")
        self._discharge(pkt)
        return pkt

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._heap) + len(self._staging)

    def __iter__(self) -> Iterator[DeadlineTagged]:
        for _, _, pkt in self._heap:
            yield pkt
        for _, pkt in self._staging:
            yield pkt

    # ------------------------------------------------------------------
    # hardware cost model
    # ------------------------------------------------------------------
    @property
    def unsettled(self) -> int:
        """Inserts still in the pipeline (not yet schedulable)."""
        self._absorb_settled()
        return len(self._staging)

    @staticmethod
    def levels_for(capacity_packets: int) -> int:
        """Heap levels (= pipeline stages = comparators) for a capacity."""
        if capacity_packets < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity_packets}")
        return max(1, math.ceil(math.log2(capacity_packets + 1)))
