"""The paper's primary contribution: deadline-based QoS without sorted buffers.

Layout:

- :mod:`~repro.core.flow` -- flow descriptors and per-flow sender state.
- :mod:`~repro.core.deadline` -- the Virtual-Clock deadline stampers of
  Section 3.1 (rate-based, frame-based for video, control).
- :mod:`~repro.core.eligible` -- eligible-time smoothing.
- :mod:`~repro.core.queues` -- the buffer structures under study: plain
  FIFO, exact-EDF heap, and the ordered/take-over FIFO pair of
  Section 3.4 whose correctness the appendix proves.
- :mod:`~repro.core.arbiter` -- head-of-queue pickers (EDF and
  round-robin) used by switch output ports.
- :mod:`~repro.core.ttd` -- time-to-destination deadline encoding
  (Section 3.3), which removes the need for synchronized clocks.
- :mod:`~repro.core.admission` -- centralized bandwidth reservation with
  load-balanced fixed-path assignment.
- :mod:`~repro.core.architectures` -- the four evaluated switch
  architectures (Traditional/Ideal/Simple/Advanced) as named presets.
"""

from repro.core.flow import FlowRegistry, FlowSpec, FlowState
from repro.core.deadline import (
    ControlStamper,
    DeadlineStamper,
    FrameBasedStamper,
    RateBasedStamper,
)
from repro.core.eligible import EligiblePolicy
from repro.core.queues import EDFHeapQueue, FifoQueue, PacketQueue, TakeOverQueue
from repro.core.arbiter import EDFPicker, Picker, RoundRobinPicker
from repro.core.ttd import ClockDomain, deadline_from_ttd, ttd_from_deadline
from repro.core.admission import AdmissionController, AdmissionError, Reservation
from repro.core.architectures import (
    ADVANCED_2VC,
    ARCHITECTURES,
    IDEAL,
    IDEAL_PIPELINED,
    SIMPLE_2VC,
    TRADITIONAL_2VC,
    Architecture,
    get_architecture,
)
from repro.core.invariants import InvariantViolation, invariant

__all__ = [
    "ADVANCED_2VC",
    "ARCHITECTURES",
    "AdmissionController",
    "AdmissionError",
    "Architecture",
    "ClockDomain",
    "ControlStamper",
    "DeadlineStamper",
    "EDFHeapQueue",
    "EDFPicker",
    "EligiblePolicy",
    "FifoQueue",
    "FlowRegistry",
    "FlowSpec",
    "FlowState",
    "InvariantViolation",
    "FrameBasedStamper",
    "IDEAL",
    "IDEAL_PIPELINED",
    "PacketQueue",
    "Picker",
    "RateBasedStamper",
    "Reservation",
    "RoundRobinPicker",
    "SIMPLE_2VC",
    "TRADITIONAL_2VC",
    "TakeOverQueue",
    "deadline_from_ttd",
    "get_architecture",
    "invariant",
    "ttd_from_deadline",
]
