"""Flow descriptors and per-flow sender state.

A *flow* is a single connection (Section 3): source, destination, a fixed
route, and whatever is needed to compute deadlines.  All of this state
lives in the **end hosts** -- switches keep no flow records, which is the
paper's central implementability constraint.

- :class:`FlowSpec` -- immutable description (who, where, which class,
  how deadlines are computed).
- :class:`FlowState` -- the mutable sender-side record: deadline stamper
  (virtual clock), sequence counters, and the route assigned at admission.
- :class:`FlowRegistry` -- id allocation and lookup for a simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Tuple

from repro.core.invariants import invariant
from repro.core.deadline import (
    ControlStamper,
    DeadlineStamper,
    FrameBasedStamper,
    RateBasedStamper,
)
from repro.constants import VC_BEST_EFFORT, VC_REGULATED

__all__ = ["FlowKind", "FlowRegistry", "FlowSpec", "FlowState"]


class FlowKind:
    """How deadlines are computed for a flow (Section 3.1)."""

    RATE = "rate"  # Virtual Clock over reserved average bandwidth
    FRAME = "frame"  # frame-latency based (multimedia)
    CONTROL = "control"  # rate-based at full link bandwidth, no admission


@dataclass(frozen=True)
class FlowSpec:
    """Immutable flow description.

    ``bw_bytes_per_ns`` is the reserved average bandwidth for RATE flows
    and the *deadline-generation* bandwidth for best-effort aggregated
    flows (no reservation is made for those, but the weight still shapes
    their deadlines and hence their share under contention -- Figure 4).
    ``target_latency_ns`` applies to FRAME flows.
    """

    flow_id: int
    src: int
    dst: int
    tclass: str
    kind: str = FlowKind.RATE
    vc: int = VC_REGULATED
    bw_bytes_per_ns: Optional[float] = None
    target_latency_ns: Optional[int] = None
    #: Whether eligible-time smoothing applies to this flow's packets.
    smoothing: bool = False

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise ValueError(f"flow {self.flow_id}: src == dst == {self.src}")
        if self.kind not in (FlowKind.RATE, FlowKind.FRAME, FlowKind.CONTROL):
            raise ValueError(f"unknown flow kind {self.kind!r}")
        if self.kind in (FlowKind.RATE, FlowKind.CONTROL):
            if not self.bw_bytes_per_ns or self.bw_bytes_per_ns <= 0:
                raise ValueError(
                    f"flow {self.flow_id}: {self.kind} flows need bw_bytes_per_ns > 0"
                )
        if self.kind == FlowKind.FRAME:
            if not self.target_latency_ns or self.target_latency_ns <= 0:
                raise ValueError(
                    f"flow {self.flow_id}: frame flows need target_latency_ns > 0"
                )
        if self.vc < 0:
            raise ValueError(f"flow {self.flow_id}: bad vc {self.vc}")

    def make_stamper(self) -> DeadlineStamper:
        if self.kind == FlowKind.FRAME:
            invariant(
                self.target_latency_ns is not None,
                "frame flow %s has no target latency", self.flow_id,
            )
            return FrameBasedStamper(self.target_latency_ns)
        invariant(
            self.bw_bytes_per_ns is not None,
            "%s flow %s has no bandwidth for deadline computation",
            self.kind, self.flow_id,
        )
        if self.kind == FlowKind.CONTROL:
            return ControlStamper(self.bw_bytes_per_ns)
        return RateBasedStamper(self.bw_bytes_per_ns)


@dataclass
class FlowState:
    """Mutable sender-side record for one flow."""

    spec: FlowSpec
    stamper: DeadlineStamper
    #: Source route: output port to take at each switch (set at admission).
    path: Tuple[int, ...] = ()
    next_seq: int = 0
    next_msg: int = 0
    #: Totals for statistics/validation.
    packets_sent: int = 0
    bytes_sent: int = 0

    def take_seq(self) -> int:
        seq = self.next_seq
        self.next_seq += 1
        return seq

    def take_msg(self) -> int:
        msg = self.next_msg
        self.next_msg += 1
        return msg


class FlowRegistry:
    """Allocates flow ids and stores the sender-side state of every flow."""

    def __init__(self) -> None:
        self._flows: Dict[int, FlowState] = {}
        self._next_id = 1

    def create(self, **spec_kwargs) -> FlowState:
        """Create a flow, auto-assigning ``flow_id``."""
        flow_id = self._next_id
        self._next_id += 1
        spec = FlowSpec(flow_id=flow_id, **spec_kwargs)
        state = FlowState(spec=spec, stamper=spec.make_stamper())
        self._flows[flow_id] = state
        return state

    def get(self, flow_id: int) -> FlowState:
        return self._flows[flow_id]

    def close(self, flow_id: int) -> FlowState:
        """Retire a finished flow, releasing its sender-side state.

        Scale runs with flow churn must close flows as they finish;
        otherwise the registry holds every :class:`FlowState` ever
        created for the life of the fabric.  Returns the closed state so
        callers can archive its totals first.
        """
        return self._flows.pop(flow_id)

    def __len__(self) -> int:
        return len(self._flows)

    def __iter__(self) -> Iterator[FlowState]:
        return iter(self._flows.values())

    def by_host(self, src: int) -> list[FlowState]:
        return [f for f in self._flows.values() if f.spec.src == src]
