"""Runtime invariants that survive ``python -O``.

The appendix's proof obligations (Lemma 1, Theorems 1-3, Eq. 1-2) are
checked at runtime in the queue and network code.  A bare ``assert`` is
the wrong tool for that job: ``python -O`` strips assert statements from
the bytecode, so exactly the deployments that run optimized -- the
large, long simulations where an invariant break would be most costly to
miss -- would silently stop checking.  :func:`invariant` is an ordinary
function call and is never stripped.

Violations raise :class:`InvariantViolation`, a subclass of
``AssertionError`` so existing handlers and test expectations keep
working while the typed class lets callers distinguish "a proof
obligation from the paper broke" from any other assertion.

The ``simlint`` static-analysis pass (rule SIM004, see
:mod:`repro.lint`) enforces that library code under ``src/`` uses this
helper instead of bare ``assert``.
"""

from __future__ import annotations

__all__ = ["InvariantViolation", "invariant"]


class InvariantViolation(AssertionError):
    """A runtime invariant (e.g. an appendix proof obligation) failed.

    Subclasses ``AssertionError`` deliberately: an invariant breaking
    means the *simulator* is wrong, the same severity a failed assert
    would signal -- but unlike an assert it cannot be compiled away.
    """


def invariant(condition: object, message: str, *args: object) -> None:
    """Raise :class:`InvariantViolation` unless ``condition`` is truthy.

    ``message`` may contain %-style placeholders filled from ``args``;
    formatting is deferred to the failure path so hot-path call sites
    pay only a truth test and a function call.

    >>> invariant(1 + 1 == 2, "arithmetic holds")
    >>> invariant(False, "flow %d broke", 7)
    Traceback (most recent call last):
        ...
    repro.core.invariants.InvariantViolation: flow 7 broke
    """
    if not condition:
        raise InvariantViolation(message % args if args else message)
