"""Build-run-measure for one experiment configuration."""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.core.architectures import ARCHITECTURES
from repro.experiments.config import ExperimentConfig
from repro.experiments.presets import make_topology
from repro.network.fabric import Fabric
from repro.obs.metrics import NULL_METRICS
from repro.obs.telemetry import RunTelemetry, attach_run_telemetry, sync_component_totals
from repro.sim import units
from repro.sim.rng import RandomStreams
from repro.stats.collectors import MetricsCollector
from repro.stats.report import format_table
from repro.traffic.mix import CLASS_NAMES, TrafficMix, build_mix

__all__ = ["RunResult", "run_experiment"]


@dataclass
class RunResult:
    """Everything measured in one run."""

    config: ExperimentConfig
    collector: MetricsCollector
    fabric: Fabric
    mix: TrafficMix
    events_executed: int
    wall_seconds: float
    #: Observability extras (populated when the caller opts in).
    metrics: Optional[object] = None
    telemetry: Optional[RunTelemetry] = None
    tracer: Optional[object] = None

    # ------------------------------------------------------------------
    def mean_packet_latency(self, tclass: str) -> float:
        return self.collector.get(tclass).packet_latency.mean

    def mean_message_latency(self, tclass: str) -> float:
        return self.collector.get(tclass).message_latency.mean

    def throughput(self, tclass: str) -> float:
        """Delivered bytes/ns of a class, fabric-wide."""
        return self.collector.throughput(tclass)

    def offered(self, tclass: str) -> float:
        """Configured offered bytes/ns of a class, fabric-wide."""
        per_host = self.config.mix_config.class_rate(
            tclass, self.fabric.params.bytes_per_ns
        )
        return per_host * self.fabric.topology.n_hosts

    def normalized_throughput(self, tclass: str) -> float:
        offered = self.offered(tclass)
        return self.throughput(tclass) / offered if offered > 0 else 0.0

    # ------------------------------------------------------------------
    def class_rows(self) -> List[List]:
        rows: List[List] = []
        for tclass in CLASS_NAMES:
            stats = self.collector.classes.get(tclass)
            if stats is None or stats.packets == 0:
                continue
            # Message (frame) latency when full messages completed in the
            # window; packet latency otherwise (e.g. video frames longer
            # than a very short run); throughput only if nothing measured
            # latency-wise (all births fell in the warm-up).
            if stats.messages > 0:
                latency = stats.message_latency
                cdf = stats.message_cdf()
                count = stats.messages
            elif stats.packet_latency.count > 0:
                latency = stats.packet_latency
                cdf = stats.packet_cdf()
                count = stats.packets
            else:
                latency = cdf = None
                count = stats.packets
            rows.append(
                [
                    tclass,
                    count,
                    units.ns_to_us(latency.mean) if latency else 0.0,
                    units.ns_to_us(cdf.quantile(0.99)) if cdf else 0.0,
                    units.ns_to_us(latency.max) if latency else 0.0,
                    units.ns_to_us(stats.jitter.mean if stats.jitter.count else 0.0),
                    self.throughput(tclass),
                    self.normalized_throughput(tclass),
                ]
            )
        return rows

    def summary(self) -> str:
        arch = ARCHITECTURES[self.config.architecture].label
        title = (
            f"{arch}  load={self.config.load:.0%}  "
            f"topology={self.config.topology}  seed={self.config.seed}"
        )
        table = format_table(
            [
                "class",
                "messages",
                "avg lat (us)",
                "p99 (us)",
                "max (us)",
                "jitter (us)",
                "tput (B/ns)",
                "tput/offered",
            ],
            self.class_rows(),
            title=title,
        )
        footer = (
            f"\n[{self.events_executed} events, "
            f"{self.wall_seconds:.2f}s wall, "
            f"{self.fabric.packets_in_flight()} packets still in flight]"
        )
        return table + footer


def run_experiment(
    config: ExperimentConfig,
    *,
    collector: Optional[MetricsCollector] = None,
    metrics=None,
    trace=None,
    tracer=None,
    heartbeat_ns: Optional[int] = None,
    live_progress: bool = False,
    engine_factory: Optional[Callable[[], object]] = None,
) -> RunResult:
    """Run one configuration to completion and gather metrics.

    Deterministic in ``config`` (including the seed): repeated calls
    return identical statistics.  Observability is opt-in: pass a
    :class:`repro.obs.MetricsRegistry` as ``metrics``, a
    :class:`repro.sim.monitor.Trace` as ``trace``, and/or a
    :class:`repro.obs.tracing.PacketTracer` as ``tracer`` to instrument
    the run, and a ``heartbeat_ns`` to sample telemetry on that
    simulated-time interval (``live_progress`` additionally prints a
    stderr status line).  None of these change simulation results --
    telemetry only observes (the determinism tests assert as much).

    ``engine_factory`` swaps the event kernel (the differential harness
    passes the reference :class:`repro.sim.heap_engine.HeapEngine`);
    results must be byte-identical for any conforming engine.
    """
    topology = make_topology(config.topology)
    architecture = ARCHITECTURES[config.architecture]
    metrics = metrics if metrics is not None else NULL_METRICS
    fabric_kwargs = {"metrics": metrics}
    if trace is not None:
        fabric_kwargs["trace"] = trace
    if tracer is not None:
        fabric_kwargs["tracer"] = tracer
    if engine_factory is not None:
        fabric_kwargs["engine"] = engine_factory()
    # Every in-repo delivery observer copies scalars out of the packet,
    # so delivered-packet storage can be recycled; uids stay fresh per
    # logical packet, keeping results byte-identical with pooling off.
    fabric = Fabric(
        topology, architecture, config.params, packet_pooling=True, **fabric_kwargs
    )
    streams = RandomStreams(config.seed)
    mix = build_mix(fabric, streams, config.mix_config)
    if collector is None:
        collector = MetricsCollector(warmup_ns=config.warmup_ns)
    fabric.subscribe_delivery(collector.on_delivery)

    telemetry = None
    if heartbeat_ns is not None:
        telemetry = attach_run_telemetry(
            fabric.engine,
            fabric,
            heartbeat_ns=heartbeat_ns,
            metrics=metrics,
            live=live_progress,
            until_ns=config.end_ns,
        )

    # Benchmark wall-time measurement: this is host time *around* the
    # simulation, never simulated time, so SIM002 documents it instead of
    # forbidding it.
    started = time.perf_counter()  # simlint: allow-wallclock
    mix.start()
    fabric.run(until=config.end_ns)
    mix.stop()
    collector.finalize(fabric.engine.now)
    wall = time.perf_counter() - started  # simlint: allow-wallclock
    # Lift the always-on component tallies into the registry so the final
    # snapshot carries them even without a heartbeat.
    sync_component_totals(fabric.engine, fabric, metrics)

    return RunResult(
        config=config,
        collector=collector,
        fabric=fabric,
        mix=mix,
        events_executed=fabric.engine.events_executed,
        wall_seconds=wall,
        metrics=metrics if metrics is not NULL_METRICS else None,
        telemetry=telemetry,
        tracer=tracer,
    )
