"""Export experiment results to CSV / JSON.

The text tables are for eyeballs; these exporters feed plotting scripts
and downstream analysis.  Both figure series
(:class:`~repro.experiments.figures.FigureSeries`) and single runs
(:class:`~repro.experiments.runner.RunResult`) are supported, plus raw
CDF curves for re-plotting the paper's right-hand panels.
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path
from typing import Optional, Union

from repro.experiments.figures import FigureSeries
from repro.experiments.runner import RunResult

__all__ = [
    "figure_to_csv",
    "figure_to_json",
    "result_to_json",
    "write_figure",
]

PathLike = Union[str, Path]


def figure_to_csv(series: FigureSeries) -> str:
    """The figure's tabular series as CSV text (one header row)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(series.headers)
    writer.writerows(series.rows)
    return buffer.getvalue()


def figure_to_json(series: FigureSeries) -> str:
    """The full figure -- rows, CDF curves, notes -- as a JSON document."""
    payload = {
        "figure": series.figure,
        "headers": series.headers,
        "rows": series.rows,
        "cdfs": {
            label: [{"x": x, "p": p} for x, p in curve]
            for label, curve in series.cdfs.items()
        },
        "notes": series.notes,
    }
    return json.dumps(payload, indent=2)


def write_figure(series: FigureSeries, path: PathLike, *, fmt: Optional[str] = None) -> Path:
    """Write a figure as CSV or JSON; format inferred from the suffix."""
    path = Path(path)
    if fmt is None:
        fmt = path.suffix.lstrip(".").lower()
    if fmt == "csv":
        path.write_text(figure_to_csv(series), encoding="utf-8")
    elif fmt == "json":
        path.write_text(figure_to_json(series), encoding="utf-8")
    else:
        raise ValueError(f"unsupported export format {fmt!r} (use csv or json)")
    return path


def result_to_json(result: RunResult) -> str:
    """One run's per-class metrics as a JSON document."""
    classes = {}
    for tclass, stats in sorted(result.collector.classes.items()):
        entry = {
            "packets": stats.packets,
            "bytes": stats.bytes,
            "messages": stats.messages,
            "throughput_bytes_per_ns": result.throughput(tclass),
            "normalized_throughput": result.normalized_throughput(tclass),
        }
        if stats.packet_latency.count:
            entry["packet_latency_ns"] = {
                "mean": stats.packet_latency.mean,
                "std": stats.packet_latency.std,
                "min": stats.packet_latency.min,
                "max": stats.packet_latency.max,
            }
        if stats.messages:
            cdf = stats.message_cdf()
            entry["message_latency_ns"] = {
                "mean": stats.message_latency.mean,
                "p50": cdf.quantile(0.5),
                "p99": cdf.quantile(0.99),
                "max": stats.message_latency.max,
                "jitter_mean": stats.jitter.mean if stats.jitter.count else None,
            }
        classes[tclass] = entry
    payload = {
        "architecture": result.config.architecture,
        "load": result.config.load,
        "seed": result.config.seed,
        "topology": result.config.topology,
        "warmup_ns": result.config.warmup_ns,
        "measure_ns": result.config.measure_ns,
        "events_executed": result.events_executed,
        "wall_seconds": result.wall_seconds,
        "classes": classes,
    }
    return json.dumps(payload, indent=2)
