"""Multi-seed replication: means and confidence intervals.

A single seeded run is deterministic but still one sample of the
workload process; claims like "Advanced is within 5% of Ideal" deserve
error bars.  :func:`replicate` runs one configuration across seeds and
:class:`Replication` reduces any scalar metric to mean / std / a normal
95% confidence interval.

The runner is embarrassingly parallel across seeds, and ``replicate``
exploits that directly: ``jobs=N`` fans the seeds across a process pool
via :class:`repro.exec.executor.SweepExecutor` (``cache_dir`` replays
finished seeds from the result cache).  Replicates come back as compact
:class:`~repro.exec.summary.RunSummary` objects in seed order, so the
statistics are identical at any job count.  :func:`run_one` remains the
picklable single-replicate entry point for ad-hoc pools.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Tuple

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import RunResult, run_experiment

if TYPE_CHECKING:  # runtime imports stay lazy: repro.exec imports this package
    from repro.exec.executor import SweepExecutor
    from repro.exec.summary import RunSummary

__all__ = ["MetricSummary", "Replication", "replicate", "run_one"]

#: two-sided 95% normal quantile
_Z95 = 1.959963984540054


@dataclass(frozen=True)
class MetricSummary:
    """Mean and spread of one scalar metric across seeds."""

    name: str
    values: Tuple[float, ...]

    @property
    def n(self) -> int:
        return len(self.values)

    @property
    def mean(self) -> float:
        return sum(self.values) / self.n

    @property
    def std(self) -> float:
        if self.n < 2:
            return 0.0
        mu = self.mean
        return math.sqrt(sum((v - mu) ** 2 for v in self.values) / (self.n - 1))

    @property
    def ci95(self) -> Tuple[float, float]:
        """Normal-approximation 95% confidence interval of the mean."""
        half = _Z95 * self.std / math.sqrt(self.n) if self.n > 1 else 0.0
        return (self.mean - half, self.mean + half)

    def overlaps(self, other: "MetricSummary") -> bool:
        a_lo, a_hi = self.ci95
        b_lo, b_hi = other.ci95
        return a_lo <= b_hi and b_lo <= a_hi

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        lo, hi = self.ci95
        return f"{self.name}: {self.mean:.4g} [{lo:.4g}, {hi:.4g}] (n={self.n})"


MetricFn = Callable[["RunSummary"], float]


class Replication:
    """Results of one configuration across several seeds."""

    def __init__(self, config: ExperimentConfig, results: Dict[int, "RunSummary"]):
        if not results:
            raise ValueError("replication needs at least one run")
        self.config = config
        self.results = results

    @property
    def seeds(self) -> List[int]:
        return sorted(self.results)

    def metric(self, name: str, fn: MetricFn) -> MetricSummary:
        return MetricSummary(
            name, tuple(fn(self.results[seed]) for seed in self.seeds)
        )

    # Convenience extractors for the metrics the figures use -------------
    def mean_latency(self, tclass: str) -> MetricSummary:
        return self.metric(
            f"mean latency [{tclass}]",
            lambda r: r.get(tclass).message_latency.mean,
        )

    def throughput(self, tclass: str) -> MetricSummary:
        return self.metric(f"throughput [{tclass}]", lambda r: r.throughput(tclass))

    def p99_latency(self, tclass: str) -> MetricSummary:
        return self.metric(
            f"p99 latency [{tclass}]",
            lambda r: r.get(tclass).message_cdf().quantile(0.99),
        )


def run_one(config: ExperimentConfig, seed: int) -> RunResult:
    """One full-fidelity replicate (top-level, so ad-hoc process pools
    can pickle it; the ``jobs=`` path in :func:`replicate` instead uses
    :func:`repro.exec.summary.execute_config`, which returns the compact
    summary)."""
    return run_experiment(config.with_(seed=seed))


def replicate(
    config: ExperimentConfig,
    seeds: Sequence[int],
    *,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    executor: Optional["SweepExecutor"] = None,
) -> Replication:
    """Run ``config`` once per seed and bundle the results.

    ``jobs=1`` runs in-process; ``jobs=N`` fans seeds across a process
    pool.  Either way the per-seed summaries are identical (seeding is
    entirely config-derived) and ordered by the ``seeds`` sequence.
    """
    if not seeds:
        raise ValueError("need at least one seed")
    if len(set(seeds)) != len(seeds):
        raise ValueError(f"duplicate seeds in {seeds!r}")
    from repro.exec.executor import SweepExecutor

    if executor is None:
        executor = SweepExecutor(jobs=jobs, cache_dir=cache_dir)
    summaries = executor.run([config.with_(seed=seed) for seed in seeds])
    return Replication(config, dict(zip(seeds, summaries)))
