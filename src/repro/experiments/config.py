"""One experiment run's complete parameterization."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.core.architectures import ARCHITECTURES
from repro.network.fabric import FabricParams
from repro.sim import units
from repro.traffic.mix import TrafficMixConfig

__all__ = ["ExperimentConfig", "scaled_video_mix"]


def scaled_video_mix(load: float, time_scale: float = 0.1, **overrides) -> TrafficMixConfig:
    """A Table 1 mix with video time compressed by ``time_scale``.

    The paper's video runs at 25 fps with a 10 ms frame-latency target;
    statistically meaningful frame statistics therefore need hundreds of
    simulated milliseconds.  Compressing *time* (frame period and target
    latency down, per-stream rate up by the same factor) keeps frame
    sizes, packet counts per frame, and every deadline *relationship*
    identical while shrinking the needed simulation window -- the
    ablation benches verify scaled and unscaled runs agree.
    """
    if not 0 < time_scale <= 1:
        raise ValueError(f"time_scale must be in (0, 1], got {time_scale}")
    return TrafficMixConfig(
        load=load,
        video_fps=25.0 / time_scale,
        video_target_latency_ns=units.ms(10 * time_scale),
        video_stream_rate_bytes_per_ns=(1.5e6 / units.S) / time_scale,
        **overrides,
    )


@dataclass(frozen=True)
class ExperimentConfig:
    """Everything one simulation run depends on.

    ``mix`` defaults to a plain Table 1 mix at ``load``; pass an explicit
    :class:`TrafficMixConfig` (e.g. from :func:`scaled_video_mix`) to
    override workload details -- its own ``load`` then wins.
    """

    architecture: str = "advanced-2vc"
    load: float = 1.0
    seed: int = 1
    topology: str = "small"
    warmup_ns: int = units.us(200)
    measure_ns: int = units.ms(1)
    params: FabricParams = field(default_factory=FabricParams)
    mix: Optional[TrafficMixConfig] = None

    def __post_init__(self) -> None:
        if self.architecture not in ARCHITECTURES:
            known = ", ".join(sorted(ARCHITECTURES))
            raise ValueError(
                f"unknown architecture {self.architecture!r}; known: {known}"
            )
        if self.measure_ns <= 0:
            raise ValueError(f"measurement window must be positive, got {self.measure_ns}")
        if self.warmup_ns < 0:
            raise ValueError(f"warmup must be >= 0, got {self.warmup_ns}")

    @property
    def mix_config(self) -> TrafficMixConfig:
        if self.mix is not None:
            return self.mix
        return TrafficMixConfig(load=self.load)

    @property
    def end_ns(self) -> int:
        return self.warmup_ns + self.measure_ns

    def with_(self, **changes) -> "ExperimentConfig":
        """Functional update (sweeps iterate architectures/loads this way)."""
        return replace(self, **changes)
