"""The paper's figures as runnable sweeps.

Each ``figN_*`` function runs the Table 1 workload over a load sweep for
the four architectures and returns a :class:`FigureSeries` -- the same
rows/series the corresponding figure in the paper plots:

- :func:`fig2_control`: average latency of *Control* traffic vs input
  load, plus the latency CDF at the highest load.
- :func:`fig3_video`: average *frame* latency of *Multimedia* traffic vs
  load, plus the frame-latency CDF and the fraction of frames delivered
  within +/-10% of the configured target.
- :func:`fig4_best_effort`: delivered throughput of the *Best-effort*
  and *Background* classes vs load.
- :func:`order_error_penalties`: the Section 3.4/5 headline numbers --
  each architecture's control-latency overhead relative to *Ideal*
  (paper: Simple ~ +25%, Advanced ~ +5%).

The paper's absolute numbers came from the authors' testbed simulator;
what these sweeps reproduce is the *shape*: the ordering of the curves,
the approximate overhead factors, and which architectures can or cannot
differentiate classes.

Sweeps execute through :class:`repro.exec.executor.SweepExecutor`:
``jobs=N`` fans the (architecture, load) grid across a process pool and
``cache_dir`` replays previously-computed points from the on-disk result
cache.  Results merge by submission index, so the returned tables are
byte-identical at any job count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.architectures import ARCHITECTURES
from repro.experiments.config import ExperimentConfig, scaled_video_mix
from repro.experiments.runner import RunResult
from repro.sim import units
from repro.stats.report import format_table

if TYPE_CHECKING:  # runtime imports stay lazy: repro.exec imports this package
    from repro.exec.executor import SweepExecutor
    from repro.exec.summary import ClassSummary, RunSummary

#: Sweeps accept live results or cache/pool summaries interchangeably.
SweepResult = Union[RunResult, "RunSummary"]

__all__ = [
    "FigureSeries",
    "DEFAULT_ARCHS",
    "DEFAULT_LOADS",
    "fig2_control",
    "fig3_video",
    "fig4_best_effort",
    "order_error_penalties",
    "sweep",
]

#: Figure order used by the paper.
DEFAULT_ARCHS: Tuple[str, ...] = ("traditional-2vc", "ideal", "simple-2vc", "advanced-2vc")
DEFAULT_LOADS: Tuple[float, ...] = (0.2, 0.4, 0.6, 0.8, 1.0)


@dataclass
class FigureSeries:
    """One regenerated figure: tabular series plus optional CDF curves."""

    figure: str
    headers: List[str]
    rows: List[List]
    #: architecture label -> (x, P(X <= x)) curve (for CDF panels)
    cdfs: Dict[str, List[Tuple[float, float]]] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)

    def text(self) -> str:
        out = format_table(self.headers, self.rows, title=self.figure)
        if self.cdfs:
            out += "\n\nCDF at full load (latency_us : P(lat <= x)):"
            for label, curve in self.cdfs.items():
                samples = "  ".join(f"{x:.0f}:{p:.3f}" for x, p in curve)
                out += f"\n  {label:<18} {samples}"
        for note in self.notes:
            out += f"\n# {note}"
        return out


def sweep(
    archs: Sequence[str],
    loads: Sequence[float],
    *,
    topology: str = "small",
    seed: int = 1,
    warmup_ns: int = units.us(200),
    measure_ns: int = units.ms(1),
    mix_factory: Optional[Callable[[float], object]] = None,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    executor: Optional["SweepExecutor"] = None,
) -> Dict[Tuple[str, float], "RunSummary"]:
    """Run every (architecture, load) combination once.

    Points execute through a :class:`SweepExecutor` -- in-process at
    ``jobs=1``, across a process pool at ``jobs=N`` -- and come back as
    :class:`~repro.exec.summary.RunSummary` in submission order, so the
    result is independent of how it was executed.  Pass ``executor`` to
    reuse one campaign-wide executor (shared cache, aggregated stats);
    otherwise ``jobs``/``cache_dir`` configure a private one.
    """
    from repro.exec.executor import SweepExecutor

    if executor is None:
        executor = SweepExecutor(jobs=jobs, cache_dir=cache_dir)
    keys: List[Tuple[str, float]] = []
    configs: List[ExperimentConfig] = []
    for arch in archs:
        for load in loads:
            mix = mix_factory(load) if mix_factory is not None else None
            keys.append((arch, load))
            configs.append(
                ExperimentConfig(
                    architecture=arch,
                    load=load,
                    seed=seed,
                    topology=topology,
                    warmup_ns=warmup_ns,
                    measure_ns=measure_ns,
                    mix=mix,
                )
            )
    return dict(zip(keys, executor.run(configs)))


def _class_stats(result: SweepResult, tclass: str) -> "ClassSummary":
    """Per-class stats from a live result or a summary, identically."""
    return result.collector.get(tclass)


def _cdf_curve(result: SweepResult, tclass: str, *, messages: bool, points: int) -> List[Tuple[float, float]]:
    stats = _class_stats(result, tclass)
    cdf = stats.message_cdf() if messages else stats.packet_cdf()
    return [(units.ns_to_us(x), p) for x, p in cdf.curve(points)]


# ----------------------------------------------------------------------
def fig2_control(
    archs: Sequence[str] = DEFAULT_ARCHS,
    loads: Sequence[float] = DEFAULT_LOADS,
    *,
    topology: str = "small",
    seed: int = 1,
    warmup_ns: int = units.us(200),
    measure_ns: int = units.ms(1),
    cdf_points: int = 12,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    executor: Optional["SweepExecutor"] = None,
    results: Optional[Dict[Tuple[str, float], SweepResult]] = None,
) -> FigureSeries:
    """Figure 2: latency of the Control class."""
    if results is None:
        results = sweep(
            archs, loads, topology=topology, seed=seed,
            warmup_ns=warmup_ns, measure_ns=measure_ns,
            jobs=jobs, cache_dir=cache_dir, executor=executor,
        )
    series = FigureSeries(
        figure="Figure 2 -- Control traffic latency",
        headers=["architecture", "load", "avg lat (us)", "p99 (us)", "max (us)"],
        rows=[],
    )
    top_load = max(loads)
    for arch in archs:
        label = ARCHITECTURES[arch].label
        for load in loads:
            stats = _class_stats(results[(arch, load)], "control")
            cdf = stats.message_cdf()
            series.rows.append(
                [
                    label,
                    load,
                    units.ns_to_us(stats.message_latency.mean),
                    units.ns_to_us(cdf.quantile(0.99)),
                    units.ns_to_us(stats.message_latency.max),
                ]
            )
        series.cdfs[label] = _cdf_curve(
            results[(arch, top_load)], "control", messages=True, points=cdf_points
        )
    return series


def fig3_video(
    archs: Sequence[str] = DEFAULT_ARCHS,
    loads: Sequence[float] = (0.4, 0.7, 1.0),
    *,
    topology: str = "small",
    seed: int = 1,
    time_scale: float = 0.1,
    warmup_ns: Optional[int] = None,
    measure_ns: Optional[int] = None,
    cdf_points: int = 12,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    executor: Optional["SweepExecutor"] = None,
    results: Optional[Dict[Tuple[str, float], SweepResult]] = None,
) -> FigureSeries:
    """Figure 3: per-frame latency of the Multimedia class.

    Video time is compressed by ``time_scale`` (see
    :func:`~repro.experiments.config.scaled_video_mix`); the reported
    ``lat/target`` column is scale-free, so the paper's "frames arrive at
    almost exactly the 10 ms target" claim reads directly off it.
    """
    target_ns = units.ms(10 * time_scale)
    frame_period_ns = units.ms(40 * time_scale)
    if warmup_ns is None:
        warmup_ns = 2 * frame_period_ns
    if measure_ns is None:
        measure_ns = 6 * frame_period_ns
    if results is None:
        results = sweep(
            archs,
            loads,
            topology=topology,
            seed=seed,
            warmup_ns=warmup_ns,
            measure_ns=measure_ns,
            mix_factory=lambda load: scaled_video_mix(load, time_scale),
            jobs=jobs, cache_dir=cache_dir, executor=executor,
        )
    series = FigureSeries(
        figure="Figure 3 -- Multimedia (video frame) latency",
        headers=[
            "architecture",
            "load",
            "avg frame lat (us)",
            "lat/target",
            "p99/target",
            "within +/-10%",
        ],
        rows=[],
        notes=[f"frame-latency target = {units.ns_to_us(target_ns):.0f} us (time_scale={time_scale})"],
    )
    top_load = max(loads)
    for arch in archs:
        label = ARCHITECTURES[arch].label
        for load in loads:
            stats = _class_stats(results[(arch, load)], "multimedia")
            cdf = stats.message_cdf()
            within = cdf.prob_leq(1.1 * target_ns) - cdf.prob_leq(0.9 * target_ns)
            series.rows.append(
                [
                    label,
                    load,
                    units.ns_to_us(stats.message_latency.mean),
                    stats.message_latency.mean / target_ns,
                    cdf.quantile(0.99) / target_ns,
                    within,
                ]
            )
        series.cdfs[label] = _cdf_curve(
            results[(arch, top_load)], "multimedia", messages=True, points=cdf_points
        )
    return series


def fig4_best_effort(
    archs: Sequence[str] = DEFAULT_ARCHS,
    loads: Sequence[float] = DEFAULT_LOADS,
    *,
    topology: str = "small",
    seed: int = 1,
    warmup_ns: int = units.us(200),
    measure_ns: int = units.ms(1),
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    executor: Optional["SweepExecutor"] = None,
    results: Optional[Dict[Tuple[str, float], SweepResult]] = None,
) -> FigureSeries:
    """Figure 4: delivered throughput of the two best-effort classes."""
    if results is None:
        results = sweep(
            archs, loads, topology=topology, seed=seed,
            warmup_ns=warmup_ns, measure_ns=measure_ns,
            jobs=jobs, cache_dir=cache_dir, executor=executor,
        )
    series = FigureSeries(
        figure="Figure 4 -- Best-effort class throughput",
        headers=[
            "architecture",
            "load",
            "best-effort (B/ns)",
            "background (B/ns)",
            "BE/offered",
            "BG/offered",
            "BE:BG",
        ],
        rows=[],
        notes=[
            "EDF architectures separate the classes by deadline weight (2:1); "
            "Traditional cannot (both ride VC1 identically)."
        ],
    )
    for arch in archs:
        label = ARCHITECTURES[arch].label
        for load in loads:
            result = results[(arch, load)]
            be = result.throughput("best-effort")
            bg = result.throughput("background")
            series.rows.append(
                [
                    label,
                    load,
                    be,
                    bg,
                    result.normalized_throughput("best-effort"),
                    result.normalized_throughput("background"),
                    be / bg if bg > 0 else float("inf"),
                ]
            )
    return series


def order_error_penalties(
    *,
    load: float = 1.0,
    topology: str = "small",
    seed: int = 1,
    warmup_ns: int = units.us(200),
    measure_ns: int = units.ms(1),
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    executor: Optional["SweepExecutor"] = None,
    results: Optional[Dict[Tuple[str, float], SweepResult]] = None,
) -> Dict[str, float]:
    """Section 3.4 / Section 5 headline: control-latency overhead vs Ideal.

    Returns ``{architecture: mean_latency / ideal_mean_latency}``.  The
    paper reports ~1.25 for Simple and ~1.05 for Advanced.
    """
    archs = ("ideal", "simple-2vc", "advanced-2vc", "traditional-2vc")
    if results is None:
        results = sweep(
            archs, (load,), topology=topology, seed=seed,
            warmup_ns=warmup_ns, measure_ns=measure_ns,
            jobs=jobs, cache_dir=cache_dir, executor=executor,
        )
    ideal = _class_stats(results[("ideal", load)], "control").message_latency.mean
    return {
        arch: _class_stats(results[(arch, load)], "control").message_latency.mean / ideal
        for arch in archs
    }
