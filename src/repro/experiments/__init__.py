"""Experiment harness: everything needed to regenerate the paper's evaluation.

- :mod:`~repro.experiments.presets` -- topology scales (the paper's
  128-endpoint MIN plus scaled-down versions with the same shape and
  full bisection bandwidth, for test/bench budgets).
- :mod:`~repro.experiments.config` -- :class:`ExperimentConfig`, one run's
  complete parameterization.
- :mod:`~repro.experiments.runner` -- :func:`run_experiment`: build the
  fabric, attach the Table 1 mix, warm up, measure, return a
  :class:`RunResult`.
- :mod:`~repro.experiments.figures` -- the per-figure sweeps (fig2, fig3,
  fig4) and the headline-claim computations (Simple ~ +25%, Advanced
  ~ +5%, frames pinned at the target latency, best-effort weight
  differentiation).
"""

from repro.experiments.config import ExperimentConfig, scaled_video_mix
from repro.experiments.presets import TOPOLOGY_PRESETS, make_topology
from repro.experiments.runner import RunResult, run_experiment
from repro.experiments.figures import (
    FigureSeries,
    fig2_control,
    fig3_video,
    fig4_best_effort,
    DEFAULT_LOADS,
    order_error_penalties,
    sweep,
)
from repro.experiments.replication import (
    MetricSummary,
    Replication,
    replicate,
    run_one,
)
from repro.experiments.export import (
    figure_to_csv,
    figure_to_json,
    result_to_json,
    write_figure,
)

__all__ = [
    "DEFAULT_LOADS",
    "ExperimentConfig",
    "FigureSeries",
    "MetricSummary",
    "Replication",
    "RunResult",
    "TOPOLOGY_PRESETS",
    "fig2_control",
    "fig3_video",
    "fig4_best_effort",
    "figure_to_csv",
    "figure_to_json",
    "make_topology",
    "order_error_penalties",
    "replicate",
    "result_to_json",
    "run_experiment",
    "run_one",
    "scaled_video_mix",
    "sweep",
    "write_figure",
]
