"""Topology scale presets.

All presets keep the paper's shape -- a two-stage folded MIN with full
bisection bandwidth (uplinks per leaf == hosts per leaf), so no preset
introduces structural oversubscription the paper's network does not
have.  ``paper`` is the exact Section 4.1 configuration; the smaller
scales exist because a pure-Python simulator pays ~100x the authors'
C-simulator cost per event, and the *relative* architecture comparison
is scale-invariant (the workload tests verify the claims hold across
presets).
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.network.topology import Topology, build_folded_shuffle_min

__all__ = ["TOPOLOGY_PRESETS", "make_topology"]

#: name -> (n_leaves, hosts_per_leaf, n_spines)
TOPOLOGY_PRESETS: Dict[str, Tuple[int, int, int]] = {
    # 16 hosts, radix-8 leaves: the smallest full-bisection instance.
    "tiny": (4, 4, 4),
    # 32 hosts: default for tests and quick benches.
    "small": (8, 4, 4),
    # 64 hosts, radix-16 switches like the paper.
    "medium": (8, 8, 8),
    # The paper's network: 128 endpoints, 16 leaves x 8 hosts, 8 spines.
    "paper": (16, 8, 8),
    # 4x the paper: 512 endpoints, 32 leaves x 16 hosts, 16 spines.
    # Exercises the fabric at the scale the SIM5xx lint pass and the
    # scale benchmark guard (full bisection is preserved: 16 == 16).
    "scale512": (32, 16, 16),
}


def make_topology(preset: str) -> Topology:
    try:
        n_leaves, hosts_per_leaf, n_spines = TOPOLOGY_PRESETS[preset]
    except KeyError:
        known = ", ".join(sorted(TOPOLOGY_PRESETS))
        raise KeyError(f"unknown topology preset {preset!r}; known: {known}") from None
    return build_folded_shuffle_min(
        n_leaves, hosts_per_leaf, n_spines, name=f"{preset}-min"
    )
