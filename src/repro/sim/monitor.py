"""Structured event tracing.

A :class:`Trace` collects ``(time, topic, payload)`` records from any
component that was handed the trace object.  Traces are for debugging and
for the fine-grained assertions in the integration tests (e.g. "packet X
left switch S before packet Y"); the statistics used by the benchmark
harness are collected by the cheaper accumulators in :mod:`repro.stats`.

:class:`NullTrace` is the default no-op sink; components call
``trace.record(...)`` unconditionally and the null implementation makes
that a cheap no-op, keeping the hot path free of ``if`` clutter.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Iterable, List, NamedTuple, Optional, Set, Union

__all__ = ["NullTrace", "Trace", "TraceRecord"]


class TraceRecord(NamedTuple):
    time: int
    topic: str
    payload: tuple


class NullTrace:
    """Discards everything.  ``enabled`` lets callers skip payload building."""

    enabled = False

    def record(self, time: int, topic: str, *payload: Any) -> None:
        return None

    def subscribe(self, topic: str, fn: Callable[[TraceRecord], None]) -> None:
        raise TypeError("NullTrace cannot deliver records; use Trace instead")


class Trace:
    """Records events, optionally filtered to a set of topics.

    >>> t = Trace(topics={"switch.forward"})
    >>> t.record(10, "switch.forward", "pkt1")
    >>> t.record(11, "link.busy", "ignored")
    >>> [r.topic for r in t.records]
    ['switch.forward']

    **Drop policy at capacity.**  With ``ring=False`` (the default,
    matching historical behaviour) a full trace keeps the *oldest*
    records and drops new arrivals -- right for "how did the run start"
    forensics.  With ``ring=True`` the buffer keeps the *newest*
    ``capacity`` records, evicting the oldest -- right for "what
    happened just before it went wrong".  Either way ``dropped`` counts
    every record not retained, and subscribers always see **all**
    matching records regardless of buffer state: capacity bounds
    memory, not the callback stream.
    """

    enabled = True

    def __init__(
        self,
        topics: Optional[Iterable[str]] = None,
        capacity: Optional[int] = None,
        *,
        ring: bool = False,
    ):
        if ring and capacity is None:
            raise ValueError("ring=True requires a capacity")
        self.topics: Optional[Set[str]] = set(topics) if topics is not None else None
        self.capacity = capacity
        self.ring = ring
        self.records: Union[List[TraceRecord], "deque[TraceRecord]"] = (
            deque(maxlen=capacity) if ring else []
        )
        self.dropped = 0
        self._subscribers: dict[str, list[Callable[[TraceRecord], None]]] = {}

    def record(self, time: int, topic: str, *payload: Any) -> None:
        if self.topics is not None and topic not in self.topics:
            return
        rec = TraceRecord(time, topic, payload)
        if self.capacity is not None and len(self.records) >= self.capacity:
            self.dropped += 1
            if self.ring:
                self.records.append(rec)  # deque(maxlen=...) evicts the oldest
        else:
            self.records.append(rec)
        for fn in self._subscribers.get(topic, ()):
            fn(rec)

    def subscribe(self, topic: str, fn: Callable[[TraceRecord], None]) -> None:
        """Call ``fn`` synchronously for every record on ``topic``."""
        if self.topics is not None:
            self.topics.add(topic)
        self._subscribers.setdefault(topic, []).append(fn)

    def by_topic(self, topic: str) -> List[TraceRecord]:
        return [r for r in self.records if r.topic == topic]

    def clear(self) -> None:
        self.records.clear()
        self.dropped = 0

    def snapshot(self) -> dict:
        """Buffer state as a JSON-ready summary (policy, retention, drops)."""
        return {
            "retained": len(self.records),
            "dropped": self.dropped,
            "capacity": self.capacity,
            "policy": "ring-keep-newest" if self.ring else "keep-oldest",
            "topics": sorted(self.topics) if self.topics is not None else None,
        }
