"""The seed binary-heap event kernel, kept as a reference implementation.

This is the engine the repo shipped with through PR 8, preserved
byte-for-byte in behaviour so the differential harness
(``tests/sim/test_engine_differential.py``) can prove the timing-wheel
:class:`repro.sim.engine.Engine` dispatches the exact same event order:
same seed through both engines must yield byte-identical run summaries.
It is *not* used on any production path -- only tests and the engine
benchmark guard instantiate it.

Original design notes (a classic calendar-heap event loop):

- Heap entries are plain ``(time, seq, handle)`` tuples: the sequence
  number is unique, so tuple comparison resolves in C without ever
  touching the handle -- profiling showed object-level ``__lt__`` was the
  single largest cost before this change.  The monotonically increasing
  sequence number also makes simultaneous events fire in scheduling
  order, keeping runs bit-for-bit reproducible.
- Cancellation is by tombstone: :meth:`HeapEventHandle.cancel` flags the entry
  and the loop discards it when popped.  This avoids O(n) heap surgery.
- Callbacks receive their pre-bound arguments; there is no per-event
  dictionary or keyword packing on the hot path.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional, Union

__all__ = ["HeapEngine"]

from repro.sim.engine import SimulationError

# Scheduling happens once per event; a module-global alias skips the
# module-then-builtins dict probes of `heapq.heappush` on every call.
_heappush = heapq.heappush
_heappop = heapq.heappop

#: Sentinel bound: `entry_time > _NO_BOUND` and `executed >= _NO_BOUND`
#: are always false, so the run loop compares against a constant instead
#: of testing `is not None` twice per event.
_NO_BOUND = float("inf")


class HeapEventHandle:
    """A scheduled callback.  Returned by :meth:`Engine.at` / :meth:`Engine.after`."""

    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(self, time: int, seq: int, fn: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from firing.  Idempotent; safe after firing."""
        self.cancelled = True
        # Drop references eagerly: a cancelled event may sit in the heap for
        # a long simulated time and would otherwise pin its arguments alive.
        self.fn = _noop
        self.args = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<EventHandle t={self.time} seq={self.seq} {state}>"


def _noop(*_args: Any) -> None:
    return None


class HeapEngine:
    """Event loop with integer-nanosecond virtual time.

    Typical use::

        eng = Engine()
        eng.after(100, my_callback, arg1, arg2)
        eng.run(until=1_000_000)

    The engine never advances past ``until``; events scheduled exactly at
    ``until`` do fire (closed interval), which lets warm-up and measurement
    windows abut without gaps.
    """

    def __init__(self, start_time: int = 0):
        if start_time < 0:
            raise SimulationError(f"start time must be >= 0, got {start_time}")
        self._now: int = start_time
        self._seq: int = 0
        #: heap of (time, seq, handle); seq is unique, so comparisons never
        #: reach the handle (pure C tuple ordering).
        self._heap: list[tuple[int, int, HeapEventHandle]] = []
        self._running = False
        self._stopped = False
        self._events_executed = 0
        self._tombstones_discarded = 0
        self._count_live = False

    # ------------------------------------------------------------------
    # time & introspection
    # ------------------------------------------------------------------
    @property
    def now(self) -> int:
        """Current simulated time in nanoseconds."""
        return self._now

    @property
    def events_executed(self) -> int:
        """Number of callbacks fired so far (for microbenchmarks/tests).

        By default this is only refreshed when :meth:`run` returns; call
        :meth:`enable_live_event_count` first if you need it accurate
        *inside* a callback (telemetry does).
        """
        return self._events_executed

    def enable_live_event_count(self) -> None:
        """Refresh :attr:`events_executed` after every callback.

        Off by default: the per-event attribute store costs a few percent
        of pure dispatch throughput, so only observers that sample
        mid-run (e.g. :class:`repro.obs.telemetry.RunTelemetry`) should
        turn it on.  Irreversible for the engine's lifetime; cheap anyway
        once any instrumentation is attached.
        """
        self._count_live = True

    @property
    def pending(self) -> int:
        """Number of heap entries, *including* cancelled tombstones."""
        return len(self._heap)

    @property
    def tombstones_discarded(self) -> int:
        """Cancelled entries popped and thrown away so far.

        The tombstone *ratio* (discarded / (discarded + executed)) is the
        health number: near 1.0 means most heap traffic is cancellation
        garbage and the scheduling pattern deserves a look.
        """
        return self._tombstones_discarded

    @property
    def tombstone_ratio(self) -> float:
        total = self._tombstones_discarded + self._events_executed
        return self._tombstones_discarded / total if total else 0.0

    def peek_time(self) -> Optional[int]:
        """Timestamp of the next live event, or ``None`` if the heap is empty."""
        heap = self._heap
        while heap and heap[0][2].cancelled:
            _heappop(heap)
            self._tombstones_discarded += 1
        return heap[0][0] if heap else None

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def at(self, time: int, fn: Callable[..., Any], *args: Any) -> HeapEventHandle:
        """Schedule ``fn(*args)`` at absolute simulated ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time}, current time is {self._now}"
            )
        self._seq += 1
        ev = HeapEventHandle(time, self._seq, fn, args)
        _heappush(self._heap, (time, self._seq, ev))
        return ev

    def after(self, delay: int, fn: Callable[..., Any], *args: Any) -> HeapEventHandle:
        """Schedule ``fn(*args)`` after ``delay`` nanoseconds from now.

        Open-coded rather than delegating to :meth:`at`: most hot-path
        callers reschedule relative to now, and `delay >= 0` already
        guarantees the not-in-the-past invariant, so the extra call
        frame and re-check would be pure overhead (profiling puts this
        method second only to the run loop itself).
        """
        if delay < 0:
            raise SimulationError(f"delay must be >= 0, got {delay}")
        time = self._now + delay
        self._seq += 1
        ev = HeapEventHandle(time, self._seq, fn, args)
        _heappush(self._heap, (time, self._seq, ev))
        return ev

    # ------------------------------------------------------------------
    # API parity with the timing-wheel engine (components call these)
    # ------------------------------------------------------------------
    def at_cancellable(self, time, fn, *args) -> HeapEventHandle:
        """Alias: every heap-engine event is cancellable."""
        return self.at(time, fn, *args)

    def after_cancellable(self, delay, fn, *args) -> HeapEventHandle:
        """Alias: every heap-engine event is cancellable."""
        return self.after(delay, fn, *args)

    def wheel_stats(self) -> dict:
        """Shape-compatible with :meth:`repro.sim.engine.Engine.wheel_stats`."""
        return {
            "slots": 0,
            "horizon_ns": 0,
            "occupied_buckets": 0,
            "overflow_pending": len(self._heap),
            "hot_armed": False,
            "pending": self.pending,
            "events_executed": self._events_executed,
            "tombstones_discarded": self._tombstones_discarded,
        }

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(
        self,
        until: Optional[int] = None,
        max_events: Optional[int] = None,
    ) -> int:
        """Run events in timestamp order.

        Stops when the heap drains, when the next event lies beyond
        ``until``, after ``max_events`` callbacks, or when :meth:`stop` is
        called from inside a callback.  Returns the number of callbacks
        executed by *this* call.

        When stopping because of ``until``, the clock is advanced to
        ``until`` so back-to-back ``run(until=...)`` calls observe
        contiguous time.
        """
        if self._running:
            raise SimulationError("engine is not reentrant: run() called from a callback")
        if until is not None and until < self._now:
            raise SimulationError(f"until={until} is in the past (now={self._now})")

        heap = self._heap
        pop = _heappop
        base = self._events_executed
        # Sentinel bounds: comparing against +inf is always false, which
        # removes two `is not None` tests from every loop iteration.
        until_bound: Union[int, float] = _NO_BOUND if until is None else until
        limit: Union[int, float] = _NO_BOUND if max_events is None else max_events
        # With _count_live set, the public counter is refreshed after
        # every callback so observers sampling *inside* the loop (the
        # telemetry heartbeat's events/sec probe) see a moving count;
        # otherwise the loop keeps the cheaper local counter and the
        # attribute is refreshed once on the way out.
        live = self._count_live
        executed = 0
        self._running = True
        self._stopped = False
        try:
            while heap:
                entry = heap[0]
                ev = entry[2]
                if ev.cancelled:
                    pop(heap)
                    self._tombstones_discarded += 1
                    continue
                if entry[0] > until_bound:
                    break
                if executed >= limit:
                    break
                pop(heap)
                self._now = entry[0]
                ev.fn(*ev.args)
                executed += 1
                if live:
                    self._events_executed = base + executed
                if self._stopped:
                    break
        finally:
            self._running = False
            self._events_executed = base + executed
        if until is not None and not self._stopped and (
            max_events is None or executed < max_events
        ):
            self._now = max(self._now, until)
        return executed

    def run_all(self, max_events: int = 50_000_000) -> int:
        """Run until the event heap is empty (bounded by ``max_events``)."""
        return self.run(max_events=max_events)

    def stop(self) -> None:
        """Request the current :meth:`run` call to return after this callback."""
        self._stopped = True
