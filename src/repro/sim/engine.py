"""The discrete-event simulation kernel.

A hierarchical timing wheel with an overflow heap and a single-event
fast path, replacing the seed's binary heap (kept verbatim in
:mod:`repro.sim.heap_engine` as the differential-testing reference).
Design notes, informed by profiling -- the dispatch loop and the two
schedule methods are the hottest code in the whole library:

- **Timing wheel.**  Link/switch delays are small fixed integer-ns
  constants, so almost every event lands within a bounded horizon of
  ``now``.  The wheel is ``wheel_slots`` (a power of two) persistent
  bucket lists indexed by ``time & mask``; a min-heap of *occupied
  bucket times* (``_times``) replaces per-event heap churn with
  per-timestamp heap churn.  The window invariant -- every wheeled time
  lies in ``[now, now + horizon)`` -- makes slot<->time a bijection, so
  a bucket never mixes timestamps and append order *is* schedule order.
- **Overflow heap.**  Events beyond the horizon go to a conventional
  ``(time, seq, entry)`` heap and are *drained* into the wheel at every
  clock advancement, before any callback at the new time runs.  That
  ordering discipline is what keeps runs byte-for-bit identical to the
  reference heap engine (see ARCHITECTURE.md section 10 for the proof
  sketch).
- **Hot slot.**  The serial portions of a workload (one event in
  flight, each callback scheduling the next) never need a priority
  structure at all.  When the engine is otherwise empty, ``at``/``after``
  park the callback in two instance slots -- no allocation, no heap, no
  bucket -- and the run loop dispatches it directly.  Measured, this is
  the difference between ~1.2x and >2x over the seed engine on the
  dispatch microbenchmark.
- **Tombstone cancellation.**  ``at``/``after`` return ``None`` (the
  handle allocation was the single largest schedule-path cost); the
  ``*_cancellable`` variants return a pooled :class:`EventHandle` whose
  entry is a mutable ``[fn, args]`` cell.  ``cancel()`` swaps in a no-op
  and the dispatch loop discards the tombstone when it surfaces.
- Callbacks receive their pre-bound arguments; there is no per-event
  dictionary or keyword packing on the hot path.
"""

from __future__ import annotations

import heapq
import sys
from typing import Any, Callable, Dict, List, Optional, Union

__all__ = ["Engine", "EventHandle", "SimulationError"]

# Scheduling happens once per event; a module-global alias skips the
# module-then-builtins dict probes of `heapq.heappush` on every call.
_heappush = heapq.heappush
_heappop = heapq.heappop

#: Sentinel bound: every real timestamp/count is below it, so the run
#: loop compares against an int constant instead of testing
#: `is not None` twice per event (int/int compares stay in C).
_NO_BOUND = sys.maxsize

#: Default wheel size: 4096 slots = a 4.096 us horizon at 1 ns
#: resolution, comfortably covering serialization (~250 ns/MTU at the
#: paper's 8 Gb/s) and propagation (tens of ns) delays; heartbeats and
#: traffic inter-arrivals take the overflow heap.
_DEFAULT_WHEEL_SLOTS = 4096


class SimulationError(RuntimeError):
    """Raised for invalid scheduling requests (e.g. scheduling in the past)."""


def _noop(*_args: Any) -> None:
    return None


class EventHandle:
    """A cancellable scheduled callback.

    Returned by :meth:`Engine.at_cancellable` /
    :meth:`Engine.after_cancellable`.  The plain :meth:`Engine.at` /
    :meth:`Engine.after` return ``None``: a handle allocation per event
    was the single largest cost on the schedule path, and almost no
    caller cancels.

    Ownership discipline (handles are pooled): after calling
    :meth:`cancel` the caller must drop the reference -- the engine may
    recycle the object for a later ``*_cancellable`` call.  The
    cancel-then-rearm pattern (``h.cancel(); h = engine.at_cancellable(...)``)
    is safe by construction.
    """

    __slots__ = ("time", "seq", "cancelled", "_entry", "_engine")

    def __init__(self, time: int, seq: int, entry: list, engine: "Engine"):
        self.time = time
        self.seq = seq
        self.cancelled = False
        self._entry = entry
        self._engine = engine

    def cancel(self) -> None:
        """Prevent the callback from firing.  Idempotent; safe after firing."""
        if self.cancelled:
            return
        self.cancelled = True
        # Tombstone the entry in place: the dispatch loop recognizes the
        # no-op by identity and discards it.  Dropping fn/args eagerly
        # also unpins the arguments of long-lived cancelled events.
        entry = self._entry
        entry[0] = _noop
        entry[1] = ()
        self._entry = _DEAD_ENTRY
        # The owner has relinquished the handle: recycle it.
        self._engine._handle_pool.append(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<EventHandle t={self.time} seq={self.seq} {state}>"


#: Shared placeholder entry for cancelled handles (never dispatched).
_DEAD_ENTRY: list = [_noop, ()]


class Engine:
    """Event loop with integer-nanosecond virtual time.

    Typical use::

        eng = Engine()
        eng.after(100, my_callback, arg1, arg2)
        eng.run(until=1_000_000)

    The engine never advances past ``until``; events scheduled exactly at
    ``until`` do fire (closed interval), which lets warm-up and measurement
    windows abut without gaps.
    """

    __slots__ = (
        "_now",
        "_seq",
        "_mask",
        "_horizon",
        "_wheel",
        "_times",
        "_overflow",
        "_hot_fn",
        "_hot_args",
        "_hot_time",
        "_handle_pool",
        "_running",
        "_stopped",
        "_events_executed",
        "_tombstones_discarded",
        "_count_live",
    )

    def __init__(self, start_time: int = 0, *, wheel_slots: int = _DEFAULT_WHEEL_SLOTS):
        if start_time < 0:
            raise SimulationError(f"start time must be >= 0, got {start_time}")
        if wheel_slots < 2 or wheel_slots & (wheel_slots - 1):
            raise SimulationError(
                f"wheel_slots must be a power of two >= 2, got {wheel_slots}"
            )
        self._now: int = start_time
        self._seq: int = 0
        self._mask: int = wheel_slots - 1
        self._horizon: int = wheel_slots
        #: one persistent list per slot; index = time & mask.  The window
        #: invariant (all wheeled times in [now, now+horizon)) keeps each
        #: bucket single-timestamped, so append order == schedule order.
        self._wheel: List[list] = [[] for _ in range(wheel_slots)]
        #: min-heap of occupied bucket *times* (pushed on the empty ->
        #: non-empty transition only, so entries are unique).
        self._times: List[int] = []
        #: beyond-horizon events: heap of (time, seq, entry); seq breaks
        #: same-time ties in schedule order among overflow entries.
        self._overflow: List[tuple] = []
        #: single-event fast path: when the engine is otherwise empty a
        #: scheduled event lives in these three slots, allocation-free.
        self._hot_fn: Optional[Callable[..., Any]] = None
        self._hot_args: tuple = ()
        self._hot_time: int = 0
        #: free list of cancelled EventHandles awaiting reuse.
        self._handle_pool: List[EventHandle] = []
        self._running = False
        self._stopped = False
        self._events_executed = 0
        self._tombstones_discarded = 0
        self._count_live = False

    # ------------------------------------------------------------------
    # time & introspection
    # ------------------------------------------------------------------
    @property
    def now(self) -> int:
        """Current simulated time in nanoseconds."""
        return self._now

    @property
    def events_executed(self) -> int:
        """Number of callbacks fired so far (for microbenchmarks/tests).

        By default this is only refreshed when :meth:`run` returns; call
        :meth:`enable_live_event_count` first if you need it accurate
        *inside* a callback (telemetry does).
        """
        return self._events_executed

    def enable_live_event_count(self) -> None:
        """Refresh :attr:`events_executed` after every callback.

        Off by default: the per-event attribute store costs a few percent
        of pure dispatch throughput, so only observers that sample
        mid-run (e.g. :class:`repro.obs.telemetry.RunTelemetry`) should
        turn it on.  Irreversible for the engine's lifetime; cheap anyway
        once any instrumentation is attached.
        """
        self._count_live = True

    @property
    def pending(self) -> int:
        """Number of scheduled entries, *including* cancelled tombstones."""
        wheel = self._wheel
        mask = self._mask
        count = sum(len(wheel[t & mask]) for t in self._times)
        count += len(self._overflow)
        if self._hot_fn is not None:
            count += 1
        return count

    @property
    def tombstones_discarded(self) -> int:
        """Cancelled entries surfaced and thrown away so far.

        The tombstone *ratio* (discarded / (discarded + executed)) is the
        health number: near 1.0 means most scheduling traffic is
        cancellation garbage and the scheduling pattern deserves a look.
        """
        return self._tombstones_discarded

    @property
    def tombstone_ratio(self) -> float:
        total = self._tombstones_discarded + self._events_executed
        return self._tombstones_discarded / total if total else 0.0

    def wheel_stats(self) -> Dict[str, Any]:
        """Occupancy counters for the wheel structure (telemetry/tests).

        ``occupied_buckets`` is the size of the occupied-time heap (one
        entry per distinct in-window timestamp), ``overflow_pending`` the
        beyond-horizon backlog, ``hot_armed`` whether the single-event
        fast path currently holds the only pending event.
        """
        return {
            "slots": self._horizon,
            "horizon_ns": self._horizon,
            "occupied_buckets": len(self._times),
            "overflow_pending": len(self._overflow),
            "hot_armed": self._hot_fn is not None,
            "pending": self.pending,
            "events_executed": self._events_executed,
            "tombstones_discarded": self._tombstones_discarded,
        }

    def peek_time(self) -> Optional[int]:
        """Timestamp of the next live event, or ``None`` if nothing is pending.

        Buckets that turn out to be pure tombstone garbage are reclaimed
        here (and counted), mirroring the reference engine's
        discard-on-peek behaviour.
        """
        best: Optional[int] = None
        if self._hot_fn is not None:
            best = self._hot_time
        times = self._times
        wheel = self._wheel
        mask = self._mask
        while times:
            t = times[0]
            bucket = wheel[t & mask]
            has_live = False
            for entry in bucket:
                if entry[0] is not _noop:
                    has_live = True
                    break
            if has_live:
                if best is None or t < best:
                    best = t
                break
            # Whole bucket is cancelled garbage: reclaim it now.
            self._tombstones_discarded += len(bucket)
            bucket.clear()
            _heappop(times)
        overflow = self._overflow
        while overflow and overflow[0][2][0] is _noop:
            _heappop(overflow)
            self._tombstones_discarded += 1
        if overflow:
            t = overflow[0][0]
            if best is None or t < best:
                best = t
        return best

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def at(self, time: int, fn: Callable[..., Any], *args: Any) -> None:
        """Schedule ``fn(*args)`` at absolute simulated ``time``.

        Returns ``None``; use :meth:`at_cancellable` if the event may
        need to be revoked.
        """
        if self._hot_fn is None:
            if not self._times and not self._overflow:
                # Engine is empty: park the event allocation-free.
                if time < self._now:
                    raise SimulationError(
                        f"cannot schedule at t={time}, current time is {self._now}"
                    )
                self._hot_time = time
                self._hot_fn = fn
                self._hot_args = args
                return
        else:
            self._spill_hot()
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time}, current time is {self._now}"
            )
        if time - self._now < self._horizon:
            bucket = self._wheel[time & self._mask]
            if not bucket:
                _heappush(self._times, time)
            bucket.append((fn, args))
        else:
            self._seq += 1
            _heappush(self._overflow, (time, self._seq, (fn, args)))

    def after(self, delay: int, fn: Callable[..., Any], *args: Any) -> None:
        """Schedule ``fn(*args)`` after ``delay`` nanoseconds from now.

        Open-coded rather than delegating to :meth:`at`: most hot-path
        callers reschedule relative to now, and ``delay >= 0`` already
        guarantees the not-in-the-past invariant, so the extra call
        frame and re-check would be pure overhead (profiling puts this
        method second only to the run loop itself).  Returns ``None``;
        use :meth:`after_cancellable` if the event may need revoking.
        """
        if self._hot_fn is None:
            if not self._times and not self._overflow:
                if delay < 0:
                    raise SimulationError(f"delay must be >= 0, got {delay}")
                self._hot_time = self._now + delay
                self._hot_fn = fn
                self._hot_args = args
                return
        else:
            self._spill_hot()
        if delay < 0:
            raise SimulationError(f"delay must be >= 0, got {delay}")
        time = self._now + delay
        if delay < self._horizon:
            bucket = self._wheel[time & self._mask]
            if not bucket:
                _heappush(self._times, time)
            bucket.append((fn, args))
        else:
            self._seq += 1
            _heappush(self._overflow, (time, self._seq, (fn, args)))

    def at_cancellable(
        self, time: int, fn: Callable[..., Any], *args: Any
    ) -> EventHandle:
        """Schedule ``fn(*args)`` at ``time``; returns a cancellable handle."""
        if self._hot_fn is not None:
            self._spill_hot()
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time}, current time is {self._now}"
            )
        return self._push_cancellable(time, fn, args)

    def after_cancellable(
        self, delay: int, fn: Callable[..., Any], *args: Any
    ) -> EventHandle:
        """Schedule ``fn(*args)`` after ``delay`` ns; returns a cancellable handle."""
        if delay < 0:
            raise SimulationError(f"delay must be >= 0, got {delay}")
        if self._hot_fn is not None:
            self._spill_hot()
        return self._push_cancellable(self._now + delay, fn, args)

    def _push_cancellable(
        self, time: int, fn: Callable[..., Any], args: tuple
    ) -> EventHandle:
        entry = [fn, args]
        self._seq += 1
        if time - self._now < self._horizon:
            bucket = self._wheel[time & self._mask]
            if not bucket:
                _heappush(self._times, time)
            bucket.append(entry)
        else:
            _heappush(self._overflow, (time, self._seq, entry))
        pool = self._handle_pool
        if pool:
            handle = pool.pop()
            handle.time = time
            handle.seq = self._seq
            handle.cancelled = False
            handle._entry = entry
            return handle
        return EventHandle(time, self._seq, entry, self)

    def _spill_hot(self) -> None:
        """Move the hot-slot event into the wheel/overflow.

        Called before any second event is admitted, so at rest the hot
        slot coexists with other pending work only after a mid-bucket
        limit/stop break (see the run loop's ordering note).
        """
        time = self._hot_time
        fn = self._hot_fn
        args = self._hot_args
        self._hot_fn = None
        self._hot_args = ()
        if time - self._now < self._horizon:
            bucket = self._wheel[time & self._mask]
            if not bucket:
                _heappush(self._times, time)
            bucket.append((fn, args))
        else:
            self._seq += 1
            _heappush(self._overflow, (time, self._seq, (fn, args)))

    def _drain_overflow(self) -> None:
        """Move every overflow entry now inside the horizon onto the wheel.

        Must run at *every* clock advancement, before any callback at the
        new time: that guarantees an overflow entry for time T always
        reaches T's bucket before any direct in-window append for T can
        happen (a direct append requires now > T - horizon, and the first
        advancement past T - horizon performs the drain), preserving the
        global (time, schedule-order) total order.
        """
        bound = self._now + self._horizon
        overflow = self._overflow
        wheel = self._wheel
        mask = self._mask
        times = self._times
        while overflow and overflow[0][0] < bound:
            time, _seq, entry = _heappop(overflow)
            bucket = wheel[time & mask]
            if not bucket:
                _heappush(times, time)
            bucket.append(entry)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(
        self,
        until: Optional[int] = None,
        max_events: Optional[int] = None,
    ) -> int:
        """Run events in timestamp order.

        Stops when nothing is pending, when the next event lies beyond
        ``until``, after ``max_events`` callbacks, or when :meth:`stop` is
        called from inside a callback.  Returns the number of callbacks
        executed by *this* call.

        When stopping because of ``until``, the clock is advanced to
        ``until`` so back-to-back ``run(until=...)`` calls observe
        contiguous time.
        """
        if self._running:
            raise SimulationError("engine is not reentrant: run() called from a callback")
        if until is not None and until < self._now:
            raise SimulationError(f"until={until} is in the past (now={self._now})")

        wheel = self._wheel
        mask = self._mask
        times = self._times
        overflow = self._overflow
        pop = _heappop
        push = _heappush
        length = len
        drain = self._drain_overflow
        base = self._events_executed
        # Sentinel bounds: comparing against maxsize is always false for
        # real timestamps/counts, which removes two `is not None` tests
        # from every loop iteration.
        until_bound: Union[int, float] = _NO_BOUND if until is None else until
        limit: Union[int, float] = _NO_BOUND if max_events is None else max_events
        # With _count_live set, the public counter is refreshed after
        # every callback so observers sampling *inside* the loop (the
        # telemetry heartbeat's events/sec probe) see a moving count;
        # otherwise the loop keeps the cheaper local counter and the
        # attribute is refreshed once on the way out.
        live = self._count_live
        tombstones = 0
        executed = 0
        self._running = True
        self._stopped = False
        try:
            while True:
                fn = self._hot_fn
                if fn is not None:
                    t = self._hot_time
                    # Hot slot normally implies an otherwise-empty engine;
                    # the one coexistence case is a bucket pushed back by a
                    # mid-bucket limit/stop break, whose items were all
                    # scheduled before the hot event -- hence strict `<`
                    # so the bucket wins timestamp ties (falls through to
                    # the wheel branch below).
                    if not times or t < times[0]:
                        if t > until_bound:
                            break
                        if executed >= limit:
                            break
                        self._hot_fn = None
                        self._now = t
                        fn(*self._hot_args)
                        executed += 1
                        if live:
                            self._events_executed = base + executed
                        # `_stopped` is written by stop() from inside the
                        # callback we just ran, so it must be re-read after
                        # every dispatch; a pre-loop hoist would be a
                        # semantic change.
                        if self._stopped:  # simlint: allow-hot-attr-reload
                            break
                        continue
                if times:
                    t = times[0]
                    bucket = wheel[t & mask]
                    # Reclaim the head-of-queue tombstone prefix *before*
                    # the until/limit checks and without advancing the
                    # clock -- exact parity with the reference heap
                    # engine, which discards cancelled head entries even
                    # when the next live event lies beyond the window.
                    k = 0
                    for item in bucket:
                        if item[0] is not _noop:
                            break
                        k += 1
                    if k:
                        tombstones += k
                        if k == length(bucket):
                            pop(times)
                            bucket.clear()
                            continue
                        del bucket[:k]
                    if t > until_bound:
                        break
                    if executed >= limit:
                        break
                    pop(times)
                    self._now = t
                    if overflow:
                        drain()
                    consumed = 0
                    # CPython list iteration observes appends, so events
                    # scheduled *at the current time* by callbacks in this
                    # bucket are picked up in the same pass, in order.
                    for item in bucket:
                        f = item[0]
                        if f is _noop:
                            consumed += 1
                            tombstones += 1
                            continue
                        if executed >= limit:
                            break
                        consumed += 1
                        f(*item[1])
                        executed += 1
                        if live:
                            self._events_executed = base + executed
                        if self._stopped:
                            break
                    if consumed != length(bucket):
                        # limit/stop hit mid-bucket: keep the unconsumed
                        # tail in place and re-register the timestamp so
                        # the next run() resumes exactly here.
                        del bucket[:consumed]
                        push(times, t)
                        break
                    bucket.clear()
                    if self._stopped:
                        break
                    continue
                if overflow:
                    head = overflow[0]
                    if head[2][0] is _noop:
                        pop(overflow)
                        tombstones += 1
                        continue
                    t = head[0]
                    if t > until_bound:
                        break
                    if executed >= limit:
                        break
                    # Jump the clock to the overflow head and drain: the
                    # wheel is empty, so this is a plain clock advancement.
                    self._now = t
                    drain()
                    continue
                break
        finally:
            self._running = False
            self._events_executed = base + executed
            self._tombstones_discarded += tombstones
        if until is not None and not self._stopped and (
            max_events is None or executed < max_events
        ):
            if until > self._now:
                self._now = until
                if overflow:
                    self._drain_overflow()
        return executed

    def run_all(self, max_events: int = 50_000_000) -> int:
        """Run until nothing is pending (bounded by ``max_events``)."""
        return self.run(max_events=max_events)

    def stop(self) -> None:
        """Request the current :meth:`run` call to return after this callback."""
        self._stopped = True
