"""Named, reproducible random-number streams.

Every stochastic component (each traffic source, the admission
controller's tie-breaks, ...) draws from its own stream, derived from a
root seed and a string name.  Two properties matter for reproduction:

- **Determinism**: the same root seed always produces the same run,
  regardless of the order in which components are constructed.
- **Independence**: streams are seeded through SHA-256 of
  ``(root_seed, name)`` so adding a new component never perturbs the
  draws seen by existing ones (unlike sharing one global ``Random``).
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict

__all__ = ["RandomStreams", "derive_seed"]


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a 64-bit child seed from a root seed and a stream name."""
    digest = hashlib.sha256(f"{root_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


class RandomStreams:
    """Factory of named :class:`random.Random` streams.

    >>> streams = RandomStreams(42)
    >>> a = streams.stream("traffic.control.host0")
    >>> b = streams.stream("traffic.control.host1")
    >>> a is streams.stream("traffic.control.host0")
    True
    """

    def __init__(self, root_seed: int):
        self.root_seed = int(root_seed)
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        rng = self._streams.get(name)
        if rng is None:
            rng = random.Random(derive_seed(self.root_seed, name))
            self._streams[name] = rng
        return rng

    def spawn(self, name: str) -> "RandomStreams":
        """A child factory whose streams are disjoint from the parent's."""
        return RandomStreams(derive_seed(self.root_seed, f"spawn:{name}"))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RandomStreams(root_seed={self.root_seed}, streams={len(self._streams)})"
