"""Named, reproducible random-number streams.

Every stochastic component (each traffic source, the admission
controller's tie-breaks, ...) draws from its own stream, derived from a
root seed and a string name.  Two properties matter for reproduction:

- **Determinism**: the same root seed always produces the same run,
  regardless of the order in which components are constructed.
- **Independence**: streams are seeded through SHA-256 of
  ``(root_seed, name)`` so adding a new component never perturbs the
  draws seen by existing ones (unlike sharing one global ``Random``).
"""

from __future__ import annotations

import hashlib
import random  # simlint: allow-global-random
from typing import Dict

__all__ = ["RandomStream", "RandomStreams", "derive_seed", "local_stream"]

#: The stream type handed out by this module.  Library code annotates
#: against (and constructs through) this alias instead of importing the
#: stdlib ``random`` module directly -- simlint rule SIM001 enforces it.
RandomStream = random.Random


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a 64-bit child seed from a root seed and a stream name."""
    digest = hashlib.sha256(f"{root_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


def local_stream(name: str, root_seed: int = 0) -> RandomStream:
    """A standalone deterministic stream for components constructed
    without access to a :class:`RandomStreams` factory.

    Used for *defaults* (e.g. a :class:`~repro.traffic.cbr.CbrSource`
    built without an explicit ``rng``): the stream is a pure function of
    ``(root_seed, name)``, so identical configurations reproduce
    identical draws, and distinct names never share a sequence the way
    ad-hoc ``Random(0)`` instances would.

    >>> local_stream("a").random() == local_stream("a").random()
    True
    >>> local_stream("a").random() == local_stream("b").random()
    False
    """
    return RandomStream(derive_seed(root_seed, name))


class RandomStreams:
    """Factory of named :class:`random.Random` streams.

    >>> streams = RandomStreams(42)
    >>> a = streams.stream("traffic.control.host0")
    >>> b = streams.stream("traffic.control.host1")
    >>> a is streams.stream("traffic.control.host0")
    True
    """

    def __init__(self, root_seed: int):
        self.root_seed = int(root_seed)
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        rng = self._streams.get(name)
        if rng is None:
            rng = random.Random(derive_seed(self.root_seed, name))
            self._streams[name] = rng
        return rng

    def spawn(self, name: str) -> "RandomStreams":
        """A child factory whose streams are disjoint from the parent's."""
        return RandomStreams(derive_seed(self.root_seed, f"spawn:{name}"))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RandomStreams(root_seed={self.root_seed}, streams={len(self._streams)})"
