"""Coroutine-style processes on top of the event kernel.

The hot simulation paths (switches, links, arbiters) use plain callbacks
for speed, but workload scripts and examples read much better as
sequential processes.  A process is a generator that yields:

- :class:`Delay` -- suspend for a number of nanoseconds;
- :class:`Signal` -- suspend until another process triggers the signal.

Example::

    def producer(eng, sig):
        for i in range(3):
            yield Delay(1000)
            sig.trigger(i)

    def consumer(eng, sig):
        while True:
            value = yield sig
            print(eng.now, value)

    sig = Signal()
    process(eng, producer(eng, sig))
    process(eng, consumer(eng, sig))
    eng.run_all()
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.sim.engine import Engine, SimulationError

__all__ = ["Delay", "Process", "Signal", "process"]


class Delay:
    """Yielded by a process to sleep for ``ns`` nanoseconds."""

    __slots__ = ("ns",)

    def __init__(self, ns: int):
        if ns < 0:
            raise ValueError(f"delay must be >= 0, got {ns}")
        self.ns = ns


class Signal:
    """A broadcast wake-up point.

    Processes yield the signal to wait; :meth:`trigger` wakes *all* current
    waiters, passing them ``value`` as the result of their ``yield``.
    Waiters registered after the trigger wait for the next one (no latching).
    """

    __slots__ = ("_waiters",)

    def __init__(self) -> None:
        self._waiters: list["Process"] = []

    def trigger(self, value: Any = None) -> int:
        """Wake all waiting processes; returns how many were woken."""
        waiters, self._waiters = self._waiters, []
        for proc in waiters:
            proc._resume_soon(value)
        return len(waiters)

    def _wait(self, proc: "Process") -> None:
        self._waiters.append(proc)


class Process:
    """A running generator bound to an engine.  Create via :func:`process`."""

    __slots__ = ("engine", "_gen", "alive", "value", "_done_signal")

    def __init__(self, engine: Engine, gen: Generator[Any, Any, Any]):
        self.engine = engine
        self._gen = gen
        self.alive = True
        #: Return value of the generator once finished.
        self.value: Any = None
        self._done_signal: Optional[Signal] = None

    @property
    def done(self) -> Signal:
        """Signal triggered (with the return value) when the process ends."""
        if self._done_signal is None:
            self._done_signal = Signal()
        return self._done_signal

    def _resume_soon(self, value: Any) -> None:
        self.engine.after(0, self._step, value)

    def _step(self, send_value: Any) -> None:
        if not self.alive:
            return
        try:
            yielded = self._gen.send(send_value)
        except StopIteration as stop:
            self.alive = False
            self.value = stop.value
            if self._done_signal is not None:
                self._done_signal.trigger(stop.value)
            return
        if isinstance(yielded, Delay):
            self.engine.after(yielded.ns, self._step, None)
        elif isinstance(yielded, Signal):
            yielded._wait(self)
        elif isinstance(yielded, Process):
            yielded.done._wait(self)
        else:
            self.alive = False
            raise SimulationError(
                f"process yielded {yielded!r}; expected Delay, Signal, or Process"
            )

    def kill(self) -> None:
        """Stop the process permanently.  Pending wake-ups become no-ops."""
        self.alive = False
        self._gen.close()


def process(engine: Engine, gen: Generator[Any, Any, Any]) -> Process:
    """Start ``gen`` as a process; its first step runs at the current time."""
    proc = Process(engine, gen)
    proc._resume_soon(None)
    return proc
