"""Time and bandwidth units.

The whole library uses **integer nanoseconds** for simulated time and
**bytes** for data quantities.  This choice is deliberate:

- the paper's links run at 8 Gb/s, which is exactly 1 byte per
  nanosecond, so transmission times of whole packets are exact integers;
- integer timestamps make event ordering deterministic and portable
  (no floating-point tie ambiguity between platforms);
- nanosecond resolution is finer than any latency the paper reports
  (microseconds to milliseconds), so no quantization is visible.

Bandwidths are expressed as ``bytes per nanosecond`` (a float; 8 Gb/s ==
1.0 B/ns).  Serialization delays are rounded up to the next nanosecond so
that a busy resource is never freed early.
"""

from __future__ import annotations

import math

#: One microsecond in simulation time units (nanoseconds).
US = 1_000
#: One millisecond in simulation time units.
MS = 1_000_000
#: One second in simulation time units.
S = 1_000_000_000

#: One kibibyte / mebibyte in bytes (buffer and MTU sizes in the paper are
#: powers of two: 2 KB MTU, 8 KB buffer per VC).
KB = 1_024
MB = 1_048_576


def us(n: float) -> int:
    """``n`` microseconds as integer nanoseconds.

    The sanctioned way to build a time quantity from a µs-scale number
    (simlint SIM101 treats these constructors as producing ns).

    >>> us(20)
    20000
    >>> us(0.5)
    500
    """
    return round(n * US)


def ms(n: float) -> int:
    """``n`` milliseconds as integer nanoseconds.

    >>> ms(10)
    10000000
    >>> ms(0.001) == us(1)
    True
    """
    return round(n * MS)


def s(n: float) -> int:
    """``n`` seconds as integer nanoseconds.

    >>> s(1)
    1000000000
    >>> s(2.5) == ms(2500)
    True
    """
    return round(n * S)


def gbps(gigabits_per_second: float) -> float:
    """Convert a link rate in gigabits per second to bytes per nanosecond.

    >>> gbps(8.0)
    1.0
    """
    if gigabits_per_second <= 0:
        raise ValueError(f"link rate must be positive, got {gigabits_per_second}")
    return gigabits_per_second / 8.0


def bps(bytes_per_ns: float) -> int:
    """A ``bytes per nanosecond`` rate as integer **bytes per second**.

    The sanctioned conversion for exact bandwidth *bookkeeping*: sums
    and differences of integer bytes/second are exact, so a ledger that
    adds reservations on admit and subtracts the same converted value on
    release returns to exactly zero -- no drift, no epsilon.  (Float
    ``bytes_per_ns`` stays the unit for *arithmetic* like serialization
    delays; convert at the ledger boundary.)

    >>> bps(gbps(8.0))
    1000000000
    >>> bps(0.6) + bps(0.4) == bps(1.0)
    True
    """
    return round(bytes_per_ns * S)


def serialization_ns(size_bytes: int, bytes_per_ns: float) -> int:
    """Time to clock ``size_bytes`` onto a link of the given rate.

    Rounded up to a whole nanosecond so resources are never released
    before the last byte has left.

    >>> serialization_ns(2048, gbps(8.0))
    2048
    """
    if size_bytes < 0:
        raise ValueError(f"size must be non-negative, got {size_bytes}")
    if bytes_per_ns <= 0:
        raise ValueError(f"bandwidth must be positive, got {bytes_per_ns}")
    return math.ceil(size_bytes / bytes_per_ns)


def bytes_per_ns_to_gbps(bytes_per_ns: float) -> float:
    """Inverse of :func:`gbps`, for reporting."""
    return bytes_per_ns * 8.0


def ns_to_us(ns: float) -> float:
    """Nanoseconds to microseconds (for human-facing reports)."""
    return ns / US


def ns_to_ms(ns: float) -> float:
    """Nanoseconds to milliseconds (for human-facing reports)."""
    return ns / MS
