"""Discrete-event simulation substrate.

This package implements the event-driven simulation kernel that the rest
of the library runs on.  The paper's evaluation is simulation-only, so the
kernel's semantics (integer-nanosecond timestamps, deterministic FIFO
tie-breaking, explicit random-number streams) are the foundation of every
reproduced figure.

Public surface:

- :class:`~repro.sim.engine.Engine` -- the event loop (timing wheel).
- :class:`~repro.sim.engine.EventHandle` -- cancellable scheduled callback.
- :class:`~repro.sim.heap_engine.HeapEngine` -- the binary-heap reference
  engine kept for differential testing against the wheel.
- :class:`~repro.sim.process.Process` / :func:`~repro.sim.process.process`
  -- optional coroutine-style processes layered on top of the engine.
- :class:`~repro.sim.rng.RandomStreams` -- named, reproducible RNG streams.
- :mod:`~repro.sim.units` -- time and bandwidth unit helpers.
- :class:`~repro.sim.monitor.Trace` -- structured event tracing.
"""

from repro.sim.engine import Engine, EventHandle, SimulationError
from repro.sim.heap_engine import HeapEngine
from repro.sim.monitor import NullTrace, Trace, TraceRecord
from repro.sim.process import Delay, Process, Signal, process
from repro.sim.rng import RandomStreams, derive_seed
from repro.sim import units

__all__ = [
    "Delay",
    "Engine",
    "EventHandle",
    "HeapEngine",
    "NullTrace",
    "Process",
    "RandomStreams",
    "Signal",
    "SimulationError",
    "Trace",
    "TraceRecord",
    "derive_seed",
    "process",
    "units",
]
