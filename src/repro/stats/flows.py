"""Per-flow statistics.

The paper's per-flow QoS claim ("we can guarantee minimum bandwidth if
we are careful assigning weights") is about *individual* flows, not class
aggregates, so the harness needs a per-flow view: latency and delivered
throughput per flow id, plus "worst flows" queries -- the per-flow
fairness tests check that no admitted flow is starved while the class
aggregate looks healthy.

Memory note: per-flow state is a small fixed record per flow (tens of
thousands of flows at paper scale is fine); latency keeps streaming
moments only, no reservoirs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.network.packet import Packet
from repro.stats.running import RunningStats

__all__ = ["FlowStats", "PerFlowCollector"]


@dataclass
class FlowStats:
    """Delivered traffic of one flow."""

    flow_id: int
    tclass: str
    src: int
    dst: int
    packets: int = 0
    bytes: int = 0
    latency: RunningStats = field(default_factory=RunningStats)
    first_delivery_ns: Optional[int] = None
    last_delivery_ns: Optional[int] = None

    def observe(self, pkt: Packet, now: int) -> None:
        self.packets += 1
        self.bytes += pkt.size
        self.latency.add(now - pkt.birth)
        if self.first_delivery_ns is None:
            self.first_delivery_ns = now
        self.last_delivery_ns = now

    def throughput_bytes_per_ns(self, window_ns: int) -> float:
        return self.bytes / window_ns if window_ns > 0 else 0.0


class PerFlowCollector:
    """Tracks every flow's delivered latency/throughput.

    Subscribe to a fabric like the class-level collector::

        flows = PerFlowCollector(warmup_ns=...)
        fabric.subscribe_delivery(flows.on_delivery)
    """

    def __init__(self, warmup_ns: int = 0):
        if warmup_ns < 0:
            raise ValueError(f"warmup must be >= 0, got {warmup_ns}")
        self.warmup_ns = warmup_ns
        self.flows: Dict[int, FlowStats] = {}

    def on_delivery(self, pkt: Packet, now: int) -> None:
        if pkt.birth < self.warmup_ns:
            return
        stats = self.flows.get(pkt.flow_id)
        if stats is None:
            # Per-flow stats ARE the report: every flow's row must
            # survive to the end of the run, so retention is the point.
            stats = self.flows[pkt.flow_id] = FlowStats(  # simlint: allow-unbounded-keyed-growth
                pkt.flow_id, pkt.tclass, pkt.src, pkt.dst
            )
        stats.observe(pkt, now)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.flows)

    def get(self, flow_id: int) -> FlowStats:
        return self.flows[flow_id]

    def by_class(self, tclass: str) -> List[FlowStats]:
        return [f for f in self.flows.values() if f.tclass == tclass]

    def worst_by_latency(self, n: int = 10, tclass: Optional[str] = None) -> List[FlowStats]:
        """The n flows with the highest mean latency."""
        pool = self.by_class(tclass) if tclass else list(self.flows.values())
        return sorted(pool, key=lambda f: f.latency.mean, reverse=True)[:n]

    def throughput_spread(self, tclass: str, window_ns: int) -> Tuple[float, float, float]:
        """(min, mean, max) per-flow throughput of a class -- the fairness
        view: a healthy class aggregate with min ~ 0 means starvation."""
        flows = self.by_class(tclass)
        if not flows:
            return (0.0, 0.0, 0.0)
        rates = [f.throughput_bytes_per_ns(window_ns) for f in flows]
        return (min(rates), sum(rates) / len(rates), max(rates))
