"""Fixed-width text tables for experiment output.

The benchmark harness prints the same rows/series the paper's figures
plot; this module owns the formatting so every bench and example reports
consistently.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

__all__ = ["format_table", "format_row"]


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def format_row(cells: Sequence, widths: Sequence[int]) -> str:
    parts = []
    for cell, width in zip(cells, widths):
        text = _fmt(cell)
        parts.append(text.rjust(width) if _is_numeric(cell) else text.ljust(width))
    return "  ".join(parts).rstrip()


def _is_numeric(cell) -> bool:
    return isinstance(cell, (int, float)) and not isinstance(cell, bool)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    title: str = "",
) -> str:
    """Render a simple aligned table.

    >>> print(format_table(["arch", "lat"], [["ideal", 1.5], ["simple", 2.0]]))
    arch    lat
    ------  ---
    ideal   1.5
    simple    2
    """
    materialized: List[Sequence] = [list(r) for r in rows]
    widths = [len(h) for h in headers]
    rendered_rows = []
    for row in materialized:
        rendered = [_fmt(c) for c in row]
        rendered_rows.append((row, rendered))
        for i, text in enumerate(rendered):
            if i < len(widths):
                widths[i] = max(widths[i], len(text))
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(format_row(headers, widths))
    lines.append("  ".join("-" * w for w in widths))
    for row, _ in rendered_rows:
        lines.append(format_row(row, widths))
    return "\n".join(lines)
