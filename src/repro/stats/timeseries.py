"""Windowed time series of delivered traffic.

The aggregate collectors answer "what was the QoS over the window"; the
time series answers *when* -- ramp-up, convergence to steady state, and
transient congestion all show up as bucketed throughput/latency curves.
The experiment runner's warm-up length was chosen by looking at exactly
these curves (and the steady-state tests assert them).

Buckets are fixed-width in time; each records delivered bytes/packets
and a latency accumulator.  Memory is O(horizon / bucket).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.network.packet import Packet
from repro.stats.running import RunningStats

__all__ = ["DeliveryTimeSeries", "GaugeTimeSeries"]


class _Bucket:
    __slots__ = ("bytes", "packets", "latency")

    def __init__(self) -> None:
        self.bytes = 0
        self.packets = 0
        self.latency = RunningStats()


class GaugeTimeSeries:
    """Heartbeat samples of named gauges over simulated time.

    :class:`repro.obs.telemetry.RunTelemetry` appends one row per
    heartbeat: ``(sim time ns, {gauge name: value})``.  Unlike
    :class:`DeliveryTimeSeries` the sampling grid is driven by the
    telemetry timer, not by deliveries, so rows are evenly spaced even
    through dead air (which is exactly when a stalled fabric is most
    interesting to look at).

    ``capacity`` bounds the row count: once full, each new row evicts
    the oldest (keep-newest, matching the trace ring's semantics) and
    increments :attr:`dropped`.  The default is unbounded for
    short-horizon runs; long-horizon/scale runs should set it so the
    heartbeat log stays O(capacity) instead of O(run length).
    """

    def __init__(self, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.dropped = 0
        self.samples: Deque[Tuple[int, Dict[str, float]]] = deque(
            maxlen=capacity
        )

    def append(self, t_ns: int, values: Dict[str, float]) -> None:
        if self.capacity is not None and len(self.samples) == self.capacity:
            self.dropped += 1
        self.samples.append((t_ns, dict(values)))

    def __len__(self) -> int:
        return len(self.samples)

    def names(self) -> List[str]:
        seen: Dict[str, None] = {}
        for _, values in self.samples:
            for name in values:
                seen[name] = None
        return sorted(seen)

    def series(self, name: str) -> List[Tuple[int, float]]:
        """(sim time ns, value) pairs for one gauge, skipping absent rows."""
        return [(t, row[name]) for t, row in self.samples if name in row]

    def latest(self, name: str) -> Optional[float]:
        for t, row in reversed(self.samples):
            if name in row:
                return row[name]
        return None

    def to_dict(self) -> dict:
        return {
            "samples": [
                {"t_ns": t, "values": dict(sorted(row.items()))}
                for t, row in self.samples
            ],
            "capacity": self.capacity,
            "dropped": self.dropped,
        }


class DeliveryTimeSeries:
    """Per-class bucketed delivery curves.  Subscribe like a collector::

        series = DeliveryTimeSeries(bucket_ns=100_000)
        fabric.subscribe_delivery(series.on_delivery)
    """

    def __init__(self, bucket_ns: int, *, classes: Optional[Tuple[str, ...]] = None):
        if bucket_ns <= 0:
            raise ValueError(f"bucket width must be positive, got {bucket_ns}")
        self.bucket_ns = bucket_ns
        self._filter = set(classes) if classes is not None else None
        self._buckets: Dict[str, Dict[int, _Bucket]] = {}

    def on_delivery(self, pkt: Packet, now: int) -> None:
        if self._filter is not None and pkt.tclass not in self._filter:
            return
        per_class = self._buckets.setdefault(pkt.tclass, {})
        index = now // self.bucket_ns
        bucket = per_class.get(index)
        if bucket is None:
            bucket = per_class[index] = _Bucket()
        bucket.bytes += pkt.size
        bucket.packets += 1
        bucket.latency.add(now - pkt.birth)

    # ------------------------------------------------------------------
    def classes(self) -> List[str]:
        return sorted(self._buckets)

    def throughput_curve(self, tclass: str) -> List[Tuple[int, float]]:
        """(bucket start ns, delivered bytes/ns) pairs, gaps filled with 0."""
        per_class = self._buckets.get(tclass, {})
        if not per_class:
            return []
        lo, hi = min(per_class), max(per_class)
        return [
            (
                index * self.bucket_ns,
                per_class[index].bytes / self.bucket_ns if index in per_class else 0.0,
            )
            for index in range(lo, hi + 1)
        ]

    def latency_curve(self, tclass: str) -> List[Tuple[int, float]]:
        """(bucket start ns, mean latency ns) for buckets with deliveries."""
        per_class = self._buckets.get(tclass, {})
        return [
            (index * self.bucket_ns, bucket.latency.mean)
            for index, bucket in sorted(per_class.items())
        ]

    def steady_state_start(self, tclass: str, *, tolerance: float = 0.25) -> Optional[int]:
        """First bucket from which throughput stays within ``tolerance`` of
        the remaining buckets' mean -- a simple convergence detector used
        to sanity-check warm-up lengths."""
        curve = self.throughput_curve(tclass)
        if len(curve) < 3:
            return None
        values = [v for _, v in curve]
        for start in range(len(values) - 2):
            tail = values[start:]
            mean = sum(tail) / len(tail)
            if mean == 0:
                continue
            if all(abs(v - mean) <= tolerance * mean for v in tail):
                return curve[start][0]
        return None
