"""Uniform reservoir sampling (Vitter's algorithm R).

Latency CDFs at 100% load would otherwise require storing one float per
delivered packet -- hundreds of millions in a full run.  A reservoir of a
few tens of thousands of samples pins the empirical quantiles to well
under a percent while keeping memory flat.

The reservoir uses its own private stream (derived via
:func:`repro.sim.rng.local_stream`) so sampling decisions never perturb
the simulation's RNG streams (determinism of runs must not depend on
whether metrics are collected).
"""

from __future__ import annotations

from typing import List

from repro.sim.rng import local_stream

__all__ = ["Reservoir"]


class Reservoir:
    """Keep a uniform sample of at most ``capacity`` items from a stream."""

    __slots__ = ("capacity", "items", "seen", "_rng")

    def __init__(self, capacity: int = 50_000, seed: int = 0x5EED):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.items: List[float] = []
        self.seen = 0
        self._rng = local_stream("stats.reservoir", seed)

    def add(self, x: float) -> None:
        self.seen += 1
        if len(self.items) < self.capacity:
            self.items.append(x)
        else:
            slot = self._rng.randrange(self.seen)
            if slot < self.capacity:
                self.items[slot] = x

    def __len__(self) -> int:
        return len(self.items)

    @property
    def is_exact(self) -> bool:
        """True while nothing has been evicted (sample == full stream)."""
        return self.seen == len(self.items)
