"""Empirical cumulative distribution function.

Figure 2 and Figure 3 of the paper plot the CDF of (packet / frame)
latency at full input load; :class:`EmpiricalCDF` provides the two
queries those plots need: quantiles (for percentile tables) and
``P(X <= x)`` (for "more than 99% of frames within 10 +/- 1 ms" style
claims).
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Iterable, List, Sequence, Tuple

__all__ = ["EmpiricalCDF"]


class EmpiricalCDF:
    """CDF of a finite sample (e.g. a :class:`~repro.stats.reservoir.Reservoir`)."""

    __slots__ = ("values",)

    def __init__(self, samples: Iterable[float]):
        self.values: List[float] = sorted(samples)
        if not self.values:
            raise ValueError("cannot build a CDF from an empty sample")

    def __len__(self) -> int:
        return len(self.values)

    def prob_leq(self, x: float) -> float:
        """P(X <= x)."""
        return bisect_right(self.values, x) / len(self.values)

    def quantile(self, q: float) -> float:
        """The q-quantile, 0 <= q <= 1, by the nearest-rank method."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if q == 0.0:
            return self.values[0]
        rank = max(1, -(-q * len(self.values) // 1))  # ceil(q * n)
        return self.values[int(rank) - 1]

    @property
    def min(self) -> float:
        return self.values[0]

    @property
    def max(self) -> float:
        return self.values[-1]

    def curve(self, points: int = 100) -> List[Tuple[float, float]]:
        """(x, P(X <= x)) pairs for plotting/printing the CDF shape."""
        if points < 2:
            raise ValueError(f"need at least 2 points, got {points}")
        n = len(self.values)
        out: List[Tuple[float, float]] = []
        for i in range(points):
            index = min(n - 1, round(i * (n - 1) / (points - 1)))
            out.append((self.values[index], (index + 1) / n))
        return out
