"""Per-class QoS metrics collection.

A :class:`MetricsCollector` subscribes to a fabric's packet deliveries
and maintains, per traffic class:

- **packet latency** (birth at the source NIC -> full delivery), mean /
  extrema via :class:`RunningStats` and a reservoir for the CDF;
- **message ("frame") latency**: messages are reassembled by
  ``(flow_id, msg_id)``; latency is birth -> delivery of the *last*
  packet of the message.  For multimedia this is the video-frame latency
  Figure 3 reports;
- **inter-frame jitter**: mean absolute difference between consecutive
  frame latencies of the same flow (and the latency std as a second
  jitter view);
- **delivered throughput** within the measurement window.

Warm-up handling: packets *born* before ``warmup_ns`` are excluded from
latency and jitter statistics entirely (their queueing reflects the
cold-start transient), while throughput counts every byte *delivered*
inside the window ``[warmup_ns, finalize time]`` regardless of birth
time -- in steady state the packets delivered after the window closes
are balanced by old ones delivered just inside it, so this estimator is
unbiased even for classes with large intentional latency (video's 10 ms
target would otherwise clip ~target/window of the measured throughput).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.network.packet import Packet
from repro.stats.cdf import EmpiricalCDF
from repro.stats.reservoir import Reservoir
from repro.stats.running import RunningStats

__all__ = ["ClassStats", "MetricsCollector"]


class ClassStats:
    """Accumulated metrics for one traffic class."""

    __slots__ = (
        "tclass",
        "packet_latency",
        "packet_reservoir",
        "message_latency",
        "message_reservoir",
        "jitter",
        "packets",
        "bytes",
        "messages",
        "_open_messages",
        "_last_message_latency",
    )

    def __init__(self, tclass: str, reservoir_capacity: int = 50_000):
        self.tclass = tclass
        self.packet_latency = RunningStats()
        self.packet_reservoir = Reservoir(reservoir_capacity)
        self.message_latency = RunningStats()
        self.message_reservoir = Reservoir(reservoir_capacity)
        #: mean |latency_i - latency_{i-1}| over consecutive frames per flow
        self.jitter = RunningStats()
        self.packets = 0
        self.bytes = 0
        self.messages = 0
        #: (flow_id, msg_id) -> [birth, parts_remaining]
        self._open_messages: Dict[Tuple[int, int], list] = {}
        self._last_message_latency: Dict[int, float] = {}

    def record_throughput(self, pkt: Packet) -> None:
        self.packets += 1
        self.bytes += pkt.size

    def record(self, pkt: Packet, now: int) -> None:
        latency = now - pkt.birth
        self.packet_latency.add(latency)
        self.packet_reservoir.add(latency)

        key = (pkt.flow_id, pkt.msg_id)
        entry = self._open_messages.get(key)
        if entry is None:
            if pkt.msg_parts == 1:
                self._complete_message(pkt.flow_id, pkt.birth, now)
                return
            entry = [pkt.birth, pkt.msg_parts]
            self._open_messages[key] = entry
        entry[1] -= 1
        if entry[1] == 0:
            del self._open_messages[key]
            self._complete_message(pkt.flow_id, entry[0], now)

    def _complete_message(self, flow_id: int, birth: int, now: int) -> None:
        latency = now - birth
        self.messages += 1
        self.message_latency.add(latency)
        self.message_reservoir.add(latency)
        previous = self._last_message_latency.get(flow_id)
        if previous is not None:
            self.jitter.add(abs(latency - previous))
        self._last_message_latency[flow_id] = latency

    def forget_flow(self, flow_id: int) -> None:
        """Drop the per-flow jitter anchor for a closed flow.

        Pairs with :meth:`repro.core.flow.FlowRegistry.close`: churny
        scale runs retire flows as they finish, keeping this map
        O(live flows) instead of O(flows ever seen).
        """
        self._last_message_latency.pop(flow_id, None)

    # ------------------------------------------------------------------
    def packet_cdf(self) -> EmpiricalCDF:
        return EmpiricalCDF(self.packet_reservoir.items)

    def message_cdf(self) -> EmpiricalCDF:
        return EmpiricalCDF(self.message_reservoir.items)

    def throughput_bytes_per_ns(self, window_ns: int) -> float:
        if window_ns <= 0:
            return 0.0
        return self.bytes / window_ns


class MetricsCollector:
    """Fabric-wide per-class metrics with a warm-up cutoff.

    Use as::

        collector = MetricsCollector(warmup_ns=200_000)
        fabric.subscribe_delivery(collector.on_delivery)
        ... run ...
        collector.finalize(fabric.engine.now)
    """

    def __init__(self, warmup_ns: int = 0, reservoir_capacity: int = 50_000):
        if warmup_ns < 0:
            raise ValueError(f"warmup must be >= 0, got {warmup_ns}")
        self.warmup_ns = warmup_ns
        self.reservoir_capacity = reservoir_capacity
        self.classes: Dict[str, ClassStats] = {}
        self.end_ns: Optional[int] = None
        self.dropped_warmup = 0

    def on_delivery(self, pkt: Packet, now: int) -> None:
        stats = self.classes.get(pkt.tclass)
        if stats is None:
            stats = self.classes[pkt.tclass] = ClassStats(
                pkt.tclass, self.reservoir_capacity
            )
        if now >= self.warmup_ns:
            stats.record_throughput(pkt)
        if pkt.birth < self.warmup_ns:
            self.dropped_warmup += 1
            return
        stats.record(pkt, now)

    def finalize(self, now: int) -> None:
        """Mark the end of the measurement window."""
        self.end_ns = now

    @property
    def window_ns(self) -> int:
        if self.end_ns is None:
            raise RuntimeError("call finalize(now) before reading throughput")
        return self.end_ns - self.warmup_ns

    def throughput(self, tclass: str) -> float:
        """Delivered bytes/ns of one class over the measurement window."""
        stats = self.classes.get(tclass)
        if stats is None:
            return 0.0
        return stats.throughput_bytes_per_ns(self.window_ns)

    def get(self, tclass: str) -> ClassStats:
        try:
            return self.classes[tclass]
        except KeyError:
            known = ", ".join(sorted(self.classes)) or "(none)"
            raise KeyError(
                f"no deliveries recorded for class {tclass!r}; classes seen: {known}"
            ) from None
