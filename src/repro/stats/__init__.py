"""Metrics substrate: the three QoS indices of Section 5.

The paper evaluates *throughput*, *latency*, and *jitter* (packet loss is
structurally zero under credit flow control -- a property the integration
tests assert rather than measure).  Latency for multimedia is per video
*frame* (full transfer), not per packet; Figure 2/3 also show the
cumulative distribution function of latency at saturation.

- :class:`~repro.stats.running.RunningStats` -- streaming mean/std/extrema
  (Welford), O(1) memory.
- :class:`~repro.stats.reservoir.Reservoir` -- uniform sample of a stream,
  for CDFs/percentiles without storing every packet.
- :class:`~repro.stats.cdf.EmpiricalCDF` -- quantiles and P(X <= x).
- :class:`~repro.stats.collectors.MetricsCollector` -- subscribes to a
  fabric's deliveries; tracks per-class packet latency, frame (message)
  latency, inter-frame jitter, and delivered throughput, with a warm-up
  cutoff.
- :mod:`~repro.stats.report` -- fixed-width text tables in the shape of
  the paper's figures.
"""

from repro.stats.cdf import EmpiricalCDF
from repro.stats.collectors import ClassStats, MetricsCollector
from repro.stats.flows import FlowStats, PerFlowCollector
from repro.stats.report import format_row, format_table
from repro.stats.reservoir import Reservoir
from repro.stats.running import RunningStats
from repro.stats.timeseries import DeliveryTimeSeries, GaugeTimeSeries

__all__ = [
    "ClassStats",
    "DeliveryTimeSeries",
    "EmpiricalCDF",
    "FlowStats",
    "GaugeTimeSeries",
    "MetricsCollector",
    "PerFlowCollector",
    "Reservoir",
    "RunningStats",
    "format_row",
    "format_table",
]
