"""Streaming first/second-moment accumulator (Welford's algorithm).

O(1) memory per metric; numerically stable for the long streams a
saturated 128-host run produces (hundreds of millions of samples would
overflow a naive sum-of-squares in float64 precision terms).
"""

from __future__ import annotations

import math

__all__ = ["RunningStats"]


class RunningStats:
    """Count, mean, variance, min and max of a stream of numbers."""

    __slots__ = ("count", "mean", "_m2", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0
        self._m2 = 0.0
        self.min = math.inf
        self.max = -math.inf

    def add(self, x: float) -> None:
        self.count += 1
        delta = x - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (x - self.mean)
        if x < self.min:
            self.min = x
        if x > self.max:
            self.max = x

    @property
    def variance(self) -> float:
        """Population variance (0 for fewer than two samples)."""
        return self._m2 / self.count if self.count > 1 else 0.0

    @property
    def std(self) -> float:
        return math.sqrt(self.variance)

    def merge(self, other: "RunningStats") -> "RunningStats":
        """Combine two accumulators (parallel-run reduction)."""
        merged = RunningStats()
        total = self.count + other.count
        if total == 0:
            return merged
        merged.count = total
        delta = other.mean - self.mean
        merged.mean = self.mean + delta * other.count / total
        merged._m2 = self._m2 + other._m2 + delta * delta * self.count * other.count / total
        merged.min = min(self.min, other.min)
        merged.max = max(self.max, other.max)
        return merged

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.count == 0:
            return "RunningStats(empty)"
        return (
            f"RunningStats(n={self.count}, mean={self.mean:.3f}, "
            f"std={self.std:.3f}, min={self.min:.3f}, max={self.max:.3f})"
        )
