"""Link-utilization analysis: where the bytes actually flowed.

Every link counts the packets/bytes it carried; this module turns those
counters into the views a network operator (or a reviewer checking the
admission controller's load balancing) wants:

- utilization per link over a window,
- aggregate utilization per *tier* (host injection, host delivery,
  leaf->spine, spine->leaf),
- the hotspots (most-loaded links), and
- a balance index for the spine layer -- if admission's water-filling
  works, parallel uplinks should carry near-equal load (Jain's fairness
  index, from the methodology book the paper cites).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.network.fabric import Fabric

__all__ = ["LinkLoad", "UtilizationReport", "measure_utilization"]


@dataclass(frozen=True)
class LinkLoad:
    src: str
    dst: str
    bytes: int
    packets: int
    utilization: float  # fraction of the link's capacity over the window

    @property
    def tier(self) -> str:
        if self.src.startswith("h"):
            return "host-up"
        if self.dst.startswith("h"):
            return "host-down"
        # switch-to-switch: ascending stage = up
        src_level = int(self.src.split(".")[0][2:])
        dst_level = int(self.dst.split(".")[0][2:])
        return "fabric-up" if dst_level > src_level else "fabric-down"


@dataclass
class UtilizationReport:
    window_ns: int
    links: List[LinkLoad]

    def by_tier(self) -> Dict[str, float]:
        """Mean utilization per tier."""
        tiers: Dict[str, List[float]] = {}
        for load in self.links:
            tiers.setdefault(load.tier, []).append(load.utilization)
        return {tier: sum(vals) / len(vals) for tier, vals in tiers.items()}

    def hotspots(self, n: int = 5) -> List[LinkLoad]:
        return sorted(self.links, key=lambda l: l.utilization, reverse=True)[:n]

    def fairness_index(self, tier: str = "fabric-up") -> float:
        """Jain's fairness index over a tier's utilizations: 1.0 = all
        parallel links equally loaded, 1/n = all load on one link."""
        values = [l.utilization for l in self.links if l.tier == tier]
        if not values or sum(values) == 0:
            return 1.0
        return sum(values) ** 2 / (len(values) * sum(v * v for v in values))

    def table(self, n_hotspots: int = 5) -> str:
        from repro.stats.report import format_table

        rows = [
            [f"{l.src}->{l.dst}", l.tier, l.packets, f"{l.utilization:.1%}"]
            for l in self.hotspots(n_hotspots)
        ]
        text = format_table(
            ["link", "tier", "packets", "utilization"],
            rows,
            title=f"Hottest links over {self.window_ns / 1e3:.0f} us",
        )
        tier_rows = [[t, f"{u:.1%}"] for t, u in sorted(self.by_tier().items())]
        text += "\n\n" + format_table(["tier", "mean utilization"], tier_rows)
        return text


def measure_utilization(fabric: Fabric, window_ns: int) -> UtilizationReport:
    """Snapshot the fabric's link counters as a utilization report.

    ``window_ns`` is the elapsed time the counters cover (counters start
    at fabric construction; to measure a sub-window, snapshot twice and
    subtract, or just use the full run).
    """
    if window_ns <= 0:
        raise ValueError(f"window must be positive, got {window_ns}")
    capacity = fabric.params.bytes_per_ns * window_ns
    links = [
        LinkLoad(
            src=link.src,
            dst=link.dst,
            bytes=link.bytes_carried,
            packets=link.packets_carried,
            utilization=link.bytes_carried / capacity,
        )
        for link in fabric.links.values()
    ]
    return UtilizationReport(window_ns=window_ns, links=links)
