"""Latency decomposition: where does each class's time actually go?

End-to-end latency in this system is the sum of three very different
stages, and the paper's mechanisms each act on a different one:

- **source holding** (birth -> injection): eligible-time smoothing *on
  purpose* parks multimedia here; for control it should be ~zero, and
  growth here means the host's injection queue or its credit loop is the
  bottleneck;
- **network** (injection -> delivery): switch queueing + serialization;
  order errors and arbitration quality live here;
- for messages, **reassembly spread** (first packet's delivery -> last
  packet's delivery): how much a frame is smeared across the wire.

A :class:`LatencyBreakdown` collector splits per-class latency along
those seams.  This is the tool that diagnosed the credit-loop bottleneck
during development (see docs/ARCHITECTURE.md section 4); it ships
because downstream users will need the same X-ray.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.network.packet import Packet
from repro.stats.running import RunningStats

__all__ = ["ClassBreakdown", "LatencyBreakdown"]


class ClassBreakdown:
    """Per-class stage accumulators."""

    __slots__ = ("tclass", "source_hold", "network", "message_spread", "_first_part")

    def __init__(self, tclass: str):
        self.tclass = tclass
        #: birth -> injection (NIC queueing + intentional smoothing)
        self.source_hold = RunningStats()
        #: injection -> delivery (switch queueing + wires)
        self.network = RunningStats()
        #: first-part delivery -> last-part delivery per message
        self.message_spread = RunningStats()
        self._first_part: Dict[Tuple[int, int], list] = {}

    def record(self, pkt: Packet, now: int) -> None:
        if pkt.inject is not None:
            self.source_hold.add(pkt.inject - pkt.birth)
            self.network.add(now - pkt.inject)
        if pkt.msg_parts > 1:
            key = (pkt.flow_id, pkt.msg_id)
            entry = self._first_part.get(key)
            if entry is None:
                self._first_part[key] = [now, pkt.msg_parts - 1]
            else:
                entry[1] -= 1
                if entry[1] == 0:
                    first_delivery, _ = self._first_part.pop(key)
                    self.message_spread.add(now - first_delivery)


class LatencyBreakdown:
    """Fabric-wide per-class latency decomposition.

    Subscribe like any collector::

        breakdown = LatencyBreakdown(warmup_ns=...)
        fabric.subscribe_delivery(breakdown.on_delivery)
        ... run ...
        print(breakdown.table())
    """

    def __init__(self, warmup_ns: int = 0):
        if warmup_ns < 0:
            raise ValueError(f"warmup must be >= 0, got {warmup_ns}")
        self.warmup_ns = warmup_ns
        self.classes: Dict[str, ClassBreakdown] = {}

    def on_delivery(self, pkt: Packet, now: int) -> None:
        if pkt.birth < self.warmup_ns:
            return
        entry = self.classes.get(pkt.tclass)
        if entry is None:
            entry = self.classes[pkt.tclass] = ClassBreakdown(pkt.tclass)
        entry.record(pkt, now)

    def get(self, tclass: str) -> ClassBreakdown:
        try:
            return self.classes[tclass]
        except KeyError:
            known = ", ".join(sorted(self.classes)) or "(none)"
            raise KeyError(f"no class {tclass!r}; seen: {known}") from None

    def dominant_stage(self, tclass: str) -> str:
        """Which stage contributes most to this class's mean latency."""
        entry = self.get(tclass)
        stages = {
            "source-hold": entry.source_hold.mean if entry.source_hold.count else 0.0,
            "network": entry.network.mean if entry.network.count else 0.0,
        }
        return max(stages, key=stages.get)  # type: ignore[arg-type]

    def table(self) -> str:
        from repro.stats.report import format_table

        rows = []
        for tclass in sorted(self.classes):
            entry = self.classes[tclass]
            rows.append(
                [
                    tclass,
                    entry.source_hold.count,
                    entry.source_hold.mean / 1e3 if entry.source_hold.count else 0.0,
                    entry.network.mean / 1e3 if entry.network.count else 0.0,
                    (
                        entry.message_spread.mean / 1e3
                        if entry.message_spread.count
                        else 0.0
                    ),
                ]
            )
        return format_table(
            [
                "class",
                "packets",
                "source hold (us)",
                "network (us)",
                "msg spread (us)",
            ],
            rows,
            title="Latency breakdown",
        )
