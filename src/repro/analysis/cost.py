"""Scheduling-cost instrumentation (the Section 2.2 / Section 6 argument).

Two views of "cost":

**Dynamic** -- comparator operations actually performed per forwarded
packet.  We wrap each architecture's queue and picker factories with
counting shims; the comparator counts per operation follow the hardware
each structure implies:

- FIFO: enqueue/dequeue touch no deadlines (0 comparisons);
- ordered/take-over pair: 1 tag comparison on enqueue (against L's
  tail) and 1 on dequeue (between the two heads);
- EDF heap: ceil(log2(n+1)) comparisons per insert/extract -- what a
  pipelined-heap implementation (Ioannou & Katevenis [9]) performs per
  stage across its pipeline;
- EDF head arbiter over k candidate queues: k-1 comparisons per grant;
  a round-robin arbiter does none (priority encoding, not comparison).

**Static** -- the hardware inventory per switch port: number of FIFO
memories, whether a sorting network/heap is needed, comparator count in
the arbiter.  This is the like-for-like silicon argument the paper's
conclusion makes ("for similar cost ... much better performance").
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.core.arbiter import EDFPicker, Picker
from repro.core.architectures import Architecture
from repro.core.queues import (
    EDFHeapQueue,
    PacketQueue,
    PipelinedHeapQueue,
    TakeOverQueue,
)

__all__ = [
    "CostCounters",
    "CostReport",
    "HardwareInventory",
    "instrument_architecture",
    "measure_scheduling_cost",
    "static_inventory",
]


@dataclass
class CostCounters:
    """Aggregated operation counts for one instrumented run."""

    queue_pushes: int = 0
    queue_pops: int = 0
    queue_comparisons: int = 0
    arbiter_picks: int = 0
    arbiter_comparisons: int = 0

    @property
    def total_comparisons(self) -> int:
        return self.queue_comparisons + self.arbiter_comparisons

    def per_packet(self, packets: int) -> float:
        return self.total_comparisons / packets if packets else 0.0


def _queue_comparisons(queue: PacketQueue, op: str) -> int:
    """Comparator cost of one push/pop on the given structure.

    Custom queue classes can declare a fixed per-operation cost via a
    ``COMPARISONS_PER_OP`` class attribute (see
    ``examples/evaluate_custom_design.py``); the built-ins are priced
    here.
    """
    declared = getattr(queue, "COMPARISONS_PER_OP", None)
    if declared is not None:
        return declared
    if isinstance(queue, TakeOverQueue):
        return 1  # tail check on push; two-head min on pop
    if isinstance(queue, (EDFHeapQueue, PipelinedHeapQueue)):
        # Heap path length; the pipelined-heap hardware pays this in
        # pipeline stages, software in actual comparisons.
        return max(1, math.ceil(math.log2(len(queue) + 2)))
    return 0  # plain FIFO


class _CountingQueue(PacketQueue):
    """Delegating shim that tallies operations into shared counters."""

    __slots__ = ("inner", "counters")

    def __init__(self, inner: PacketQueue, counters: CostCounters):
        super().__init__(None)
        self.inner = inner
        self.counters = counters

    def push(self, pkt) -> None:
        self.counters.queue_pushes += 1
        self.counters.queue_comparisons += _queue_comparisons(self.inner, "push")
        self.inner.push(pkt)

    def pop(self):
        self.counters.queue_pops += 1
        self.counters.queue_comparisons += _queue_comparisons(self.inner, "pop")
        return self.inner.pop()

    def head(self):
        return self.inner.head()

    def __len__(self) -> int:
        return len(self.inner)

    def __iter__(self):
        return iter(self.inner)

    @property
    def used_bytes(self):  # type: ignore[override]
        return self.inner.used_bytes

    @used_bytes.setter
    def used_bytes(self, value):  # the base __init__ writes this once
        pass


class _CountingPicker(Picker):
    __slots__ = ("inner", "counters")

    def __init__(self, inner: Picker, counters: CostCounters):
        self.inner = inner
        self.counters = counters

    def pick(self, queues, sendable=None):
        self.counters.arbiter_picks += 1
        if isinstance(self.inner, EDFPicker):
            live = sum(1 for q in queues if q.head() is not None)
            self.counters.arbiter_comparisons += max(0, live - 1)
        return self.inner.pick(queues, sendable)

    def granted(self, index: int) -> None:
        self.inner.granted(index)


def instrument_architecture(base: Architecture) -> tuple[Architecture, CostCounters]:
    """A clone of ``base`` whose queues/pickers tally into shared counters."""
    counters = CostCounters()
    instrumented = replace(
        base,
        name=f"{base.name}+counting",
        queue_factory=lambda cap: _CountingQueue(base.queue_factory(cap), counters),
        picker_factory=lambda: _CountingPicker(base.picker_factory(), counters),
    )
    return instrumented, counters


# ----------------------------------------------------------------------
@dataclass(frozen=True)
class HardwareInventory:
    """Static per-port hardware implied by an architecture (2 VCs)."""

    fifo_memories: int
    needs_sorting_hardware: bool
    arbiter_comparators_per_port: int
    per_flow_state: bool = False  # never, for any of the paper's designs


def static_inventory(architecture: Architecture, radix: int) -> HardwareInventory:
    """What one output port's scheduling logic needs at the given radix."""
    queue = architecture.queue_factory(None)
    if isinstance(queue, TakeOverQueue):
        fifos, sorting = 2 * 2, False  # two FIFOs per VC
    elif isinstance(queue, (EDFHeapQueue, PipelinedHeapQueue)):
        fifos, sorting = 0, True
    else:
        fifos, sorting = 1 * 2, False
    picker = architecture.picker_factory()
    comparators = radix - 1 if isinstance(picker, EDFPicker) else 0
    return HardwareInventory(
        fifo_memories=fifos,
        needs_sorting_hardware=sorting,
        arbiter_comparators_per_port=comparators,
    )


# ----------------------------------------------------------------------
@dataclass
class CostReport:
    architecture: str
    packets_forwarded: int
    counters: CostCounters
    inventory: HardwareInventory

    @property
    def comparisons_per_packet(self) -> float:
        return self.counters.per_packet(self.packets_forwarded)

    def row(self) -> list:
        return [
            self.architecture,
            self.packets_forwarded,
            round(self.comparisons_per_packet, 2),
            self.inventory.fifo_memories,
            "yes" if self.inventory.needs_sorting_hardware else "no",
            self.inventory.arbiter_comparators_per_port,
        ]


def measure_scheduling_cost(
    base: Architecture,
    *,
    topology=None,
    load: float = 1.0,
    seed: int = 1,
    horizon_ns: int = 1_000_000,
    mix_config=None,
) -> CostReport:
    """Run the Table 1 mix under an instrumented ``base`` and report.

    Uses its own small fabric (16 hosts by default); comparator counts
    per packet converge quickly, so short horizons suffice.
    """
    from repro.experiments.presets import make_topology
    from repro.network.fabric import Fabric
    from repro.sim.rng import RandomStreams
    from repro.traffic.mix import TrafficMixConfig, build_mix

    if topology is None:
        topology = make_topology("tiny")
    instrumented, counters = instrument_architecture(base)
    fabric = Fabric(topology, instrumented)
    mix = build_mix(
        fabric, RandomStreams(seed), mix_config or TrafficMixConfig(load=load)
    )
    mix.start()
    fabric.run(until=horizon_ns)
    packets = sum(sw.packets_forwarded for sw in fabric.switches.values())
    radix = max(topology.radix(sw) for sw in topology.switch_ids)
    return CostReport(
        architecture=base.name,
        packets_forwarded=packets,
        counters=counters,
        inventory=static_inventory(base, radix),
    )
