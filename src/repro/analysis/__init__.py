"""Analysis tools that quantify the paper's *cost* claims.

The paper's Section 6 argues the FIFO-based proposals cost roughly the
same silicon as a conventional two-VC switch, while the Ideal heap
buffer is "unfeasible".  :mod:`repro.analysis.cost` turns that argument
into numbers: it instruments the queue structures and arbiters, runs the
workload, and reports comparator operations per forwarded packet plus a
static hardware inventory per architecture.
"""

from repro.analysis.breakdown import ClassBreakdown, LatencyBreakdown
from repro.analysis.utilization import LinkLoad, UtilizationReport, measure_utilization
from repro.analysis.cost import (
    CostCounters,
    CostReport,
    HardwareInventory,
    instrument_architecture,
    measure_scheduling_cost,
    static_inventory,
)

__all__ = [
    "ClassBreakdown",
    "CostCounters",
    "CostReport",
    "HardwareInventory",
    "LatencyBreakdown",
    "LinkLoad",
    "UtilizationReport",
    "instrument_architecture",
    "measure_scheduling_cost",
    "measure_utilization",
    "static_inventory",
]
