"""repro -- Deadline-based QoS for high-performance networks.

A complete, self-contained reproduction of

    A. Martinez, F. J. Alfaro, J. L. Sanchez, J. Duato,
    "Deadline-based QoS Algorithms for High-performance Networks",
    IPPS 2007.

The package implements the paper's contribution (end-host Virtual-Clock
deadline stamping, eligible-time smoothing, the ordered/take-over FIFO
pair, and EDF head-of-queue arbitration over two VCs) together with every
substrate it needs: a discrete-event simulation kernel, a credit-flow-
controlled multistage interconnection network, NPF-benchmark-style
traffic generators, and the statistics/figure harness that regenerates
the paper's evaluation.

Quick start::

    from repro import build_fabric, ADVANCED_2VC
    from repro.experiments import ExperimentConfig, run_experiment

    result = run_experiment(ExperimentConfig(architecture="advanced-2vc",
                                             load=0.8, seed=1))
    print(result.summary())

See ``examples/quickstart.py`` for the flow-level API.
"""

from repro.constants import N_VCS, VC_BEST_EFFORT, VC_REGULATED
from repro.core import (
    ADVANCED_2VC,
    ARCHITECTURES,
    AdmissionController,
    AdmissionError,
    Architecture,
    ControlStamper,
    EDFHeapQueue,
    EDFPicker,
    EligiblePolicy,
    FifoQueue,
    FlowRegistry,
    FlowSpec,
    FlowState,
    FrameBasedStamper,
    IDEAL,
    RateBasedStamper,
    RoundRobinPicker,
    SIMPLE_2VC,
    TRADITIONAL_2VC,
    TakeOverQueue,
)
from repro.network import (
    Fabric,
    Host,
    Link,
    Packet,
    Switch,
    Topology,
    build_fabric,
    build_fat_tree,
    build_folded_shuffle_min,
    paper_topology,
)
from repro.sim import Engine, RandomStreams

__version__ = "1.0.0"

__all__ = [
    "ADVANCED_2VC",
    "ARCHITECTURES",
    "AdmissionController",
    "AdmissionError",
    "Architecture",
    "ControlStamper",
    "EDFHeapQueue",
    "EDFPicker",
    "EligiblePolicy",
    "Engine",
    "Fabric",
    "FifoQueue",
    "FlowRegistry",
    "FlowSpec",
    "FlowState",
    "FrameBasedStamper",
    "Host",
    "IDEAL",
    "Link",
    "N_VCS",
    "Packet",
    "RandomStreams",
    "RateBasedStamper",
    "RoundRobinPicker",
    "SIMPLE_2VC",
    "Switch",
    "TRADITIONAL_2VC",
    "TakeOverQueue",
    "Topology",
    "VC_BEST_EFFORT",
    "VC_REGULATED",
    "build_fabric",
    "build_fat_tree",
    "build_folded_shuffle_min",
    "paper_topology",
    "__version__",
]
