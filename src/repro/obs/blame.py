"""Root-cause slack attribution over retained span traces.

``repro-qos trace blame`` answers the question the aggregate metrics
cannot: *which stage burned the slack* of the packets that missed their
deadline.  The input is the JSONL dump written by ``run --trace-spans``
(see :mod:`repro.obs.tracing`); the analyzer

1. re-verifies the exact-decomposition invariant of every trace it
   attributes (per-stage integer-ns spans must telescope to exactly the
   end-to-end latency -- a corrupted dump fails loudly, never silently
   skews the attribution),
2. aggregates span time per ``(traffic class, stage)`` and per
   ``(traffic class, stage, node)``, all in exact integer ns,
3. reports, per class, the stages ranked by total time and the top
   node-level hotspots.

Everything is integer arithmetic over deterministically-ordered keys,
so the same seed produces byte-identical reports across runs -- the
property the acceptance gate checks.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Tuple

from repro.obs.tracing import SpanTrace

__all__ = ["BlameReport", "analyze_blame"]


class ClassBlame:
    """Attribution for one traffic class: totals plus ranked stages."""

    __slots__ = ("tclass", "packets", "misses", "e2e_total_ns", "deficit_ns",
                 "worst_slack_ns", "stage_totals", "stage_counts", "hotspots")

    def __init__(self, tclass: str):
        self.tclass = tclass
        self.packets = 0
        self.misses = 0
        #: Sum of end-to-end latencies of the attributed packets.
        self.e2e_total_ns = 0
        #: Total slack deficit: sum of ``-slack`` over missed packets.
        self.deficit_ns = 0
        self.worst_slack_ns = 0
        self.stage_totals: Dict[str, int] = {}
        self.stage_counts: Dict[str, int] = {}
        #: ``(stage, node) -> [total_ns, span_count]``.
        self.hotspots: Dict[Tuple[str, str], List[int]] = {}

    def add(self, trace: SpanTrace) -> None:
        self.packets += 1
        self.e2e_total_ns += trace.e2e_ns
        if trace.missed:
            self.misses += 1
            self.deficit_ns += -trace.slack_ns
        if trace.slack_ns < self.worst_slack_ns:
            self.worst_slack_ns = trace.slack_ns
        for span in trace.spans:
            self.stage_totals[span.stage] = self.stage_totals.get(span.stage, 0) + span.dur_ns
            self.stage_counts[span.stage] = self.stage_counts.get(span.stage, 0) + 1
            site = self.hotspots.get((span.stage, span.node))
            if site is None:
                site = self.hotspots[(span.stage, span.node)] = [0, 0]
            site[0] += span.dur_ns
            site[1] += 1

    def ranked_stages(self) -> List[Tuple[str, int, int]]:
        """``(stage, total_ns, span_count)`` by total desc, then name."""
        return sorted(
            ((stage, total, self.stage_counts[stage]) for stage, total in self.stage_totals.items()),
            key=lambda row: (-row[1], row[0]),
        )

    def ranked_hotspots(self, top: int) -> List[Tuple[str, str, int, int]]:
        """Top ``(stage, node, total_ns, span_count)`` sites."""
        rows = sorted(
            ((stage, node, site[0], site[1]) for (stage, node), site in self.hotspots.items()),
            key=lambda row: (-row[2], row[0], row[1]),
        )
        return rows[:top]


class BlameReport:
    """Per-class slack attribution over a set of span traces."""

    __slots__ = ("classes", "packets", "misses", "missed_only", "top")

    def __init__(self, *, missed_only: bool, top: int):
        self.classes: Dict[str, ClassBlame] = {}
        self.packets = 0
        self.misses = 0
        self.missed_only = missed_only
        self.top = top

    def to_dict(self) -> dict:
        """JSON-ready form, deterministically ordered (``--json`` output)."""
        classes = []
        for tclass in sorted(self.classes):
            blame = self.classes[tclass]
            classes.append(
                {
                    "tclass": tclass,
                    "packets": blame.packets,
                    "misses": blame.misses,
                    "e2e_total_ns": blame.e2e_total_ns,
                    "deficit_ns": blame.deficit_ns,
                    "worst_slack_ns": blame.worst_slack_ns,
                    "stages": [
                        {"stage": stage, "total_ns": total, "spans": count}
                        for stage, total, count in blame.ranked_stages()
                    ],
                    "hotspots": [
                        {"stage": stage, "node": node, "total_ns": total, "spans": count}
                        for stage, node, total, count in blame.ranked_hotspots(self.top)
                    ],
                }
            )
        return {
            "type": "trace-blame",
            "packets": self.packets,
            "misses": self.misses,
            "missed_only": self.missed_only,
            "classes": classes,
        }

    def format(self) -> str:
        """Human-readable report (byte-stable for identical inputs)."""
        scope = "missed" if self.missed_only else "retained"
        lines = [
            f"blame: {self.packets} {scope} packet(s) across "
            f"{len(self.classes)} class(es)"
        ]
        if not self.classes:
            lines.append("  (nothing to attribute -- no retained traces matched)")
            return "\n".join(lines) + "\n"
        for tclass in sorted(self.classes):
            blame = self.classes[tclass]
            lines.append("")
            lines.append(
                f"class {tclass}: {blame.packets} packet(s), "
                f"{blame.misses} miss(es), slack deficit {blame.deficit_ns} ns, "
                f"worst slack {blame.worst_slack_ns} ns"
            )
            lines.append(f"  {'stage':<22} {'total ns':>14} {'share':>7} {'spans':>7}")
            for stage, total, count in blame.ranked_stages():
                share = 100.0 * total / blame.e2e_total_ns if blame.e2e_total_ns else 0.0
                lines.append(f"  {stage:<22} {total:>14} {share:>6.1f}% {count:>7}")
            hotspots = blame.ranked_hotspots(self.top)
            if hotspots:
                lines.append(f"  top {len(hotspots)} site(s):")
                for stage, node, total, count in hotspots:
                    lines.append(
                        f"    {stage} @ {node}: {total} ns over {count} span(s)"
                    )
        return "\n".join(lines) + "\n"

    def format_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"


def analyze_blame(
    traces: Iterable[SpanTrace],
    *,
    missed_only: bool = True,
    top: int = 5,
) -> BlameReport:
    """Attribute end-to-end latency to lifecycle stages, per class.

    ``missed_only`` (the default) attributes only deadline misses -- the
    ``trace blame`` contract; pass False to profile every retained trace
    (useful with head sampling, where hits are retained too).  Every
    attributed trace is :meth:`~repro.obs.tracing.SpanTrace.verify`-ed
    first: attribution over a non-exact decomposition would be noise.
    """
    if top < 1:
        raise ValueError(f"top must be >= 1, got {top}")
    report = BlameReport(missed_only=missed_only, top=top)
    for trace in traces:
        report.misses += trace.missed
        if missed_only and not trace.missed:
            continue
        trace.verify()
        report.packets += 1
        blame = report.classes.get(trace.tclass)
        if blame is None:
            blame = report.classes[trace.tclass] = ClassBlame(trace.tclass)
        blame.add(trace)
    return report
