"""Structured export of a run's observability state.

One document shape (``schema_version`` 2, schema checked in at
``docs/metrics_schema.json``)::

    {
      "schema_version": 2,
      "run": {...},                # free-form run descriptors (CLI args)
      "engine": {...},             # event-loop health numbers
      "metrics": {name: {...}},    # registry snapshot, name-sorted
      "timeseries": {...},         # heartbeat rows (when telemetry ran)
      "trace": {...},              # trace-buffer summary (when traced)
      "spans": {...}               # span-tracer ledger (when span-traced)
    }

Version 2 added the optional ``spans`` section (the
:meth:`repro.obs.tracing.PacketTracer.snapshot` sampling/retention
ledger); version-1 documents remain valid -- the section is optional and
the schema accepts both versions.

Everything is plain JSON with sorted keys, so two snapshots of identical
runs are byte-identical -- which is what makes ``repro-qos metrics A B``
diffs meaningful and lets CI pin the schema.
"""

from __future__ import annotations

import json
from typing import IO, Dict, List, Optional

__all__ = [
    "diff_snapshots",
    "dump_snapshot",
    "format_diff",
    "format_snapshot",
    "load_snapshot",
    "run_snapshot",
    "write_trace_jsonl",
]

SCHEMA_VERSION = 2


def run_snapshot(
    metrics,
    *,
    engine=None,
    telemetry=None,
    trace=None,
    tracer=None,
    run_info: Optional[dict] = None,
) -> dict:
    """Assemble the stable JSON document for one run."""
    doc: dict = {
        "schema_version": SCHEMA_VERSION,
        "run": dict(run_info or {}),
        "metrics": metrics.snapshot(),
    }
    if engine is not None:
        doc["engine"] = {
            "now_ns": engine.now,
            "events_executed": engine.events_executed,
            "pending_events": engine.pending,
            "tombstones_discarded": engine.tombstones_discarded,
            "tombstone_ratio": engine.tombstone_ratio,
        }
    if telemetry is not None:
        doc["timeseries"] = telemetry.timeseries.to_dict()
        doc["run"].setdefault("heartbeat_ns", telemetry.heartbeat_ns)
        doc["run"].setdefault("telemetry_ticks", telemetry.ticks)
    if trace is not None and getattr(trace, "enabled", False):
        doc["trace"] = trace.snapshot()
    if tracer is not None and getattr(tracer, "enabled", False):
        doc["spans"] = tracer.snapshot()
    return doc


def dump_snapshot(doc: dict, fp: IO[str]) -> None:
    """Serialize with sorted keys (byte-stable for identical runs)."""
    json.dump(doc, fp, indent=2, sort_keys=True)
    fp.write("\n")


def load_snapshot(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as fp:
        doc = json.load(fp)
    if not isinstance(doc, dict) or "metrics" not in doc:
        raise ValueError(f"{path} is not a metrics snapshot (no 'metrics' key)")
    return doc


def write_trace_jsonl(trace, fp: IO[str]) -> int:
    """Dump a trace buffer as JSONL: one summary header line, then one
    line per retained record.  Returns the record count written."""
    header = {"type": "trace-summary"}
    header.update(trace.snapshot())
    fp.write(json.dumps(header, sort_keys=True, default=repr) + "\n")
    written = 0
    for rec in trace.records:
        fp.write(
            json.dumps(
                {"t_ns": rec.time, "topic": rec.topic, "payload": list(rec.payload)},
                default=repr,
            )
            + "\n"
        )
        written += 1
    return written


# ----------------------------------------------------------------------
# pretty-printing
# ----------------------------------------------------------------------
def format_snapshot(doc: dict) -> str:
    """Human-readable rendering of one snapshot."""
    lines: List[str] = []
    run = doc.get("run") or {}
    if run:
        lines.append("run:")
        for key in sorted(run):
            lines.append(f"  {key}: {run[key]}")
    engine = doc.get("engine")
    if engine:
        lines.append("engine:")
        for key in sorted(engine):
            lines.append(f"  {key}: {engine[key]}")
    metrics: Dict[str, dict] = doc.get("metrics", {})
    by_kind: Dict[str, List[str]] = {"counter": [], "gauge": [], "histogram": []}
    for name in sorted(metrics):
        by_kind.setdefault(metrics[name].get("type", "?"), []).append(name)
    width = max((len(n) for n in metrics), default=0)
    for kind in ("counter", "gauge", "histogram"):
        names = by_kind.get(kind, [])
        if not names:
            continue
        lines.append(f"{kind}s:")
        for name in names:
            entry = metrics[name]
            if kind == "histogram":
                lines.append(
                    f"  {name:<{width}}  n={entry['count']}"
                    f"  min={entry['min']}  max={entry['max']}  sum={entry['sum']}"
                )
                lines.append(
                    "  " + " " * width + "  buckets "
                    + _format_buckets(entry["bounds"], entry["counts"])
                )
            else:
                unit = f" {entry['unit']}" if entry.get("unit") else ""
                value = entry["value"]
                if isinstance(value, float):
                    value = f"{value:.6g}"
                lines.append(f"  {name:<{width}}  {value}{unit}")
    timeseries = doc.get("timeseries")
    if timeseries:
        lines.append(f"timeseries: {len(timeseries.get('samples', []))} heartbeat rows")
    trace = doc.get("trace")
    if trace:
        lines.append(
            f"trace: {trace.get('retained', 0)} retained, "
            f"{trace.get('dropped', 0)} dropped ({trace.get('policy')})"
        )
    spans = doc.get("spans")
    if spans:
        lines.append(
            f"spans: {spans.get('sampled', 0)} sampled, "
            f"{spans.get('retained', 0)} retained, "
            f"{spans.get('dropped', 0)} dropped ({spans.get('policy')})"
        )
    return "\n".join(lines)


def _format_buckets(bounds: List[int], counts: List[int]) -> str:
    parts = [f"<={bound}:{count}" for bound, count in zip(bounds, counts) if count]
    if counts[-1]:
        parts.append(f">{bounds[-1]}:{counts[-1]}")
    return " ".join(parts) if parts else "(empty)"


# ----------------------------------------------------------------------
# diffing
# ----------------------------------------------------------------------
def diff_snapshots(a: dict, b: dict) -> dict:
    """Structured diff of two snapshots' metrics (B relative to A)."""
    metrics_a: Dict[str, dict] = a.get("metrics", {})
    metrics_b: Dict[str, dict] = b.get("metrics", {})
    only_a = sorted(set(metrics_a) - set(metrics_b))
    only_b = sorted(set(metrics_b) - set(metrics_a))
    changed = {}
    for name in sorted(set(metrics_a) & set(metrics_b)):
        entry_a, entry_b = metrics_a[name], metrics_b[name]
        if entry_a == entry_b:
            continue
        if entry_a.get("type") == "histogram":
            changed[name] = {
                "type": "histogram",
                "count": [entry_a.get("count"), entry_b.get("count")],
                "sum": [entry_a.get("sum"), entry_b.get("sum")],
            }
        else:
            va, vb = entry_a.get("value"), entry_b.get("value")
            delta = vb - va if isinstance(va, (int, float)) and isinstance(vb, (int, float)) else None
            changed[name] = {"type": entry_a.get("type"), "value": [va, vb], "delta": delta}
    return {"only_a": only_a, "only_b": only_b, "changed": changed}


def format_diff(diff: dict, label_a: str = "A", label_b: str = "B") -> str:
    lines: List[str] = []
    for name in diff["only_a"]:
        lines.append(f"- {name}  (only in {label_a})")
    for name in diff["only_b"]:
        lines.append(f"+ {name}  (only in {label_b})")
    for name, change in diff["changed"].items():
        if change["type"] == "histogram":
            (count_a, count_b) = change["count"]
            (sum_a, sum_b) = change["sum"]
            lines.append(f"~ {name}  n {count_a} -> {count_b}  sum {sum_a} -> {sum_b}")
        else:
            va, vb = change["value"]
            delta = change["delta"]
            suffix = f"  ({delta:+g})" if isinstance(delta, (int, float)) else ""
            lines.append(f"~ {name}  {va} -> {vb}{suffix}")
    if not lines:
        lines.append("snapshots are identical")
    return "\n".join(lines)
