"""Runtime observability: metrics registry, heartbeat telemetry, export.

The layer has three pieces, designed so that a run that does not ask for
observability pays (almost) nothing:

- :mod:`repro.obs.metrics` -- ``Counter`` / ``Gauge`` / ``Histogram``
  primitives and the :class:`~repro.obs.metrics.MetricsRegistry`;
  :data:`~repro.obs.metrics.NULL_METRICS` is the null-object default
  every component takes (one attribute load + branch when disabled).
- :mod:`repro.obs.telemetry` -- :class:`~repro.obs.telemetry.RunTelemetry`
  heartbeat sampling into :class:`repro.stats.timeseries.GaugeTimeSeries`
  plus optional live stderr progress.
- :mod:`repro.obs.snapshot` / :mod:`repro.obs.schema` -- the stable JSON
  snapshot document, pretty-printer, differ, JSONL trace dump, and a
  dependency-free schema validator used by CI.

See docs/ARCHITECTURE.md section 8 for the design rationale and the
metric naming scheme (``<layer>.<component>.<name>_<unit>``).
"""

from repro.obs.metrics import (
    Counter,
    DEPTH_BUCKETS,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
    NULL_METRICS,
    NullMetrics,
    SLACK_BUCKETS_NS,
    WAIT_BUCKETS_NS,
)
from repro.obs.schema import validate
from repro.obs.snapshot import (
    diff_snapshots,
    dump_snapshot,
    format_diff,
    format_snapshot,
    load_snapshot,
    run_snapshot,
    write_trace_jsonl,
)
from repro.obs.telemetry import (
    RunTelemetry,
    attach_run_telemetry,
    fabric_samplers,
    sync_component_totals,
)

__all__ = [
    "Counter",
    "DEPTH_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricError",
    "MetricsRegistry",
    "NULL_METRICS",
    "NullMetrics",
    "RunTelemetry",
    "SLACK_BUCKETS_NS",
    "WAIT_BUCKETS_NS",
    "attach_run_telemetry",
    "diff_snapshots",
    "dump_snapshot",
    "fabric_samplers",
    "format_diff",
    "format_snapshot",
    "load_snapshot",
    "run_snapshot",
    "sync_component_totals",
    "validate",
    "write_trace_jsonl",
]
