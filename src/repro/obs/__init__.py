"""Runtime observability: metrics registry, heartbeat telemetry, export.

The layer has three pieces, designed so that a run that does not ask for
observability pays (almost) nothing:

- :mod:`repro.obs.metrics` -- ``Counter`` / ``Gauge`` / ``Histogram``
  primitives and the :class:`~repro.obs.metrics.MetricsRegistry`;
  :data:`~repro.obs.metrics.NULL_METRICS` is the null-object default
  every component takes (one attribute load + branch when disabled).
- :mod:`repro.obs.telemetry` -- :class:`~repro.obs.telemetry.RunTelemetry`
  heartbeat sampling into :class:`repro.stats.timeseries.GaugeTimeSeries`
  plus optional live stderr progress.
- :mod:`repro.obs.snapshot` / :mod:`repro.obs.schema` -- the stable JSON
  snapshot document, pretty-printer, differ, JSONL trace dump, and a
  dependency-free schema validator used by CI.
- :mod:`repro.obs.tracing` / :mod:`repro.obs.blame` -- span-based
  packet-lifecycle tracing (exact integer-ns per-stage decomposition,
  head/tail sampling, Chrome-trace + JSONL export) and the
  ``trace blame`` slack-attribution analyzer;
  :data:`~repro.obs.tracing.NULL_TRACER` is the disabled default.

See docs/ARCHITECTURE.md section 8 for the design rationale, the metric
naming scheme (``<layer>.<component>.<name>_<unit>``), and section 8.1
for the span model.
"""

from repro.obs.blame import BlameReport, analyze_blame
from repro.obs.metrics import (
    Counter,
    DEPTH_BUCKETS,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
    NULL_METRICS,
    NullMetrics,
    SLACK_BUCKETS_NS,
    WAIT_BUCKETS_NS,
    class_counter,
)
from repro.obs.schema import validate
from repro.obs.snapshot import (
    diff_snapshots,
    dump_snapshot,
    format_diff,
    format_snapshot,
    load_snapshot,
    run_snapshot,
    write_trace_jsonl,
)
from repro.obs.telemetry import (
    RunTelemetry,
    attach_run_telemetry,
    fabric_samplers,
    sync_component_totals,
)
from repro.obs.tracing import (
    NULL_TRACER,
    NullPacketTracer,
    PacketTracer,
    Span,
    SpanTrace,
    read_spans_jsonl,
    write_chrome_trace,
    write_spans_jsonl,
)

__all__ = [
    "BlameReport",
    "Counter",
    "DEPTH_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricError",
    "MetricsRegistry",
    "NULL_METRICS",
    "NULL_TRACER",
    "NullMetrics",
    "NullPacketTracer",
    "PacketTracer",
    "RunTelemetry",
    "SLACK_BUCKETS_NS",
    "Span",
    "SpanTrace",
    "WAIT_BUCKETS_NS",
    "analyze_blame",
    "attach_run_telemetry",
    "class_counter",
    "diff_snapshots",
    "dump_snapshot",
    "fabric_samplers",
    "format_diff",
    "format_snapshot",
    "load_snapshot",
    "read_spans_jsonl",
    "run_snapshot",
    "sync_component_totals",
    "validate",
    "write_chrome_trace",
    "write_spans_jsonl",
]
