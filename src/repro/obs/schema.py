"""A small JSON-schema validator (stdlib only).

The container does not ship ``jsonschema``, and the metrics snapshot
only needs a practical subset: ``type`` (including lists of types),
``properties`` / ``required`` / ``additionalProperties``, ``items``,
``enum``, ``minimum``, and ``maximum``.  :func:`validate` returns a list of
human-readable error strings (empty == valid), so CI and tests can show
everything wrong at once instead of failing on the first mismatch.
"""

from __future__ import annotations

from typing import Any, List

__all__ = ["validate"]

_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "integer": int,
    "boolean": bool,
    "null": type(None),
}


def _type_ok(value: Any, expected: str) -> bool:
    if expected == "number":
        return isinstance(value, (int, float)) and not isinstance(value, bool)
    if expected == "integer":
        return isinstance(value, int) and not isinstance(value, bool)
    py_type = _TYPES.get(expected)
    return py_type is not None and isinstance(value, py_type)


def validate(doc: Any, schema: dict, path: str = "$") -> List[str]:
    """Check ``doc`` against ``schema``; return all violation messages."""
    errors: List[str] = []
    expected_type = schema.get("type")
    if expected_type is not None:
        allowed = expected_type if isinstance(expected_type, list) else [expected_type]
        if not any(_type_ok(doc, t) for t in allowed):
            errors.append(
                f"{path}: expected type {'/'.join(allowed)}, "
                f"got {type(doc).__name__}"
            )
            return errors  # nested checks would only cascade

    if "enum" in schema and doc not in schema["enum"]:
        errors.append(f"{path}: {doc!r} not in enum {schema['enum']}")

    minimum = schema.get("minimum")
    if minimum is not None and isinstance(doc, (int, float)) and not isinstance(doc, bool):
        if doc < minimum:
            errors.append(f"{path}: {doc} < minimum {minimum}")

    maximum = schema.get("maximum")
    if maximum is not None and isinstance(doc, (int, float)) and not isinstance(doc, bool):
        if doc > maximum:
            errors.append(f"{path}: {doc} > maximum {maximum}")

    if isinstance(doc, dict):
        properties = schema.get("properties", {})
        for key in schema.get("required", []):
            if key not in doc:
                errors.append(f"{path}: missing required property {key!r}")
        additional = schema.get("additionalProperties", True)
        for key, value in doc.items():
            if key in properties:
                errors.extend(validate(value, properties[key], f"{path}.{key}"))
            elif additional is False:
                errors.append(f"{path}: unexpected property {key!r}")
            elif isinstance(additional, dict):
                errors.extend(validate(value, additional, f"{path}.{key}"))

    if isinstance(doc, list):
        items = schema.get("items")
        if isinstance(items, dict):
            for index, value in enumerate(doc):
                errors.extend(validate(value, items, f"{path}[{index}]"))

    return errors
