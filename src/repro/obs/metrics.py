"""Hot-path-safe metrics primitives and the run-wide registry.

Three instrument kinds, mirroring the classic time-series taxonomy:

- :class:`Counter` -- monotonically increasing event count (enqueues,
  deadline misses, take-over hits).  ``inc`` rejects negative deltas:
  a counter that can go down is a :class:`Gauge` in disguise and would
  silently break rate computations over the heartbeat time series.
- :class:`Gauge` -- a sampled level (heap depth, queue occupancy, link
  utilization).  Set, never accumulated.
- :class:`Histogram` -- fixed integer bucket bounds chosen at creation
  (deadline slack, queue depth, arbitration wait).  Observation is one
  ``bisect`` on a small tuple -- no allocation, no resizing -- which is
  what makes it safe to call per forwarded packet.

The **null-object pattern** carries the disabled case (mirroring
:class:`repro.sim.monitor.NullTrace`): :data:`NULL_METRICS` hands out
shared no-op instrument singletons and reports ``enabled = False``.
Instrumented components cache that flag (``self._obs_on``) at
construction, so a disabled run pays one attribute load and a branch per
instrumentation site -- the overhead budget is enforced by
``benchmarks/test_bench_obs_overhead.py``.

Metric names follow ``<layer>.<component>.<name>_<unit>`` with optional
qualifier segments between component and leaf (``network.switch.vc0.
enqueue_packets_total``); the unit suffix obeys the same ``_ns`` /
``_bytes`` conventions simlint's SIM101 enforces on identifiers.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Iterable, List, Optional, Tuple, Union

__all__ = [
    "Counter",
    "DEPTH_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricError",
    "MetricsRegistry",
    "NULL_METRICS",
    "NullMetrics",
    "SLACK_BUCKETS_NS",
    "WAIT_BUCKETS_NS",
    "class_counter",
]

Number = Union[int, float]

#: Deadline-slack buckets (ns): negative slack == the packet missed its
#: deadline.  Spans host-scale jitter (hundreds of ns) to the paper's
#: 10 ms video target.
SLACK_BUCKETS_NS: Tuple[int, ...] = (
    -1_000_000,
    -100_000,
    -10_000,
    -1_000,
    0,
    1_000,
    10_000,
    100_000,
    1_000_000,
    10_000_000,
)

#: Queue-depth buckets (packets); VOQ depth beyond 256 means flow
#: control is broken, so the overflow bucket doubles as a tripwire.
DEPTH_BUCKETS: Tuple[int, ...] = (0, 1, 2, 4, 8, 16, 32, 64, 128, 256)

#: Arbitration-wait buckets (ns): time from VOQ enqueue to the packet
#: winning the output port.
WAIT_BUCKETS_NS: Tuple[int, ...] = (
    100,
    1_000,
    10_000,
    100_000,
    1_000_000,
    10_000_000,
)


class MetricError(ValueError):
    """Invalid metric construction or use (bad name, type clash, ...)."""


class Counter:
    """Monotonic event counter."""

    __slots__ = ("name", "unit", "value")

    kind = "counter"
    enabled = True

    def __init__(self, name: str, unit: str = ""):
        self.name = name
        self.unit = unit
        self.value: int = 0

    def inc(self, delta: int = 1) -> None:
        if delta < 0:
            raise MetricError(
                f"counter {self.name!r} cannot decrease (delta={delta}); "
                "use a Gauge for levels that go down"
            )
        self.value += delta

    def to_dict(self) -> dict:
        return {"type": "counter", "unit": self.unit, "value": self.value}


class Gauge:
    """Last-sampled level."""

    __slots__ = ("name", "unit", "value")

    kind = "gauge"
    enabled = True

    def __init__(self, name: str, unit: str = ""):
        self.name = name
        self.unit = unit
        self.value: Number = 0

    def set(self, value: Number) -> None:
        self.value = value

    def to_dict(self) -> dict:
        return {"type": "gauge", "unit": self.unit, "value": self.value}


class Histogram:
    """Fixed-bucket histogram over integers (or floats binned to them).

    ``bounds`` are strictly increasing upper bucket edges; bucket *i*
    counts observations ``bounds[i-1] < v <= bounds[i]`` and one
    overflow bucket counts everything above the last edge, so
    ``len(counts) == len(bounds) + 1`` and no observation is ever lost.
    """

    __slots__ = ("name", "unit", "bounds", "counts", "count", "total", "min", "max")

    kind = "histogram"
    enabled = True

    def __init__(self, name: str, bounds: Iterable[int], unit: str = ""):
        edges = tuple(bounds)
        if not edges:
            raise MetricError(f"histogram {self.__class__.__name__} needs >= 1 bucket edge")
        if any(b >= a for b, a in zip(edges, edges[1:])):
            raise MetricError(
                f"histogram {name!r} bucket edges must be strictly increasing, got {edges}"
            )
        self.name = name
        self.unit = unit
        self.bounds: Tuple[int, ...] = edges
        self.counts: List[int] = [0] * (len(edges) + 1)
        self.count = 0
        self.total: Number = 0
        self.min: Optional[Number] = None
        self.max: Optional[Number] = None

    def observe(self, value: Number) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram (same bucket edges) into this one."""
        if other.bounds != self.bounds:
            raise MetricError(
                f"cannot merge histogram {other.name!r} (edges {other.bounds}) "
                f"into {self.name!r} (edges {self.bounds})"
            )
        for index, n in enumerate(other.counts):
            self.counts[index] += n
        self.count += other.count
        self.total += other.total
        if other.min is not None and (self.min is None or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None or other.max > self.max):
            self.max = other.max

    def to_dict(self) -> dict:
        return {
            "type": "histogram",
            "unit": self.unit,
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
        }


# ----------------------------------------------------------------------
# the null objects (disabled path)
# ----------------------------------------------------------------------
class _NullCounter:
    __slots__ = ()
    kind = "counter"
    enabled = False
    value = 0

    def inc(self, delta: int = 1) -> None:
        return None


class _NullGauge:
    __slots__ = ()
    kind = "gauge"
    enabled = False
    value = 0

    def set(self, value: Number) -> None:
        return None


class _NullHistogram:
    __slots__ = ()
    kind = "histogram"
    enabled = False
    count = 0

    def observe(self, value: Number) -> None:
        return None


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()


class NullMetrics:
    """Disabled registry: hands out shared no-op instruments.

    ``enabled`` is False so components can cache the flag and skip
    instrumentation blocks entirely; any call that does slip through is
    a no-op, never an error.
    """

    __slots__ = ()

    enabled = False

    def counter(self, name: str, unit: str = "") -> _NullCounter:
        return _NULL_COUNTER

    def gauge(self, name: str, unit: str = "") -> _NullGauge:
        return _NULL_GAUGE

    def histogram(self, name: str, bounds: Iterable[int], unit: str = "") -> _NullHistogram:
        return _NULL_HISTOGRAM

    def snapshot(self) -> Dict[str, dict]:
        return {}


#: Shared default instance (one per process is plenty: it is stateless).
NULL_METRICS = NullMetrics()


class MetricsRegistry:
    """Run-wide instrument registry.

    ``counter``/``gauge``/``histogram`` are get-or-create: every
    component asking for the same name shares one instrument, which is
    how per-switch events aggregate fabric-wide without any locking or
    label machinery.  Asking for an existing name with a different kind
    (or different histogram edges) is an error -- silent aliasing would
    corrupt both series.
    """

    __slots__ = ("_instruments",)

    enabled = True

    def __init__(self) -> None:
        self._instruments: Dict[str, Union[Counter, Gauge, Histogram]] = {}

    # -- get-or-create -----------------------------------------------------
    def counter(self, name: str, unit: str = "") -> Counter:
        return self._get_or_create(Counter, name, unit=unit)

    def gauge(self, name: str, unit: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, unit=unit)

    def histogram(self, name: str, bounds: Iterable[int], unit: str = "") -> Histogram:
        edges = tuple(bounds)
        existing = self._instruments.get(name)
        if existing is not None and isinstance(existing, Histogram):
            if existing.bounds != edges:
                raise MetricError(
                    f"histogram {name!r} already registered with edges "
                    f"{existing.bounds}, asked for {edges}"
                )
        return self._get_or_create(Histogram, name, bounds=edges, unit=unit)

    def _get_or_create(self, cls, name: str, **kwargs):
        _validate_name(name)
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = self._instruments[name] = cls(name, **kwargs)
        elif not isinstance(instrument, cls):
            raise MetricError(
                f"metric {name!r} already registered as {instrument.kind}, "
                f"asked for {cls.kind}"
            )
        return instrument

    # -- introspection ------------------------------------------------------
    def get(self, name: str) -> Union[Counter, Gauge, Histogram]:
        try:
            return self._instruments[name]
        except KeyError:
            known = ", ".join(sorted(self._instruments)) or "(none)"
            raise KeyError(f"no metric named {name!r}; registered: {known}") from None

    def names(self) -> List[str]:
        return sorted(self._instruments)

    def __len__(self) -> int:
        return len(self._instruments)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def snapshot(self) -> Dict[str, dict]:
        """All instruments as a stable (name-sorted) JSON-ready mapping."""
        return {
            name: self._instruments[name].to_dict()
            for name in sorted(self._instruments)
        }


def class_counter(metrics, cache: Dict[str, Counter], tclass: str, name_format: str, *, unit: str = "packets") -> Counter:
    """Get-or-mint the per-traffic-class counter for ``tclass``.

    Per-class counter names embed the class (``{tclass}`` placeholder in
    ``name_format``), so the name string -- and the registry lookup -- is
    only built on a class's *first* event; afterwards the instrument
    comes from ``cache`` with one dict probe.  This is the shared
    first-miss mint pattern used by ``Host.accept`` (deadline misses per
    class) and ``PacketTracer.finish`` (retained traces per class); call
    sites keep it off the hot path behind their cached ``enabled`` flag.
    """
    counter = cache.get(tclass)
    if counter is None:
        counter = cache[tclass] = metrics.counter(name_format.format(tclass=tclass), unit=unit)
    return counter


def _validate_name(name: str) -> None:
    """Enforce the ``<layer>.<component>.<leaf>`` naming scheme."""
    if not name or name != name.strip():
        raise MetricError(f"metric name must be non-empty and unpadded, got {name!r}")
    parts = name.split(".")
    if len(parts) < 3:
        raise MetricError(
            f"metric name {name!r} must have >= 3 dot segments "
            "(<layer>.<component>.<name>_<unit>)"
        )
    for part in parts:
        if not part or not all(c.isalnum() or c in "_-" for c in part):
            raise MetricError(
                f"metric name segment {part!r} in {name!r} must be "
                "alphanumeric plus '_'/'-'"
            )
