"""Per-packet causal tracing: span-based lifecycle decomposition.

The metrics layer (:mod:`repro.obs.metrics`) answers *how many* packets
missed their deadline per class; this module answers *why one packet*
missed.  Every traced packet accumulates timestamped lifecycle events --
host submit, eligible-queue release, injection, per-switch VOQ arrival
and forward, delivery -- and at delivery those events are decomposed
into **spans**: contiguous ``(stage, node, start_ns, dur_ns)`` intervals
that partition the packet's end-to-end latency *exactly*, in integer
nanoseconds:

- ``host.eligible_wait`` -- submit until the eligible-time regulator
  released the packet (smoothed regulated flows only);
- ``host.queue_wait``    -- VC-queue entry until injection won the NIC
  arbitration (deadline order + credits + link availability);
- ``link.transmit``      -- serialization onto the wire (link occupancy);
- ``link.propagate``     -- flight time after the last byte left;
- ``switch.voq_wait``    -- VOQ arrival until the output-port arbiter
  forwarded the packet (one span per switch hop).

Because every span consumes the interval between two recorded engine
timestamps and the serialization/propagation split is computed from the
link's own integer ``occupancy_ns``, the spans telescope: their sum is
``deliver - birth`` by construction, with no float in sight.  The
``trace blame`` analyzer (:mod:`repro.obs.blame`) leans on that
invariant to attribute missed deadlines to the stage that burned the
slack.

**Sampling.**  Tracing every packet of a large run is neither affordable
nor useful, so retention is governed by one of two deterministic
policies, both seeded through :mod:`repro.sim.rng` streams:

- ``head`` (probabilistic head sampling): the keep/skip decision is made
  once at packet birth, from a per-flow random stream derived from
  ``(seed, flow_id)`` -- adding flows never perturbs the sampling of
  existing ones, and the same seed always samples the same packets.
- ``tail`` (tail-based sampling): every packet is tracked in flight, but
  the full span chain is *retained* only when the packet misses its
  deadline -- the interesting traces by definition, at the cost of
  tracking live packets (bounded by the number in flight).

Retained traces live in a bounded ring (``capacity`` newest kept, like
``Trace(ring=True)``); evictions are counted and reported by
:meth:`PacketTracer.snapshot`, mirroring the drop-policy discipline of
:meth:`repro.sim.monitor.Trace.snapshot`.

**Overhead discipline.**  :data:`NULL_TRACER` is the null-object default
every component takes.  Instrumented components cache
``tracer.enabled`` (``self._span_on``) at construction, and every
per-packet site is guarded by ``if self._span_on and pkt.traced:`` --
one attribute load and a short-circuit branch when disabled, enforced by
``benchmarks/test_bench_obs_overhead.py``.
"""

from __future__ import annotations

import json
from collections import deque
from typing import IO, Any, Deque, Dict, List, NamedTuple, Optional, Tuple

from repro.obs.metrics import NULL_METRICS, Counter, class_counter
from repro.sim.rng import RandomStream, derive_seed

__all__ = [
    "NULL_TRACER",
    "NullPacketTracer",
    "PacketTracer",
    "Span",
    "SpanTrace",
    "read_spans_jsonl",
    "write_chrome_trace",
    "write_spans_jsonl",
]

#: Stage vocabulary, in lifecycle order (see the module docstring).
STAGES: Tuple[str, ...] = (
    "host.eligible_wait",
    "host.queue_wait",
    "link.transmit",
    "link.propagate",
    "switch.voq_wait",
)

_POLICY_LABELS = {
    "head": "head-probabilistic",
    "tail": "tail-deadline-miss",
}


class Span(NamedTuple):
    """One contiguous lifecycle interval, in integer nanoseconds."""

    stage: str
    node: str
    start_ns: int
    dur_ns: int

    @property
    def end_ns(self) -> int:
        return self.start_ns + self.dur_ns


class SpanTrace:
    """The complete, exactly-decomposed lifecycle of one delivered packet.

    ``spans`` telescope: ``spans[0].start_ns == birth_ns``, every span
    starts where the previous one ended, and the last ends at
    ``deliver_ns`` -- so ``sum(s.dur_ns) == deliver_ns - birth_ns``
    exactly.  :meth:`verify` re-checks that invariant (used by the
    property tests and the ``trace blame`` loader).
    """

    __slots__ = (
        "uid",
        "flow_id",
        "tclass",
        "vc",
        "src",
        "dst",
        "size",
        "deadline",
        "birth_ns",
        "deliver_ns",
        "slack_ns",
        "missed",
        "spans",
    )

    def __init__(
        self,
        *,
        uid: int,
        flow_id: int,
        tclass: str,
        vc: int,
        src: int,
        dst: int,
        size: int,
        deadline: int,
        birth_ns: int,
        deliver_ns: int,
        slack_ns: int,
        missed: bool,
        spans: Tuple[Span, ...],
    ):
        self.uid = uid
        self.flow_id = flow_id
        self.tclass = tclass
        self.vc = vc
        self.src = src
        self.dst = dst
        self.size = size
        self.deadline = deadline
        self.birth_ns = birth_ns
        self.deliver_ns = deliver_ns
        self.slack_ns = slack_ns
        self.missed = missed
        self.spans = spans

    @property
    def e2e_ns(self) -> int:
        """End-to-end latency: submit at the source NIC to delivery."""
        return self.deliver_ns - self.birth_ns

    def verify(self) -> None:
        """Raise :class:`ValueError` unless the spans partition
        ``[birth_ns, deliver_ns]`` exactly (telescoping, non-negative,
        integer-sum identity)."""
        t = self.birth_ns
        for span in self.spans:
            if span.start_ns != t:
                raise ValueError(
                    f"packet {self.uid}: span {span.stage!r} starts at "
                    f"{span.start_ns}, expected {t} (gap or overlap)"
                )
            if span.dur_ns < 0:
                raise ValueError(
                    f"packet {self.uid}: span {span.stage!r} has negative "
                    f"duration {span.dur_ns}"
                )
            t = span.end_ns
        if t != self.deliver_ns:
            raise ValueError(
                f"packet {self.uid}: spans end at {t}, delivery was at "
                f"{self.deliver_ns} -- decomposition is not exact"
            )

    def to_dict(self) -> dict:
        """JSON-ready form (stable shape; spans as plain lists)."""
        return {
            "uid": self.uid,
            "flow_id": self.flow_id,
            "tclass": self.tclass,
            "vc": self.vc,
            "src": self.src,
            "dst": self.dst,
            "size": self.size,
            "deadline": self.deadline,
            "birth_ns": self.birth_ns,
            "deliver_ns": self.deliver_ns,
            "slack_ns": self.slack_ns,
            "missed": self.missed,
            "spans": [list(span) for span in self.spans],
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "SpanTrace":
        spans = tuple(Span(str(s[0]), str(s[1]), int(s[2]), int(s[3])) for s in doc["spans"])
        return cls(
            uid=int(doc["uid"]),
            flow_id=int(doc["flow_id"]),
            tclass=str(doc["tclass"]),
            vc=int(doc["vc"]),
            src=int(doc["src"]),
            dst=int(doc["dst"]),
            size=int(doc["size"]),
            deadline=int(doc["deadline"]),
            birth_ns=int(doc["birth_ns"]),
            deliver_ns=int(doc["deliver_ns"]),
            slack_ns=int(doc["slack_ns"]),
            missed=bool(doc["missed"]),
            spans=spans,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<SpanTrace pkt{self.uid} {self.tclass} e2e={self.e2e_ns}ns "
            f"slack={self.slack_ns}ns {len(self.spans)} spans>"
        )


def decompose_events(
    events: List[Tuple[str, str, int, int]],
) -> Tuple[Span, ...]:
    """Turn a packet's raw event list into its exact span chain.

    ``events`` are ``(kind, node, t_ns, ser_ns)`` tuples in lifecycle
    order -- ``submit``, optional ``eligible``, ``inject``, then
    alternating ``arrive``/``forward`` per switch hop, ending with
    ``deliver``.  ``ser_ns`` (the incoming link's integer serialization
    time) rides on ``arrive``/``deliver`` and splits each wire segment
    into transmit + propagate.  Every span consumes exactly the interval
    between two consecutive timestamps, so the chain telescopes from
    submit to delivery with no remainder.
    """
    if not events or events[0][0] != "submit":
        raise ValueError(f"event chain must start with 'submit', got {events[:1]}")
    _, source, t, _ = events[0]
    sender = source
    spans: List[Span] = []
    for kind, node, te, ser in events[1:]:
        if te < t:
            raise ValueError(f"event {kind!r} at t={te} precedes t={t}")
        if kind == "eligible":
            spans.append(Span("host.eligible_wait", source, t, te - t))
        elif kind == "inject":
            spans.append(Span("host.queue_wait", source, t, te - t))
        elif kind == "arrive" or kind == "deliver":
            if not 0 <= ser <= te - t:
                raise ValueError(
                    f"serialization {ser}ns does not fit the {te - t}ns "
                    f"wire segment into {node!r}"
                )
            spans.append(Span("link.transmit", sender, t, ser))
            spans.append(Span("link.propagate", sender, t + ser, te - t - ser))
        elif kind == "forward":
            spans.append(Span("switch.voq_wait", node, t, te - t))
            sender = node
        else:
            raise ValueError(f"unknown lifecycle event kind {kind!r}")
        t = te
    return tuple(spans)


# ----------------------------------------------------------------------
# the null object (disabled path)
# ----------------------------------------------------------------------
class NullPacketTracer:
    """Disabled tracer: every hook is a no-op.

    ``enabled`` is False so components can cache the flag
    (``self._span_on``) and skip the instrumentation sites entirely; a
    call that slips through is a no-op, never an error.
    """

    __slots__ = ()

    enabled = False

    def begin(self, pkt: Any, t_ns: int, node: str) -> None:
        return None

    def event(self, pkt: Any, kind: str, t_ns: int, node: str = "") -> None:
        return None

    def arrive(self, pkt: Any, t_ns: int, node: str, link: Any) -> None:
        return None

    def finish(self, pkt: Any, t_ns: int, *, node: str, link: Any, slack_ns: int) -> None:
        return None

    def snapshot(self) -> dict:
        return {}


#: Shared default instance (stateless, one per process is plenty).
NULL_TRACER = NullPacketTracer()


class PacketTracer:
    """Span-based packet-lifecycle tracer with deterministic sampling.

    Components call the four hooks from their hot paths (guarded by the
    cached ``enabled`` flag and the packet's ``traced`` bit):

    - :meth:`begin`   at submit (makes the head-sampling decision),
    - :meth:`event`   for ``eligible`` / ``inject`` / ``forward``,
    - :meth:`arrive`  at switch VOQ entry (captures link occupancy),
    - :meth:`finish`  at delivery (decomposes, applies retention).

    ``policy="tail"`` retains only deadline misses; ``policy="head"``
    retains every packet that won the per-flow Bernoulli draw at
    ``rate``.  Either way at most ``capacity`` traces are kept (newest
    win, evictions counted), and :meth:`snapshot` reports the sampling
    and retention ledger for the run snapshot's ``spans`` section.
    """

    enabled = True

    def __init__(
        self,
        *,
        policy: str = "tail",
        rate: float = 0.01,
        capacity: int = 4096,
        seed: int = 0,
        metrics=NULL_METRICS,
    ):
        if policy not in _POLICY_LABELS:
            raise ValueError(
                f"unknown sampling policy {policy!r}; pick one of "
                f"{sorted(_POLICY_LABELS)}"
            )
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"sampling rate must be in [0, 1], got {rate}")
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.policy = policy
        self.rate = rate
        self.capacity = capacity
        self.seed = seed
        self.metrics = metrics
        #: Retained traces, newest kept (ring semantics like Trace(ring=True)).
        self.records: Deque[SpanTrace] = deque(maxlen=capacity)
        self.sampled = 0
        self.unsampled = 0
        self.completed = 0
        self.misses = 0
        self.dropped = 0
        #: In-flight event chains: pkt.uid -> [(kind, node, t_ns, ser_ns)].
        self._live: Dict[int, List[Tuple[str, str, int, int]]] = {}
        #: Per-flow head-sampling streams, derived from (seed, flow_id) so
        #: adding flows never perturbs the draws of existing ones.
        self._streams: Dict[int, RandomStream] = {}
        self._m_retained_by_class: Dict[str, Counter] = {}

    # ------------------------------------------------------------------
    # hot-path hooks (components guard with `self._span_on and pkt.traced`)
    # ------------------------------------------------------------------
    def begin(self, pkt: Any, t_ns: int, node: str) -> None:
        """Packet born at the source NIC: decide sampling, open the chain."""
        if self.policy == "head":
            stream = self._streams.get(pkt.flow_id)
            if stream is None:
                # Evicting a stream would reset its draw position and
                # perturb that flow's sampling; determinism requires one
                # live stream per flow ever sampled.
                stream = self._streams[pkt.flow_id] = RandomStream(  # simlint: allow-unbounded-keyed-growth
                    derive_seed(self.seed, f"obs.tracing.flow{pkt.flow_id}")
                )
            if stream.random() >= self.rate:
                self.unsampled += 1
                return
        pkt.traced = True
        self.sampled += 1
        self._live[pkt.uid] = [("submit", node, t_ns, 0)]

    def event(self, pkt: Any, kind: str, t_ns: int, node: str = "") -> None:
        """Record a serialization-free lifecycle event (``eligible``,
        ``inject``, ``forward``)."""
        events = self._live.get(pkt.uid)
        if events is not None:
            events.append((kind, node, t_ns, 0))

    def arrive(self, pkt: Any, t_ns: int, node: str, link: Any) -> None:
        """Packet fully arrived at a switch VOQ over ``link``."""
        events = self._live.get(pkt.uid)
        if events is not None:
            events.append(("arrive", node, t_ns, link.occupancy_ns(pkt.size)))

    def finish(self, pkt: Any, t_ns: int, *, node: str, link: Any, slack_ns: int) -> None:
        """Packet delivered: close the chain, decompose, apply retention."""
        events = self._live.pop(pkt.uid, None)
        if events is None:
            return
        self.completed += 1
        missed = slack_ns < 0
        if missed:
            self.misses += 1
        if self.policy == "tail" and not missed:
            return
        events.append(("deliver", node, t_ns, link.occupancy_ns(pkt.size)))
        record = SpanTrace(
            uid=pkt.uid,
            flow_id=pkt.flow_id,
            tclass=pkt.tclass,
            vc=pkt.vc,
            src=pkt.src,
            dst=pkt.dst,
            size=pkt.size,
            deadline=pkt.deadline,
            birth_ns=pkt.birth,
            deliver_ns=t_ns,
            slack_ns=slack_ns,
            missed=missed,
            spans=decompose_events(events),
        )
        if len(self.records) == self.capacity:
            self.dropped += 1  # deque(maxlen=...) evicts the oldest
        self.records.append(record)
        if self.metrics.enabled:
            class_counter(
                self.metrics,
                self._m_retained_by_class,
                pkt.tclass,
                "obs.tracing.class.{tclass}.retained_total",
            ).inc()

    # ------------------------------------------------------------------
    # introspection / export
    # ------------------------------------------------------------------
    @property
    def inflight(self) -> int:
        """Open chains: sampled packets submitted but not yet delivered."""
        return len(self._live)

    def snapshot(self) -> dict:
        """Sampling + retention ledger, JSON-ready (the run snapshot's
        ``spans`` section; drop policy reported like ``Trace.snapshot``)."""
        return {
            "policy": _POLICY_LABELS[self.policy],
            "rate": self.rate if self.policy == "head" else 1.0,
            "capacity": self.capacity,
            "seed": self.seed,
            "sampled": self.sampled,
            "unsampled": self.unsampled,
            "completed": self.completed,
            "misses": self.misses,
            "retained": len(self.records),
            "dropped": self.dropped,
            "inflight": len(self._live),
        }


# ----------------------------------------------------------------------
# export: JSONL (exact) and Chrome trace-event JSON (Perfetto-loadable)
# ----------------------------------------------------------------------
def write_spans_jsonl(tracer: PacketTracer, fp: IO[str]) -> int:
    """Dump retained span traces as JSONL: one summary header line, then
    one sorted-keys line per trace (byte-stable for identical runs).
    Returns the trace count written."""
    header = {"type": "span-trace-summary"}
    header.update(tracer.snapshot())
    fp.write(json.dumps(header, sort_keys=True) + "\n")
    written = 0
    for record in tracer.records:
        fp.write(json.dumps(record.to_dict(), sort_keys=True) + "\n")
        written += 1
    return written


def read_spans_jsonl(path: str) -> Tuple[dict, List[SpanTrace]]:
    """Load a span-trace JSONL dump.  Returns ``(header, traces)``;
    raises :class:`ValueError` when the file is not a span dump."""
    with open(path, "r", encoding="utf-8") as fp:
        first = fp.readline()
        if not first:
            raise ValueError(f"{path} is empty, not a span-trace dump")
        header = json.loads(first)
        if not isinstance(header, dict) or header.get("type") != "span-trace-summary":
            raise ValueError(
                f"{path} is not a span-trace dump (missing the "
                "'span-trace-summary' header line; was it written by "
                "`run --trace-spans`?)"
            )
        traces = [SpanTrace.from_dict(json.loads(line)) for line in fp if line.strip()]
    return header, traces


def write_chrome_trace(
    records,
    fp: IO[str],
    *,
    run_info: Optional[dict] = None,
) -> int:
    """Write span traces in Chrome trace-event JSON (object format),
    loadable in Perfetto / ``chrome://tracing``.

    Each span becomes one complete ("X") event; packets group as tracks
    under their flow (pid = flow, tid = packet uid) with a process-name
    metadata row per flow.  ``ts``/``dur`` are microsecond floats as the
    trace-event format requires -- the *exact* integer-ns decomposition
    lives in the JSONL dump and in every event's ``args``.  Returns the
    number of span events written.
    """
    events: List[dict] = []
    named_flows = set()
    written = 0
    for record in records:
        if record.flow_id not in named_flows:
            named_flows.add(record.flow_id)
            events.append(
                {
                    "ph": "M",
                    "name": "process_name",
                    "pid": record.flow_id,
                    "tid": 0,
                    "args": {"name": f"flow {record.flow_id} ({record.tclass})"},
                }
            )
        for span in record.spans:
            events.append(
                {
                    "ph": "X",
                    "name": span.stage,
                    "cat": record.tclass,
                    "pid": record.flow_id,
                    "tid": record.uid,
                    "ts": span.start_ns / 1000.0,
                    "dur": span.dur_ns / 1000.0,
                    "args": {
                        "node": span.node,
                        "start_ns": span.start_ns,
                        "dur_ns": span.dur_ns,
                        "deadline_ns": record.deadline,
                        "slack_ns": record.slack_ns,
                        "missed": record.missed,
                    },
                }
            )
            written += 1
    doc = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": dict(run_info or {}),
    }
    json.dump(doc, fp, sort_keys=True)
    fp.write("\n")
    return written
