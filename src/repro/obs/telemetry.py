"""Run telemetry: heartbeat sampling and optional live progress.

:class:`RunTelemetry` rides the simulation engine itself: it schedules a
tick every ``heartbeat_ns`` of *simulated* time, reads a set of named
samplers (plain callables), records the row into a
:class:`repro.stats.timeseries.GaugeTimeSeries`, mirrors the values into
registry gauges, and -- when live mode is on -- rewrites one stderr
status line with sim-time, events/sec, and an ETA.

Determinism note: telemetry ticks are ordinary engine events, but they
only *read* simulation state (samplers must be pure observers) and the
engine allocates sequence numbers at scheduling time, so the relative
order of all other events -- and therefore every simulation result -- is
unchanged whether telemetry is attached or not.  The determinism tests
hold with and without a heartbeat.

:func:`fabric_samplers` supplies the standard probe set for a
:class:`~repro.network.fabric.Fabric`; :func:`sync_component_totals`
folds the always-on component tallies (take-over hits, link busy time,
engine tombstones) into registry counters so they appear in snapshots.
"""

from __future__ import annotations

import sys
import time
from typing import Callable, List, Optional, Tuple

from repro.obs.metrics import NULL_METRICS
from repro.stats.timeseries import GaugeTimeSeries

__all__ = [
    "RunTelemetry",
    "attach_run_telemetry",
    "fabric_samplers",
    "sync_component_totals",
]

Sampler = Tuple[str, Callable[[], float]]


def fabric_samplers(engine, fabric) -> List[Sampler]:
    """The standard gauge probes for one engine + fabric pair.

    Everything here is a pure observer -- nothing mutates simulation
    state, which is what keeps telemetry runs bit-identical to bare runs.
    """
    return [
        ("sim.engine.heap_depth_events", lambda: engine.pending),
        ("sim.engine.tombstone_ratio", lambda: engine.tombstone_ratio),
        ("network.fabric.packets_in_flight", fabric.packets_in_flight),
        ("network.switch.queued_packets", fabric.queued_in_switches),
        ("network.host.queued_packets", fabric.queued_in_hosts),
        ("network.link.utilization_ratio", fabric.link_utilization),
    ]


def sync_component_totals(engine, fabric, metrics) -> None:
    """Fold always-on component tallies into registry counters.

    Hot components keep some totals as bare ints (cheap enough to leave
    on even with metrics disabled); this lifts them into the registry so
    ``snapshot()`` sees them.  Safe to call repeatedly -- counters are
    advanced by the delta since the last sync.
    """
    if not metrics.enabled:
        return
    _sync(metrics.counter("core.takeover.hits_total", unit="packets"), fabric.takeover_hits())
    _sync(
        metrics.counter("network.link.busy_ns_total", unit="ns"),
        sum(link.busy_ns for link in fabric.links.values()),
    )
    _sync(metrics.counter("sim.engine.events_total", unit="events"), engine.events_executed)
    _sync(
        metrics.counter("sim.engine.tombstones_total", unit="events"),
        engine.tombstones_discarded,
    )


def _sync(counter, total: int) -> None:
    delta = total - counter.value
    if delta > 0:
        counter.inc(delta)


class RunTelemetry:
    """Heartbeat sampler bound to one engine.

    >>> from repro.sim.engine import Engine
    >>> eng = Engine()
    >>> tel = RunTelemetry(eng, heartbeat_ns=1000)
    >>> tel.add_sampler("sim.engine.heap_depth_events", lambda: eng.pending)
    >>> tel.start(until_ns=3000)
    >>> eng.run(until=3000)
    3
    >>> len(tel.timeseries)
    3
    """

    #: Default heartbeat-row bound: keep-newest, so a runaway horizon (or
    #: a scale run with a tiny heartbeat) cannot grow the log without
    #: limit.  65536 rows cover any paper-scale run without eviction.
    TIMESERIES_CAPACITY = 65536

    def __init__(
        self,
        engine,
        *,
        heartbeat_ns: int,
        metrics=NULL_METRICS,
        live: bool = False,
        stream=None,
        timeseries_capacity: Optional[int] = TIMESERIES_CAPACITY,
    ):
        if heartbeat_ns <= 0:
            raise ValueError(f"heartbeat must be positive, got {heartbeat_ns}")
        self.engine = engine
        self.heartbeat_ns = heartbeat_ns
        self.metrics = metrics
        self.live = live
        self.stream = stream if stream is not None else sys.stderr
        self.timeseries = GaugeTimeSeries(capacity=timeseries_capacity)
        self.ticks = 0
        self._samplers: List[Sampler] = []
        self._after_tick: List[Callable[[], None]] = []
        self._until_ns: Optional[int] = None
        self._wall_start: Optional[float] = None
        self._last_wall: Optional[float] = None
        self._last_events = 0

    def add_sampler(self, name: str, fn: Callable[[], float]) -> None:
        """Register a named gauge probe (must be a pure observer)."""
        self._samplers.append((name, fn))

    def on_tick(self, fn: Callable[[], None]) -> None:
        """Register extra per-tick work (e.g. counter syncing)."""
        self._after_tick.append(fn)

    def start(self, until_ns: Optional[int] = None) -> None:
        """Schedule the first heartbeat; ``until_ns`` bounds the ticking
        (and feeds the live ETA)."""
        self._until_ns = until_ns
        # Mid-run sampling needs the engine's executed count refreshed
        # per event, not just when run() returns.
        live_count = getattr(self.engine, "enable_live_event_count", None)
        if live_count is not None:
            live_count()
        self._wall_start = self._last_wall = time.perf_counter()  # simlint: allow-wallclock
        self._last_events = self.engine.events_executed
        self.engine.after(self.heartbeat_ns, self._tick)

    # ------------------------------------------------------------------
    def _tick(self) -> None:
        engine = self.engine
        now_ns = engine.now
        wall = time.perf_counter()  # simlint: allow-wallclock
        wall_delta_s = wall - self._last_wall if self._last_wall is not None else 0.0
        events = engine.events_executed
        events_per_sec = (
            (events - self._last_events) / wall_delta_s if wall_delta_s > 0 else 0.0
        )
        self._last_wall = wall
        self._last_events = events

        values = {"sim.engine.events_per_sec": events_per_sec}
        for name, fn in self._samplers:
            values[name] = fn()
        self.timeseries.append(now_ns, values)
        if self.metrics.enabled:
            for name, value in values.items():
                self.metrics.gauge(name).set(value)
        for fn in self._after_tick:
            fn()
        self.ticks += 1
        if self.live:
            self._emit_progress(now_ns, events_per_sec, wall_delta_s)
        next_ns = now_ns + self.heartbeat_ns
        if self._until_ns is None or next_ns <= self._until_ns:
            engine.after(self.heartbeat_ns, self._tick)
        elif self.live:
            self.stream.write("\n")

    def _emit_progress(self, now_ns: int, events_per_sec: float, wall_delta_s: float) -> None:
        parts = [f"t={now_ns / 1e6:.3f}ms", f"{events_per_sec:,.0f} ev/s"]
        until_ns = self._until_ns
        if until_ns and wall_delta_s > 0:
            sim_ns_per_wall_s = self.heartbeat_ns / wall_delta_s
            if sim_ns_per_wall_s > 0:
                eta_s = (until_ns - now_ns) / sim_ns_per_wall_s
                parts.append(f"eta {eta_s:.1f}s")
        self.stream.write("\r[telemetry] " + "  ".join(parts) + " ")
        flush = getattr(self.stream, "flush", None)
        if flush is not None:
            flush()

    @property
    def wall_elapsed_s(self) -> float:
        if self._wall_start is None:
            return 0.0
        return time.perf_counter() - self._wall_start  # simlint: allow-wallclock


def attach_run_telemetry(
    engine,
    fabric,
    *,
    heartbeat_ns: int,
    metrics=NULL_METRICS,
    live: bool = False,
    until_ns: Optional[int] = None,
    stream=None,
) -> RunTelemetry:
    """Build a :class:`RunTelemetry` wired with the standard fabric
    probes and counter syncing, and start its heartbeat."""
    telemetry = RunTelemetry(
        engine, heartbeat_ns=heartbeat_ns, metrics=metrics, live=live, stream=stream
    )
    for name, fn in fabric_samplers(engine, fabric):
        telemetry.add_sampler(name, fn)
    telemetry.on_tick(lambda: sync_component_totals(engine, fabric, metrics))
    telemetry.start(until_ns=until_ns)
    return telemetry
