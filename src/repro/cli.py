"""Command-line interface: ``repro-qos`` (or ``python -m repro``).

Subcommands:

- ``run``       -- one simulation (architecture x load x topology), print the
                   per-class QoS summary (``--json`` for machine-readable).
- ``figure``    -- regenerate one of the paper's figures (fig2 / fig3 / fig4)
                   as a text table + CDF series; ``--out fig.csv|fig.json``
                   exports the series.
- ``claims``    -- print the headline order-error penalties vs Ideal.
- ``cost``      -- the Section 6 cost comparison: comparator operations per
                   forwarded packet and static hardware per architecture.
- ``replicate`` -- run one configuration across several seeds and print
                   means with 95% confidence intervals.
- ``utilization`` -- run the mix and print the hottest links, per-tier
                   loads, and the spine-layer fairness index.
- ``metrics``   -- pretty-print one metrics snapshot (from ``run
                   --metrics-out``) or diff two; ``--schema`` validates.
- ``trace``     -- span-trace analysis over a ``run --trace-spans`` dump:
                   ``trace blame`` attributes missed-deadline slack to
                   lifecycle stages; ``trace export`` converts to Chrome
                   trace-event JSON (Perfetto-loadable).
- ``list``      -- enumerate architectures and topology presets.

Examples::

    repro-qos run --arch advanced-2vc --load 0.8 --topology small
    repro-qos figure fig2 --loads 0.4 0.8 1.0 --topology tiny --out fig2.csv
    repro-qos claims --load 1.0
    repro-qos replicate --arch simple-2vc --seeds 1 2 3 4 5
    repro-qos run --load 1.0 --trace-spans spans.jsonl && \\
        repro-qos trace blame spans.jsonl
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.core.architectures import ARCHITECTURES
from repro.experiments.config import ExperimentConfig, scaled_video_mix
from repro.experiments.figures import (
    DEFAULT_ARCHS,
    fig2_control,
    fig3_video,
    fig4_best_effort,
    order_error_penalties,
)
from repro.experiments.presets import TOPOLOGY_PRESETS
from repro.experiments.runner import run_experiment
from repro.sim import units

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-qos",
        description="Deadline-based QoS for high-performance networks (IPPS 2007 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--topology",
            default="small",
            choices=sorted(TOPOLOGY_PRESETS),
            help="network scale preset (default: small; 'paper' = 128 endpoints)",
        )
        p.add_argument("--seed", type=int, default=1)
        p.add_argument(
            "--warmup-us", type=float, default=400.0, help="warm-up window (microseconds)"
        )
        p.add_argument(
            "--measure-us",
            type=float,
            default=1500.0,
            help="measurement window (microseconds)",
        )
        p.add_argument(
            "--time-scale",
            type=float,
            default=0.02,
            help="video time compression (1.0 = paper's real 25 fps / 10 ms target)",
        )

    def parallel(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--jobs",
            type=int,
            default=1,
            metavar="N",
            help="simulations to run in parallel (process pool; default: 1 = "
            "in-process; output is byte-identical at any job count)",
        )
        p.add_argument(
            "--cache-dir",
            default=None,
            metavar="DIR",
            help="content-addressed result cache; warm re-runs replay "
            "finished sweep points without simulating",
        )

    run_p = sub.add_parser("run", help="run one simulation and print per-class QoS")
    run_p.add_argument("--arch", default="advanced-2vc", choices=sorted(ARCHITECTURES))
    run_p.add_argument("--load", type=float, default=1.0)
    run_p.add_argument("--json", action="store_true", help="emit JSON instead of a table")
    run_p.add_argument(
        "--metrics-out",
        default=None,
        metavar="FILE",
        help="enable the metrics registry and write the JSON snapshot here",
    )
    run_p.add_argument(
        "--trace-out",
        default=None,
        metavar="FILE",
        help="enable event tracing (ring buffer, newest kept) and write it "
        "as JSONL here",
    )
    run_p.add_argument(
        "--trace-capacity",
        type=int,
        default=100_000,
        metavar="N",
        help="trace ring-buffer size in records (default: 100000)",
    )
    run_p.add_argument(
        "--trace-spans",
        default=None,
        metavar="FILE",
        help="enable span-based packet-lifecycle tracing and write the "
        "retained span chains as JSONL here (see `repro-qos trace`)",
    )
    run_p.add_argument(
        "--span-policy",
        choices=["tail", "head"],
        default="tail",
        help="span sampling policy: 'tail' retains only deadline misses, "
        "'head' samples per-flow at --span-rate (default: tail)",
    )
    run_p.add_argument(
        "--span-rate",
        type=float,
        default=0.01,
        metavar="P",
        help="head-sampling probability per packet in [0, 1] "
        "(default: 0.01; ignored under --span-policy tail)",
    )
    run_p.add_argument(
        "--span-capacity",
        type=int,
        default=4096,
        metavar="N",
        help="span-trace ring size in packets, newest kept (default: 4096)",
    )
    run_p.add_argument(
        "--trace-chrome",
        default=None,
        metavar="FILE",
        help="also write the retained spans as Chrome trace-event JSON "
        "(load in Perfetto / chrome://tracing)",
    )
    run_p.add_argument(
        "--heartbeat-us",
        type=float,
        default=200.0,
        metavar="US",
        help="telemetry sampling interval in simulated microseconds "
        "(default: 200; used when --metrics-out or --live is on)",
    )
    run_p.add_argument(
        "--live",
        action="store_true",
        help="print a live progress line (sim-time, events/sec, ETA) to stderr",
    )
    common(run_p)

    fig_p = sub.add_parser("figure", help="regenerate a figure from the paper")
    fig_p.add_argument("figure", choices=["fig2", "fig3", "fig4"])
    fig_p.add_argument(
        "--loads", type=float, nargs="+", default=[0.2, 0.4, 0.6, 0.8, 1.0]
    )
    fig_p.add_argument(
        "--archs", nargs="+", default=list(DEFAULT_ARCHS), choices=sorted(ARCHITECTURES)
    )
    fig_p.add_argument(
        "--out", default=None, help="also export the series (.csv or .json)"
    )
    common(fig_p)
    parallel(fig_p)

    claims_p = sub.add_parser(
        "claims", help="order-error latency penalties vs the Ideal architecture"
    )
    claims_p.add_argument("--load", type=float, default=1.0)
    common(claims_p)
    parallel(claims_p)

    cost_p = sub.add_parser(
        "cost", help="comparator work and hardware per architecture (Section 6)"
    )
    cost_p.add_argument("--load", type=float, default=1.0)
    common(cost_p)

    rep_p = sub.add_parser(
        "replicate", help="one configuration across seeds, with 95% CIs"
    )
    rep_p.add_argument("--arch", default="advanced-2vc", choices=sorted(ARCHITECTURES))
    rep_p.add_argument("--load", type=float, default=1.0)
    rep_p.add_argument("--seeds", type=int, nargs="+", default=[1, 2, 3])
    common(rep_p)
    parallel(rep_p)

    util_p = sub.add_parser(
        "utilization", help="link loads, hotspots, and spine fairness"
    )
    util_p.add_argument("--arch", default="advanced-2vc", choices=sorted(ARCHITECTURES))
    util_p.add_argument("--load", type=float, default=1.0)
    util_p.add_argument("--hotspots", type=int, default=8)
    common(util_p)

    sub.add_parser("list", help="list architectures and topology presets")

    met_p = sub.add_parser(
        "metrics", help="pretty-print one metrics snapshot or diff two"
    )
    met_p.add_argument(
        "snapshots",
        nargs="+",
        metavar="SNAPSHOT",
        help="one snapshot file to pretty-print, or two to diff",
    )
    met_p.add_argument(
        "--schema",
        default=None,
        metavar="FILE",
        help="validate the snapshot(s) against this JSON schema first "
        "(e.g. docs/metrics_schema.json); exit 1 on violations",
    )

    trace_p = sub.add_parser(
        "trace", help="analyze a span-trace dump from `run --trace-spans`"
    )
    trace_sub = trace_p.add_subparsers(dest="trace_command", required=True)
    blame_p = trace_sub.add_parser(
        "blame",
        help="attribute missed-deadline slack to lifecycle stages per class",
    )
    blame_p.add_argument("spans", metavar="SPANS_JSONL")
    blame_p.add_argument(
        "--top",
        type=int,
        default=5,
        metavar="N",
        help="node-level hotspot sites to list per class (default: 5)",
    )
    blame_p.add_argument(
        "--all",
        action="store_true",
        help="attribute every retained trace, not just deadline misses "
        "(useful with head sampling, which retains hits too)",
    )
    blame_p.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )
    export_p = trace_sub.add_parser(
        "export",
        help="convert a span-trace dump to Chrome trace-event JSON",
    )
    export_p.add_argument("spans", metavar="SPANS_JSONL")
    export_p.add_argument(
        "-o",
        "--out",
        default="trace.json",
        metavar="FILE",
        help="Chrome trace-event output path (default: trace.json)",
    )

    lint_p = sub.add_parser(
        "lint", help="run simlint (simulator-specific static analysis)"
    )
    lint_p.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    lint_p.add_argument(
        "--format",
        choices=["text", "json", "sarif"],
        default="text",
        help="output format (default: text; sarif emits SARIF 2.1.0 for "
        "code-scanning dashboards)",
    )
    lint_p.add_argument(
        "--select",
        default=None,
        help="comma-separated rule ids or prefixes to run (default: all), "
        "e.g. SIM001,SIM104 or SIM4 for the whole temporal family",
    )
    lint_p.add_argument(
        "--ignore",
        default=None,
        help="comma-separated rule ids or prefixes to skip, subtracted "
        "from the --select set (or from all rules), e.g. SIM103,SIM3",
    )
    lint_p.add_argument(
        "--list-rules", action="store_true", help="list the registered rules and exit"
    )
    lint_p.add_argument(
        "--project",
        action="store_true",
        help="build the whole-program model and run the cross-module "
        "SIM1xx rules in addition to the per-file rules",
    )
    lint_p.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="incremental cache directory for --project runs (a warm run "
        "over an unchanged tree re-parses zero files)",
    )
    lint_p.add_argument(
        "--explain",
        default=None,
        metavar="RULE",
        help="print a rule's description, rationale, and a minimal "
        "bad/good example, then exit (e.g. --explain SIM101)",
    )
    lint_p.add_argument(
        "--fix",
        action="store_true",
        help="apply the machine-applicable fixes some findings carry "
        "(lift submitted lambdas, hash() -> stable_hash()), then re-lint",
    )
    lint_p.add_argument(
        "--dry-run",
        action="store_true",
        help="with --fix: print the unified diffs instead of writing files",
    )
    lint_p.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help="suppress (but count) the findings recorded in FILE; the "
        "gate fails only on findings not in the baseline",
    )
    lint_p.add_argument(
        "--update-baseline",
        action="store_true",
        help="snapshot the current findings into the baseline file "
        "(--baseline FILE, default lint-baseline.json) and exit 0",
    )
    lint_p.add_argument(
        "--profile",
        default=None,
        metavar="PSTATS",
        help="with --project: rank SIM3xx findings by the cumulative "
        "time in this cProfile/pstats dump (see `repro-qos profile "
        "run`); top-decile findings are flagged hot:, unmeasured ones "
        "demoted to notes and excluded from the exit gate",
    )
    lint_p.add_argument(
        "--memprofile",
        default=None,
        metavar="JSON",
        help="with --project: rank SIM5xx findings by the bytes "
        "measured in this tracemalloc dump (see `repro-qos profile "
        "mem`); top-decile findings are flagged hot:, unmeasured ones "
        "demoted to notes and excluded from the exit gate",
    )

    prof_p = sub.add_parser(
        "profile",
        help="produce the dumps `lint --profile`/`--memprofile` rank by",
    )
    prof_sub = prof_p.add_subparsers(dest="profile_command", required=True)
    prof_run_p = prof_sub.add_parser(
        "run", help="run one simulation under cProfile and dump pstats"
    )
    prof_run_p.add_argument(
        "--arch", default="advanced-2vc", choices=sorted(ARCHITECTURES)
    )
    prof_run_p.add_argument("--load", type=float, default=1.0)
    prof_run_p.add_argument(
        "-o",
        "--out",
        default="prof.pstats",
        metavar="FILE",
        help="pstats dump path (default: prof.pstats)",
    )
    common(prof_run_p)
    prof_mem_p = prof_sub.add_parser(
        "mem",
        help="run one simulation under tracemalloc and dump per-site "
        "allocations as JSON",
    )
    prof_mem_p.add_argument(
        "--arch", default="advanced-2vc", choices=sorted(ARCHITECTURES)
    )
    prof_mem_p.add_argument("--load", type=float, default=1.0)
    prof_mem_p.add_argument(
        "--top",
        type=int,
        default=512,
        metavar="N",
        help="keep the N largest allocation sites (default: 512)",
    )
    prof_mem_p.add_argument(
        "-o",
        "--out",
        default="mem.json",
        metavar="FILE",
        help="JSON dump path (default: mem.json)",
    )
    common(prof_mem_p)
    return parser


def _config_from(args: argparse.Namespace, *, arch: str, load: float) -> ExperimentConfig:
    return ExperimentConfig(
        architecture=arch,
        load=load,
        seed=args.seed,
        topology=args.topology,
        warmup_ns=units.us(args.warmup_us),
        measure_ns=units.us(args.measure_us),
        mix=scaled_video_mix(load, args.time_scale),
    )


def _cmd_run(args: argparse.Namespace) -> int:
    metrics = None
    trace = None
    tracer = None
    if args.metrics_out or args.live:
        from repro.obs.metrics import MetricsRegistry

        metrics = MetricsRegistry()
    if args.trace_out:
        from repro.sim.monitor import Trace

        trace = Trace(capacity=args.trace_capacity, ring=True)
    if args.trace_spans or args.trace_chrome:
        from repro.obs.metrics import NULL_METRICS
        from repro.obs.tracing import PacketTracer

        try:
            tracer = PacketTracer(
                policy=args.span_policy,
                rate=args.span_rate,
                capacity=args.span_capacity,
                seed=args.seed,
                metrics=metrics if metrics is not None else NULL_METRICS,
            )
        except ValueError as exc:
            print(f"repro-qos run: {exc}", file=sys.stderr)
            return 2
    observing = metrics is not None or args.live
    result = run_experiment(
        _config_from(args, arch=args.arch, load=args.load),
        metrics=metrics,
        trace=trace,
        tracer=tracer,
        heartbeat_ns=units.us(args.heartbeat_us) if observing else None,
        live_progress=args.live,
    )
    if args.json:
        from repro.experiments.export import result_to_json

        print(result_to_json(result))
    else:
        print(result.summary())
    if args.metrics_out:
        from repro.obs.snapshot import dump_snapshot, run_snapshot

        doc = run_snapshot(
            metrics,
            engine=result.fabric.engine,
            telemetry=result.telemetry,
            trace=trace,
            tracer=tracer,
            run_info={
                "architecture": args.arch,
                "load": args.load,
                "topology": args.topology,
                "seed": args.seed,
                "warmup_us": args.warmup_us,
                "measure_us": args.measure_us,
                "time_scale": args.time_scale,
            },
        )
        with open(args.metrics_out, "w", encoding="utf-8") as fp:
            dump_snapshot(doc, fp)
        # status goes to stderr so --json stdout stays parseable
        print(f"[metrics snapshot written to {args.metrics_out}]", file=sys.stderr)
    if args.trace_out:
        from repro.obs.snapshot import write_trace_jsonl

        with open(args.trace_out, "w", encoding="utf-8") as fp:
            written = write_trace_jsonl(trace, fp)
        print(
            f"[trace written to {args.trace_out}: {written} records, "
            f"{trace.dropped} dropped]",
            file=sys.stderr,
        )
    if args.trace_spans:
        from repro.obs.tracing import write_spans_jsonl

        with open(args.trace_spans, "w", encoding="utf-8") as fp:
            written = write_spans_jsonl(tracer, fp)
        print(
            f"[span traces written to {args.trace_spans}: {written} retained "
            f"({tracer.misses} misses, {tracer.dropped} dropped)]",
            file=sys.stderr,
        )
    if args.trace_chrome:
        from repro.obs.tracing import write_chrome_trace

        with open(args.trace_chrome, "w", encoding="utf-8") as fp:
            events = write_chrome_trace(
                tracer.records,
                fp,
                run_info={
                    "architecture": args.arch,
                    "load": args.load,
                    "topology": args.topology,
                    "seed": args.seed,
                },
            )
        print(
            f"[chrome trace written to {args.trace_chrome}: {events} span "
            "events; load in Perfetto or chrome://tracing]",
            file=sys.stderr,
        )
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    import json

    from repro.obs.tracing import read_spans_jsonl

    try:
        header, traces = read_spans_jsonl(args.spans)
    except (OSError, ValueError, KeyError, json.JSONDecodeError) as exc:
        print(f"repro-qos trace: {exc}", file=sys.stderr)
        return 2
    if args.trace_command == "export":
        from repro.obs.tracing import write_chrome_trace

        with open(args.out, "w", encoding="utf-8") as fp:
            events = write_chrome_trace(traces, fp, run_info={"source": args.spans})
        print(
            f"[chrome trace written to {args.out}: {events} span events "
            f"from {len(traces)} packet(s)]",
            file=sys.stderr,
        )
        return 0
    from repro.obs.blame import analyze_blame

    try:
        report = analyze_blame(traces, missed_only=not args.all, top=args.top)
    except ValueError as exc:
        print(f"repro-qos trace blame: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(report.format_json(), end="")
    else:
        policy = header.get("policy", "?")
        print(f"[{len(traces)} retained trace(s), policy {policy}]", file=sys.stderr)
        print(report.format(), end="")
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    import json

    from repro.obs.snapshot import diff_snapshots, format_diff, format_snapshot, load_snapshot

    if len(args.snapshots) > 2:
        print(
            "repro-qos metrics: expected one snapshot (print) or two (diff), "
            f"got {len(args.snapshots)}",
            file=sys.stderr,
        )
        return 2
    try:
        docs = [load_snapshot(path) for path in args.snapshots]
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"repro-qos metrics: {exc}", file=sys.stderr)
        return 2
    if args.schema:
        from repro.obs.schema import validate

        try:
            with open(args.schema, "r", encoding="utf-8") as fp:
                schema = json.load(fp)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"repro-qos metrics: cannot load schema: {exc}", file=sys.stderr)
            return 2
        failed = False
        for path, doc in zip(args.snapshots, docs):
            errors = validate(doc, schema)
            for error in errors:
                print(f"{path}: {error}", file=sys.stderr)
            failed = failed or bool(errors)
        if failed:
            return 1
        print(f"[schema ok: {', '.join(args.snapshots)}]", file=sys.stderr)
    if len(docs) == 1:
        print(format_snapshot(docs[0]))
    else:
        diff = diff_snapshots(docs[0], docs[1])
        print(format_diff(diff, label_a=args.snapshots[0], label_b=args.snapshots[1]))
    return 0


def _sweep_executor(args: argparse.Namespace):
    """The campaign executor for one CLI invocation (--jobs/--cache-dir)."""
    from repro.exec.executor import SweepExecutor

    return SweepExecutor(jobs=args.jobs, cache_dir=args.cache_dir)


def _print_sweep_stats(executor) -> None:
    # stats go to stderr so stdout stays byte-identical at any --jobs
    # (and CI can grep the warm-run cache-hit count here)
    stats = executor.stats()
    print(
        f"[sweep: {stats['tasks']} points, {stats['cache_hits']} cached, "
        f"{stats['executed']} executed, jobs={stats['jobs']}]",
        file=sys.stderr,
    )


def _cmd_figure(args: argparse.Namespace) -> int:
    executor = _sweep_executor(args)
    kwargs = dict(
        archs=tuple(args.archs),
        loads=tuple(args.loads),
        topology=args.topology,
        seed=args.seed,
        executor=executor,
    )
    if args.figure == "fig2":
        series = fig2_control(
            warmup_ns=units.us(args.warmup_us),
            measure_ns=units.us(args.measure_us),
            **kwargs,
        )
    elif args.figure == "fig3":
        series = fig3_video(time_scale=args.time_scale, **kwargs)
    else:
        series = fig4_best_effort(
            warmup_ns=units.us(args.warmup_us),
            measure_ns=units.us(args.measure_us),
            **kwargs,
        )
    print(series.text())
    if args.out:
        from repro.experiments.export import write_figure

        path = write_figure(series, args.out)
        print(f"\n[series exported to {path}]")
    _print_sweep_stats(executor)
    return 0


def _cmd_cost(args: argparse.Namespace) -> int:
    from repro.analysis import measure_scheduling_cost
    from repro.experiments.presets import make_topology
    from repro.stats.report import format_table

    rows = []
    for name in ("traditional-2vc", "simple-2vc", "advanced-2vc", "ideal"):
        report = measure_scheduling_cost(
            ARCHITECTURES[name],
            topology=make_topology(args.topology),
            seed=args.seed,
            horizon_ns=units.us(args.measure_us),
            mix_config=scaled_video_mix(args.load, args.time_scale),
        )
        rows.append(report.row())
    print(
        format_table(
            [
                "architecture",
                "packets",
                "comparisons/pkt",
                "FIFO mems/port",
                "sorting HW",
                "arbiter comparators",
            ],
            rows,
            title="Scheduling cost (Section 6)",
        )
    )
    return 0


def _cmd_replicate(args: argparse.Namespace) -> int:
    from repro.experiments.replication import replicate

    config = _config_from(args, arch=args.arch, load=args.load)
    executor = _sweep_executor(args)
    replication = replicate(config, args.seeds, executor=executor)
    print(
        f"{ARCHITECTURES[args.arch].label}  load={args.load:.0%}  "
        f"{len(args.seeds)} seeds {tuple(args.seeds)}\n"
    )
    for tclass in ("control", "multimedia", "best-effort", "background"):
        try:
            latency = replication.mean_latency(tclass)
            throughput = replication.throughput(tclass)
        except KeyError:
            continue
        lat_lo, lat_hi = latency.ci95
        tput_lo, tput_hi = throughput.ci95
        print(
            f"  {tclass:<12} latency {latency.mean / 1e3:9.2f} us "
            f"[{lat_lo / 1e3:.2f}, {lat_hi / 1e3:.2f}]   "
            f"throughput {throughput.mean:7.3f} B/ns "
            f"[{tput_lo:.3f}, {tput_hi:.3f}]"
        )
    _print_sweep_stats(executor)
    return 0


def _cmd_claims(args: argparse.Namespace) -> int:
    executor = _sweep_executor(args)
    penalties = order_error_penalties(
        load=args.load,
        topology=args.topology,
        seed=args.seed,
        warmup_ns=units.us(args.warmup_us),
        measure_ns=units.us(args.measure_us),
        executor=executor,
    )
    print("Control-traffic mean latency relative to Ideal (paper: Simple ~1.25, Advanced ~1.05):")
    for arch, factor in penalties.items():
        print(f"  {ARCHITECTURES[arch].label:<18} x{factor:.3f}")
    _print_sweep_stats(executor)
    return 0


def _cmd_utilization(args: argparse.Namespace) -> int:
    from repro.analysis import measure_utilization

    result = run_experiment(_config_from(args, arch=args.arch, load=args.load))
    horizon = result.config.end_ns
    report = measure_utilization(result.fabric, horizon)
    print(report.table(args.hotspots))
    print(
        f"\nspine-layer fairness index (Jain): "
        f"{report.fairness_index('fabric-up'):.3f}  (1.0 = perfectly balanced)"
    )
    return 0


def _cmd_list() -> int:
    print("Architectures (Section 4.1):")
    for name, arch in ARCHITECTURES.items():
        print(f"  {name:<16} {arch.label}")
    print("\nTopology presets:")
    for name, (leaves, hosts, spines) in TOPOLOGY_PRESETS.items():
        print(
            f"  {name:<8} {leaves * hosts:>4} hosts "
            f"({leaves} leaves x {hosts} hosts, {spines} spines)"
        )
    return 0


def _fixture_examples(rule_id: str):
    """(label, text) pairs for a rule's bad/good fixtures, if the
    fixture tree is on disk (repo checkouts; not installed packages)."""
    from pathlib import Path

    candidates = [
        Path("tests/lint/fixtures"),
        Path(__file__).resolve().parents[2] / "tests" / "lint" / "fixtures",
    ]
    fixtures = next((c for c in candidates if c.is_dir()), None)
    if fixtures is None:
        return []
    stem = rule_id.lower()
    examples = []
    for kind in ("bad", "good"):
        for match in sorted(fixtures.glob(f"**/{kind}/**/{stem}_*")) + sorted(
            fixtures.glob(f"**/{kind}/{stem}_*")
        ):
            files = (
                sorted(p for p in match.rglob("*.py"))
                if match.is_dir()
                else [match]
            )
            for file_path in files:
                try:
                    text = file_path.read_text(encoding="utf-8")
                except OSError:
                    continue
                examples.append((kind, str(file_path), text))
            break  # one fixture (file or tree) per kind is plenty
    return examples


def _cmd_lint_explain(query: str) -> int:
    from repro.lint import PROJECT_RULES, RULES

    all_rules = {**RULES, **PROJECT_RULES}
    wanted = query.strip()
    rule = all_rules.get(wanted.upper()) or next(
        (r for r in all_rules.values() if r.name == wanted.lower()), None
    )
    if rule is None:
        known = ", ".join(sorted(all_rules))
        print(f"repro-qos lint: unknown rule {query!r} (known: {known})", file=sys.stderr)
        return 2
    print(f"{rule.id} [{rule.name}]  (suppress: # simlint: allow-{rule.name})")
    print(f"  {rule.description}")
    if rule.rationale:
        print(f"\nRationale:\n  {rule.rationale}")
    examples = _fixture_examples(rule.id)
    if examples:
        for kind, path, text in examples:
            print(f"\n{kind.capitalize()} example ({path}):")
            for line in text.rstrip().splitlines():
                print(f"  {line}")
    else:
        for kind, text in (("Bad", rule.example_bad), ("Good", rule.example_good)):
            if text:
                print(f"\n{kind} example:")
                for line in text.rstrip().splitlines():
                    print(f"  {line}")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    import json

    from repro.lint import PROJECT_RULES, RULES, lint_paths, lint_project

    if args.explain:
        return _cmd_lint_explain(args.explain)
    if args.list_rules:
        for registry in (RULES, PROJECT_RULES):
            for rule_id in sorted(registry):
                rule = registry[rule_id]
                print(f"{rule.id}  allow-{rule.name:<28} {rule.description}")
        return 0
    select = args.select.split(",") if args.select else None
    ignore = args.ignore.split(",") if args.ignore else None
    if args.profile and not args.project:
        print(
            "repro-qos lint: --profile requires --project "
            "(the SIM3xx rules it ranks are project rules)",
            file=sys.stderr,
        )
        return 2
    if args.memprofile and not args.project:
        print(
            "repro-qos lint: --memprofile requires --project "
            "(the SIM5xx rules it ranks are project rules)",
            file=sys.stderr,
        )
        return 2

    def run_lint():
        if args.project:
            return lint_project(
                args.paths,
                cache_dir=args.cache_dir,
                select=select,
                ignore=ignore,
                profile=args.profile,
                memprofile=args.memprofile,
            )
        return lint_paths(args.paths, select=select, ignore=ignore), None

    cache_stats = None
    try:
        violations, cache_stats = run_lint()

        fix_report = None
        if args.fix:
            from repro.lint import apply_fixes

            fix_report = apply_fixes(violations, dry_run=args.dry_run)
            if fix_report.files_changed and not args.dry_run:
                # The gate and the output must describe the *fixed* tree.
                violations, cache_stats = run_lint()
    except (FileNotFoundError, KeyError, ValueError) as exc:
        print(f"repro-qos lint: {exc}", file=sys.stderr)
        return 2

    baselined = []
    if args.update_baseline:
        from repro.lint import Baseline

        baseline_path = args.baseline or "lint-baseline.json"
        Baseline.from_violations(violations).save(baseline_path)
        print(
            f"repro-qos lint: baselined {len(violations)} finding(s) "
            f"into {baseline_path}",
            file=sys.stderr,
        )
        violations, baselined = [], violations
    elif args.baseline:
        from repro.lint import Baseline

        baseline = Baseline.load(args.baseline)
        violations, baselined = baseline.partition(violations)

    if args.format == "sarif":
        from repro.lint import to_sarif

        print(json.dumps(to_sarif(violations, suppressed=baselined), indent=2))
    elif args.format == "json":
        payload = {
            "violations": [v.to_dict() for v in violations],
            "count": len(violations),
        }
        if args.baseline or args.update_baseline:
            payload["baselined"] = len(baselined)
        if fix_report is not None:
            payload["fixes"] = fix_report.to_dict()
        if cache_stats is not None:
            cache_stats = dict(cache_stats)
            profile_stats = cache_stats.pop("profile", None)
            if profile_stats is not None:
                payload["profile"] = profile_stats
            memprofile_stats = cache_stats.pop("memprofile", None)
            if memprofile_stats is not None:
                payload["memprofile"] = memprofile_stats
            payload["cache"] = cache_stats
        print(json.dumps(payload, indent=2))
    else:
        if fix_report is not None:
            if args.dry_run:
                for path in fix_report.files_changed:
                    print(fix_report.diffs[path], end="")
            for note in fix_report.notes:
                verb = "would fix" if args.dry_run else "fixed"
                print(f"{verb} {note}", file=sys.stderr)
        for violation in violations:
            print(violation.format())
        if violations:
            suffix = f" ({len(baselined)} baselined)" if baselined else ""
            print(f"\n{len(violations)} violation(s) found{suffix}")
        elif baselined:
            print(
                f"no new violations ({len(baselined)} baselined)",
                file=sys.stderr,
            )
        if cache_stats is not None:
            print(
                f"[project: {cache_stats['files']} files, "
                f"{cache_stats['hits']} cached, "
                f"{cache_stats['misses']} parsed]",
                file=sys.stderr,
            )
            profile_stats = cache_stats.get("profile")
            if profile_stats is not None:
                print(
                    f"[profile: {profile_stats['total_seconds']}s total, "
                    f"{profile_stats['matched']}/{profile_stats['ranked']} "
                    f"findings measured: {profile_stats['hot']} hot, "
                    f"{profile_stats['warm']} warm, "
                    f"{profile_stats['cold']} cold]",
                    file=sys.stderr,
                )
            memprofile_stats = cache_stats.get("memprofile")
            if memprofile_stats is not None:
                print(
                    f"[memprofile: {memprofile_stats['total_bytes']} bytes "
                    f"total, "
                    f"{memprofile_stats['matched']}/{memprofile_stats['ranked']} "
                    f"findings measured: {memprofile_stats['hot']} hot, "
                    f"{memprofile_stats['warm']} warm, "
                    f"{memprofile_stats['cold']} cold]",
                    file=sys.stderr,
                )
    # Cold findings are profile-demoted notes: reported, but they never
    # fail the gate -- the whole point of ranking by measured cost.
    gating = [
        v for v in violations if (v.profile or {}).get("bucket") != "cold"
    ]
    return 1 if gating else 0


def _cmd_profile_run(args: argparse.Namespace) -> int:
    import cProfile

    from repro.exec.summary import execute_config

    config = _config_from(args, arch=args.arch, load=args.load)
    profiler = cProfile.Profile()
    profiler.enable()
    summary = execute_config(config)
    profiler.disable()
    profiler.dump_stats(args.out)
    print(
        f"repro-qos profile: {summary.events_executed} events in "
        f"{summary.wall_seconds:.3f}s wall -> {args.out}",
        file=sys.stderr,
    )
    return 0


def _cmd_profile_mem(args: argparse.Namespace) -> int:
    import json
    import tracemalloc

    from repro.exec.summary import execute_config

    config = _config_from(args, arch=args.arch, load=args.load)
    tracemalloc.start()
    try:
        summary = execute_config(config)
        snapshot = tracemalloc.take_snapshot()
        _, peak_bytes = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    stats = snapshot.statistics("lineno")
    sites = [
        {
            "file": stat.traceback[0].filename,
            "line": stat.traceback[0].lineno,
            "size_bytes": stat.size,
            "count": stat.count,
        }
        for stat in stats[: max(0, args.top)]
        if not stat.traceback[0].filename.startswith("<")
    ]
    payload = {
        "schema": "simlint-memprofile/v1",
        "total_bytes": sum(stat.size for stat in stats),
        "peak_bytes": peak_bytes,
        "events_executed": summary.events_executed,
        "sites": sites,
    }
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(
        f"repro-qos profile: {summary.events_executed} events, "
        f"{payload['total_bytes']} bytes live across {len(sites)} sites "
        f"(peak {peak_bytes}) -> {args.out}",
        file=sys.stderr,
    )
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "figure":
        return _cmd_figure(args)
    if args.command == "claims":
        return _cmd_claims(args)
    if args.command == "cost":
        return _cmd_cost(args)
    if args.command == "replicate":
        return _cmd_replicate(args)
    if args.command == "utilization":
        return _cmd_utilization(args)
    if args.command == "list":
        return _cmd_list()
    if args.command == "metrics":
        return _cmd_metrics(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "lint":
        return _cmd_lint(args)
    if args.command == "profile":
        if args.profile_command == "mem":
            return _cmd_profile_mem(args)
        return _cmd_profile_run(args)
    raise AssertionError(f"unhandled command {args.command}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
