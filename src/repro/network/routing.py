"""Fixed source routing over the MIN (up*/down* paths).

The paper mandates fixed routing: packets follow the exact path their
flow reserved, so admission control's bandwidth accounting holds and
packets of a flow can never overtake each other on different paths.

In a folded MIN / fat-tree, all minimal host-to-host paths go *up* to a
common-ancestor stage and then *down* -- the classic deadlock-free
up*/down* discipline.  :func:`compute_updown_paths` enumerates those
minimal paths (one per choice of ancestor switch), and
:class:`RoutingTable` caches them per host pair and converts them to:

- ``ports``: the output-port index to take at each *switch* (the source
  route carried in the packet header), and
- ``links``: the directed link ids (``(node, port)`` of the sending
  side) used by the admission controller's bandwidth ledger -- including
  the host's injection link and the final link down to the destination
  host.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.network.topology import Topology, TopologyError

__all__ = ["RoutePath", "RoutingTable", "compute_updown_paths"]

LinkId = Tuple[str, int]  # (sending node, sending port)


@dataclass(frozen=True)
class RoutePath:
    """One fixed path between two hosts."""

    src: int
    dst: int
    #: node ids visited, host to host inclusive.
    nodes: Tuple[str, ...]
    #: output port at each switch along the way (the packet's source route).
    ports: Tuple[int, ...]
    #: directed links traversed, as (sender node, sender port).
    links: Tuple[LinkId, ...]

    @property
    def hops(self) -> int:
        """Number of switches traversed."""
        return len(self.ports)


def _paths_up_down(topo: Topology, src_host: str, dst_host: str) -> List[Tuple[str, ...]]:
    """All minimal up*/down* node sequences between two distinct hosts.

    Walks up from both hosts simultaneously; at the first stage where the
    two ascents can meet in a common switch, each such switch yields one
    path.  In a (folded) MIN the up-neighbour sets are deterministic, so
    this enumerates exactly the minimal paths without a graph search.
    """
    (src_attach,) = [ref for ref in topo.ports[src_host] if ref is not None]
    (dst_attach,) = [ref for ref in topo.ports[dst_host] if ref is not None]
    up_from_src: List[Tuple[str, ...]] = [(src_host, src_attach[0])]
    up_from_dst: List[Tuple[str, ...]] = [(dst_host, dst_attach[0])]

    for _stage in range(len(topo.switch_ids) + 1):
        # Can any src-ascent meet any dst-ascent at its last switch?
        dst_tails: Dict[str, Tuple[str, ...]] = {}
        for d_path in up_from_dst:
            # Keep the first (deterministic) ascent per meeting switch.
            dst_tails.setdefault(d_path[-1], d_path)
        found: List[Tuple[str, ...]] = []
        for s_path in up_from_src:
            meet = s_path[-1]
            if meet in dst_tails:
                down = dst_tails[meet]
                found.append(s_path + tuple(reversed(down[:-1])))
        if found:
            return found

        def ascend(paths: List[Tuple[str, ...]]) -> List[Tuple[str, ...]]:
            grown: List[Tuple[str, ...]] = []
            for path in paths:
                node = path[-1]
                level = topo.levels[node]
                for neighbor in topo.neighbors(node):
                    if not topo.is_host(neighbor) and topo.levels[neighbor] == level + 1:
                        grown.append(path + (neighbor,))
            return grown

        up_from_src = ascend(up_from_src)
        up_from_dst = ascend(up_from_dst)
        if not up_from_src or not up_from_dst:
            break
    raise TopologyError(f"no up*/down* path between {src_host} and {dst_host}")


def compute_updown_paths(topo: Topology, src: int, dst: int) -> Tuple[RoutePath, ...]:
    """All minimal fixed paths from host index ``src`` to host index ``dst``."""
    if src == dst:
        raise ValueError(f"src and dst are the same host ({src})")
    src_host = topo.host_id(src)
    dst_host = topo.host_id(dst)
    routes: List[RoutePath] = []
    for nodes in _paths_up_down(topo, src_host, dst_host):
        ports: List[int] = []
        links: List[LinkId] = []
        for here, there in zip(nodes, nodes[1:]):
            out_port = topo.port_to(here, there)
            links.append((here, out_port))
            if not topo.is_host(here):
                ports.append(out_port)
        routes.append(
            RoutePath(
                src=src,
                dst=dst,
                nodes=tuple(nodes),
                ports=tuple(ports),
                links=tuple(links),
            )
        )
    # Stable order: admission tie-breaks then pick the same path every run.
    routes.sort(key=lambda r: r.nodes)
    return tuple(routes)


class RoutingTable:
    """Per-pair cache of candidate paths (lazy; MINs have 16k pairs)."""

    def __init__(self, topo: Topology):
        self.topo = topo
        self._cache: Dict[Tuple[int, int], Tuple[RoutePath, ...]] = {}

    def candidates(self, src: int, dst: int) -> Tuple[RoutePath, ...]:
        key = (src, dst)
        paths = self._cache.get(key)
        if paths is None:
            paths = compute_updown_paths(self.topo, src, dst)
            self._cache[key] = paths
        return paths

    def __call__(self, src: int, dst: int) -> Tuple[RoutePath, ...]:
        """Alias so the table itself is a valid admission ``candidates``."""
        return self.candidates(src, dst)
