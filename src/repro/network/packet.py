"""The network-level packet.

Section 3 of the paper is explicit about what travels in a packet header:
the **deadline tag** and the **routing information** -- nothing else.  The
eligible-time tag exists only while the packet sits in the source
interface and "is not transmitted in the header".  We keep it on the
object for convenience but no switch-side code may read it;
``tests/integration/test_invariants.py::TestHeaderDiscipline`` enforces
that discipline statically.

Deadlines are absolute simulated times.  Section 3.3's clock-trick
(carrying the deadline as a *time-to-destination* and re-basing it on
each hop's local clock) is implemented in :mod:`repro.core.ttd` and is
provably equivalent to absolute deadlines, so the fast path uses absolute
values directly.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.constants import N_VCS, VC_BEST_EFFORT, VC_REGULATED

__all__ = ["Packet", "PacketFactory", "VC_REGULATED", "VC_BEST_EFFORT", "N_VCS"]

# Fallback uid counter for *bare* ``Packet(...)`` construction (unit
# tests, ad-hoc scripts).  Production paths mint through a per-fabric
# :class:`PacketFactory`, so run N and run N+1 in the same process see
# identical uid streams -- this module global is deliberately NOT part
# of any simulation result.
_next_uid = 0


def _take_uid() -> int:
    global _next_uid
    _next_uid += 1
    return _next_uid


class Packet:
    """One network-level packet (<= MTU bytes).

    Attributes mirror the paper's header plus bookkeeping for statistics:

    - ``flow_id``/``seq``: flow identity and per-flow sequence number
      (used only by tests/stats to check in-order delivery -- switches
      never look at them, exactly as in the paper).
    - ``deadline``: absolute cycle by which the packet should reach its
      destination; the only field switch arbiters may inspect.
    - ``eligible``: earliest injection time; meaningful only at the source.
    - ``path``: source route -- output-port index to take at each switch.
    - ``hop``: how many switches have been traversed so far.
    - ``msg_id``/``msg_seq``/``msg_parts``: application message (video
      frame, control message, burst) this packet is a segment of; used to
      report *frame* latency as Figure 3 does.
    - ``birth``: when the application handed the message to the NIC;
      ``inject``: when the first byte entered the network;
      ``deliver``: when the last byte reached the destination NIC.
    """

    __slots__ = (
        "uid",
        "flow_id",
        "seq",
        "src",
        "dst",
        "size",
        "vc",
        "tclass",
        "deadline",
        "eligible",
        "path",
        "hop",
        "msg_id",
        "msg_seq",
        "msg_parts",
        "birth",
        "inject",
        "deliver",
        "hop_arrival",
        "traced",
    )

    def __init__(
        self,
        *,
        flow_id: int,
        seq: int,
        src: int,
        dst: int,
        size: int,
        vc: int,
        tclass: str,
        deadline: int,
        eligible: int = 0,
        path: Tuple[int, ...] = (),
        msg_id: int = 0,
        msg_seq: int = 0,
        msg_parts: int = 1,
        birth: int = 0,
        uid: Optional[int] = None,
    ):
        if size <= 0:
            raise ValueError(f"packet size must be positive, got {size}")
        if vc < 0:
            raise ValueError(f"vc must be a non-negative channel index, got {vc}")
        self.uid = _take_uid() if uid is None else uid
        self.flow_id = flow_id
        self.seq = seq
        self.src = src
        self.dst = dst
        self.size = size
        self.vc = vc
        self.tclass = tclass
        self.deadline = deadline
        self.eligible = eligible
        self.path = path
        self.hop = 0
        self.msg_id = msg_id
        self.msg_seq = msg_seq
        self.msg_parts = msg_parts
        self.birth = birth
        self.inject: Optional[int] = None
        self.deliver: Optional[int] = None
        #: When the packet entered the *current* switch's VOQ -- metrics
        #: bookkeeping only (arbitration-wait histograms); switches never
        #: arbitrate on it, so it is not part of the header discipline.
        self.hop_arrival: Optional[int] = None
        #: Set by :class:`repro.obs.tracing.PacketTracer` when the packet
        #: won the sampling draw at birth.  Instrumentation sites check
        #: this single bool before calling the tracer, so untraced
        #: packets pay one attribute load per site; arbiters never read
        #: it (not part of the header discipline).
        self.traced = False

    def next_output_port(self) -> int:
        """Source routing: the output port to take at the current switch."""
        return self.path[self.hop]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Packet f{self.flow_id}#{self.seq} {self.src}->{self.dst} "
            f"{self.size}B vc{self.vc} D={self.deadline}>"
        )


class PacketFactory:
    """Per-fabric packet minting: deterministic uids plus optional pooling.

    One factory is shared by every host of a fabric, so uids are unique
    fabric-wide and -- unlike the module-global fallback counter -- reset
    with the fabric: two back-to-back runs in one process produce
    identical uid streams (the uid-determinism regression test pins
    this).

    With ``pooling`` enabled, :meth:`recycle` keeps delivered packets on
    a free list and :meth:`mint` re-initializes one instead of
    allocating.  Lifecycle rules (ARCHITECTURE.md section 10): a packet
    may be recycled only once it has left every queue and every
    observer; uids are minted fresh per *logical* packet either way, so
    tracing and statistics are byte-identical with pooling on or off.
    """

    __slots__ = ("pooling", "_next_uid", "_pool")

    def __init__(self, *, pooling: bool = False):
        self.pooling = pooling
        self._next_uid = 0
        self._pool: list[Packet] = []

    @property
    def uids_minted(self) -> int:
        return self._next_uid

    @property
    def pooled(self) -> int:
        return len(self._pool)

    def mint(self, **fields) -> Packet:
        """A fresh logical packet: pooled storage, never a pooled uid."""
        self._next_uid += 1
        pool = self._pool
        if pool:
            pkt = pool.pop()
            # Re-running __init__ resets every slot (hop, inject, deliver,
            # hop_arrival, traced, ...) -- a recycled packet is
            # indistinguishable from a newly allocated one.
            pkt.__init__(uid=self._next_uid, **fields)
            return pkt
        return Packet(uid=self._next_uid, **fields)

    def recycle(self, pkt: Packet) -> None:
        """Return a delivered packet's storage to the free list.

        Callers must guarantee no live reference remains (host ``accept``
        calls this after the last observer hook).  No-op unless pooling
        was requested, so default-configured fabrics keep plain GC
        semantics.
        """
        if self.pooling:
            self._pool.append(pkt)
