"""Point-to-point links with credit-based flow control.

High-speed interconnects are lossless: a sender transmits a packet on a
VC only when the receiver's input buffer for that VC is guaranteed to
have room, tracked by a per-VC credit counter at the sender (Section 2.2;
the paper's configuration gives every VC 8 KB of buffer).  Credits are
returned when the receiver drains the packet from its input buffer, and
the return itself takes a propagation delay.

Timing model (store-and-forward at packet granularity):

- transmission occupies the channel for ``size / bandwidth`` ns;
- the receiver sees the complete packet ``propagation`` ns after the
  last byte left;
- while busy, the sender-side component is re-polled (:meth:`pull`)
  when the channel frees or when credits come back, so the link never
  idles while a sendable packet exists.

A :class:`Link` is one *simplex* channel; the fabric creates two per
cable.  :class:`CreditChannel` is the sender-side credit ledger, split
out so the host NIC and switch tests can exercise it alone.
"""

from __future__ import annotations

from typing import Optional, Protocol

from repro.core.invariants import invariant
from repro.network.packet import Packet
from repro.sim.engine import Engine
from repro.sim.units import serialization_ns

__all__ = ["CreditChannel", "CreditError", "Link"]


class CreditError(RuntimeError):
    """Credit accounting violated (send without credit / over-return)."""


class Receiver(Protocol):
    """Downstream side of a link: a switch input port or a host NIC."""

    def accept(self, pkt: Packet, link: "Link") -> None: ...


class Sender(Protocol):
    """Upstream side of a link, re-polled when it may transmit again."""

    def pull(self, link: "Link") -> None: ...


class CreditChannel:
    """Per-VC credit counters for one simplex channel.

    Initialized to the downstream buffer capacity; ``consume`` on
    transmit, ``replenish`` when the downstream frees space.  The sum of
    credits held here and bytes occupied (or in flight) downstream is
    invariant -- the credit-conservation property test pins that down.
    """

    __slots__ = ("initial", "credits")

    def __init__(self, capacity_bytes_per_vc: tuple[int, ...]):
        if len(capacity_bytes_per_vc) < 1:
            raise ValueError(f"need >= 1 VC capacity, got {capacity_bytes_per_vc!r}")
        for cap in capacity_bytes_per_vc:
            if cap <= 0:
                raise ValueError(f"VC capacity must be positive, got {cap}")
        self.initial = tuple(capacity_bytes_per_vc)
        self.credits = list(capacity_bytes_per_vc)

    def can_send(self, vc: int, size: int) -> bool:
        return self.credits[vc] >= size

    def consume(self, vc: int, size: int) -> None:
        if self.credits[vc] < size:
            raise CreditError(
                f"sending {size} B on vc{vc} with only {self.credits[vc]} credits"
            )
        self.credits[vc] -= size

    def replenish(self, vc: int, size: int) -> None:
        self.credits[vc] += size
        if self.credits[vc] > self.initial[vc]:
            raise CreditError(
                f"vc{vc} credits ({self.credits[vc]}) exceed buffer size "
                f"({self.initial[vc]}): double credit return"
            )


class Link:
    """One simplex channel from ``(src, src_port)`` to ``(dst, dst_port)``."""

    __slots__ = (
        "engine",
        "src",
        "src_port",
        "dst",
        "dst_port",
        "bytes_per_ns",
        "prop_delay_ns",
        "channel",
        "busy",
        "sender",
        "receiver",
        "_after",
        "_tx_done_cb",
        "_deliver_cb",
        "_credit_cb",
        "packets_carried",
        "bytes_carried",
        "busy_ns",
        "clock_domain",
    )

    def __init__(
        self,
        engine: Engine,
        *,
        src: str,
        src_port: int,
        dst: str,
        dst_port: int,
        bytes_per_ns: float,
        prop_delay_ns: int,
        buffer_bytes_per_vc: tuple[int, ...],
    ):
        if prop_delay_ns < 0:
            raise ValueError(f"propagation delay must be >= 0, got {prop_delay_ns}")
        self.engine = engine
        self.src = src
        self.src_port = src_port
        self.dst = dst
        self.dst_port = dst_port
        self.bytes_per_ns = bytes_per_ns
        self.prop_delay_ns = prop_delay_ns
        self.channel = CreditChannel(buffer_bytes_per_vc)
        self.busy = False
        self.sender: Optional[Sender] = None
        self.receiver: Optional[Receiver] = None
        # Pre-bound scheduling and callback handles (the SIM303 pattern
        # applied by hand): `engine.after` plus each hot callback is
        # bound once here, so the per-packet path pays one attribute
        # load per site instead of a descriptor bind per event.
        # `sender.pull` / `receiver.accept` are deliberately NOT
        # pre-bound: those objects belong to the caller, and tests
        # monkeypatch their methods after attachment.
        self._after = engine.after
        self._tx_done_cb = self._tx_done
        self._deliver_cb = self._deliver
        self._credit_cb = self._credit_arrived
        self.packets_carried = 0
        self.bytes_carried = 0
        #: Total simulated time spent clocking bytes out; utilization over
        #: any window is the delta of this divided by the window length.
        self.busy_ns = 0
        #: When set (Section 3.3 mode), deadlines are carried across this
        #: link as time-to-destination values and re-based onto the
        #: receiving node's free-running clock.
        self.clock_domain = None

    @property
    def link_id(self) -> tuple[str, int]:
        """The directed-link key used by admission's bandwidth ledger."""
        return (self.src, self.src_port)

    def occupancy_ns(self, size_bytes: int) -> int:
        """Integer time this link's channel is occupied clocking
        ``size_bytes`` out -- the serialization component of a wire
        segment.  The span tracer uses it to split each arrival interval
        into ``link.transmit`` + ``link.propagate`` exactly (the same
        rounded-up value :meth:`transmit` schedules with, so the split
        telescopes without remainder)."""
        return serialization_ns(size_bytes, self.bytes_per_ns)

    # ------------------------------------------------------------------
    def can_send(self, pkt: Packet) -> bool:
        return not self.busy and self.channel.can_send(pkt.vc, pkt.size)

    def transmit(self, pkt: Packet) -> None:
        """Start clocking ``pkt`` out.  Caller must have checked :meth:`can_send`."""
        if self.busy:
            raise CreditError(f"link {self.src}:{self.src_port} is busy")
        self.channel.consume(pkt.vc, pkt.size)
        self.busy = True
        tx_ns = self.occupancy_ns(pkt.size)
        self.busy_ns += tx_ns
        self._after(tx_ns, self._tx_done_cb, pkt)

    def _tx_done(self, pkt: Packet) -> None:
        self.busy = False
        self.packets_carried += 1
        self.bytes_carried += pkt.size
        if self.prop_delay_ns:
            self._after(self.prop_delay_ns, self._deliver_cb, pkt)
        else:
            # Zero-propagation fold: transmit + propagate collapse into
            # this single wakeup -- one engine event per packet hop.  (A
            # nonzero propagation delay needs the second event: freeing
            # the channel at tx-done is load-bearing for pipelining and
            # cannot wait until the packet lands.)
            self._deliver(pkt)
        sender = self.sender
        if sender is not None:
            sender.pull(self)

    def _deliver(self, pkt: Packet) -> None:
        invariant(self.receiver is not None, "link %s has no receiver", self.link_id)
        if self.clock_domain is not None:
            # Section 3.3: the header carried TTD = deadline - local clock of
            # the sender; the receiver reconstructs a deadline on *its* clock.
            pkt.deadline = self.clock_domain.rebase(
                pkt.deadline, self.src, self.dst, self.engine.now
            )
        self.receiver.accept(pkt, self)

    # ------------------------------------------------------------------
    def return_credit(self, vc: int, size: int) -> None:
        """Called by the receiver when a packet leaves its input buffer.

        The credit travels back over the wire, so the sender sees it a
        propagation delay later.
        """
        self._after(self.prop_delay_ns, self._credit_cb, vc, size)

    def _credit_arrived(self, vc: int, size: int) -> None:
        self.channel.replenish(vc, size)
        sender = self.sender
        if sender is not None and not self.busy:
            sender.pull(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Link {self.src}:{self.src_port}->{self.dst}:{self.dst_port}>"
