"""Interconnection-network substrate.

Models the hardware the paper simulates (Section 4.1):

- :mod:`~repro.network.packet` -- the network-level packet with its
  deadline tag (the only QoS state a switch ever sees).
- :mod:`~repro.network.link` -- point-to-point links with credit-based
  flow control (lossless, like PCI AS / InfiniBand).
- :mod:`~repro.network.switch` -- a combined input/output-queued switch
  with virtual output queuing and per-architecture VC queue structures.
- :mod:`~repro.network.host` -- the end-host network interface: per-flow
  deadline stamping, the eligible-time queue, and the dual-VC injection
  path described in Section 3.2.
- :mod:`~repro.network.topology` -- folded perfect-shuffle MIN /
  fat-tree builders (the paper's 128-endpoint butterfly).
- :mod:`~repro.network.routing` -- up*/down* fixed routing and
  load-balanced path selection.
- :mod:`~repro.network.fabric` -- wires hosts, switches, and links into a
  runnable network.
"""

from repro.network.packet import Packet, VC_BEST_EFFORT, VC_REGULATED
from repro.network.link import CreditChannel, CreditError, Link
from repro.network.topology import (
    FatTreeSpec,
    Topology,
    build_fat_tree,
    build_folded_shuffle_min,
    paper_topology,
)
from repro.network.routing import RoutePath, RoutingTable, compute_updown_paths
from repro.network.switch import Switch
from repro.network.host import Host
from repro.network.fabric import Fabric, build_fabric

__all__ = [
    "CreditChannel",
    "CreditError",
    "Fabric",
    "FatTreeSpec",
    "Host",
    "Link",
    "Packet",
    "RoutePath",
    "RoutingTable",
    "Switch",
    "Topology",
    "VC_BEST_EFFORT",
    "VC_REGULATED",
    "build_fabric",
    "build_fat_tree",
    "build_folded_shuffle_min",
    "compute_updown_paths",
    "paper_topology",
]
