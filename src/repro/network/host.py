"""The end-host network interface (Section 3.2's host organization).

All per-flow intelligence lives here, not in the switches:

- messages from the application are segmented into MTU-sized packets and
  **stamped** with deadlines by the flow's virtual-clock stamper;
- regulated packets optionally wait in an **eligible-time queue** (sorted
  by eligible time); once eligible they move to the **injection queue**
  sorted by ascending deadline -- this sortedness at the source is the
  assumption that lets switches get away with FIFO queues;
- best-effort packets sit in their own deadline-sorted queue on VC1 and
  are injected "only when the link is available, there are credits, and
  the regulated-traffic VC has no packets ready to inject";
- under the *Traditional* architecture hosts do none of this: both VCs
  inject in plain FIFO order (deadlines are still stamped, but nothing
  reads them).

The receive side models an infinite-sink NIC: a delivered packet is
consumed immediately and its buffer credit returned at once.
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, List, Optional

from repro.core.architectures import Architecture
from repro.core.eligible import EligiblePolicy
from repro.core.flow import FlowKind, FlowState
from repro.core.queues import EDFHeapQueue, FifoQueue, PacketQueue
from repro.network.link import Link
from repro.network.packet import N_VCS, Packet, PacketFactory, VC_REGULATED
from repro.obs.metrics import NULL_METRICS, SLACK_BUCKETS_NS, Counter, class_counter
from repro.obs.tracing import NULL_TRACER
from repro.sim.engine import Engine, EventHandle
from repro.sim.monitor import NullTrace

__all__ = ["Host"]

_NULL_TRACE = NullTrace()

DeliveryCallback = Callable[[Packet, int], None]


class Host:
    """One end host: NIC send queues, deadline stamping, and the sink side."""

    __slots__ = (
        "engine",
        "node_id",
        "index",
        "architecture",
        "eligible_policy",
        "mtu",
        "trace",
        "out_link",
        "in_link",
        "clock_offset",
        "on_delivery",
        "_pending",
        "_ready",
        "_wake",
        "_release_cb",
        "_packets",
        "packets_submitted",
        "bytes_submitted",
        "packets_injected",
        "bytes_injected",
        "packets_received",
        "bytes_received",
        "metrics",
        "_obs_on",
        "_m_slack",
        "_m_miss",
        "_m_miss_by_class",
        "_m_stalls",
        "tracer",
        "_span_on",
    )

    def __init__(
        self,
        engine: Engine,
        node_id: str,
        index: int,
        architecture: Architecture,
        *,
        eligible_policy: Optional[EligiblePolicy] = None,
        mtu: int = 2048,
        trace=_NULL_TRACE,
        on_delivery: Optional[DeliveryCallback] = None,
        clock_offset: int = 0,
        n_vcs: int = N_VCS,
        metrics=NULL_METRICS,
        tracer=NULL_TRACER,
        packet_factory: Optional[PacketFactory] = None,
    ):
        if mtu <= 0:
            raise ValueError(f"MTU must be positive, got {mtu}")
        self.engine = engine
        self.node_id = node_id
        self.index = index
        self.architecture = architecture
        self.eligible_policy = eligible_policy or EligiblePolicy()
        self.mtu = mtu
        self.trace = trace
        self.out_link: Optional[Link] = None
        self.in_link: Optional[Link] = None
        self.on_delivery = on_delivery
        #: Section 3.3: this NIC's free-running clock reads
        #: ``engine.now + clock_offset``; deadlines and eligible times are
        #: computed on that local clock (and re-based by TTD-mode links).
        self.clock_offset = clock_offset
        #: regulated packets not yet eligible: heap of (eligible, uid, pkt)
        self._pending: List[tuple[int, int, Packet]] = []
        queue_cls = EDFHeapQueue if architecture.host_edf else FifoQueue
        #: per-VC injection queues, deadline-sorted for the EDF architectures
        self._ready: List[PacketQueue] = [queue_cls(None) for _ in range(n_vcs)]
        self._wake: Optional[EventHandle] = None
        # Pre-bound wake callback (SIM303 pattern by hand): binding once
        # here keeps the re-arm path free of per-call method binds.
        self._release_cb = self._release_eligible
        # Fabric-shared uid minting (and optional pooling); a private
        # factory keeps standalone hosts working in tests.
        self._packets = packet_factory if packet_factory is not None else PacketFactory()
        self.packets_submitted = 0
        self.bytes_submitted = 0
        self.packets_injected = 0
        self.bytes_injected = 0
        self.packets_received = 0
        self.bytes_received = 0
        # Observability (instruments shared fabric-wide by name; cached
        # ``_obs_on`` keeps the disabled path to one attribute load).
        self.metrics = metrics
        self._obs_on = metrics.enabled
        self._m_slack = [
            metrics.histogram(
                # Construction-time only: names are formatted once per NIC
                # and the instruments cached for the packet path.
                f"network.host.vc{vc}.delivery_slack_ns", SLACK_BUCKETS_NS, unit="ns"  # simlint: allow-hot-eager-str
            )
            for vc in range(n_vcs)
        ]
        self._m_miss = [
            metrics.counter(f"network.host.vc{vc}.deadline_miss_total", unit="packets")  # simlint: allow-hot-eager-str
            for vc in range(n_vcs)
        ]
        self._m_miss_by_class: Dict[str, Counter] = {}
        self._m_stalls = metrics.counter(
            "network.host.eligible_stalls_total", unit="packets"
        )
        # Span tracing (same cached-flag discipline as ``_obs_on``).
        self.tracer = tracer
        self._span_on = tracer.enabled

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def attach_out(self, link: Link) -> None:
        if self.out_link is not None:
            raise ValueError(f"{self.node_id} already has an output link")
        self.out_link = link
        link.sender = self

    def attach_in(self, link: Link) -> None:
        if self.in_link is not None:
            raise ValueError(f"{self.node_id} already has an input link")
        self.in_link = link
        link.receiver = self

    # ------------------------------------------------------------------
    # send side
    # ------------------------------------------------------------------
    def segment_sizes(self, message_bytes: int) -> List[int]:
        """Split an application message into MTU-bounded packet sizes."""
        if message_bytes <= 0:
            raise ValueError(f"message size must be positive, got {message_bytes}")
        full, rest = divmod(message_bytes, self.mtu)
        sizes = [self.mtu] * full
        if rest:
            sizes.append(rest)
        return sizes

    def submit_message(self, flow: FlowState, message_bytes: int) -> List[Packet]:
        """Segment, stamp, and enqueue one application message on ``flow``.

        Returns the packets created (mainly for tests; the caller normally
        ignores them).
        """
        spec = flow.spec
        if spec.src != self.index:
            raise ValueError(
                f"flow {spec.flow_id} originates at host {spec.src}, "
                f"not at {self.node_id}"
            )
        true_now = self.engine.now
        # All deadline arithmetic happens on this NIC's local clock; with
        # zero skew (the default) local time == simulation time.
        now = true_now + self.clock_offset
        sizes = self.segment_sizes(message_bytes)
        parts = len(sizes)
        if spec.kind == FlowKind.FRAME:
            deadlines = flow.stamper.stamp_frame(now, parts)  # type: ignore[attr-defined]
        else:
            deadlines = [flow.stamper.stamp(now, size) for size in sizes]

        msg_id = flow.take_msg()
        smoothing = spec.smoothing and self.architecture.host_edf
        packets: List[Packet] = []
        for part, (size, deadline) in enumerate(zip(sizes, deadlines)):
            eligible = (
                self.eligible_policy.eligible_time(deadline=deadline, now=now)
                if smoothing
                else now
            )
            # The allocation IS the workload here: submit_message exists to
            # mint the packets being injected, one per message part.
            pkt = self._packets.mint(  # simlint: allow-hot-loop-allocation
                flow_id=spec.flow_id,
                seq=flow.take_seq(),
                src=spec.src,
                dst=spec.dst,
                size=size,
                vc=spec.vc,
                tclass=spec.tclass,
                deadline=deadline,
                eligible=eligible,
                path=flow.path,
                msg_id=msg_id,
                msg_seq=part,
                msg_parts=parts,
                birth=true_now,  # statistics are always in simulation time
            )
            packets.append(pkt)
            if self._span_on:
                # Sampling decision at birth; winners get pkt.traced set.
                self.tracer.begin(pkt, true_now, self.node_id)
            self.packets_submitted += 1
            self.bytes_submitted += size
            flow.packets_sent += 1
            flow.bytes_sent += size
            if pkt.vc == VC_REGULATED and eligible > now:
                if self._obs_on:
                    self._m_stalls.inc()
                heapq.heappush(self._pending, (eligible, pkt.uid, pkt))
            else:
                self._ready[pkt.vc].push(pkt)
        self._arm_wake()
        self._try_inject()
        return packets

    def _arm_wake(self) -> None:
        """Keep a timer on the earliest not-yet-eligible packet.

        Pending eligible times are on the local clock; the engine timer is
        set in simulation time (``local - offset``).
        """
        if not self._pending:
            return
        head_time = max(self.engine.now, self._pending[0][0] - self.clock_offset)
        if self._wake is not None and not self._wake.cancelled:
            if self._wake.time <= head_time:
                return
            self._wake.cancel()
        self._wake = self.engine.at_cancellable(head_time, self._release_cb)

    def _release_eligible(self) -> None:
        now = self.engine.now + self.clock_offset  # local clock
        pending = self._pending
        moved = False
        while pending and pending[0][0] <= now:
            _, _, pkt = heapq.heappop(pending)
            if self._span_on and pkt.traced:
                self.tracer.event(pkt, "eligible", self.engine.now)
            self._ready[pkt.vc].push(pkt)
            moved = True
        self._wake = None
        self._arm_wake()
        if moved:
            self._try_inject()

    def pull(self, link: Link) -> None:
        """Output link freed or credits returned: try to inject again."""
        self._try_inject()

    def _try_inject(self) -> None:
        link = self.out_link
        if link is None or link.busy:
            return
        # Section 3.2: lower-index VCs have absolute priority -- a later VC
        # goes out only when every higher-priority VC has no packet it can
        # send.  A head blocked on *credits* is waiting for its own
        # downstream buffer, not for the link, so the next VC may use the
        # wire meanwhile (work conservation); within a VC the blocked
        # minimum-deadline head still bars every other packet, which is
        # the credit rule the appendix's proof requires.
        for ready in self._ready:
            head = ready.head()
            if head is not None and link.channel.can_send(head.vc, head.size):
                self._inject(ready.pop(), link)
                return

    def _inject(self, pkt: Packet, link: Link) -> None:
        pkt.inject = self.engine.now
        self.packets_injected += 1
        self.bytes_injected += pkt.size
        if self.trace.enabled:
            self.trace.record(self.engine.now, "host.inject", self.node_id, pkt.uid, pkt.vc)
        if self._span_on and pkt.traced:
            self.tracer.event(pkt, "inject", pkt.inject)
        link.transmit(pkt)

    # ------------------------------------------------------------------
    # receive side
    # ------------------------------------------------------------------
    def accept(self, pkt: Packet, link: Link) -> None:
        if pkt.dst != self.index:
            raise ValueError(
                f"{self.node_id} received packet for host {pkt.dst}: routing bug"
            )
        now = self.engine.now
        pkt.deliver = now
        self.packets_received += 1
        self.bytes_received += pkt.size
        # Infinite-sink NIC: consume immediately, return the credit at once.
        link.return_credit(pkt.vc, pkt.size)
        if self.trace.enabled:
            self.trace.record(now, "host.deliver", self.node_id, pkt.uid, pkt.vc)
        tracing = self._span_on and pkt.traced
        if self._obs_on or tracing:
            # Slack on this NIC's local clock: TTD-mode links re-base the
            # deadline onto it, and with zero skew local == simulation time.
            slack_ns = pkt.deadline - (now + self.clock_offset)
            if self._obs_on:
                self._m_slack[pkt.vc].observe(slack_ns)
                if slack_ns < 0:
                    self._m_miss[pkt.vc].inc()
                    # First miss per class mints (and caches) its counter;
                    # every later miss is one dict probe, no formatting.
                    class_counter(
                        self.metrics,
                        self._m_miss_by_class,
                        pkt.tclass,
                        "network.host.class.{tclass}.deadline_miss_total",
                    ).inc()
            if tracing:
                self.tracer.finish(pkt, now, node=self.node_id, link=link, slack_ns=slack_ns)
        if self.on_delivery is not None:
            self.on_delivery(pkt, now)
        # Last touch: every observer above has run, no queue holds the
        # packet -- its storage may be recycled (no-op unless the fabric
        # opted into pooling).
        self._packets.recycle(pkt)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def queued_packets(self) -> int:
        return len(self._pending) + sum(len(q) for q in self._ready)

    def ready_packets(self, vc: int) -> int:
        return len(self._ready[vc])

    def pending_packets(self) -> int:
        return len(self._pending)
