"""The switch model (Section 4.1).

A combined input/output-queued switch with virtual output queuing: every
input port keeps, per output port and per VC, a queue whose *structure*
is the architecture under study (FIFO, EDF heap, or ordered+take-over
pair).  The crossbar is modelled implicitly: each output port runs an
independent arbiter over the heads of the VOQs destined to it, which for
a crossbar with per-output arbitration is exact.

Scheduling at an output port:

1. VC0 (regulated) has absolute priority over VC1 (best-effort); with
   more VCs (the Section 6 counterfactual), lower index = higher priority.
2. Within a VC, the architecture's picker chooses among queue heads --
   EDF (min deadline) or round-robin.
3. Credit discipline: for the EDF architectures, *only* the chosen
   minimum-deadline candidate is checked for downstream credits (the
   appendix's no-reordering proof needs this); if it does not fit, VC0
   yields the cycle rather than sending a larger-deadline packet.  The
   traditional architecture instead masks credit-less candidates before
   arbitrating, as conventional switches do.
4. If VC0 cannot send (empty or blocked on credits), VC1 may use the
   link -- regulated traffic loses nothing because its own buffer space
   downstream is what it is waiting for.

Input-buffer space is freed (and the upstream credit returned) when the
packet *starts* draining onto the output link; docs/ARCHITECTURE.md
section 4 discusses why (credit RTT parity with hardware) and the
bounded transient over-occupancy it implies.

Switches keep **no per-flow state**: everything here indexes on header
fields (deadline, source route) only.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.architectures import Architecture
from repro.core.arbiter import MeteredPicker
from repro.core.invariants import invariant
from repro.core.queues import PacketQueue
from repro.network.link import Link
from repro.network.packet import N_VCS, Packet
from repro.obs.metrics import DEPTH_BUCKETS, NULL_METRICS, WAIT_BUCKETS_NS
from repro.obs.tracing import NULL_TRACER
from repro.sim.engine import Engine
from repro.sim.monitor import NullTrace

__all__ = ["Switch"]

_NULL_TRACE = NullTrace()


class Switch:
    """One switch node.  Wire links via :meth:`attach_in` / :meth:`attach_out`."""

    __slots__ = (
        "engine",
        "node_id",
        "n_ports",
        "n_vcs",
        "architecture",
        "trace",
        "in_links",
        "out_links",
        "_voq",
        "_candidates",
        "_pickers",
        "packets_forwarded",
        "bytes_forwarded",
        "metrics",
        "_obs_on",
        "_m_enqueue",
        "_m_dequeue",
        "_m_order_errors",
        "_m_depth",
        "_m_wait",
        "tracer",
        "_span_on",
    )

    def __init__(
        self,
        engine: Engine,
        node_id: str,
        n_ports: int,
        architecture: Architecture,
        trace=_NULL_TRACE,
        n_vcs: int = N_VCS,
        metrics=NULL_METRICS,
        tracer=NULL_TRACER,
    ):
        if n_ports < 1:
            raise ValueError(f"switch needs >= 1 port, got {n_ports}")
        if n_vcs < 1:
            raise ValueError(f"switch needs >= 1 VC, got {n_vcs}")
        self.engine = engine
        self.node_id = node_id
        self.n_ports = n_ports
        self.n_vcs = n_vcs
        self.architecture = architecture
        self.trace = trace
        self.in_links: List[Optional[Link]] = [None] * n_ports
        self.out_links: List[Optional[Link]] = [None] * n_ports
        # _voq[in_port][out_port][vc]; byte capacity is enforced upstream by
        # the credit loop (per input port and VC), so queues are unbounded.
        self._voq: List[List[List[PacketQueue]]] = [
            [
                [architecture.make_queue(None) for _vc in range(n_vcs)]
                for _out in range(n_ports)
            ]
            for _in in range(n_ports)
        ]
        # Per-(output, vc) candidate list: index == input port.
        self._candidates: List[List[List[PacketQueue]]] = [
            [
                [self._voq[i][out][vc] for i in range(n_ports)]
                for vc in range(n_vcs)
            ]
            for out in range(n_ports)
        ]
        self._pickers = [
            [architecture.make_picker() for _vc in range(n_vcs)]
            for _out in range(n_ports)
        ]
        # Clock-aware buffer structures (the pipelined heap) need the
        # switch's local cycle counter to model their settle window.
        for per_in in self._voq:
            for per_out in per_in:
                for queue in per_out:
                    if hasattr(queue, "now_fn"):
                        queue.now_fn = self._clock
        self.packets_forwarded = 0
        self.bytes_forwarded = 0
        # Observability: instruments are shared fabric-wide by name; the
        # cached ``_obs_on`` bool keeps the disabled hot path at one
        # attribute load + branch per site.
        self.metrics = metrics
        self._obs_on = metrics.enabled
        # Construction-time only: instrument names are formatted once per
        # switch; the forwarding path uses the cached instrument objects.
        self._m_enqueue = [
            metrics.counter(f"network.switch.vc{vc}.enqueue_packets_total", unit="packets")  # simlint: allow-hot-eager-str
            for vc in range(n_vcs)
        ]
        self._m_dequeue = [
            metrics.counter(f"network.switch.vc{vc}.dequeue_packets_total", unit="packets")  # simlint: allow-hot-eager-str
            for vc in range(n_vcs)
        ]
        self._m_order_errors = [
            metrics.counter(f"network.switch.vc{vc}.order_errors_total", unit="packets")  # simlint: allow-hot-eager-str
            for vc in range(n_vcs)
        ]
        self._m_depth = metrics.histogram(
            "network.switch.queue_depth_packets", DEPTH_BUCKETS, unit="packets"
        )
        self._m_wait = metrics.histogram(
            "network.switch.arbitration_wait_ns", WAIT_BUCKETS_NS, unit="ns"
        )
        if self._obs_on:
            picks = metrics.counter("core.arbiter.picks_total", unit="picks")
            grants = metrics.counter("core.arbiter.grants_total", unit="grants")
            self._pickers = [
                [MeteredPicker(picker, picks, grants) for picker in per_out]
                for per_out in self._pickers
            ]
        # Span tracing (same cached-flag discipline as ``_obs_on``).
        self.tracer = tracer
        self._span_on = tracer.enabled

    def _clock(self) -> int:
        return self.engine.now

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def attach_in(self, port: int, link: Link) -> None:
        if self.in_links[port] is not None:
            raise ValueError(f"{self.node_id} input port {port} already wired")
        self.in_links[port] = link
        link.receiver = self

    def attach_out(self, port: int, link: Link) -> None:
        if self.out_links[port] is not None:
            raise ValueError(f"{self.node_id} output port {port} already wired")
        self.out_links[port] = link
        link.sender = self

    # ------------------------------------------------------------------
    # receive path
    # ------------------------------------------------------------------
    def accept(self, pkt: Packet, link: Link) -> None:
        """A packet has fully arrived at one of our input ports."""
        in_port = link.dst_port
        out_port = pkt.path[pkt.hop]
        pkt.hop += 1
        if not 0 <= out_port < self.n_ports:
            raise ValueError(
                f"{self.node_id}: source route names output port {out_port} "
                f"but switch has {self.n_ports} ports"
            )
        queue = self._voq[in_port][out_port][pkt.vc]
        queue.push(pkt)
        if self._obs_on:
            pkt.hop_arrival = self.engine.now
            self._m_enqueue[pkt.vc].inc()
            self._m_depth.observe(len(queue))
        if self.trace.enabled:
            self.trace.record(self.engine.now, "switch.enqueue", self.node_id, in_port, out_port, pkt.uid)
        if self._span_on and pkt.traced:
            # ``link`` is the wire the packet just crossed: its occupancy
            # splits the segment into transmit + propagate exactly.
            self.tracer.arrive(pkt, self.engine.now, self.node_id, link)
        out_link = self.out_links[out_port]
        if out_link is not None and not out_link.busy:
            self._try_output(out_port)

    # ------------------------------------------------------------------
    # transmit path
    # ------------------------------------------------------------------
    def pull(self, link: Link) -> None:
        """Output link freed or received credits: re-arbitrate that port."""
        self._try_output(link.src_port)

    def _try_output(self, out_port: int) -> None:
        out_link = self.out_links[out_port]
        if out_link is None or out_link.busy:
            return
        masking = self.architecture.credit_masking
        channel = out_link.channel
        for vc in range(self.n_vcs):  # ascending index = descending priority
            queues = self._candidates[out_port][vc]
            picker = self._pickers[out_port][vc]
            if masking:
                # The closure must capture this iteration's (channel, vc):
                # hoisting it would freeze the VC and caching predicates
                # per port would couple the arbiter to link rewiring.
                # Masking architectures only; the common path never pays.
                index = picker.pick(queues, lambda head: channel.can_send(vc, head.size))  # simlint: allow-hot-loop-allocation
            else:
                index = picker.pick(queues)
                if index is not None:
                    head = queues[index].head()
                    if not channel.can_send(vc, head.size):
                        # The appendix's rule: the chosen candidate (and only
                        # it) is checked for credits; nothing else on this VC
                        # may overtake it.
                        index = None
            if index is None:
                continue
            pkt = queues[index].pop()
            picker.granted(index)
            if self._obs_on:
                self._record_dequeue(pkt, queues[index])
            self._send(pkt, out_link, in_port=index)
            return

    def _record_dequeue(self, pkt: Packet, queue: PacketQueue) -> None:
        """Metrics-enabled path only: dequeue counts, arbitration wait,
        and head-of-line order errors (the departing packet leaves behind
        a *smaller*-deadline packet in the same VOQ -- exactly the
        inversion the take-over structure exists to prevent)."""
        self._m_dequeue[pkt.vc].inc()
        if pkt.hop_arrival is not None:
            self._m_wait.observe(self.engine.now - pkt.hop_arrival)
            pkt.hop_arrival = None
        head = queue.head()
        if head is not None and head.deadline < pkt.deadline:
            self._m_order_errors[pkt.vc].inc()

    def _send(self, pkt: Packet, out_link: Link, in_port: int) -> None:
        if self._span_on and pkt.traced:
            # Before transmit so the forward timestamp is the instant the
            # packet won arbitration (same engine.now either way).
            self.tracer.event(pkt, "forward", self.engine.now, self.node_id)
        out_link.transmit(pkt)
        self.packets_forwarded += 1
        self.bytes_forwarded += pkt.size
        if self.trace.enabled:
            self.trace.record(
                self.engine.now, "switch.forward", self.node_id, in_port, out_link.src_port, pkt.uid
            )
        # Input buffer space frees as the packet drains through the
        # crossbar; the credit goes back when draining *starts* (the
        # upstream cannot land a new packet here in less than one
        # serialization anyway, so transient over-occupancy is bounded by
        # one MTU -- see the credit-conservation tests).
        in_link = self.in_links[in_port]
        invariant(in_link is not None, "packet came from an unwired input port")
        in_link.return_credit(pkt.vc, pkt.size)

    # ------------------------------------------------------------------
    # introspection (tests, metrics)
    # ------------------------------------------------------------------
    def queued_packets(self) -> int:
        return sum(
            len(self._voq[i][o][vc])
            for i in range(self.n_ports)
            for o in range(self.n_ports)
            for vc in range(self.n_vcs)
        )

    def queued_bytes(self, in_port: int, vc: int) -> int:
        """Occupancy of one input port's VC buffer (across all VOQs)."""
        return sum(self._voq[in_port][o][vc].used_bytes for o in range(self.n_ports))

    def voq(self, in_port: int, out_port: int, vc: int) -> PacketQueue:
        return self._voq[in_port][out_port][vc]

    def takeover_hits(self) -> int:
        """Arrivals that landed in a take-over (U) queue, summed over all
        VOQs.  Zero for architectures without take-over queues."""
        return sum(
            getattr(queue, "takeover_hits", 0)
            for per_in in self._voq
            for per_out in per_in
            for queue in per_out
        )
