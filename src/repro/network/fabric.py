"""Fabric assembly: topology + architecture + parameters -> runnable network.

:class:`Fabric` instantiates hosts, switches, and (simplex) links from a
:class:`~repro.network.topology.Topology`, wires up routing and the
centralized admission controller, and offers the flow-level API the
traffic generators and examples use:

- :meth:`Fabric.open_flow` -- create a flow, run admission (bandwidth
  reservation for regulated flows, balanced fixed-path assignment for
  control and best-effort), and fix its source route;
- :meth:`Fabric.submit` -- hand an application message to the source NIC;
- :meth:`Fabric.subscribe_delivery` -- receive every delivered packet
  (the statistics collectors hook in here);
- :meth:`Fabric.run` -- advance simulated time.

Default parameters are the paper's (Section 4.1): 8 Gb/s links, 16-port
switches, 8 KB of buffer per VC, 2 KB MTU.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.core.admission import AdmissionController
from repro.core.architectures import ADVANCED_2VC, Architecture
from repro.core.eligible import DEFAULT_OFFSET_NS, EligiblePolicy
from repro.core.flow import FlowKind, FlowRegistry, FlowState
from repro.core.invariants import invariant
from repro.core.ttd import ClockDomain
from repro.network.host import Host
from repro.network.link import Link
from repro.network.packet import Packet, PacketFactory, VC_BEST_EFFORT, VC_REGULATED
from repro.network.routing import RoutingTable
from repro.network.topology import Topology, paper_topology
from repro.obs.metrics import NULL_METRICS
from repro.obs.tracing import NULL_TRACER
from repro.sim.engine import Engine
from repro.sim.monitor import NullTrace
from repro.sim.rng import RandomStreams
from repro.sim.units import KB, gbps

__all__ = ["Fabric", "FabricParams", "build_fabric"]

_NULL_TRACE = NullTrace()


@dataclass(frozen=True)
class FabricParams:
    """Hardware parameters; defaults are the paper's configuration."""

    #: Link data rate in Gb/s (8 Gb/s == 1 byte/ns).
    link_gbps: float = 8.0
    #: Maximum transfer unit in bytes (the paper's MPEG example uses 2 KB).
    mtu: int = 2 * KB
    #: Input buffer per VC at switch ports (Section 4.1: 8 KB per VC).
    buffer_bytes_per_vc: int = 8 * KB
    #: Input buffer per VC at host NICs.
    host_buffer_bytes_per_vc: int = 8 * KB
    #: One-way propagation + PHY pipeline delay per link hop.
    link_delay_ns: int = 20
    #: Eligible-time offset (Section 3.1: 20 us works well); None disables.
    eligible_offset_ns: Optional[int] = DEFAULT_OFFSET_NS
    #: Admission ceiling: fraction of each link reservable by regulated flows.
    max_utilization: float = 1.0
    #: Section 3.3 mode: maximum absolute skew of per-node free-running
    #: clocks.  0 = synchronized clocks (deadlines ride as absolute times).
    #: Nonzero = every node gets a fixed random offset in [-skew, +skew],
    #: hosts stamp deadlines on their local clocks, and every link carries
    #: the deadline as a TTD and re-bases it -- results must be identical,
    #: which the TTD integration tests assert.
    clock_skew_ns: int = 0
    clock_skew_seed: int = 0
    #: Virtual channels per port.  2 is the paper's proposal; larger values
    #: build the Section 6 counterfactual (e.g. a conventional switch with
    #: one strict-priority VC per traffic class).  Lower index = higher
    #: priority.
    n_vcs: int = 2

    def __post_init__(self) -> None:
        if self.mtu <= 0:
            raise ValueError(f"MTU must be positive, got {self.mtu}")
        if self.n_vcs < 1:
            raise ValueError(f"need at least one VC, got {self.n_vcs}")
        if self.buffer_bytes_per_vc < self.mtu:
            raise ValueError(
                f"switch buffer per VC ({self.buffer_bytes_per_vc} B) must hold "
                f"at least one MTU ({self.mtu} B) or nothing can ever be sent"
            )
        if self.host_buffer_bytes_per_vc < self.mtu:
            raise ValueError(
                f"host buffer per VC ({self.host_buffer_bytes_per_vc} B) must "
                f"hold at least one MTU ({self.mtu} B)"
            )

    @property
    def bytes_per_ns(self) -> float:
        return gbps(self.link_gbps)


DeliveryCallback = Callable[[Packet, int], None]


class Fabric:
    """A fully wired simulated network."""

    def __init__(
        self,
        topology: Topology,
        architecture: Architecture = ADVANCED_2VC,
        params: FabricParams = FabricParams(),
        *,
        engine: Optional[Engine] = None,
        trace=_NULL_TRACE,
        metrics=NULL_METRICS,
        tracer=NULL_TRACER,
        packet_pooling: bool = False,
    ):
        self.topology = topology
        self.architecture = architecture
        self.params = params
        self.engine = engine or Engine()
        #: Fabric-wide uid minting (+ optional free-list pooling): one
        #: factory shared by every host keeps uids unique fabric-wide and
        #: deterministic per run.  Pooling is opt-in because delivery
        #: subscribers outside this repo may retain Packet objects; see
        #: PacketFactory.recycle for the lifecycle contract.
        self.packet_factory = PacketFactory(pooling=packet_pooling)
        self.trace = trace
        self.metrics = metrics
        self.tracer = tracer
        self.flows = FlowRegistry()
        self.routing = RoutingTable(topology)
        self.admission = AdmissionController(
            self.routing,
            params.bytes_per_ns,
            max_utilization=params.max_utilization,
        )
        self._delivery_subscribers: List[DeliveryCallback] = []

        # Section 3.3: optional unsynchronized clocks + TTD deadline carriage.
        self.clock_domain = None
        if params.clock_skew_ns:
            skew_rng = RandomStreams(params.clock_skew_seed).stream("clock-skew")
            self.clock_domain = ClockDomain(
                {
                    node: skew_rng.randint(-params.clock_skew_ns, params.clock_skew_ns)
                    for node in (*topology.host_ids, *topology.switch_ids)
                }
            )

        eligible_policy = EligiblePolicy(params.eligible_offset_ns)
        self.hosts: List[Host] = [
            Host(
                self.engine,
                node_id,
                index,
                architecture,
                eligible_policy=eligible_policy,
                mtu=params.mtu,
                trace=trace,
                on_delivery=self._dispatch_delivery,
                clock_offset=(
                    self.clock_domain.offset(node_id) if self.clock_domain else 0
                ),
                n_vcs=params.n_vcs,
                metrics=metrics,
                tracer=tracer,
                packet_factory=self.packet_factory,
            )
            for index, node_id in enumerate(topology.host_ids)
        ]
        from repro.network.switch import Switch  # local to avoid cycle at import

        self.switches: Dict[str, Switch] = {
            sw_id: Switch(
                self.engine,
                sw_id,
                topology.radix(sw_id),
                architecture,
                trace=trace,
                n_vcs=params.n_vcs,
                metrics=metrics,
                tracer=tracer,
            )
            for sw_id in topology.switch_ids
        }
        self.links: Dict[tuple[str, int], Link] = {}
        self._wire_links()

    # ------------------------------------------------------------------
    def _wire_links(self) -> None:
        params = self.params
        for src, sport, dst, dport in self.topology.directed_links():
            buf = (
                params.host_buffer_bytes_per_vc
                if self.topology.is_host(dst)
                else params.buffer_bytes_per_vc
            )
            link = Link(
                self.engine,
                src=src,
                src_port=sport,
                dst=dst,
                dst_port=dport,
                bytes_per_ns=params.bytes_per_ns,
                prop_delay_ns=params.link_delay_ns,
                buffer_bytes_per_vc=(buf,) * params.n_vcs,
            )
            link.clock_domain = self.clock_domain
            self.links[(src, sport)] = link
            if self.topology.is_host(src):
                self.hosts[self.topology.host_index(src)].attach_out(link)
            else:
                self.switches[src].attach_out(sport, link)
            if self.topology.is_host(dst):
                self.hosts[self.topology.host_index(dst)].attach_in(link)
            else:
                self.switches[dst].attach_in(dport, link)

    def _dispatch_delivery(self, pkt: Packet, now: int) -> None:
        for fn in self._delivery_subscribers:
            fn(pkt, now)

    # ------------------------------------------------------------------
    # flow management
    # ------------------------------------------------------------------
    def open_flow(
        self,
        src: int,
        dst: int,
        tclass: str,
        *,
        kind: str = FlowKind.RATE,
        vc: Optional[int] = None,
        bw_bytes_per_ns: Optional[float] = None,
        target_latency_ns: Optional[int] = None,
        smoothing: bool = False,
    ) -> FlowState:
        """Create a flow, run admission, and fix its route.

        - RATE flows on the regulated VC reserve ``bw_bytes_per_ns``
          end-to-end and may raise
          :class:`~repro.core.admission.AdmissionError`.
        - FRAME flows reserve ``bw_bytes_per_ns`` too (the video stream's
          average rate) but stamp deadlines from ``target_latency_ns``.
        - CONTROL flows skip reservation (the paper gives them no
          admission) and stamp at full link bandwidth.
        - Best-effort flows (``vc=1``) never reserve; their
          ``bw_bytes_per_ns`` only shapes deadlines (and path balancing).
        """
        if vc is None:
            vc = VC_BEST_EFFORT if tclass in ("best-effort", "background") else VC_REGULATED
        if not 0 <= vc < self.params.n_vcs:
            raise ValueError(
                f"vc {vc} out of range for a {self.params.n_vcs}-VC fabric"
            )
        if kind == FlowKind.CONTROL and bw_bytes_per_ns is None:
            bw_bytes_per_ns = self.params.bytes_per_ns
        flow = self.flows.create(
            src=src,
            dst=dst,
            tclass=tclass,
            kind=kind,
            vc=vc,
            bw_bytes_per_ns=bw_bytes_per_ns,
            target_latency_ns=target_latency_ns,
            smoothing=smoothing,
        )
        reserve = vc == VC_REGULATED and kind != FlowKind.CONTROL
        if reserve:
            invariant(bw_bytes_per_ns is not None, "regulated flows need a rate to reserve")
            reservation = self.admission.reserve(
                flow.spec.flow_id, src, dst, bw_bytes_per_ns
            )
            route = reservation.path
        else:
            weight = bw_bytes_per_ns if bw_bytes_per_ns else 1.0
            route = self.admission.assign_path(src, dst, weight=weight)
        flow.path = route.ports
        return flow

    def submit(self, flow: FlowState, message_bytes: int) -> None:
        """Hand one application message to the flow's source NIC."""
        self.hosts[flow.spec.src].submit_message(flow, message_bytes)

    # ------------------------------------------------------------------
    def subscribe_delivery(self, fn: DeliveryCallback) -> None:
        self._delivery_subscribers.append(fn)

    def run(self, until: int) -> None:
        self.engine.run(until=until)

    # ------------------------------------------------------------------
    # fabric-wide accounting (tests: conservation of packets)
    # ------------------------------------------------------------------
    def packets_in_flight(self) -> int:
        """Submitted but not yet delivered (host queues + switch VOQs + wires)."""
        submitted = sum(h.packets_submitted for h in self.hosts)
        delivered = sum(h.packets_received for h in self.hosts)
        return submitted - delivered

    def queued_in_switches(self) -> int:
        return sum(sw.queued_packets() for sw in self.switches.values())

    def queued_in_hosts(self) -> int:
        return sum(h.queued_packets() for h in self.hosts)

    def takeover_hits(self) -> int:
        """Fabric-wide take-over (U) queue arrivals."""
        return sum(sw.takeover_hits() for sw in self.switches.values())

    def link_utilization(self) -> float:
        """Mean fraction of simulated time the links spent transmitting."""
        now = self.engine.now
        if not self.links or now <= 0:
            return 0.0
        return sum(link.busy_ns for link in self.links.values()) / (now * len(self.links))


def build_fabric(
    architecture: Architecture = ADVANCED_2VC,
    topology: Optional[Topology] = None,
    params: FabricParams = FabricParams(),
    **kwargs,
) -> Fabric:
    """Convenience constructor; defaults to the paper's 128-endpoint MIN."""
    return Fabric(topology or paper_topology(), architecture, params, **kwargs)
