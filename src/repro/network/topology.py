"""Topology builders.

The paper evaluates a *butterfly multi-stage interconnection network with
128 endpoints, folded (bidirectional) perfect-shuffle*, built from
16-port switches (Section 4.1).  Folded onto bidirectional links, that
network is exactly a two-level Clos / fat-tree: 16 leaf switches with 8
host ports + 8 uplinks each, and 8 spine switches with 16 down ports
each.  :func:`paper_topology` builds precisely that; the generic
builders let tests and ablations scale the same shape down (or up, or to
more levels via the k-ary n-tree builder).

A :class:`Topology` is a pure description -- nodes, ports, and wiring --
with no simulation state; :mod:`repro.network.fabric` instantiates the
simulation objects from it.

Conventions:

- Hosts are named ``h0..h{N-1}`` and have exactly one port (port 0).
- Switches are named ``sw{level}.{index}``; level 0 is the leaf stage.
- Every cable is a pair of opposite simplex channels; the topology
  stores, per node and port, the ``(peer, peer_port)`` at the far end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

__all__ = [
    "FatTreeSpec",
    "Topology",
    "TopologyError",
    "build_fat_tree",
    "build_folded_shuffle_min",
    "paper_topology",
]


class TopologyError(ValueError):
    """Inconsistent wiring or invalid build parameters."""


PortRef = Tuple[str, int]  # (node id, port index)


@dataclass
class Topology:
    """An immutable-ish wiring description.

    ``ports[node][p]`` is the ``(peer, peer_port)`` connected to port
    ``p`` of ``node``, or ``None`` for an unwired port.
    """

    name: str
    host_ids: Tuple[str, ...]
    switch_ids: Tuple[str, ...]
    ports: Dict[str, List[Optional[PortRef]]]
    #: Stage of each switch (0 = leaf); hosts are implicitly below stage 0.
    levels: Dict[str, int] = field(default_factory=dict)

    # ------------------------------------------------------------------
    @property
    def n_hosts(self) -> int:
        return len(self.host_ids)

    def host_id(self, index: int) -> str:
        return self.host_ids[index]

    def host_index(self, host_id: str) -> int:
        try:
            return self._host_index[host_id]
        except AttributeError:
            self._host_index = {h: i for i, h in enumerate(self.host_ids)}
            return self._host_index[host_id]

    def is_host(self, node: str) -> bool:
        return node.startswith("h")

    def radix(self, node: str) -> int:
        return len(self.ports[node])

    def peer(self, node: str, port: int) -> Optional[PortRef]:
        return self.ports[node][port]

    def port_to(self, node: str, neighbor: str) -> int:
        """The (unique) port of ``node`` wired to ``neighbor``."""
        try:
            lookup = self._port_to
        except AttributeError:
            lookup = self._port_to = {}
            for n, plist in self.ports.items():
                for p, ref in enumerate(plist):
                    if ref is not None:
                        key = (n, ref[0])
                        if key in lookup:
                            raise TopologyError(
                                f"parallel links between {n} and {ref[0]} are not "
                                "supported by port_to(); use explicit ports"
                            )
                        lookup[key] = p
        try:
            return lookup[(node, neighbor)]
        except KeyError:
            raise TopologyError(f"{node} has no port wired to {neighbor}") from None

    def neighbors(self, node: str) -> Iterator[str]:
        for ref in self.ports[node]:
            if ref is not None:
                yield ref[0]

    def directed_links(self) -> Iterator[Tuple[str, int, str, int]]:
        """All simplex channels as ``(src, src_port, dst, dst_port)``."""
        for node, plist in self.ports.items():
            for p, ref in enumerate(plist):
                if ref is not None:
                    yield (node, p, ref[0], ref[1])

    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check wiring is symmetric and hosts have exactly one port."""
        for node, plist in self.ports.items():
            for p, ref in enumerate(plist):
                if ref is None:
                    continue
                peer, peer_port = ref
                if peer not in self.ports:
                    raise TopologyError(f"{node}:{p} wired to unknown node {peer}")
                back = self.ports[peer][peer_port]
                if back != (node, p):
                    raise TopologyError(
                        f"asymmetric wiring: {node}:{p} -> {peer}:{peer_port} "
                        f"but {peer}:{peer_port} -> {back}"
                    )
        for host in self.host_ids:
            wired = [ref for ref in self.ports[host] if ref is not None]
            if len(self.ports[host]) != 1 or len(wired) != 1:
                raise TopologyError(f"host {host} must have exactly one wired port")
        for sw in self.switch_ids:
            if sw not in self.levels:
                raise TopologyError(f"switch {sw} has no stage level annotation")

    def to_networkx(self):
        """Undirected multigraph view (for routing and analysis tools)."""
        import networkx as nx

        graph = nx.Graph()
        graph.add_nodes_from(self.host_ids, kind="host")
        for sw in self.switch_ids:
            graph.add_node(sw, kind="switch", level=self.levels[sw])
        seen = set()
        for src, sport, dst, dport in self.directed_links():
            key = frozenset(((src, sport), (dst, dport)))
            if key not in seen:
                seen.add(key)
                graph.add_edge(src, dst)
        return graph


# ----------------------------------------------------------------------
# builders
# ----------------------------------------------------------------------
def _wire(ports: Dict[str, List[Optional[PortRef]]], a: str, ap: int, b: str, bp: int) -> None:
    if ports[a][ap] is not None or ports[b][bp] is not None:
        raise TopologyError(f"double wiring at {a}:{ap} or {b}:{bp}")
    ports[a][ap] = (b, bp)
    ports[b][bp] = (a, ap)


def build_folded_shuffle_min(
    n_leaves: int,
    hosts_per_leaf: int,
    n_spines: int,
    *,
    name: Optional[str] = None,
) -> Topology:
    """Two-stage folded (bidirectional) MIN: the paper's topology class.

    Every leaf switch wires ``hosts_per_leaf`` hosts below and one uplink
    to *each* spine above (so leaves have ``hosts_per_leaf + n_spines``
    ports and spines have ``n_leaves`` ports).  With (16, 8, 8) this is
    the 128-endpoint, radix-16 folded perfect-shuffle network of
    Section 4.1.
    """
    if n_leaves < 1 or hosts_per_leaf < 1 or n_spines < 1:
        raise TopologyError(
            f"need at least one of each stage, got leaves={n_leaves}, "
            f"hosts/leaf={hosts_per_leaf}, spines={n_spines}"
        )
    if n_leaves == 1 and n_spines > 0:
        # A single leaf would make spines useless but harmless; allow it.
        pass
    host_ids = tuple(f"h{i}" for i in range(n_leaves * hosts_per_leaf))
    leaf_ids = tuple(f"sw0.{i}" for i in range(n_leaves))
    spine_ids = tuple(f"sw1.{i}" for i in range(n_spines))

    ports: Dict[str, List[Optional[PortRef]]] = {}
    for h in host_ids:
        ports[h] = [None]
    for leaf in leaf_ids:
        ports[leaf] = [None] * (hosts_per_leaf + n_spines)
    for spine in spine_ids:
        ports[spine] = [None] * n_leaves

    # Down ports 0..hosts_per_leaf-1 face hosts; up ports follow.
    for li, leaf in enumerate(leaf_ids):
        for hp in range(hosts_per_leaf):
            host = host_ids[li * hosts_per_leaf + hp]
            _wire(ports, leaf, hp, host, 0)
        for si, spine in enumerate(spine_ids):
            _wire(ports, leaf, hosts_per_leaf + si, spine, li)

    topo = Topology(
        name=name or f"folded-min-{n_leaves}x{hosts_per_leaf}x{n_spines}",
        host_ids=host_ids,
        switch_ids=leaf_ids + spine_ids,
        ports=ports,
        levels={**{l: 0 for l in leaf_ids}, **{s: 1 for s in spine_ids}},
    )
    topo.validate()
    return topo


@dataclass(frozen=True)
class FatTreeSpec:
    """Parameters of a k-ary n-tree: ``arity`` down-links per switch,
    ``levels`` switch stages.  Supports ``arity ** levels`` hosts."""

    arity: int
    levels: int

    def __post_init__(self) -> None:
        if self.arity < 2:
            raise TopologyError(f"arity must be >= 2, got {self.arity}")
        if self.levels < 1:
            raise TopologyError(f"levels must be >= 1, got {self.levels}")

    @property
    def n_hosts(self) -> int:
        return self.arity**self.levels


def build_fat_tree(spec: FatTreeSpec, *, name: Optional[str] = None) -> Topology:
    """Generic k-ary n-tree (Petrini & Vanneschi construction).

    Stage ``l`` (0 = leaf) has ``k^(n-1)`` switches.  Switch ``(l, w)``
    where ``w = (w_{n-2}, ..., w_0)`` in base ``k`` connects its up-port
    ``u`` to the stage-``l+1`` switch whose digit ``w_l`` is replaced by
    ``u``, at down-port equal to the replaced digit.  Top-stage switches
    have only down ports.  For n=2 this reduces to the folded MIN above
    with ``k`` spines of radix ``k``.
    """
    k, n = spec.arity, spec.levels
    n_switches_per_stage = k ** (n - 1)
    host_ids = tuple(f"h{i}" for i in range(spec.n_hosts))
    switch_ids: List[str] = []
    ports: Dict[str, List[Optional[PortRef]]] = {}
    for h in host_ids:
        ports[h] = [None]
    for level in range(n):
        radix = k if level == n - 1 else 2 * k
        for w in range(n_switches_per_stage):
            sid = f"sw{level}.{w}"
            switch_ids.append(sid)
            ports[sid] = [None] * radix

    # Hosts under leaves: down ports are 0..k-1 at every stage.
    for w in range(n_switches_per_stage):
        for d in range(k):
            _wire(ports, f"sw0.{w}", d, host_ids[w * k + d], 0)

    # Inter-stage wiring by digit replacement.
    for level in range(n - 1):
        stride = k**level
        for w in range(n_switches_per_stage):
            digit = (w // stride) % k
            for u in range(k):
                upper = w + (u - digit) * stride
                # Up ports are k..2k-1; the upper switch's down port index
                # is the digit that was replaced.
                _wire(ports, f"sw{level}.{w}", k + u, f"sw{level + 1}.{upper}", digit)

    topo = Topology(
        name=name or f"fat-tree-{k}ary{n}",
        host_ids=host_ids,
        switch_ids=tuple(switch_ids),
        ports=ports,
        levels={f"sw{l}.{w}": l for l in range(n) for w in range(n_switches_per_stage)},
    )
    topo.validate()
    return topo


def paper_topology() -> Topology:
    """The exact network of Section 4.1: 128 endpoints, radix-16 switches.

    16 leaves x 8 hosts, 8 spines; every switch has 16 ports.
    """
    return build_folded_shuffle_min(16, 8, 8, name="paper-min-128")
