"""Shared constants with no dependencies (breaks import cycles).

The paper's architecture uses exactly two virtual channels (its headline
cost claim): VC0 carries admitted, bandwidth-regulated traffic with
absolute priority; VC1 carries unregulated best-effort traffic.

Lower VC index = higher priority, everywhere.  ``N_VCS`` is the paper's
default; fabrics may be built with more VCs
(``FabricParams(n_vcs=...)``) to reproduce the Section 6 counterfactual
-- a conventional switch that dedicates one priority VC per traffic
class, the "many more VCs" alternative the paper argues is unaffordable.
"""

#: Virtual channel carrying admitted, bandwidth-reserved traffic.
VC_REGULATED = 0
#: Virtual channel carrying unregulated (best-effort) traffic (in the
#: paper's two-VC layout; multi-VC fabrics may map classes differently).
VC_BEST_EFFORT = 1
#: Default number of virtual channels per port (the paper's proposal).
N_VCS = 2

__all__ = ["N_VCS", "VC_BEST_EFFORT", "VC_REGULATED"]
