"""The interprocedural SIM1xx rules, run over the project model.

Unlike the per-file SIM0xx rules (:mod:`repro.lint.rules`), these see
every module of the scanned tree at once -- the import graph, the
approximate call graph, and the per-function dataflow facts -- so each
finding can say *which files contributed* (``Violation.provenance``).

========  ===========================  ====================================
ID        pragma name                  what it forbids
========  ===========================  ====================================
SIM101    unit-dimension               mixing time/data dimensions (a µs
                                       value into an ``*_ns`` parameter,
                                       ``bytes + ns`` arithmetic)
SIM102    nondeterministic-iteration   iterating an unordered set where
                                       the order can reach the engine, a
                                       queue, or a stats emitter
SIM103    dead-export                  ``__all__`` entries imported
                                       nowhere in the project
SIM104    hot-path-purity              I/O or eager log-string building
                                       in functions reachable from the
                                       engine/switch/queue hot path
SIM201    unpicklable-worker           lambdas / nested functions / bound
                                       methods submitted to a process
                                       pool
SIM202    shared-mutable-global        module-level dict/list/registry
                                       mutated from worker-reachable
                                       code
SIM203    process-varying-value        ``hash()``/pid/wall-clock values
                                       flowing into digest/cache/summary
                                       dataflow
SIM204    non-atomic-shared-write      worker-reachable file writes
                                       without write-temp-then-replace
SIM205    worker-env-mutation          ``os.environ`` writes reachable
                                       from workers
SIM301    hot-loop-allocation          per-iteration object construction
                                       (literals, comprehensions,
                                       closures, class instantiation) in
                                       loops of engine-reachable code
SIM302    hot-missing-slots            classes instantiated from hot
                                       code without ``__slots__``
SIM303    hot-attr-reload              attribute chain read 2+ times per
                                       hot-loop iteration, no write
SIM304    hot-global-lookup            global/builtin name looked up 2+
                                       times per hot-loop iteration
SIM305    hot-exception-flow           try/except KeyError etc. as
                                       control flow inside hot loops
SIM306    hot-eager-str                f-string/%%/.format/repr on the
                                       hot path outside obs and raises
SIM307    hot-unpooled-event           fresh container displays handed
                                       to ``at``/``after`` inside hot
                                       loops (one allocation per event)
SIM401    schedule-in-past             ``engine.at(t)`` where ``t`` is
                                       derived by subtraction with no
                                       ``max(now, ...)`` clamp
SIM402    float-time-flow              float-derived values reaching ns
                                       time/deadline sinks (``at``,
                                       ``after``, ``*_ns`` targets)
SIM403    epsilon-free-float-compare   ``==``/``!=``/raw ordering on
                                       float-derived time or bandwidth
                                       quantities
SIM404    unstable-edf-tiebreak        deadline-keyed sorts/heaps with
                                       no deterministic tie-break in
                                       engine/queue/switch-reachable code
SIM405    late-binding-callback        loop-variable capture in closures
                                       handed to ``at``/``after``
SIM406    truncating-time-div          true division ``/`` on exact-ns
                                       integers flowing to time sinks
========  ===========================  ====================================

The SIM2xx rules run over the worker-reachability closure computed by
:mod:`repro.lint.parallel`; the SIM3xx performance family runs over the
engine-reachability closure from :mod:`repro.lint.hotpath` and is the
family the profile-guided mode (``--profile prof.pstats``) ranks by
measured cost.  The SIM4xx temporal family runs over the time-type
lattice from :mod:`repro.lint.temporal` -- global for SIM401-403/405/406
(a float deadline is a bug wherever it runs), hot-scoped for SIM404 (the
tie-break discipline is an engine/queue contract).  Some findings carry
a machine-applicable ``fix`` payload that ``repro-qos lint --fix``
consumes (:mod:`repro.lint.fixes`).

A finding is suppressed on its line with ``# simlint: allow-<name>`` or
``# simlint: allow-sim1xx`` (the lowercase rule id works as a pragma
alias for every rule).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, Optional, Tuple, Type

from repro.lint.callgraph import CallGraph, Node
from repro.lint.dataflow import classify_name, dims_compatible
from repro.lint.hotpath import (
    HOT_PATH_PATTERNS,
    SANCTIONED_PATH_PATTERNS,
    analyze_hotpath,
    is_sanctioned,
    iter_hot_facts,
)
from repro.lint.lifecycle import (
    AttrLifecycle,
    ClassLifecycle,
    ScaleAnalysis,
    analyze_scale,
)
from repro.lint.parallel import ParallelAnalysis, SubmissionSite, analyze_parallel
from repro.lint.projectmodel import ModuleSummary, ProjectModel
from repro.lint.temporal import FLOAT, SUBTRACTION, iter_temporal_facts
from repro.lint.violations import Violation

__all__ = ["PROJECT_RULES", "ProjectRule", "register_project_rule"]


class ProjectRule:
    """Base class for whole-program rules."""

    #: Stable identifier, ``SIM1`` + two digits.
    id: str = ""
    #: Pragma name (``simlint: allow-<name>`` suppresses the rule).
    name: str = ""
    #: One-line description (``repro-qos lint --list-rules``).
    description: str = ""
    #: Longer why-this-matters text (``repro-qos lint --explain``).
    rationale: str = ""
    #: Minimal embedded examples, used by ``--explain`` when the fixture
    #: tree is not available (e.g. installed package).
    example_bad: str = ""
    example_good: str = ""

    def check(self, model: ProjectModel, graph: CallGraph) -> Iterator[Violation]:
        """Yield one :class:`Violation` per finding (pragma filtering is
        the runner's job)."""
        raise NotImplementedError

    def _violation(
        self,
        path: str,
        line: int,
        col: int,
        message: str,
        provenance: Tuple[str, ...],
        fix: Optional[Dict[str, Any]] = None,
    ) -> Violation:
        return Violation(
            path=path,
            line=line,
            col=col,
            rule_id=self.id,
            rule_name=self.name,
            message=message,
            provenance=tuple(sorted(set(provenance))),
            fix=fix,
        )


#: The project-rule registry, keyed by rule id.
PROJECT_RULES: Dict[str, ProjectRule] = {}


def register_project_rule(cls: Type[ProjectRule]) -> Type[ProjectRule]:
    rule = cls()
    if not rule.id or not rule.name:
        raise ValueError(f"rule {cls.__name__} must define id and name")
    if rule.id in PROJECT_RULES:
        raise ValueError(f"duplicate rule id {rule.id}")
    if any(existing.name == rule.name for existing in PROJECT_RULES.values()):
        raise ValueError(f"duplicate rule name {rule.name!r}")
    PROJECT_RULES[rule.id] = rule
    return cls


# ----------------------------------------------------------------------
# SIM101: unit-dimension dataflow
# ----------------------------------------------------------------------
@register_project_rule
class UnitDimensionRule(ProjectRule):
    id = "SIM101"
    name = "unit-dimension"
    description = (
        "time/data dimensions must not mix: *_ns parameters take integer "
        "nanoseconds (built via repro.sim.units us/ms/s or `n * US`), "
        "*_bytes take bytes, and bytes never add to nanoseconds"
    )
    rationale = (
        "The library keeps simulated time in integer nanoseconds and data "
        "in bytes (sim/units.py); a microsecond-scaled value slipping into "
        "an *_ns parameter silently stretches every deadline 1000x and no "
        "test that only checks relative ordering will notice.  The checker "
        "follows the *_ns/*_us/*_bytes naming conventions through "
        "assignments and across module boundaries via the call graph."
    )
    example_bad = (
        "# helper.py\n"
        "def schedule(delay_ns):\n"
        "    ...\n"
        "# caller.py\n"
        "from helper import schedule\n"
        "timeout_us = 20\n"
        "schedule(timeout_us)          # us handed to an *_ns parameter\n"
        "total = size_bytes + now_ns   # bytes + ns arithmetic\n"
    )
    example_good = (
        "from repro.sim.units import US, us\n"
        "from helper import schedule\n"
        "schedule(us(20))              # sanctioned constructor -> ns\n"
        "schedule(20 * US)             # sanctioned conversion -> ns\n"
    )

    def check(self, model: ProjectModel, graph: CallGraph) -> Iterator[Violation]:
        for summary in model.summaries():
            for fact in summary.functions.values():
                for line, col, detail in fact.mixes:
                    yield self._violation(
                        summary.path,
                        line,
                        col,
                        f"unit-dimension mismatch: {detail}",
                        (summary.path,),
                    )
                for call in fact.calls:
                    target = model.function_fact(call.resolved)
                    if target is None:
                        continue
                    target_summary, target_fact = target
                    params = list(target_fact.params)
                    if target_fact.is_method and params:
                        params = params[1:]
                    pairs = list(zip(params, call.arg_dims))
                    pairs += [
                        (name, dim)
                        for name, dim in call.kw_dims.items()
                        if name in params
                    ]
                    for param, arg_dim in pairs:
                        param_dim = classify_name(param)
                        if dims_compatible(param_dim, arg_dim):
                            continue
                        callee = f"{target_summary.module}.{target_fact.qualname}"
                        yield self._violation(
                            summary.path,
                            call.line,
                            call.col,
                            f"`{arg_dim}`-dimensioned argument passed to "
                            f"parameter `{param}` (`{param_dim}`) of "
                            f"`{callee}`",
                            (summary.path, target_summary.path),
                        )


# ----------------------------------------------------------------------
# SIM102: nondeterministic iteration reaching the engine/queues/stats
# ----------------------------------------------------------------------
@register_project_rule
class NondeterministicIterationRule(ProjectRule):
    id = "SIM102"
    name = "nondeterministic-iteration"
    description = (
        "iterating an unordered set in code that can reach the event "
        "engine, a queue, or a stats emitter makes event order depend on "
        "hash seeds; iterate sorted(...) instead"
    )
    rationale = (
        "Python set iteration order depends on insertion history and hash "
        "randomization.  If that order decides which event is scheduled "
        "first, two runs with the same seed can diverge -- the exact "
        "failure class deterministic DES frameworks exist to prevent.  "
        "The rule combines the call graph (does this function reach "
        "sim/engine, core/queues or stats?) with known scheduling method "
        "names (.at/.after/.schedule/.record/.observe)."
    )
    example_bad = (
        "def flush(self, hosts):\n"
        "    for host in set(hosts):          # unordered\n"
        "        self.engine.after(1, host.poll)\n"
    )
    example_good = (
        "def flush(self, hosts):\n"
        "    for host in sorted(set(hosts), key=lambda h: h.name):\n"
        "        self.engine.after(1, host.poll)\n"
    )

    #: Modules whose functions are event-order / stats sinks.
    SINK_PATH_PATTERNS = ("sim/engine", "core/queues/", "stats/")
    #: Unresolvable attribute calls that read as sink contact.
    SINK_ATTRS = frozenset({"at", "after", "schedule", "record", "observe", "emit"})

    def check(self, model: ProjectModel, graph: CallGraph) -> Iterator[Violation]:
        base = graph.nodes_in_modules(self.SINK_PATH_PATTERNS)
        base |= graph.nodes_calling_attrs(self.SINK_ATTRS)
        reaching = graph.nodes_reaching(base)
        for node, witness in sorted(reaching.items()):
            summary = graph.summary_of(node)
            if summary is None:
                continue
            fact = summary.functions.get(node[1])
            if fact is None:
                continue
            witness_summary = graph.summary_of(witness)
            witness_path = witness_summary.path if witness_summary else node[0]
            for line, col, detail in fact.set_iters:
                yield self._violation(
                    summary.path,
                    line,
                    col,
                    f"{detail} in `{node[1]}`, whose results can reach "
                    f"the engine/queues/stats via `{witness[0]}.{witness[1]}`; "
                    "iterate a sorted(...) copy",
                    (summary.path, witness_path),
                )


# ----------------------------------------------------------------------
# SIM103: dead public exports
# ----------------------------------------------------------------------
@register_project_rule
class DeadExportRule(ProjectRule):
    id = "SIM103"
    name = "dead-export"
    description = (
        "__all__ entries that no other module imports or references are "
        "dead API surface; remove them or mark the deliberate ones"
    )
    rationale = (
        "Every name in __all__ is a promise to keep.  A symbol exported "
        "but imported nowhere in the project is either dead code or an "
        "undocumented extension point -- both silently rot.  Package "
        "__init__/__main__/cli modules are exempt (they *are* the public "
        "surface); everything else must have an in-tree consumer, a "
        "re-export, or an explicit pragma."
    )
    example_bad = (
        "# util.py\n"
        "__all__ = ['used', 'never_imported']\n"
        "def used(): ...\n"
        "def never_imported(): ...\n"
        "# main.py\n"
        "from util import used\n"
    )
    example_good = (
        "# util.py\n"
        "__all__ = ['used']\n"
        "def used(): ...\n"
        "def never_imported(): ...   # private: not exported\n"
    )

    #: Module stems that define the public surface itself.
    EXEMPT_STEMS = frozenset({"__init__", "__main__", "cli", "conftest"})

    def check(self, model: ProjectModel, graph: CallGraph) -> Iterator[Violation]:
        used = set()
        star_imported = set()
        for summary in model.summaries():
            used.update(summary.bindings.values())
            used.update(summary.uses)
            star_imported.update(summary.star_imports)
        for summary in model.summaries():
            stem = summary.path.rsplit("/", 1)[-1].removesuffix(".py")
            if stem in self.EXEMPT_STEMS:
                continue
            if summary.module in star_imported:
                continue
            for name, line, col in summary.exports:
                if f"{summary.module}.{name}" in used:
                    continue
                yield self._violation(
                    summary.path,
                    line,
                    col,
                    f"`{name}` is exported from `{summary.module}` but "
                    "imported nowhere in the project",
                    (summary.path,),
                )


# ----------------------------------------------------------------------
# SIM104: hot-path purity
# ----------------------------------------------------------------------
@register_project_rule
class HotPathPurityRule(ProjectRule):
    id = "SIM104"
    name = "hot-path-purity"
    description = (
        "functions reachable from the engine -> switch -> queue hot path "
        "must not perform I/O or build log strings unconditionally"
    )
    rationale = (
        "The event loop executes millions of times per simulated "
        "millisecond; one print(), open() or eagerly-formatted logger "
        "call on that path dominates the profile and (worse) interleaves "
        "host I/O with simulated time.  Error paths are exempt: building "
        "a message inside `raise` costs nothing until the invariant "
        "breaks.  The observability layer (any module under an obs/ "
        "directory, i.e. repro.obs) is sanctioned by design: its "
        "counters/histograms are the one blessed way to look at the hot "
        "path, its own I/O (live progress, span-trace JSONL/Chrome-trace "
        "export in obs/tracing.py) runs heartbeat-gated or after the "
        "simulation, and its overhead is budgeted by a dedicated "
        "benchmark instead of this "
        "rule.  Campaign execution (any module under an exec/ directory, "
        "i.e. repro.exec) is likewise sanctioned: spawning worker "
        "processes and writing cache entries *is* its job, and it runs "
        "between simulations, never inside one."
    )
    example_bad = (
        "# core/queues/noisy.py\n"
        "class Queue:\n"
        "    def push(self, pkt):\n"
        "        print(f'push {pkt}')    # I/O on the hot path\n"
    )
    example_good = (
        "# core/queues/quiet.py\n"
        "class Queue:\n"
        "    def push(self, pkt):\n"
        "        if pkt.size_bytes < 0:\n"
        "            raise ValueError(f'bad size {pkt}')  # error path: fine\n"
    )

    #: Kept as aliases so existing callers (tests, docs) keep working;
    #: the closure itself now comes from the shared hot-path pass.
    HOT_PATH_PATTERNS = HOT_PATH_PATTERNS
    SANCTIONED_PATH_PATTERNS = SANCTIONED_PATH_PATTERNS

    def check(self, model: ProjectModel, graph: CallGraph) -> Iterator[Violation]:
        analysis = analyze_hotpath(model, graph)
        for node, summary, fact, root_path in iter_hot_facts(model, graph):
            root = analysis.reachable[node]
            for line, col, detail in fact.io_calls:
                yield self._violation(
                    summary.path,
                    line,
                    col,
                    f"hot-path impurity in `{node[1]}`: {detail} "
                    f"(reachable from `{root[0]}.{root[1]}`)",
                    (summary.path, root_path),
                )


# ----------------------------------------------------------------------
# SIM2xx: parallel safety (worker-reachability based)
# ----------------------------------------------------------------------
def _reachable_facts(
    analysis: ParallelAnalysis, graph: CallGraph
) -> Iterator[Tuple[Node, ModuleSummary, Any, str]]:
    """Worker-reachable (node, summary, fact, witness_path) quadruples,
    in deterministic node order."""
    for node in sorted(analysis.reachable):
        summary = graph.summary_of(node)
        if summary is None:
            continue
        fact = summary.functions.get(node[1])
        if fact is None:
            continue
        witness = analysis.reachable[node]
        witness_summary = graph.summary_of(witness)
        witness_path = witness_summary.path if witness_summary else summary.path
        yield node, summary, fact, witness_path


@register_project_rule
class UnpicklableWorkerRule(ProjectRule):
    id = "SIM201"
    name = "unpicklable-worker"
    description = (
        "lambdas, nested functions, and bound methods submitted to a "
        "process pool either fail to pickle or drag their whole "
        "enclosing instance into every worker; submit a module-level "
        "function instead"
    )
    rationale = (
        "ProcessPoolExecutor pickles the submitted callable into each "
        "worker.  A lambda or a function defined inside another "
        "function raises PicklingError outright; a bound method "
        "serialises its entire instance -- including any open files, "
        "pools, or caches it holds -- into every child, which at best "
        "is slow and at worst forks live state the parent goes on "
        "mutating.  The sweep executor's byte-identical-merge guarantee "
        "assumes workers receive nothing but a picklable function and "
        "its config.  The --fix engine can lift an argument-closed "
        "lambda to a module-level function automatically."
    )
    example_bad = (
        "with ProcessPoolExecutor() as pool:\n"
        "    fut = pool.submit(lambda cfg: run(cfg).total, config)\n"
    )
    example_good = (
        "def _run_total(cfg):\n"
        "    return run(cfg).total\n"
        "\n"
        "with ProcessPoolExecutor() as pool:\n"
        "    fut = pool.submit(_run_total, config)\n"
    )

    _WHY = {
        "lambda": "lambdas cannot be pickled",
        "local-function": "functions defined inside another function "
        "cannot be pickled",
        "bound-method": "bound methods pickle their whole instance into "
        "every worker (or fail outright)",
    }

    def check(self, model: ProjectModel, graph: CallGraph) -> Iterator[Violation]:
        analysis = analyze_parallel(model, graph)
        for site in analysis.submissions:
            if site.kind not in self._WHY:
                continue
            record = site.record
            pool = record.get("pool") or "pool"
            callee = record.get("callee") or "<lambda>"
            if site.kind == "lambda":
                what = "a lambda"
            elif site.kind == "local-function":
                what = f"locally-defined function `{callee}`"
            else:
                what = f"bound method `{callee}`"
            fix = self._lift_fix(site) if site.kind == "lambda" else None
            yield self._violation(
                site.summary.path,
                site.line,
                site.col,
                f"{what} submitted to `{pool}.{record['how']}`: "
                f"{self._WHY[site.kind]}; submit a module-level function",
                (site.summary.path,),
                fix=fix,
            )

    @staticmethod
    def _lift_fix(site: SubmissionSite) -> Optional[Dict[str, Any]]:
        """Machine edit lifting an argument-closed, single-expression
        lambda to a module-level function; ``None`` when the lambda
        captures state (a lift would change semantics)."""
        payload = site.record.get("lambda") or {}
        body_src = payload.get("body_src")
        if (
            not body_src
            or "\n" in body_src
            or payload.get("free_vars")
            or payload.get("has_varargs")
            or payload.get("has_defaults")
        ):
            return None
        name = f"_lifted_worker_{payload['line']}"
        if name in site.summary.symbols:
            return None  # already lifted (or colliding): leave it alone
        params = ", ".join(payload["params"])
        return {
            "kind": "lift-lambda",
            "path": site.summary.path,
            "description": f"lift the lambda to module-level `{name}`",
            "edits": [
                {
                    "start_line": payload["line"],
                    "start_col": payload["col"],
                    "end_line": payload["end_line"],
                    "end_col": payload["end_col"],
                    "replacement": name,
                }
            ],
            "append": f"\n\ndef {name}({params}):\n    return {body_src}\n",
        }


@register_project_rule
class SharedMutableGlobalRule(ProjectRule):
    id = "SIM202"
    name = "shared-mutable-global"
    description = (
        "module-level dicts/lists/registries mutated from "
        "worker-reachable code diverge per process: each fork mutates "
        "its own copy and the parent never sees any of them"
    )
    rationale = (
        "After fork (or spawn), every worker owns a private copy of "
        "module globals.  Code that appends to a module-level list, "
        "caches into a module-level dict, or get-or-creates metrics in "
        "a module-level MetricsRegistry *appears* to work in every "
        "worker -- and all of it is silently discarded when the worker "
        "exits, while jobs=1 runs accumulate real state.  That is the "
        "exact serial-vs-parallel divergence the executor's "
        "byte-identical-merge test exists to prevent.  Pass state in "
        "through the config and return it in the summary instead."
    )
    example_bad = (
        "_SEEN = {}\n"
        "def execute(cfg):           # submitted to the pool\n"
        "    _SEEN[cfg.seed] = True  # lost when the worker exits\n"
    )
    example_good = (
        "def execute(cfg):\n"
        "    seen = {cfg.seed: True}\n"
        "    return Summary(cfg, seen=seen)   # state rides the return\n"
    )

    def check(self, model: ProjectModel, graph: CallGraph) -> Iterator[Violation]:
        analysis = analyze_parallel(model, graph)
        for node, summary, fact, witness_path in _reachable_facts(
            analysis, graph
        ):
            for line, col, origin, kind, detail in fact.global_mutations:
                resolved = model.resolve_symbol(origin)
                if resolved is None:
                    continue
                owner_summary, symbol = resolved
                head = symbol.split(".", 1)[0] if symbol else ""
                if not head:
                    continue
                info = owner_summary.mutable_globals.get(head)
                if info is None and kind != "rebind":
                    continue
                global_kind = info[2] if info is not None else "module global"
                yield self._violation(
                    summary.path,
                    line,
                    col,
                    f"worker-reachable `{node[1]}` mutates module global "
                    f"`{head}` ({global_kind} defined in "
                    f"`{owner_summary.module}`) via {detail}; each pool "
                    "worker mutates a private fork-copy the parent never "
                    f"sees ({analysis.reason_for(node)})",
                    (summary.path, owner_summary.path, witness_path),
                )


@register_project_rule
class ProcessVaryingValueRule(ProjectRule):
    id = "SIM203"
    name = "process-varying-value"
    description = (
        "hash(), id(), os.getpid() and wall-clock reads differ between "
        "worker processes (and runs); feeding them into digest/cache/"
        "summary dataflow breaks content addressing"
    )
    rationale = (
        "The result cache maps config digests to summaries; the whole "
        "scheme assumes identical configs produce identical digests in "
        "every process, forever.  hash() is salted per process by "
        "PYTHONHASHSEED, id() is an address, os.getpid() and the wall "
        "clock obviously vary -- any of them reaching digest, cache-key, "
        "or summary construction makes cache hits a lottery: the same "
        "sweep re-simulates points it already has, or worse, two "
        "workers disagree about which entry is theirs.  Use the "
        "sha256-based helpers in repro.exec.digest (config_digest, "
        "stable_hash); the --fix engine rewrites single-argument "
        "hash(x) calls to stable_hash(x) automatically."
    )
    example_bad = (
        "# digest.py\n"
        "def cache_key(payload):\n"
        "    return hash(payload)      # salted per process\n"
    )
    example_good = (
        "# digest.py\n"
        "from repro.exec.digest import stable_hash\n"
        "def cache_key(payload):\n"
        "    return stable_hash(payload)   # sha256: stable everywhere\n"
    )

    #: File names whose dataflow is digest/cache/summary territory.
    SINK_FILES = frozenset({"digest.py", "cache.py", "summary.py"})

    def _is_sink(self, path: str) -> bool:
        return path.rsplit("/", 1)[-1] in self.SINK_FILES

    def check(self, model: ProjectModel, graph: CallGraph) -> Iterator[Violation]:
        for summary in model.summaries():
            in_sink = self._is_sink(summary.path)
            for qualname in sorted(summary.functions):
                fact = summary.functions[qualname]
                if in_sink:
                    for record in fact.varying_calls:
                        yield self._violation(
                            summary.path,
                            record["line"],
                            record["col"],
                            f"{record['detail']} used in `{qualname}` of "
                            "digest/cache/summary code: the value differs "
                            "between worker processes, so identical "
                            "configs stop mapping to identical digests",
                            (summary.path,),
                            fix=self._stable_hash_fix(summary.path, record),
                        )
                else:
                    for record in fact.varying_args:
                        target = model.function_fact(record.get("origin"))
                        if target is None:
                            continue
                        target_summary, target_fact = target
                        if not self._is_sink(target_summary.path):
                            continue
                        hits = "; ".join(record["hits"])
                        yield self._violation(
                            summary.path,
                            record["line"],
                            record["col"],
                            f"process-varying value ({hits}) flows into "
                            f"`{target_summary.module}."
                            f"{target_fact.qualname}`: digests/cache keys "
                            "derived from it differ per worker process",
                            (summary.path, target_summary.path),
                        )

    @staticmethod
    def _stable_hash_fix(
        path: str, record: Dict[str, Any]
    ) -> Optional[Dict[str, Any]]:
        if record.get("func") != "hash" or record.get("nargs") != 1:
            return None
        arg_src = record.get("arg_src")
        if not arg_src:
            return None
        return {
            "kind": "stable-hash",
            "path": path,
            "description": (
                "replace hash() with the deterministic sha256-based "
                "stable_hash()"
            ),
            "edits": [
                {
                    "start_line": record["line"],
                    "start_col": record["col"],
                    "end_line": record["end_line"],
                    "end_col": record["end_col"],
                    "replacement": f"stable_hash({arg_src})",
                }
            ],
            "ensure_import": "from repro.exec.digest import stable_hash",
        }


@register_project_rule
class NonAtomicSharedWriteRule(ProjectRule):
    id = "SIM204"
    name = "non-atomic-shared-write"
    description = (
        "worker-reachable code writing files in place can interleave "
        "with other workers; write to a temp path and os.replace() it, "
        "as the result cache does"
    )
    rationale = (
        "Two workers opening the same path with open(..., 'w') "
        "interleave their writes; a reader (or a resumed campaign) sees "
        "a torn file.  POSIX rename is atomic on one filesystem, so the "
        "cache's idiom -- write the full payload to a sibling temp file, "
        "then os.replace()/Path.replace() onto the final name -- makes "
        "every observer see either the old file or the complete new "
        "one.  The rule flags worker-reachable writes in functions with "
        "no replace/rename pairing; the check is per-function, so keep "
        "the write and its rename together."
    )
    example_bad = (
        "def save(summary, path):     # runs inside pool workers\n"
        "    with open(path, 'w') as fh:\n"
        "        fh.write(summary.to_json())\n"
    )
    example_good = (
        "def save(summary, path):\n"
        "    tmp = path.with_suffix('.tmp')\n"
        "    tmp.write_text(summary.to_json())\n"
        "    tmp.replace(path)        # atomic: no torn reads\n"
    )

    def check(self, model: ProjectModel, graph: CallGraph) -> Iterator[Violation]:
        analysis = analyze_parallel(model, graph)
        for node, summary, fact, witness_path in _reachable_facts(
            analysis, graph
        ):
            if fact.atomic_renames:
                continue  # temp-then-rename idiom present in this function
            for line, col, detail in fact.file_writes:
                yield self._violation(
                    summary.path,
                    line,
                    col,
                    f"worker-reachable `{node[1]}` writes a file in place "
                    f"({detail}) with no replace/rename pairing; write to "
                    "a temp path and os.replace() it "
                    f"({analysis.reason_for(node)})",
                    (summary.path, witness_path),
                )


@register_project_rule
class WorkerEnvMutationRule(ProjectRule):
    id = "SIM205"
    name = "worker-env-mutation"
    description = (
        "os.environ writes in worker-reachable code mutate one worker's "
        "environment, not the campaign's; pass settings through the "
        "config instead"
    )
    rationale = (
        "os.environ is per-process state.  A worker setting an "
        "environment variable changes nothing for its siblings or the "
        "parent, but *does* change its own subsequent tasks -- so which "
        "tasks see the setting depends on pool scheduling, the exact "
        "nondeterminism the deterministic merge is supposed to "
        "exclude.  Configuration must flow through ExperimentConfig "
        "(which is digested into the cache key); environment mutation "
        "belongs at process start, before the pool exists."
    )
    example_bad = (
        "def execute(cfg):            # submitted to the pool\n"
        "    os.environ['QOS_MODE'] = cfg.mode   # this worker only\n"
    )
    example_good = (
        "def execute(cfg):\n"
        "    run(mode=cfg.mode)       # settings travel in the config\n"
    )

    def check(self, model: ProjectModel, graph: CallGraph) -> Iterator[Violation]:
        analysis = analyze_parallel(model, graph)
        for node, summary, fact, witness_path in _reachable_facts(
            analysis, graph
        ):
            for line, col, detail in fact.env_writes:
                yield self._violation(
                    summary.path,
                    line,
                    col,
                    f"worker-reachable `{node[1]}` mutates the process "
                    f"environment ({detail}); the write is invisible to "
                    "other workers and the parent "
                    f"({analysis.reason_for(node)})",
                    (summary.path, witness_path),
                )


# ----------------------------------------------------------------------
# SIM3xx: hot-path performance (engine-reachability based)
# ----------------------------------------------------------------------
def _hot_function_facts(
    model: ProjectModel, graph: CallGraph
) -> Iterator[Tuple[Node, ModuleSummary, Any, str]]:
    """:func:`iter_hot_facts` minus module-level pseudo-functions:
    import-time code runs once per process, never per event, so the
    per-iteration cost arguments behind SIM301-SIM306 do not apply."""
    for node, summary, fact, root_path in iter_hot_facts(model, graph):
        if node[1] == "<module>":
            continue
        yield node, summary, fact, root_path


def _looks_like_exception(name: str, bases: Iterable[str]) -> bool:
    """Conventional-name test for exception classes: instantiated on
    raise paths, not per event, so ``__slots__`` buys nothing (and the
    BaseException machinery already manages the instance layout)."""
    suffixes = ("Error", "Exception", "Warning", "Violation", "Interrupt")
    if name.endswith(suffixes):
        return True
    return any(
        base.rsplit(".", 1)[-1].endswith(suffixes)
        or base.rsplit(".", 1)[-1] in ("BaseException", "KeyboardInterrupt")
        for base in bases
    )


def _hoist_fix(
    path: str,
    rec: Dict[str, Any],
    target: str,
    description: str,
) -> Optional[Dict[str, Any]]:
    """The SIM303/SIM304 machine fix: bind ``target`` to a local alias
    just above the loop and rewrite every load site to the alias.

    ``None`` when the collector could not find a collision-free alias;
    the finding still fires, the rewrite is just left to a human.
    """
    if not rec.get("alias_ok"):
        return None
    alias = str(rec["alias"])
    pad = " " * int(rec["loop_col"])
    loop_line = int(rec["loop_line"])
    edits: list[Dict[str, Any]] = [
        {
            "start_line": loop_line,
            "start_col": 0,
            "end_line": loop_line,
            "end_col": 0,
            "replacement": f"{pad}{alias} = {target}\n",
        }
    ]
    for site in rec["sites"]:
        edits.append(
            {
                "start_line": int(site[0]),
                "start_col": int(site[1]),
                "end_line": int(site[2]),
                "end_col": int(site[3]),
                "replacement": alias,
            }
        )
    return {
        "kind": "hoist-loop-load",
        "path": path,
        "description": description,
        "edits": edits,
    }


@register_project_rule
class HotLoopAllocationRule(ProjectRule):
    id = "SIM301"
    name = "hot-loop-allocation"
    description = (
        "no fresh objects per iteration in hot loops: list/dict/set "
        "literals, comprehensions, closures, varying-size tuples, and "
        "project-class instantiations inside loops of engine-reachable "
        "functions allocate on every pass"
    )
    rationale = (
        "The forwarding pipeline executes its loops once per packet per "
        "hop; a literal or closure inside such a loop turns every "
        "iteration into an allocator round-trip and a future GC sweep.  "
        "CPython allocation is ~100ns -- at millions of events per run "
        "that is real simulated-seconds-per-wall-hour lost.  Hoist the "
        "object out of the loop, preallocate a buffer, or restructure "
        "so the allocation happens once.  Allocations that *are* the "
        "workload (constructing the packets being injected) get a "
        "justified `# simlint: allow-hot-loop-allocation` pragma.  "
        "Error paths (`raise`, except handlers) are exempt."
    )
    example_bad = (
        "# core/queues/hot.py\n"
        "def drain(self, batch):\n"
        "    out = []\n"
        "    for item in batch:\n"
        "        out.append([item.a, item.b])   # fresh list per packet\n"
    )
    example_good = (
        "# core/queues/hot.py\n"
        "def drain(self, batch):\n"
        "    return list(batch)                 # one allocation, outside\n"
    )

    def check(self, model: ProjectModel, graph: CallGraph) -> Iterator[Violation]:
        for node, summary, fact, root_path in _hot_function_facts(model, graph):
            for rec in fact.loop_allocs:
                detail = str(rec["detail"])
                if rec["what"] == "call":
                    resolved = model.resolve_symbol(str(rec["origin"]))
                    if resolved is None:
                        continue
                    owner, symbol = resolved
                    if "." in symbol or owner.symbols.get(symbol) != "class":
                        continue
                    detail = f"an instance of `{symbol}`"
                yield self._violation(
                    summary.path,
                    int(rec["line"]),
                    int(rec["col"]),
                    f"allocation in a hot loop: {detail} is built on "
                    f"every iteration of the loop at line "
                    f"{rec['loop_line']} in `{node[1]}`; hoist it out, "
                    "preallocate, or reuse a buffer",
                    (summary.path, root_path),
                )


@register_project_rule
class HotMissingSlotsRule(ProjectRule):
    id = "SIM302"
    name = "hot-missing-slots"
    description = (
        "classes instantiated from engine-reachable code must declare "
        "__slots__: a per-instance __dict__ costs ~100 extra bytes and "
        "a hash lookup on every attribute access"
    )
    rationale = (
        "Hot code constructs these objects by the million (packets, "
        "event handles, queue entries).  Without __slots__ each "
        "instance drags a dict: more allocator pressure, worse cache "
        "locality, and slower attribute access on every later hot-path "
        "read.  The fix synthesises the tuple from the `self.x = ...` "
        "stores in `__init__`.  Decorated classes (dataclasses etc.) "
        "are skipped -- their machinery owns the layout -- and the "
        "speedup needs the whole inheritance chain slotted, so check "
        "the bases after applying."
    )
    example_bad = (
        "class Tracker:              # instantiated from hot code\n"
        "    def __init__(self, start):\n"
        "        self.count = start\n"
    )
    example_good = (
        "class Tracker:\n"
        "    __slots__ = (\"count\",)\n"
        "    def __init__(self, start):\n"
        "        self.count = start\n"
    )

    def check(self, model: ProjectModel, graph: CallGraph) -> Iterator[Violation]:
        seen: set[Tuple[str, str]] = set()
        for node, summary, fact, root_path in _hot_function_facts(model, graph):
            for call in fact.calls:
                if call.resolved is None:
                    continue
                resolved = model.resolve_symbol(call.resolved)
                if resolved is None:
                    continue
                owner, symbol = resolved
                if "." in symbol or owner.symbols.get(symbol) != "class":
                    continue
                info = owner.classes.get(symbol)
                if info is None or info["has_slots"] or info["decorated"]:
                    continue
                if _looks_like_exception(symbol, info.get("bases", ())):
                    continue
                if is_sanctioned(owner.path):
                    continue
                key = (owner.path, symbol)
                if key in seen:
                    continue
                seen.add(key)
                fix: Optional[Dict[str, Any]] = None
                attrs = list(info.get("init_attrs", ()))
                if attrs:
                    pad = " " * int(info["indent"])
                    items = ", ".join(f'"{attr}"' for attr in attrs)
                    if len(attrs) == 1:
                        items += ","
                    fix = {
                        "kind": "insert-slots",
                        "path": owner.path,
                        "description": (
                            f"declare `__slots__` on `{symbol}` from its "
                            "`__init__` attributes"
                        ),
                        "edits": [
                            {
                                "start_line": int(info["insert_line"]),
                                "start_col": 0,
                                "end_line": int(info["insert_line"]),
                                "end_col": 0,
                                "replacement": (
                                    f"{pad}__slots__ = ({items})\n\n"
                                ),
                            }
                        ],
                    }
                yield self._violation(
                    owner.path,
                    int(info["line"]),
                    int(info["col"]),
                    f"`{symbol}` is instantiated from hot-path "
                    f"`{node[1]}` (line {call.line}) but declares no "
                    "`__slots__`; every instance carries a dict",
                    (owner.path, summary.path, root_path),
                    fix=fix,
                )


@register_project_rule
class HotAttrReloadRule(ProjectRule):
    id = "SIM303"
    name = "hot-attr-reload"
    description = (
        "an attribute chain read 2+ times per iteration of a hot loop "
        "(with no intervening write) pays the descriptor lookup every "
        "time; hoist it into a local before the loop"
    )
    rationale = (
        "`self._heap` resolved inside the loop costs a dict/descriptor "
        "lookup per read per iteration; a local costs an array index.  "
        "engine.run() already does this by hand (`heap = self._heap`).  "
        "The analyzer only fires when nothing in the loop (including "
        "nested loops) stores to the chain or a prefix of it, and the "
        "machine fix rewrites every site to a collision-checked local.  "
        "Caveat: hoisting a *property* with side effects or a "
        "time-varying value is a semantic change -- review such sites "
        "or pragma them."
    )
    example_bad = (
        "def total(self, packets):\n"
        "    n = 0\n"
        "    for pkt in packets:\n"
        "        if self.slots is not None:\n"
        "            n += len(self.slots)    # 2nd load, same iteration\n"
    )
    example_good = (
        "def total(self, packets):\n"
        "    n = 0\n"
        "    slots = self.slots              # one load, before the loop\n"
        "    for pkt in packets:\n"
        "        if slots is not None:\n"
        "            n += len(slots)\n"
    )

    def check(self, model: ProjectModel, graph: CallGraph) -> Iterator[Violation]:
        for node, summary, fact, root_path in _hot_function_facts(model, graph):
            for rec in fact.loop_attr_repeats:
                chain = str(rec["chain"])
                site = rec["sites"][0]
                fix = _hoist_fix(
                    summary.path,
                    rec,
                    chain,
                    f"hoist `{chain}` to local `{rec['alias']}` above "
                    f"the loop at line {rec['loop_line']}",
                )
                yield self._violation(
                    summary.path,
                    int(site[0]),
                    int(site[1]),
                    f"`{chain}` is read {rec['count']}x per iteration "
                    f"of the hot loop at line {rec['loop_line']} in "
                    f"`{node[1]}` with no intervening write; hoist it "
                    "into a local before the loop",
                    (summary.path, root_path),
                    fix=fix,
                )


@register_project_rule
class HotGlobalLookupRule(ProjectRule):
    id = "SIM304"
    name = "hot-global-lookup"
    description = (
        "a global or builtin name looked up 2+ times per iteration of "
        "a hot loop pays two dict probes (module then builtins) each "
        "time; bind it to a local alias before the loop"
    )
    rationale = (
        "CPython resolves a global/builtin name through the module "
        "namespace and then the builtins dict on *every* evaluation; "
        "locals are array slots.  engine.run() aliases "
        "`pop = heapq.heappop` by hand for exactly this reason.  The "
        "machine fix inserts the alias binding above the loop and "
        "rewrites every lookup site; builtin aliases get a leading "
        "underscore (`_len = len`) so the alias never shadows the name "
        "it captures."
    )
    example_bad = (
        "import heapq\n"
        "def merge(self, items, extra):\n"
        "    for value in extra:\n"
        "        heapq.heappush(items, value)      # 2 dict probes\n"
        "        heapq.heappush(items, value + 1)  # ... per site\n"
    )
    example_good = (
        "import heapq\n"
        "def merge(self, items, extra):\n"
        "    heappush = heapq.heappush             # bound once\n"
        "    for value in extra:\n"
        "        heappush(items, value)\n"
        "        heappush(items, value + 1)\n"
    )

    def check(self, model: ProjectModel, graph: CallGraph) -> Iterator[Violation]:
        for node, summary, fact, root_path in _hot_function_facts(model, graph):
            for rec in fact.loop_global_lookups:
                name = str(rec["name"])
                site = rec["sites"][0]
                fix = _hoist_fix(
                    summary.path,
                    rec,
                    name,
                    f"alias {rec['kind']} `{name}` as local "
                    f"`{rec['alias']}` above the loop at line "
                    f"{rec['loop_line']}",
                )
                yield self._violation(
                    summary.path,
                    int(site[0]),
                    int(site[1]),
                    f"{rec['kind']} `{name}` is looked up "
                    f"{rec['count']}x per iteration of the hot loop at "
                    f"line {rec['loop_line']} in `{node[1]}`; bind it "
                    "to a local alias before the loop",
                    (summary.path, root_path),
                    fix=fix,
                )


@register_project_rule
class HotExceptionFlowRule(ProjectRule):
    id = "SIM305"
    name = "hot-exception-flow"
    description = (
        "try/except used for expected cases inside a hot loop: "
        "KeyError/IndexError/AttributeError/StopIteration handlers "
        "that do real work signal control flow by exception, which "
        "costs an exception object + traceback per miss"
    )
    rationale = (
        "Raising is fine when exceptional; in a hot loop where the "
        "'miss' is a routine outcome (absent dict key, drained list), "
        "each miss allocates an exception instance and unwinds a "
        "frame -- an order of magnitude over `dict.get`, a length "
        "check, or iterator protocol.  Handlers that merely re-raise "
        "are exempt (that is error propagation, not control flow), as "
        "are handlers for types outside the cheap-check set."
    )
    example_bad = (
        "for key in keys:\n"
        "    try:\n"
        "        out.append(table[key])   # miss is a routine case\n"
        "    except KeyError:\n"
        "        out.append(None)\n"
    )
    example_good = (
        "for key in keys:\n"
        "    out.append(table.get(key))   # one probe, no unwinding\n"
    )

    #: Exception types with a cheap non-raising equivalent.
    CHEAP_CHECK_TYPES = frozenset(
        {"KeyError", "IndexError", "AttributeError", "StopIteration"}
    )

    def check(self, model: ProjectModel, graph: CallGraph) -> Iterator[Violation]:
        for node, summary, fact, root_path in _hot_function_facts(model, graph):
            for rec in fact.loop_try_excepts:
                if rec.get("reraises_only"):
                    continue
                cheap = sorted(self.CHEAP_CHECK_TYPES & set(rec["types"]))
                if not cheap:
                    continue
                yield self._violation(
                    summary.path,
                    int(rec["line"]),
                    int(rec["col"]),
                    f"try/except {'/'.join(cheap)} inside the hot loop "
                    f"at line {rec['loop_line']} in `{node[1]}` treats "
                    "an expected case as an exception; use .get()/a "
                    "length check/iterator protocol instead",
                    (summary.path, root_path),
                )


@register_project_rule
class HotEagerStringRule(ProjectRule):
    id = "SIM306"
    name = "hot-eager-str"
    description = (
        "f-strings, %-formatting, str.format and repr() on the hot "
        "path build strings nobody may ever read; outside the obs "
        "layer the hot path must not format"
    )
    rationale = (
        "String interpolation allocates and formats unconditionally -- "
        "even when the result feeds a disabled trace or a metric that "
        "is never scraped.  The observability layer is sanctioned (its "
        "cost is budgeted and benchmarked); `raise` paths are exempt "
        "(the message costs nothing until the invariant breaks), and "
        "so are `__repr__`/`__str__` (formatting *is* their job -- "
        "callers pay only when they ask).  Everything else on the hot "
        "path should format lazily or not at all; one-time setup code "
        "that trips the rule gets a justified pragma."
    )
    example_bad = (
        "def label(self, pkt):            # hot-reachable\n"
        "    return f\"{self.prefix}:{pkt.uid}\"   # formats per packet\n"
    )
    example_good = (
        "def describe(self, pkt):\n"
        "    if pkt is None:\n"
        "        raise ValueError(f\"no packet for {self.prefix}\")\n"
        "    return (self.prefix, pkt.uid)  # tuple, formatted on demand\n"
    )

    def check(self, model: ProjectModel, graph: CallGraph) -> Iterator[Violation]:
        for node, summary, fact, root_path in _hot_function_facts(model, graph):
            if node[1].endswith(("__repr__", "__str__")):
                continue
            for line, col, detail in fact.str_builds:
                yield self._violation(
                    summary.path,
                    line,
                    col,
                    f"eager string building in hot-path `{node[1]}`: "
                    f"{detail} formats on every execution; move it to "
                    "an error path, the obs layer, or format lazily",
                    (summary.path, root_path),
                )


@register_project_rule
class HotUnpooledEventRule(ProjectRule):
    id = "SIM307"
    name = "hot-unpooled-event"
    description = (
        "container displays (tuple/list/dict/set literals and "
        "comprehensions) passed as callback arguments to "
        "`engine.at`/`engine.after` inside hot loops allocate a fresh "
        "object per scheduled event"
    )
    rationale = (
        "The engine pools its event records precisely so that "
        "scheduling costs no allocation on the steady state -- but the "
        "pool cannot absorb argument containers the *caller* builds.  "
        "An `engine.after(d, cb, (src, dst))` inside a per-packet loop "
        "mints one tuple per event: at millions of events per run the "
        "caller re-introduces the allocator round-trip the pooled "
        "kernel just removed.  Pass scalars positionally (the varargs "
        "tuple is interned into the pooled event record), pre-build "
        "the container once outside the loop, or pre-bind the handler. "
        "Sites where the container genuinely varies per event get a "
        "justified `# simlint: allow-hot-unpooled-event` pragma."
    )
    example_bad = (
        "# core/queues/hot.py\n"
        "def flush(self, batch):\n"
        "    for pkt in batch:\n"
        "        self.engine.after(self.delay, self._emit,\n"
        "                          (pkt.src, pkt.dst))  # tuple per event\n"
    )
    example_good = (
        "# core/queues/hot.py\n"
        "def flush(self, batch):\n"
        "    after = self.engine.after\n"
        "    for pkt in batch:\n"
        "        after(self.delay, self._emit, pkt.src, pkt.dst)\n"
    )

    def check(self, model: ProjectModel, graph: CallGraph) -> Iterator[Violation]:
        for node, summary, fact, root_path in _hot_function_facts(model, graph):
            for rec in fact.schedule_calls:
                if not rec.get("in_loop"):
                    continue
                for arg in rec.get("fresh_args", ()):
                    yield self._violation(
                        summary.path,
                        int(arg["line"]),
                        int(arg["col"]),
                        f"unpooled event argument in hot-path "
                        f"`{node[1]}`: {arg['detail']} is built for "
                        f"every `{rec['attr']}` call in the loop; pass "
                        "scalars positionally, hoist the container, or "
                        "pre-bind the handler",
                        (summary.path, root_path),
                    )


# ----------------------------------------------------------------------
# SIM401-SIM406: temporal soundness (deadline arithmetic, monotonicity,
# EDF tie-breaking) over the lattice from repro.lint.temporal
# ----------------------------------------------------------------------
def _span_fix(
    kind: str,
    path: str,
    description: str,
    span_fix: Optional[Dict[str, Any]],
) -> Optional[Dict[str, Any]]:
    """Adapt a dataflow ``{"span", "replacement"}`` record to the fix
    payload :mod:`repro.lint.fixes` applies (``None`` passes through:
    the finding still fires, the rewrite is left to a human)."""
    if span_fix is None:
        return None
    span = span_fix["span"]
    return {
        "kind": kind,
        "path": path,
        "description": description,
        "edits": [
            {
                "start_line": int(span[0]),
                "start_col": int(span[1]),
                "end_line": int(span[2]),
                "end_col": int(span[3]),
                "replacement": str(span_fix["replacement"]),
            }
        ],
    }


@register_project_rule
class ScheduleInPastRule(ProjectRule):
    id = "SIM401"
    name = "schedule-in-past"
    description = (
        "engine.at(t) where t is derived by subtraction with no clamp "
        "is not provably >= now; the engine raises mid-campaign when "
        "the difference goes negative"
    )
    rationale = (
        "Engine.at() rejects past timestamps at runtime, so a "
        "subtraction-derived schedule time (`deadline - slack`, "
        "`now - elapsed`) is a latent crash that only fires under the "
        "load patterns that make the difference negative -- exactly the "
        "near-critical-load campaigns where a dead run costs hours.  "
        "Anchor the value instead: `max(engine.now, t)`, or add the "
        "delta to `now` rather than subtracting from a deadline.  "
        "Values with no evidence either way (parameters, opaque calls) "
        "are never flagged; the engine's runtime guard remains the "
        "backstop."
    )
    example_bad = (
        "def arm(self, pkt):\n"
        "    t = pkt.deadline_ns - self.guard_ns   # may be < now\n"
        "    self.engine.at(t, self.fire)\n"
    )
    example_good = (
        "def arm(self, pkt):\n"
        "    t = max(self.engine.now, pkt.deadline_ns - self.guard_ns)\n"
        "    self.engine.at(t, self.fire)\n"
    )

    def check(self, model: ProjectModel, graph: CallGraph) -> Iterator[Violation]:
        for summary, fact in iter_temporal_facts(model):
            for rec in fact.schedule_calls:
                if rec["attr"] != "at" or rec["proof"] != SUBTRACTION:
                    continue
                arg = rec.get("arg_src") or "the time argument"
                yield self._violation(
                    summary.path,
                    int(rec["line"]),
                    int(rec["col"]),
                    f"`{rec['receiver']}.at({arg})` in `{fact.qualname}` "
                    "schedules a subtraction-derived time with no "
                    "`max(now, ...)` clamp; the engine raises if it "
                    "lands in the past",
                    (summary.path,),
                )


@register_project_rule
class FloatTimeFlowRule(ProjectRule):
    id = "SIM402"
    name = "float-time-flow"
    description = (
        "float-derived values must not reach integer-nanosecond time "
        "sinks (engine.at/after arguments, *_ns/deadline/eligible "
        "assignment targets); construct times with sim.units helpers"
    )
    rationale = (
        "Simulated time is exact integer nanoseconds (sim/units.py): "
        "the engine heap, deadline comparisons, and the analytic EDF "
        "cross-checks all assume it.  A float-derived deadline "
        "(`rate * 1.5`, an un-rounded division) drifts by ulps, makes "
        "event order depend on accumulated rounding, and breaks "
        "byte-identical replay.  Convert at the boundary: us()/ms()/s() "
        "for literals, round() after rate arithmetic, // for splits."
    )
    example_bad = (
        "def schedule(self, engine, rate):\n"
        "    deadline_ns = rate * 1.5        # float into a ns name\n"
        "    engine.after(deadline_ns, self.fire)\n"
    )
    example_good = (
        "def schedule(self, engine, rate):\n"
        "    deadline_ns = round(rate * 1.5) # exact at the boundary\n"
        "    engine.after(deadline_ns, self.fire)\n"
    )

    def check(self, model: ProjectModel, graph: CallGraph) -> Iterator[Violation]:
        for summary, fact in iter_temporal_facts(model):
            for rec in fact.schedule_calls:
                # Exact-ns true divisions inside the argument are
                # SIM406's finding; do not double-report them here.
                if rec["ttype"] != FLOAT or rec["ns_divs"]:
                    continue
                arg = rec.get("arg_src") or "the time argument"
                yield self._violation(
                    summary.path,
                    int(rec["line"]),
                    int(rec["col"]),
                    f"float-derived value `{arg}` passed to "
                    f"`{rec['receiver']}.{rec['attr']}(...)` in "
                    f"`{fact.qualname}`; time sinks take exact integer "
                    "nanoseconds (round() or use sim.units helpers)",
                    (summary.path,),
                )
            for rec in fact.float_time_assigns:
                yield self._violation(
                    summary.path,
                    int(rec["line"]),
                    int(rec["col"]),
                    f"{rec['detail']} in `{fact.qualname}`; integer-time "
                    "names hold exact nanoseconds (round() or use "
                    "sim.units helpers)",
                    (summary.path,),
                )


@register_project_rule
class EpsilonFreeFloatCompareRule(ProjectRule):
    id = "SIM403"
    name = "epsilon-free-float-compare"
    description = (
        "==/!= or raw ordering on float-derived time/bandwidth "
        "quantities: accumulated rounding makes the comparison "
        "seed-dependent; compare exact integers or use an explicit "
        "epsilon helper"
    )
    rationale = (
        "Float bookkeeping drifts: summing and subtracting reservations "
        "leaves residues near 1e-16 that flip `== 0.0` and `<= cap` "
        "either way depending on arrival order.  Admission decisions "
        "built on such comparisons are nondeterministic across "
        "campaigns.  Keep the books in exact integers (bytes/second "
        "ints survive add/subtract exactly) or centralize the tolerance "
        "in one documented epsilon helper.  Sign/validity checks "
        "against integer literals (`bw <= 0`) are exempt -- ordering "
        "against zero is not an equality-with-drift hazard."
    )
    example_bad = (
        "remaining = self.reserved.get(link, 0.0) - bw\n"
        "self.reserved[link] = remaining if remaining > 1e-12 else 0.0\n"
    )
    example_good = (
        "# books kept in integer bytes/second: exact add/subtract\n"
        "self.reserved_bps[link] -= bps(bw)\n"
    )

    def check(self, model: ProjectModel, graph: CallGraph) -> Iterator[Violation]:
        for summary, fact in iter_temporal_facts(model):
            for rec in fact.float_compares:
                quantity = "time" if rec["quantity"] == "ns" else "bandwidth"
                yield self._violation(
                    summary.path,
                    int(rec["line"]),
                    int(rec["col"]),
                    f"{rec['detail']} compares a float-derived "
                    f"{quantity} quantity in `{fact.qualname}`; keep "
                    "the books in exact integers or use an epsilon "
                    "helper",
                    (summary.path,),
                )


@register_project_rule
class UnstableEdfTiebreakRule(ProjectRule):
    id = "SIM404"
    name = "unstable-edf-tiebreak"
    description = (
        "deadline-keyed sorted()/.sort()/heappush in engine/queue/"
        "switch-reachable code with no deterministic tie-break: equal "
        "deadlines order arbitrarily; key on (deadline, uid)"
    )
    rationale = (
        "EDF says nothing about equal deadlines, so the implementation "
        "must: heapq is not stable, and a bare-deadline heap entry "
        "falls back to comparing payloads (a TypeError on dataclasses, "
        "insertion-address order otherwise).  The library idiom is the "
        "`(deadline, uid, payload)` tuple -- uid is the monotonic "
        "admission sequence, so ties break FIFO and replays are "
        "byte-identical.  The machine fix appends the `.uid` tie-break "
        "to the key."
    )
    example_bad = (
        "heapq.heappush(self._heap, (pkt.deadline, pkt))\n"
        "queue.sort(key=lambda p: p.deadline)\n"
    )
    example_good = (
        "heapq.heappush(self._heap, (pkt.deadline, pkt.uid, pkt))\n"
        "queue.sort(key=lambda p: (p.deadline, p.uid))\n"
    )

    def check(self, model: ProjectModel, graph: CallGraph) -> Iterator[Violation]:
        for node, summary, fact, root_path in _hot_function_facts(model, graph):
            for rec in fact.sort_keys:
                fix = _span_fix(
                    "stable-sort-key",
                    summary.path,
                    f"append a `.uid` tie-break to the `{rec['key']}` "
                    f"{rec['kind']} key",
                    rec.get("fix"),
                )
                yield self._violation(
                    summary.path,
                    int(rec["line"]),
                    int(rec["col"]),
                    f"{rec['detail']} in hot-path `{node[1]}`; equal "
                    "deadlines order arbitrarily -- key on "
                    "`(deadline, uid)`",
                    (summary.path, root_path),
                    fix=fix,
                )


@register_project_rule
class LateBindingCallbackRule(ProjectRule):
    id = "SIM405"
    name = "late-binding-callback"
    description = (
        "closure handed to engine.at/after captures a loop variable: "
        "Python closes over the variable, not its value, so every "
        "callback sees the final iteration when it fires"
    )
    rationale = (
        "Scheduled callbacks fire after the loop has finished, and a "
        "closure reads its free variables at call time -- so N "
        "callbacks armed in a loop all act on the last item.  The bug "
        "is silent (no exception, plausible-looking traffic) and "
        "load-dependent.  Bind at definition time instead: a default "
        "argument (`lambda it=it: ...`), functools.partial, or a "
        "factory function.  The machine fix rewrites the lambda to "
        "default-argument binding."
    )
    example_bad = (
        "for flow in flows:\n"
        "    engine.after(gap_ns, lambda: self.send(flow))\n"
        "    # every callback sends the *last* flow\n"
    )
    example_good = (
        "for flow in flows:\n"
        "    engine.after(gap_ns, lambda flow=flow: self.send(flow))\n"
    )

    def check(self, model: ProjectModel, graph: CallGraph) -> Iterator[Violation]:
        for summary, fact in iter_temporal_facts(model):
            for rec in fact.loop_captures:
                names = ", ".join(f"`{v}`" for v in rec["vars"])
                fix = _span_fix(
                    "bind-loop-var",
                    summary.path,
                    f"bind {names} by default argument in the callback",
                    rec.get("fix"),
                )
                callee = (
                    "lambda" if rec["kind"] == "lambda" else f"`{rec['callee']}`"
                )
                yield self._violation(
                    summary.path,
                    int(rec["line"]),
                    int(rec["col"]),
                    f"{callee} passed to `.{rec['attr']}(...)` in "
                    f"`{fact.qualname}` captures loop variable(s) "
                    f"{names}; every callback fires with the final "
                    "iteration's value -- bind with a default argument",
                    (summary.path,),
                    fix=fix,
                )


@register_project_rule
class TruncatingTimeDivRule(ProjectRule):
    id = "SIM406"
    name = "truncating-time-div"
    description = (
        "true division `/` on exact-ns integers flowing to a time "
        "sink produces a float; use `//` (or a sim.units helper) to "
        "stay in exact integer nanoseconds"
    )
    rationale = (
        "`span_ns / 2` is a float even when span_ns is even: one "
        "division silently demotes the whole expression out of the "
        "exact-integer time domain, and past 2**53 ns (~104 days of "
        "simulated time) float cannot even represent every nanosecond.  "
        "Floor division keeps the arithmetic closed over ints with "
        "deterministic truncation.  The machine fix rewrites `/` to "
        "`//` when both operands are exact."
    )
    example_bad = (
        "def half_delay(self, engine, span_ns):\n"
        "    engine.after(span_ns / 2, self.fire)   # float, truncates\n"
    )
    example_good = (
        "def half_delay(self, engine, span_ns):\n"
        "    engine.after(span_ns // 2, self.fire)  # exact integer ns\n"
    )

    def check(self, model: ProjectModel, graph: CallGraph) -> Iterator[Violation]:
        for summary, fact in iter_temporal_facts(model):
            for rec in fact.ns_true_divs:
                fix: Optional[Dict[str, Any]] = None
                if rec.get("op_span") is not None:
                    fix = _span_fix(
                        "int-time-div",
                        summary.path,
                        f"rewrite `/` to `//` in {rec['sink']}",
                        {"span": rec["op_span"], "replacement": "//"},
                    )
                left = rec.get("left_src") or "an exact-ns value"
                yield self._violation(
                    summary.path,
                    int(rec["line"]),
                    int(rec["col"]),
                    f"true division of exact-ns `{left}` in "
                    f"{rec['sink']} (`{fact.qualname}`) produces a "
                    "float; use `//` to stay in integer nanoseconds",
                    (summary.path,),
                    fix=fix,
                )


# ----------------------------------------------------------------------
# SIM5xx: scale soundness (container-lifecycle based)
# ----------------------------------------------------------------------
#: Growth methods that add elements without a key: the SIM501 signal.
_UNKEYED_GROW_METHODS = frozenset(
    {"append", "appendleft", "add", "extend", "insert", "heappush", "iadd"}
)

#: ``key_src`` tail tokens that identify per-packet/per-flow keys.
_UID_KEY_TOKENS = frozenset(
    {
        "uid",
        "pkt",
        "packet",
        "flow",
        "flow_id",
        "seq",
        "seqno",
        "msg_id",
        "span_id",
        "trace_id",
    }
)


def _keyed_by_uid(key_src: Optional[str]) -> bool:
    """Whether a subscript/setdefault key names a per-entity id: the
    last identifier of the key expression is matched, so a counter
    keyed by ``pkt.tclass`` (a handful of classes) stays exempt while
    ``pkt.uid`` / ``flow_id`` / ``state.span_id`` match."""
    if not key_src:
        return False
    token = key_src.strip("() ").rsplit(".", 1)[-1].strip("() ").lower()
    return (
        token in _UID_KEY_TOKENS
        or token.endswith("uid")
        or token.endswith("_id")
    )


def _site(op: Dict[str, Any]) -> Tuple[int, int]:
    return int(op["line"]), int(op["col"])


def _never_shrinks(cycle: AttrLifecycle) -> bool:
    """No method of the class ever removes from or replaces the attr."""
    return not cycle.shrinks and not cycle.rebinds


@register_project_rule
class UnboundedHotGrowthRule(ProjectRule):
    id = "SIM501"
    name = "unbounded-hot-growth"
    description = (
        "long-lived container attribute grows on the scale-hot path "
        "(per packet/tick) and no method of its class ever shrinks or "
        "replaces it; at 1024+ endpoints that state grows without bound"
    )
    rationale = (
        "The scale sweep (ROADMAP item 2) runs 512-4096 endpoints with "
        "flow churn: any per-event append into state that only ever "
        "grows turns a constant-memory simulation into a linear one, "
        "and the heavy-traffic regimes the paper cares about (rho -> 1) "
        "are exactly where event counts explode.  The rule fires when a "
        "container built in `__init__` has a grow site reachable from "
        "the hot-path modules or a self-re-arming scheduled callback, "
        "and *no* method anywhere in the class pops, clears, discards "
        "or rebinds it.  Give the container an eviction policy, a "
        "bounded deque, or an explicit close/reset path."
    )
    example_bad = (
        "class Telemetry:\n"
        "    def __init__(self):\n"
        "        self.samples = []\n"
        "    def _tick(self, engine):       # re-arms itself forever\n"
        "        self.samples.append(engine.now)\n"
        "        engine.after(PERIOD, self._tick)\n"
    )
    example_good = (
        "class Telemetry:\n"
        "    def __init__(self, capacity):\n"
        "        self.samples = deque(maxlen=capacity)  # bounded\n"
        "    def _tick(self, engine):\n"
        "        self.samples.append(engine.now)\n"
        "        engine.after(PERIOD, self._tick)\n"
    )

    def check(self, model: ProjectModel, graph: CallGraph) -> Iterator[Violation]:
        analysis: ScaleAnalysis = analyze_scale(model, graph)
        for lifecycle in analysis.classes():
            for attr in sorted(lifecycle.attrs):
                cycle = lifecycle.attrs[attr]
                if cycle.kind is None or cycle.bounded:
                    continue
                if not _never_shrinks(cycle):
                    continue
                hot_grows = [
                    (qualname, op)
                    for qualname, op in cycle.grows
                    if op.get("method") in _UNKEYED_GROW_METHODS
                    and analysis.is_scale_hot(lifecycle.module, qualname)
                ]
                if not hot_grows:
                    continue
                qualname, op = min(hot_grows, key=lambda pair: _site(pair[1]))
                witness = analysis.reachable[(lifecycle.module, qualname)]
                witness_summary = model.modules.get(witness[0])
                witness_path = (
                    witness_summary.path
                    if witness_summary
                    else lifecycle.summary.path
                )
                line, col = _site(op)
                yield self._violation(
                    lifecycle.summary.path,
                    line,
                    col,
                    f"`self.{attr}` ({cycle.kind}) grows via "
                    f"`.{op['method']}` in scale-hot `{qualname}` "
                    f"(reached from `{witness[1]}`) and no method of "
                    f"`{lifecycle.name}` ever shrinks or rebinds it; "
                    "bound it (deque maxlen / eviction) or add a "
                    "shrink path",
                    (lifecycle.summary.path, witness_path),
                )


@register_project_rule
class LinearMembershipHotRule(ProjectRule):
    id = "SIM502"
    name = "linear-membership-hot"
    description = (
        "`x in <list attr>` / `.index()` / `.count()` / `.remove()` on "
        "list-typed state in a scale-hot method is an O(n) scan per "
        "event; use a set (or dict) index"
    )
    rationale = (
        "A membership probe on a Python list walks it element by "
        "element: at 128 endpoints the list is short and the scan is "
        "invisible, at 4096 endpoints with deep VOQs it is the hot "
        "loop.  When the class only ever appends and probes, the "
        "machine fix swaps the `[]` for a `set()` and every `.append` "
        "for `.add` -- O(1) membership with identical semantics.  When "
        "the list also orders or indexes, keep the list but maintain a "
        "side set for the probes."
    )
    example_bad = (
        "class Dedup:\n"
        "    def __init__(self):\n"
        "        self._seen = []\n"
        "    def accept(self, pkt):      # hot: called per packet\n"
        "        if pkt.uid in self._seen:   # O(n) scan\n"
        "            return\n"
        "        self._seen.append(pkt.uid)\n"
    )
    example_good = (
        "class Dedup:\n"
        "    def __init__(self):\n"
        "        self._seen = set()\n"
        "    def accept(self, pkt):\n"
        "        if pkt.uid in self._seen:   # O(1) probe\n"
        "            return\n"
        "        self._seen.add(pkt.uid)\n"
    )

    #: Ops compatible with the list->set rewrite.
    _FIX_GROWS = frozenset({"append", "add"})
    _LINEAR = frozenset({"in", "index", "count", "remove"})

    def _set_fix(
        self, lifecycle: ClassLifecycle, cycle: AttrLifecycle
    ) -> Optional[Dict[str, Any]]:
        """The list->set rewrite, offered only when every class-wide op
        is an append or a membership probe on an initially-empty list
        (ordering, indexing, iteration or escaping would change
        behaviour under the swap)."""
        if not cycle.info.get("empty") or cycle.info.get("value_span") is None:
            return None
        if (
            cycle.rebuilds
            or cycle.rebinds
            or cycle.iterates
            or cycle.reads
            or cycle.escapes
            or cycle.others
        ):
            return None
        if any(op.get("method") == "remove" for _, op in cycle.shrinks):
            pass  # .remove works on sets too (and becomes O(1))
        elif cycle.shrinks:
            return None
        if not all(
            op.get("method") in self._FIX_GROWS and op.get("func_span")
            for _, op in cycle.grows
        ):
            return None
        if not all(
            op.get("method") in ("in", "remove") or op.get("func_span")
            for _, op in cycle.members + cycle.shrinks
        ):
            return None
        span = cycle.info["value_span"]
        edits = [
            {
                "start_line": int(span[0]),
                "start_col": int(span[1]),
                "end_line": int(span[2]),
                "end_col": int(span[3]),
                "replacement": "set()",
            }
        ]
        for _, op in cycle.grows:
            if op.get("method") == "add":
                continue
            func_span = op["func_span"]
            recv = op.get("recv_src") or f"self.{cycle.attr}"
            edits.append(
                {
                    "start_line": int(func_span[0]),
                    "start_col": int(func_span[1]),
                    "end_line": int(func_span[2]),
                    "end_col": int(func_span[3]),
                    "replacement": f"{recv}.add",
                }
            )
        return {
            "kind": "list-to-set",
            "path": lifecycle.summary.path,
            "description": (
                f"rewrite `self.{cycle.attr}` to a set: `[]` -> `set()`"
                " and `.append` -> `.add`"
            ),
            "edits": edits,
        }

    def check(self, model: ProjectModel, graph: CallGraph) -> Iterator[Violation]:
        analysis: ScaleAnalysis = analyze_scale(model, graph)
        for lifecycle in analysis.classes():
            for attr in sorted(lifecycle.attrs):
                cycle = lifecycle.attrs[attr]
                if cycle.kind != "list":
                    continue
                linear_sites = [
                    (qualname, op)
                    for qualname, op in cycle.members + cycle.shrinks
                    if op.get("method") in self._LINEAR
                    and analysis.is_scale_hot(lifecycle.module, qualname)
                ]
                if not linear_sites:
                    continue
                fix = self._set_fix(lifecycle, cycle)
                for qualname, op in sorted(linear_sites, key=lambda p: _site(p[1])):
                    line, col = _site(op)
                    probe = (
                        "membership probe"
                        if op["method"] == "in"
                        else f"`.{op['method']}()`"
                    )
                    yield self._violation(
                        lifecycle.summary.path,
                        line,
                        col,
                        f"{probe} on list `self.{attr}` in scale-hot "
                        f"`{qualname}` scans O(n) per event; keep a set "
                        "index for membership",
                        (lifecycle.summary.path,),
                        fix=fix,
                    )
                    fix = None  # one fix application covers every site


@register_project_rule
class PoolLeakRule(ProjectRule):
    id = "SIM503"
    name = "pool-leak"
    description = (
        "object acquired from a paired pool API (PacketFactory.mint, "
        "at_cancellable/after_cancellable handles) is dropped without "
        "release on at least one control-flow path"
    )
    rationale = (
        "The packet pool and cancellable event handles are paired "
        "APIs: every `mint` wants a `recycle`, every cancellable arm "
        "wants a `cancel` (or a deliberate fire).  A handle dropped on "
        "the floor is pool memory that never returns -- invisible at "
        "128 endpoints, a steady leak at 4096 with churn.  The rule "
        "tracks each acquired local per control-flow path: a release "
        "on every path (or in a `finally`) is clean; a release behind "
        "an `if` is conditional; handing the object onward (return, "
        "container, callback) transfers ownership and ends the "
        "analysis."
    )
    example_bad = (
        "def probe(self, engine):\n"
        "    handle = engine.after_cancellable(T, self._fire)\n"
        "    if self.done:\n"
        "        handle.cancel()      # other path leaks the handle\n"
    )
    example_good = (
        "def probe(self, engine):\n"
        "    handle = engine.after_cancellable(T, self._fire)\n"
        "    try:\n"
        "        ...\n"
        "    finally:\n"
        "        handle.cancel()\n"
    )

    def check(self, model: ProjectModel, graph: CallGraph) -> Iterator[Violation]:
        for summary in model.summaries():
            for fact in summary.functions.values():
                for flow in fact.pool_flows:
                    if flow.get("escapes") or flow.get("released") == "always":
                        continue
                    if flow.get("released") == "conditional":
                        lines = ", ".join(
                            str(line) for line in flow.get("release_lines", ())
                        )
                        detail = (
                            f"is released only on some paths (release at "
                            f"line {lines}); move the release to a "
                            "`finally` or cover every branch"
                        )
                    else:
                        detail = (
                            "is never released in this function and never "
                            "handed onward; pool memory leaks once per call"
                        )
                    yield self._violation(
                        summary.path,
                        int(flow["line"]),
                        int(flow["col"]),
                        f"`{flow['var']}` acquired from {flow['api']} "
                        f"`.{flow['attr']}(...)` in `{fact.qualname}` "
                        f"{detail}",
                        (summary.path,),
                    )


@register_project_rule
class UnboundedKeyedGrowthRule(ProjectRule):
    id = "SIM504"
    name = "unbounded-keyed-growth"
    description = (
        "dict attribute keyed by a per-packet/per-flow id only ever "
        "gains keys (no pop/del/clear anywhere in the class): under "
        "flow churn the map grows with every id ever seen"
    )
    rationale = (
        "A registry keyed by `pkt.uid` or `flow_id` whose class offers "
        "no removal path holds every entity the run ever created.  "
        "Unlike SIM501 this fires off the hot path too: a churn sweep "
        "creates and abandons thousands of flows through setup code, "
        "and the registry outlives them all.  Add a `pop`-based "
        "close/evict API and call it when the entity retires."
    )
    example_bad = (
        "class FlowRegistry:\n"
        "    def __init__(self):\n"
        "        self._flows = {}\n"
        "    def create(self, spec):\n"
        "        self._flows[spec.flow_id] = FlowState(spec)\n"
        "        # no method ever removes an entry\n"
    )
    example_good = (
        "class FlowRegistry:\n"
        "    def __init__(self):\n"
        "        self._flows = {}\n"
        "    def create(self, spec):\n"
        "        self._flows[spec.flow_id] = FlowState(spec)\n"
        "    def close(self, flow_id):\n"
        "        return self._flows.pop(flow_id, None)\n"
    )

    def check(self, model: ProjectModel, graph: CallGraph) -> Iterator[Violation]:
        analysis: ScaleAnalysis = analyze_scale(model, graph)
        for lifecycle in analysis.classes():
            for attr in sorted(lifecycle.attrs):
                cycle = lifecycle.attrs[attr]
                if cycle.kind != "dict" or cycle.bounded:
                    continue
                if not _never_shrinks(cycle):
                    continue
                keyed = [
                    (qualname, op)
                    for qualname, op in cycle.grows
                    if op.get("method") in ("setitem", "setdefault")
                    and _keyed_by_uid(op.get("key_src"))
                ]
                if not keyed:
                    continue
                qualname, op = min(keyed, key=lambda pair: _site(pair[1]))
                line, col = _site(op)
                yield self._violation(
                    lifecycle.summary.path,
                    line,
                    col,
                    f"dict `self.{attr}` gains key `{op['key_src']}` in "
                    f"`{qualname}` and no method of `{lifecycle.name}` "
                    "ever removes entries; under flow churn this holds "
                    "every id ever seen -- add a pop/close path",
                    (lifecycle.summary.path,),
                )


@register_project_rule
class HotContainerRebuildRule(ProjectRule):
    id = "SIM505"
    name = "hot-container-rebuild"
    description = (
        "sorted()/list()/set()/.copy() over a whole state attribute "
        "inside a loop in a scale-hot method rebuilds O(n) per "
        "iteration; hoist it, or maintain the derived structure "
        "incrementally"
    )
    rationale = (
        "`sorted(self.queue)` inside a per-event loop is O(n log n) "
        "*per event*: the event rate times the container size is "
        "exactly the product the scale sweep maximises.  Either the "
        "rebuild is loop-invariant (hoist it above the loop) or the "
        "code wants an incrementally-maintained structure (a heap, an "
        "insertion-sorted list, a running copy)."
    )
    example_bad = (
        "def drain(self):            # hot: per event\n"
        "    for slot in self.slots:\n"
        "        order = sorted(self.pending)   # O(n log n) per slot\n"
        "        ...\n"
    )
    example_good = (
        "def drain(self):\n"
        "    order = sorted(self.pending)       # once per drain\n"
        "    for slot in self.slots:\n"
        "        ...\n"
    )

    def check(self, model: ProjectModel, graph: CallGraph) -> Iterator[Violation]:
        analysis: ScaleAnalysis = analyze_scale(model, graph)
        for lifecycle in analysis.classes():
            for attr in sorted(lifecycle.attrs):
                cycle = lifecycle.attrs[attr]
                for qualname, op in sorted(
                    cycle.rebuilds, key=lambda pair: _site(pair[1])
                ):
                    if not op.get("in_loop"):
                        continue
                    if not analysis.is_scale_hot(lifecycle.module, qualname):
                        continue
                    line, col = _site(op)
                    yield self._violation(
                        lifecycle.summary.path,
                        line,
                        col,
                        f"`{op['method']}(self.{attr})` rebuilds the "
                        f"whole container inside a loop in scale-hot "
                        f"`{qualname}`; hoist it out of the loop or "
                        "maintain it incrementally",
                        (lifecycle.summary.path,),
                    )


@register_project_rule
class LoopClosureRetentionRule(ProjectRule):
    id = "SIM506"
    name = "loop-closure-retention"
    description = (
        "callback handed to engine.at/after captures a whole local "
        "container; the closure keeps it alive until the callback "
        "fires, long past the scope that built it"
    )
    rationale = (
        "A scheduled closure holds strong references to its free "
        "variables until the engine fires (or drops) it.  Capturing a "
        "batch list or staging dict keeps the entire container -- and "
        "everything in it -- alive across simulated time, which at "
        "scale means thousands of dead batches pinned by pending "
        "events.  Bind the container as a default argument (evaluated "
        "once, releasable when the callback object dies) or pass the "
        "specific fields the callback needs."
    )
    example_bad = (
        "def flush_later(self, engine):\n"
        "    batch = self.drain()\n"
        "    engine.after(DELAY, lambda: self.commit(batch))\n"
        "    # `batch` pinned until the callback fires\n"
    )
    example_good = (
        "def flush_later(self, engine):\n"
        "    batch = self.drain()\n"
        "    engine.after(DELAY, lambda batch=batch: self.commit(batch))\n"
    )

    def check(self, model: ProjectModel, graph: CallGraph) -> Iterator[Violation]:
        for summary in model.summaries():
            for fact in summary.functions.values():
                for rec in fact.closure_retentions:
                    names = ", ".join(f"`{v}`" for v in rec["vars"])
                    fix = _span_fix(
                        "bind-retained-container",
                        summary.path,
                        f"bind {names} by default argument in the callback",
                        rec.get("fix"),
                    )
                    callee = (
                        "lambda"
                        if rec["kind"] == "lambda"
                        else f"`{rec['callee']}`"
                    )
                    yield self._violation(
                        summary.path,
                        int(rec["line"]),
                        int(rec["col"]),
                        f"{callee} passed to `.{rec['attr']}(...)` in "
                        f"`{fact.qualname}` captures container(s) "
                        f"{names}; the pending event pins the whole "
                        "container -- bind it as a default argument or "
                        "pass the needed fields",
                        (summary.path,),
                        fix=fix,
                    )
