"""The interprocedural SIM1xx rules, run over the project model.

Unlike the per-file SIM0xx rules (:mod:`repro.lint.rules`), these see
every module of the scanned tree at once -- the import graph, the
approximate call graph, and the per-function dataflow facts -- so each
finding can say *which files contributed* (``Violation.provenance``).

========  ===========================  ====================================
ID        pragma name                  what it forbids
========  ===========================  ====================================
SIM101    unit-dimension               mixing time/data dimensions (a µs
                                       value into an ``*_ns`` parameter,
                                       ``bytes + ns`` arithmetic)
SIM102    nondeterministic-iteration   iterating an unordered set where
                                       the order can reach the engine, a
                                       queue, or a stats emitter
SIM103    dead-export                  ``__all__`` entries imported
                                       nowhere in the project
SIM104    hot-path-purity              I/O or eager log-string building
                                       in functions reachable from the
                                       engine/switch/queue hot path
========  ===========================  ====================================

A finding is suppressed on its line with ``# simlint: allow-<name>`` or
``# simlint: allow-sim1xx`` (the lowercase rule id works as a pragma
alias for every rule).
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple, Type

from repro.lint.callgraph import CallGraph, Node
from repro.lint.dataflow import classify_name, dims_compatible
from repro.lint.projectmodel import ProjectModel
from repro.lint.violations import Violation

__all__ = ["PROJECT_RULES", "ProjectRule", "register_project_rule"]


class ProjectRule:
    """Base class for whole-program rules."""

    #: Stable identifier, ``SIM1`` + two digits.
    id: str = ""
    #: Pragma name (``simlint: allow-<name>`` suppresses the rule).
    name: str = ""
    #: One-line description (``repro-qos lint --list-rules``).
    description: str = ""
    #: Longer why-this-matters text (``repro-qos lint --explain``).
    rationale: str = ""
    #: Minimal embedded examples, used by ``--explain`` when the fixture
    #: tree is not available (e.g. installed package).
    example_bad: str = ""
    example_good: str = ""

    def check(self, model: ProjectModel, graph: CallGraph) -> Iterator[Violation]:
        """Yield one :class:`Violation` per finding (pragma filtering is
        the runner's job)."""
        raise NotImplementedError

    def _violation(
        self,
        path: str,
        line: int,
        col: int,
        message: str,
        provenance: Tuple[str, ...],
    ) -> Violation:
        return Violation(
            path=path,
            line=line,
            col=col,
            rule_id=self.id,
            rule_name=self.name,
            message=message,
            provenance=tuple(sorted(set(provenance))),
        )


#: The project-rule registry, keyed by rule id.
PROJECT_RULES: Dict[str, ProjectRule] = {}


def register_project_rule(cls: Type[ProjectRule]) -> Type[ProjectRule]:
    rule = cls()
    if not rule.id or not rule.name:
        raise ValueError(f"rule {cls.__name__} must define id and name")
    if rule.id in PROJECT_RULES:
        raise ValueError(f"duplicate rule id {rule.id}")
    if any(existing.name == rule.name for existing in PROJECT_RULES.values()):
        raise ValueError(f"duplicate rule name {rule.name!r}")
    PROJECT_RULES[rule.id] = rule
    return cls


# ----------------------------------------------------------------------
# SIM101: unit-dimension dataflow
# ----------------------------------------------------------------------
@register_project_rule
class UnitDimensionRule(ProjectRule):
    id = "SIM101"
    name = "unit-dimension"
    description = (
        "time/data dimensions must not mix: *_ns parameters take integer "
        "nanoseconds (built via repro.sim.units us/ms/s or `n * US`), "
        "*_bytes take bytes, and bytes never add to nanoseconds"
    )
    rationale = (
        "The library keeps simulated time in integer nanoseconds and data "
        "in bytes (sim/units.py); a microsecond-scaled value slipping into "
        "an *_ns parameter silently stretches every deadline 1000x and no "
        "test that only checks relative ordering will notice.  The checker "
        "follows the *_ns/*_us/*_bytes naming conventions through "
        "assignments and across module boundaries via the call graph."
    )
    example_bad = (
        "# helper.py\n"
        "def schedule(delay_ns):\n"
        "    ...\n"
        "# caller.py\n"
        "from helper import schedule\n"
        "timeout_us = 20\n"
        "schedule(timeout_us)          # us handed to an *_ns parameter\n"
        "total = size_bytes + now_ns   # bytes + ns arithmetic\n"
    )
    example_good = (
        "from repro.sim.units import US, us\n"
        "from helper import schedule\n"
        "schedule(us(20))              # sanctioned constructor -> ns\n"
        "schedule(20 * US)             # sanctioned conversion -> ns\n"
    )

    def check(self, model: ProjectModel, graph: CallGraph) -> Iterator[Violation]:
        for summary in model.summaries():
            for fact in summary.functions.values():
                for line, col, detail in fact.mixes:
                    yield self._violation(
                        summary.path,
                        line,
                        col,
                        f"unit-dimension mismatch: {detail}",
                        (summary.path,),
                    )
                for call in fact.calls:
                    target = model.function_fact(call.resolved)
                    if target is None:
                        continue
                    target_summary, target_fact = target
                    params = list(target_fact.params)
                    if target_fact.is_method and params:
                        params = params[1:]
                    pairs = list(zip(params, call.arg_dims))
                    pairs += [
                        (name, dim)
                        for name, dim in call.kw_dims.items()
                        if name in params
                    ]
                    for param, arg_dim in pairs:
                        param_dim = classify_name(param)
                        if dims_compatible(param_dim, arg_dim):
                            continue
                        callee = f"{target_summary.module}.{target_fact.qualname}"
                        yield self._violation(
                            summary.path,
                            call.line,
                            call.col,
                            f"`{arg_dim}`-dimensioned argument passed to "
                            f"parameter `{param}` (`{param_dim}`) of "
                            f"`{callee}`",
                            (summary.path, target_summary.path),
                        )


# ----------------------------------------------------------------------
# SIM102: nondeterministic iteration reaching the engine/queues/stats
# ----------------------------------------------------------------------
@register_project_rule
class NondeterministicIterationRule(ProjectRule):
    id = "SIM102"
    name = "nondeterministic-iteration"
    description = (
        "iterating an unordered set in code that can reach the event "
        "engine, a queue, or a stats emitter makes event order depend on "
        "hash seeds; iterate sorted(...) instead"
    )
    rationale = (
        "Python set iteration order depends on insertion history and hash "
        "randomization.  If that order decides which event is scheduled "
        "first, two runs with the same seed can diverge -- the exact "
        "failure class deterministic DES frameworks exist to prevent.  "
        "The rule combines the call graph (does this function reach "
        "sim/engine, core/queues or stats?) with known scheduling method "
        "names (.at/.after/.schedule/.record/.observe)."
    )
    example_bad = (
        "def flush(self, hosts):\n"
        "    for host in set(hosts):          # unordered\n"
        "        self.engine.after(1, host.poll)\n"
    )
    example_good = (
        "def flush(self, hosts):\n"
        "    for host in sorted(set(hosts), key=lambda h: h.name):\n"
        "        self.engine.after(1, host.poll)\n"
    )

    #: Modules whose functions are event-order / stats sinks.
    SINK_PATH_PATTERNS = ("sim/engine", "core/queues/", "stats/")
    #: Unresolvable attribute calls that read as sink contact.
    SINK_ATTRS = frozenset({"at", "after", "schedule", "record", "observe", "emit"})

    def check(self, model: ProjectModel, graph: CallGraph) -> Iterator[Violation]:
        base = graph.nodes_in_modules(self.SINK_PATH_PATTERNS)
        base |= graph.nodes_calling_attrs(self.SINK_ATTRS)
        reaching = graph.nodes_reaching(base)
        for node, witness in sorted(reaching.items()):
            summary = graph.summary_of(node)
            if summary is None:
                continue
            fact = summary.functions.get(node[1])
            if fact is None:
                continue
            witness_summary = graph.summary_of(witness)
            witness_path = witness_summary.path if witness_summary else node[0]
            for line, col, detail in fact.set_iters:
                yield self._violation(
                    summary.path,
                    line,
                    col,
                    f"{detail} in `{node[1]}`, whose results can reach "
                    f"the engine/queues/stats via `{witness[0]}.{witness[1]}`; "
                    "iterate a sorted(...) copy",
                    (summary.path, witness_path),
                )


# ----------------------------------------------------------------------
# SIM103: dead public exports
# ----------------------------------------------------------------------
@register_project_rule
class DeadExportRule(ProjectRule):
    id = "SIM103"
    name = "dead-export"
    description = (
        "__all__ entries that no other module imports or references are "
        "dead API surface; remove them or mark the deliberate ones"
    )
    rationale = (
        "Every name in __all__ is a promise to keep.  A symbol exported "
        "but imported nowhere in the project is either dead code or an "
        "undocumented extension point -- both silently rot.  Package "
        "__init__/__main__/cli modules are exempt (they *are* the public "
        "surface); everything else must have an in-tree consumer, a "
        "re-export, or an explicit pragma."
    )
    example_bad = (
        "# util.py\n"
        "__all__ = ['used', 'never_imported']\n"
        "def used(): ...\n"
        "def never_imported(): ...\n"
        "# main.py\n"
        "from util import used\n"
    )
    example_good = (
        "# util.py\n"
        "__all__ = ['used']\n"
        "def used(): ...\n"
        "def never_imported(): ...   # private: not exported\n"
    )

    #: Module stems that define the public surface itself.
    EXEMPT_STEMS = frozenset({"__init__", "__main__", "cli", "conftest"})

    def check(self, model: ProjectModel, graph: CallGraph) -> Iterator[Violation]:
        used = set()
        star_imported = set()
        for summary in model.summaries():
            used.update(summary.bindings.values())
            used.update(summary.uses)
            star_imported.update(summary.star_imports)
        for summary in model.summaries():
            stem = summary.path.rsplit("/", 1)[-1].removesuffix(".py")
            if stem in self.EXEMPT_STEMS:
                continue
            if summary.module in star_imported:
                continue
            for name, line, col in summary.exports:
                if f"{summary.module}.{name}" in used:
                    continue
                yield self._violation(
                    summary.path,
                    line,
                    col,
                    f"`{name}` is exported from `{summary.module}` but "
                    "imported nowhere in the project",
                    (summary.path,),
                )


# ----------------------------------------------------------------------
# SIM104: hot-path purity
# ----------------------------------------------------------------------
@register_project_rule
class HotPathPurityRule(ProjectRule):
    id = "SIM104"
    name = "hot-path-purity"
    description = (
        "functions reachable from the engine -> switch -> queue hot path "
        "must not perform I/O or build log strings unconditionally"
    )
    rationale = (
        "The event loop executes millions of times per simulated "
        "millisecond; one print(), open() or eagerly-formatted logger "
        "call on that path dominates the profile and (worse) interleaves "
        "host I/O with simulated time.  Error paths are exempt: building "
        "a message inside `raise` costs nothing until the invariant "
        "breaks.  The observability layer (any module under an obs/ "
        "directory, i.e. repro.obs) is sanctioned by design: its "
        "counters/histograms are the one blessed way to look at the hot "
        "path, its own I/O (live progress) is heartbeat-gated, and its "
        "overhead is budgeted by a dedicated benchmark instead of this "
        "rule.  Campaign execution (any module under an exec/ directory, "
        "i.e. repro.exec) is likewise sanctioned: spawning worker "
        "processes and writing cache entries *is* its job, and it runs "
        "between simulations, never inside one."
    )
    example_bad = (
        "# core/queues/noisy.py\n"
        "class Queue:\n"
        "    def push(self, pkt):\n"
        "        print(f'push {pkt}')    # I/O on the hot path\n"
    )
    example_good = (
        "# core/queues/quiet.py\n"
        "class Queue:\n"
        "    def push(self, pkt):\n"
        "        if pkt.size_bytes < 0:\n"
        "            raise ValueError(f'bad size {pkt}')  # error path: fine\n"
    )

    #: The hot path named by the paper's forwarding pipeline.
    HOT_PATH_PATTERNS = ("sim/engine.py", "network/switch.py", "core/queues/")
    #: Sanctioned subsystems: modules under an ``obs/`` directory (the
    #: repro.obs observability layer) may be called from the hot path --
    #: their cost is policed by benchmarks, not by this rule -- and
    #: modules under an ``exec/`` directory (the repro.exec campaign
    #: runner), whose process/file I/O happens between simulations.
    SANCTIONED_PATH_PATTERNS = ("obs/", "exec/")

    def _sanctioned(self, path: str) -> bool:
        return any(
            path.startswith(pattern) or f"/{pattern}" in path
            for pattern in self.SANCTIONED_PATH_PATTERNS
        )

    def check(self, model: ProjectModel, graph: CallGraph) -> Iterator[Violation]:
        roots = graph.nodes_in_modules(self.HOT_PATH_PATTERNS)
        witness = graph.reachable_from(roots)
        for node, root in sorted(witness.items()):
            summary = graph.summary_of(node)
            if summary is None:
                continue
            if self._sanctioned(summary.path):
                continue
            fact = summary.functions.get(node[1])
            if fact is None:
                continue
            root_summary = graph.summary_of(root)
            root_path = root_summary.path if root_summary else node[0]
            for line, col, detail in fact.io_calls:
                yield self._violation(
                    summary.path,
                    line,
                    col,
                    f"hot-path impurity in `{node[1]}`: {detail} "
                    f"(reachable from `{root[0]}.{root[1]}`)",
                    (summary.path, root_path),
                )
