"""Stdlib-only SARIF 2.1.0 emitter for ``repro-qos lint --format sarif``.

SARIF (Static Analysis Results Interchange Format) is the schema GitHub
code scanning, VS Code SARIF viewers, and most CI dashboards ingest.
One run object carries the tool metadata (every rule that *fired*, with
its ``--explain`` text), one result per violation with a physical
location, and a ``partialFingerprints`` entry reusing the baseline
fingerprint so re-runs correlate findings across line drift.

Baselined findings are emitted as *suppressed* results (``suppressions``
with ``kind: "external"``) rather than dropped: dashboards show them
greyed-out instead of pretending they do not exist, which is the whole
point of the suppress-but-count baseline workflow.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional

from repro.lint.baseline import fingerprint
from repro.lint.violations import Violation

__all__ = ["to_sarif"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: ``partialFingerprints`` key; versioned so a future fingerprint scheme
#: can coexist with old results.
FINGERPRINT_KEY = "simlint/v1"


def _rule_metadata(
    rule_ids: List[str], fired: Dict[str, Violation]
) -> List[Dict[str, Any]]:
    from repro.lint.project_rules import PROJECT_RULES
    from repro.lint.rules import RULES

    entries: List[Dict[str, Any]] = []
    for rule_id in rule_ids:
        rule = RULES.get(rule_id) or PROJECT_RULES.get(rule_id)
        entry: Dict[str, Any] = {"id": rule_id}
        if rule is not None:
            entry["name"] = rule.name
            entry["shortDescription"] = {"text": rule.description}
            if rule.rationale:
                entry["fullDescription"] = {"text": rule.rationale}
        else:
            # SIM000 meta-findings have no registry entry; borrow the
            # name the violation itself carries.
            entry["name"] = fired[rule_id].rule_name
        entries.append(entry)
    return entries


def _result(
    violation: Violation, rule_index: Dict[str, int], suppressed: bool
) -> Dict[str, Any]:
    # Profile-guided runs grade severity by measured cost: cold findings
    # (never seen in the profiled workload) become notes, hot ones keep
    # level "error" but lead with the hot: marker dashboards sort by.
    level = "error"
    message = violation.message
    if violation.profile is not None:
        bucket = violation.profile.get("bucket")
        if bucket == "cold":
            level = "note"
        elif bucket == "hot":
            message = f"hot: {message}"
    result: Dict[str, Any] = {
        "ruleId": violation.rule_id,
        "ruleIndex": rule_index[violation.rule_id],
        "level": level,
        "message": {"text": message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {"uri": violation.path},
                    "region": {
                        "startLine": violation.line,
                        # SARIF columns are 1-based; AST columns 0-based.
                        "startColumn": violation.col + 1,
                    },
                }
            }
        ],
        "partialFingerprints": {FINGERPRINT_KEY: fingerprint(violation)},
    }
    if violation.profile is not None:
        result["properties"] = {"profile": violation.profile}
    if violation.provenance:
        result["relatedLocations"] = [
            {
                "physicalLocation": {
                    "artifactLocation": {"uri": path},
                    "region": {"startLine": 1},
                },
                "message": {"text": "contributed to this finding"},
            }
            for path in violation.provenance
        ]
    if suppressed:
        result["suppressions"] = [
            {
                "kind": "external",
                "justification": "accepted in lint-baseline.json",
            }
        ]
    return result


def to_sarif(
    violations: Iterable[Violation],
    *,
    suppressed: Iterable[Violation] = (),
    tool_version: Optional[str] = None,
) -> Dict[str, Any]:
    """One SARIF 2.1.0 document over active + baselined findings."""
    active = sorted(violations)
    baselined = sorted(suppressed)

    fired: Dict[str, Violation] = {}
    for violation in active + baselined:
        fired.setdefault(violation.rule_id, violation)
    rule_ids = sorted(fired)
    rule_index = {rule_id: index for index, rule_id in enumerate(rule_ids)}

    driver: Dict[str, Any] = {
        "name": "simlint",
        "rules": _rule_metadata(rule_ids, fired),
    }
    if tool_version is not None:
        driver["version"] = tool_version

    results = [_result(v, rule_index, suppressed=False) for v in active]
    results += [_result(v, rule_index, suppressed=True) for v in baselined]
    return {
        "version": SARIF_VERSION,
        "$schema": SARIF_SCHEMA_URI,
        "runs": [{"tool": {"driver": driver}, "results": results}],
    }
