"""Temporal-soundness lattice: abstract time types for expressions.

The simulator's guarantees rest on three disciplines the type system
cannot see (``sim/units.py``, ``sim/engine.py``):

- simulated time and deadlines are **exact integer nanoseconds** --
  float-derived values silently break event-order determinism and the
  analytic EDF cross-checks;
- values handed to ``Engine.at(t)`` must be **monotonic** (``t >= now``,
  or the engine raises mid-campaign);
- earliest-deadline orderings must carry a **deterministic tie-break**
  (the ``(deadline, uid, payload)`` heap idiom).

This module is the shared vocabulary of the SIM401-SIM406 project rules
(:mod:`repro.lint.project_rules`): a three-point lattice of abstract
time types, the dimension-aware expression typer the dataflow pass
embeds (:class:`TimeTyper`), and the ``>= now`` proof classifier behind
SIM401.

The lattice
===========

========== =========================================================
``exact``  provably an exact integer: int literals, ``us()/ms()/s()``
           (they ``round`` to int), ``engine.now``, ``//``,
           ``round()/int()/math.ceil()/math.floor()``, and names whose
           SIM101 dimension is an integer quantity (``*_ns``,
           ``*_bytes``)
``float``  float-derived: float literals, true division ``/``,
           ``float()``, ``gbps()`` and ``*_bytes_per_ns`` rates
``unknown`` everything else -- never flagged
========== =========================================================

Arithmetic joins pessimistically: any ``float`` operand makes the
result ``float``; only ``exact`` op ``exact`` stays ``exact`` (except
``/``, which is always ``float`` -- that asymmetry is SIM406's signal).

The sink table
==============

==========================  =========================================
``<engine>.at(t, ...)``     absolute ns timestamp (SIM401/402/406)
``<engine>.after(d, ...)``  relative ns delay (SIM402/406)
``*_ns`` / ``deadline`` /   assignment targets with an integer time
``eligible`` targets        dimension (SIM402/406)
comparisons on ``ns`` /     equality or raw ordering of float-derived
``rate`` quantities         time/bandwidth (SIM403)
deadline-keyed orderings    ``sorted``/``.sort``/``heappush`` in
                            engine/queue/switch-reachable code (SIM404)
``at``/``after`` callbacks  closures capturing loop variables (SIM405)
==========================  =========================================

To avoid an import cycle the dataflow pass injects its own
:func:`~repro.lint.dataflow.classify_name` and origin resolver; this
module depends on nothing else in the package.
"""

from __future__ import annotations

import ast
from typing import Any, Callable, Dict, Iterator, NamedTuple, Optional, Tuple

__all__ = [
    "EXACT",
    "FLOAT",
    "UNKNOWN",
    "TimeInfo",
    "TimeTyper",
    "join_time",
    "ANCHORED",
    "SUBTRACTION",
    "SCHEDULE_SINKS",
    "now_proof",
    "iter_temporal_facts",
]

#: The three abstract time types, ordered bottom-up for the join.
EXACT = "exact"
FLOAT = "float"
UNKNOWN = "unknown"

#: SIM401 proof states for a value scheduled with ``engine.at(t)``.
ANCHORED = "anchored"  # provably >= now (now itself, now + d, max(now, ...))
SUBTRACTION = "subtraction"  # derived by subtraction with no clamp
UNPROVEN = "unknown"  # no evidence either way -- never flagged

#: Engine scheduling sinks: attribute name -> index of the time argument.
SCHEDULE_SINKS: Dict[str, int] = {
    "at": 0,
    "after": 0,
    "at_cancellable": 0,
    "after_cancellable": 0,
}

#: Dimensions (from the SIM101 naming lattice) that are integer
#: quantities by library convention -> ``exact`` presumption.
_EXACT_DIMS = frozenset({"ns", "us", "ms", "s", "bytes"})
#: Bandwidths (``*_bytes_per_ns``) are floats by convention (``gbps()``).
_FLOAT_DIMS = frozenset({"rate"})

#: Sanctioned origins in ``repro.sim.units`` (kept literal here rather
#: than imported from the dataflow pass, which imports *us*).
_EXACT_NS_CALLS = frozenset(
    {"repro.sim.units.us", "repro.sim.units.ms", "repro.sim.units.s"}
)
_TIME_CONST_ORIGINS = frozenset(
    {"repro.sim.units.US", "repro.sim.units.MS", "repro.sim.units.S"}
)
_DATA_CONST_ORIGINS = frozenset({"repro.sim.units.KB", "repro.sim.units.MB"})

#: Calls that re-establish integer exactness (single-argument forms).
_EXACTING_CALLS = frozenset({"int", "round", "ceil", "floor"})
#: Calls forwarding the extremum/magnitude of their arguments.
_JOINING_CALLS = frozenset({"min", "max", "abs"})


class TimeInfo(NamedTuple):
    """Abstract time type plus the SIM101 dimension it rides on."""

    ttype: str  # EXACT | FLOAT | UNKNOWN
    quantity: Optional[str]  # "ns", "rate", "bytes", "scalar", or None


def join_time(a: str, b: str) -> str:
    """Pessimistic join: float taints, exactness must hold on both sides."""
    if a == FLOAT or b == FLOAT:
        return FLOAT
    if a == EXACT and b == EXACT:
        return EXACT
    return UNKNOWN


def ttype_for_dim(dim: Optional[str]) -> str:
    """Presumed time type of a value known only by its dimension."""
    if dim in _EXACT_DIMS:
        return EXACT
    if dim in _FLOAT_DIMS:
        return FLOAT
    return UNKNOWN


def _join_quantity(a: Optional[str], b: Optional[str]) -> Optional[str]:
    if a in (None, "scalar"):
        return b
    if b in (None, "scalar"):
        return a
    return a if a == b else None


_UNKNOWN_INFO = TimeInfo(UNKNOWN, None)


class TimeTyper:
    """Assign a :class:`TimeInfo` to an expression.

    A pure (side-effect-free) recursive walk: the dataflow pass calls it
    on sink expressions after its own inference has run, so nothing is
    double-recorded.  ``env`` is the live ``name -> TimeInfo`` map the
    analyzer maintains through assignments; ``classify`` and ``resolve``
    are :func:`~repro.lint.dataflow.classify_name` and the analyzer's
    origin resolver, injected to keep this module import-cycle-free.
    """

    def __init__(
        self,
        classify: Callable[[str], Optional[str]],
        resolve: Callable[[ast.AST], Optional[str]],
        env: Dict[str, TimeInfo],
    ) -> None:
        self.classify = classify
        self.resolve = resolve
        self.env = env

    # -- entry point -------------------------------------------------------

    def info(self, node: ast.expr) -> TimeInfo:
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bool):
                return _UNKNOWN_INFO
            if isinstance(node.value, int):
                return TimeInfo(EXACT, "scalar")
            if isinstance(node.value, float):
                return TimeInfo(FLOAT, "scalar")
            return _UNKNOWN_INFO
        if isinstance(node, ast.Name):
            known = self.env.get(node.id)
            if known is not None:
                return known
            return self._named(node, node.id)
        if isinstance(node, ast.Attribute):
            return self._named(node, node.attr)
        if isinstance(node, ast.BinOp):
            return self._binop(node)
        if isinstance(node, ast.UnaryOp):
            return self.info(node.operand)
        if isinstance(node, ast.Call):
            return self._call(node)
        if isinstance(node, ast.IfExp):
            a = self.info(node.body)
            b = self.info(node.orelse)
            return TimeInfo(join_time(a.ttype, b.ttype), _join_quantity(a.quantity, b.quantity))
        return _UNKNOWN_INFO

    # -- helpers -----------------------------------------------------------

    def _named(self, node: ast.AST, terminal: str) -> TimeInfo:
        origin = self.resolve(node)
        if origin in _TIME_CONST_ORIGINS:
            return TimeInfo(EXACT, "ns")
        if origin in _DATA_CONST_ORIGINS:
            return TimeInfo(EXACT, "bytes")
        dim = self.classify(terminal)
        return TimeInfo(ttype_for_dim(dim), dim)

    def _binop(self, node: ast.BinOp) -> TimeInfo:
        left = self.info(node.left)
        right = self.info(node.right)
        if isinstance(node.op, ast.Mult):
            # `n * US` is the sanctioned conversion idiom: the constants
            # are ints, so exactness follows the other operand.
            for operand, other in ((node.left, right), (node.right, left)):
                origin = self.resolve(operand)
                if origin in _TIME_CONST_ORIGINS:
                    return TimeInfo(join_time(other.ttype, EXACT), "ns")
                if origin in _DATA_CONST_ORIGINS:
                    return TimeInfo(join_time(other.ttype, EXACT), "bytes")
            quantity = _join_quantity(left.quantity, right.quantity)
            if {left.quantity, right.quantity} == {"ns", "rate"}:
                quantity = "bytes"
            return TimeInfo(join_time(left.ttype, right.ttype), quantity)
        if isinstance(node.op, ast.Div):
            # True division is float-valued regardless of its operands:
            # this asymmetry against FloorDiv is exactly SIM406's signal.
            return TimeInfo(FLOAT, self._div_quantity(left, right))
        if isinstance(node.op, ast.FloorDiv):
            return TimeInfo(
                join_time(left.ttype, right.ttype), self._div_quantity(left, right)
            )
        if isinstance(node.op, (ast.Add, ast.Sub, ast.Mod)):
            return TimeInfo(
                join_time(left.ttype, right.ttype),
                _join_quantity(left.quantity, right.quantity),
            )
        return TimeInfo(join_time(left.ttype, right.ttype), None)

    @staticmethod
    def _div_quantity(left: TimeInfo, right: TimeInfo) -> Optional[str]:
        if right.quantity in (None, "scalar"):
            return left.quantity
        if left.quantity == "bytes" and right.quantity == "rate":
            return "ns"
        if left.quantity == "bytes" and right.quantity == "ns":
            return "rate"
        if left.quantity is not None and left.quantity == right.quantity:
            return "scalar"
        return None

    def _call(self, node: ast.Call) -> TimeInfo:
        dotted: list = []
        func = node.func
        while isinstance(func, ast.Attribute):
            dotted.append(func.attr)
            func = func.value
        tail = dotted[0] if dotted else (func.id if isinstance(func, ast.Name) else "")
        origin = self.resolve(node.func)
        if origin in _EXACT_NS_CALLS:
            return TimeInfo(EXACT, "ns")
        if tail == "gbps":
            return TimeInfo(FLOAT, "rate")
        if tail == "float":
            arg = self.info(node.args[0]) if node.args else _UNKNOWN_INFO
            return TimeInfo(FLOAT, arg.quantity)
        if tail in _EXACTING_CALLS and node.args:
            arg = self.info(node.args[0])
            if tail == "round" and len(node.args) > 1:
                # round(x, ndigits) returns float for float x.
                return arg
            return TimeInfo(EXACT, arg.quantity)
        if tail in _JOINING_CALLS and node.args:
            infos = [
                self.info(a) for a in node.args if not isinstance(a, ast.Starred)
            ]
            if not infos:
                return _UNKNOWN_INFO
            ttype = infos[0].ttype
            quantity = infos[0].quantity
            for extra in infos[1:]:
                ttype = join_time(ttype, extra.ttype)
                quantity = _join_quantity(quantity, extra.quantity)
            return TimeInfo(ttype, quantity)
        if tail == "get" and len(node.args) >= 2:
            # `table.get(key, default)`: the default's floatness taints
            # the read (the admission.py reservation-table pattern); the
            # container's values stay unknown.
            default = self.info(node.args[1])
            if default.ttype == FLOAT:
                return TimeInfo(FLOAT, default.quantity)
            return TimeInfo(UNKNOWN, default.quantity)
        if tail:
            # Fall back to the callee's own naming (`serialization_ns()`
            # returns ns; a `*_bytes_per_ns()` helper returns a rate).
            return self._named(node.func, tail)
        return _UNKNOWN_INFO


# -- SIM401: the ``>= now`` proof ------------------------------------------


def now_proof(node: ast.expr, proofs: Dict[str, str]) -> str:
    """Classify a value scheduled via ``engine.at(t)``.

    ``anchored``   -- provably ``>= now``: ``X.now`` itself, addition to
                      an anchored value, ``max(...)`` with an anchored
                      argument, or a local assigned from one of those.
    ``subtraction``-- contains a bare ``-`` with no clamp: the
                      schedule-in-past bug class SIM401 flags.
    ``unknown``    -- no evidence either way (parameters, opaque calls);
                      never flagged, the engine's runtime guard remains.
    """
    if _is_anchored(node, proofs):
        return ANCHORED
    for sub in ast.walk(node):
        if isinstance(sub, ast.BinOp) and isinstance(sub.op, ast.Sub):
            return SUBTRACTION
        if isinstance(sub, ast.Name) and proofs.get(sub.id) == SUBTRACTION:
            return SUBTRACTION
    return UNPROVEN


def _is_anchored(node: ast.expr, proofs: Dict[str, str]) -> bool:
    if isinstance(node, ast.Attribute) and node.attr == "now":
        return True
    if isinstance(node, ast.Name):
        if node.id == "now":
            return True
        return proofs.get(node.id) == ANCHORED
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
        return _is_anchored(node.left, proofs) or _is_anchored(node.right, proofs)
    if isinstance(node, ast.Call):
        func = node.func
        tail = (
            func.attr
            if isinstance(func, ast.Attribute)
            else func.id if isinstance(func, ast.Name) else ""
        )
        if tail == "max":
            return any(
                _is_anchored(arg, proofs)
                for arg in node.args
                if not isinstance(arg, ast.Starred)
            )
        if tail in ("round", "int"):
            return any(_is_anchored(arg, proofs) for arg in node.args[:1])
        return False
    if isinstance(node, ast.IfExp):
        return _is_anchored(node.body, proofs) and _is_anchored(node.orelse, proofs)
    return False


# -- rule-facing iteration -------------------------------------------------


def iter_temporal_facts(model: Any) -> Iterator[Tuple[Any, Any]]:
    """Yield ``(summary, fact)`` for every function with temporal records.

    The temporal rules (except the hot-scoped SIM404) are global: a
    schedule-in-past or float deadline is a correctness bug wherever it
    runs, setup code included.
    """
    for summary in model.summaries():
        for fact in summary.functions.values():
            if (
                fact.schedule_calls
                or fact.float_compares
                or fact.float_time_assigns
                or fact.sort_keys
                or fact.loop_captures
                or fact.ns_true_divs
            ):
                yield summary, fact
