"""Approximate call graph over the project model.

Nodes are ``(module_name, function_qualname)`` pairs; an edge exists
when a call site's dotted callee resolves -- through the caller's import
bindings, its own top-level symbols, or ``self.`` method dispatch -- to
a function (or class constructor) defined somewhere in the model.

The graph is deliberately *approximate*: calls through instance
attributes (``self.engine.after``) cannot be resolved statically, so the
rules that need them (SIM102's "does this iteration order reach the
event engine?") combine graph reachability with a small set of
well-known sink method names.  False negatives are possible; false
edges are not, which keeps the rules' findings explainable.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.lint.projectmodel import ModuleSummary, ProjectModel

__all__ = ["CallGraph", "Node"]

#: (module_name, function_qualname)
Node = Tuple[str, str]


class CallGraph:
    """Forward and reverse adjacency over resolved call edges."""

    def __init__(self, model: ProjectModel) -> None:
        self.model = model
        self.edges: Dict[Node, Set[Node]] = {}
        self.reverse: Dict[Node, Set[Node]] = {}
        self._build()

    def _build(self) -> None:
        for summary in self.model.summaries():
            for fact in summary.functions.values():
                caller: Node = (summary.module, fact.qualname)
                self.edges.setdefault(caller, set())
                for call in fact.calls:
                    target = self.model.function_fact(call.resolved)
                    if target is None:
                        continue
                    target_summary, target_fact = target
                    callee: Node = (target_summary.module, target_fact.qualname)
                    self.edges[caller].add(callee)
                    self.reverse.setdefault(callee, set()).add(caller)

    def nodes(self) -> List[Node]:
        return sorted(self.edges)

    def summary_of(self, node: Node) -> Optional[ModuleSummary]:
        return self.model.modules.get(node[0])

    def reachable_from(self, roots: Iterable[Node]) -> Dict[Node, Node]:
        """Forward closure: node -> the root it was first discovered
        from (the witness used for provenance).  Roots map to
        themselves."""
        witness: Dict[Node, Node] = {}
        queue: deque = deque()
        for root in sorted(set(roots)):
            if root not in witness:
                witness[root] = root
                queue.append(root)
        while queue:
            node = queue.popleft()
            for successor in sorted(self.edges.get(node, ())):
                if successor not in witness:
                    witness[successor] = witness[node]
                    queue.append(successor)
        return witness

    def nodes_reaching(self, base: Iterable[Node]) -> Dict[Node, Node]:
        """Reverse closure: every node from which some ``base`` node is
        reachable, mapped to the base node it reaches (the witness)."""
        witness: Dict[Node, Node] = {}
        queue: deque = deque()
        for node in sorted(set(base)):
            if node not in witness:
                witness[node] = node
                queue.append(node)
        while queue:
            node = queue.popleft()
            for predecessor in sorted(self.reverse.get(node, ())):
                if predecessor not in witness:
                    witness[predecessor] = witness[node]
                    queue.append(predecessor)
        return witness

    def nodes_in_modules(self, path_patterns: Iterable[str]) -> Set[Node]:
        """All functions defined in modules whose posix path contains
        one of ``path_patterns`` (the SIM006-style scoping idiom)."""
        patterns = tuple(path_patterns)
        selected: Set[Node] = set()
        for summary in self.model.summaries():
            if any(pattern in summary.path for pattern in patterns):
                for qualname in summary.functions:
                    selected.add((summary.module, qualname))
        return selected

    def nodes_calling_attrs(self, attr_names: FrozenSet[str]) -> Set[Node]:
        """Functions making an *unresolved* attribute call whose method
        name is in ``attr_names`` -- the heuristic that catches
        ``self.engine.after(...)`` style sink contact the resolver
        cannot see."""
        selected: Set[Node] = set()
        for summary in self.model.summaries():
            for fact in summary.functions.values():
                for call in fact.calls:
                    if call.resolved is None and call.attr in attr_names:
                        selected.add((summary.module, fact.qualname))
                        break
        return selected
