"""The unit of lint output: one rule firing at one source location."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple, Union

__all__ = ["Violation"]


def _format_bytes(count: Any) -> str:
    """Human-scale byte count for the text output (1.2 MB, 340.0 KB)."""
    value = float(count or 0)
    for unit in ("B", "KB", "MB", "GB"):
        if value < 1024.0 or unit == "GB":
            return f"{value:.1f} {unit}" if unit != "B" else f"{int(value)} B"
        value /= 1024.0
    return f"{value:.1f} GB"  # pragma: no cover - loop always returns


@dataclass(frozen=True, order=True)
class Violation:
    """One rule violation.  Field order gives the natural sort:
    by file, then line, then column, then rule.

    ``provenance`` lists the files that contributed to the finding; it
    is empty for single-file rules and names every involved module for
    cross-module (SIM1xx) findings, e.g. the caller and the callee of a
    unit-dimension mismatch.

    ``fix`` is an optional machine-applicable edit (the payload
    :mod:`repro.lint.fixes` consumes); it never participates in
    ordering/equality and is omitted from the JSON form when absent, so
    fix-less producers and consumers are byte-compatible with v2.

    ``profile`` is the profile-guided ranking attached by
    :func:`repro.lint.hotpath.annotate_profile` when ``--profile`` is
    given: ``{"bucket": "hot"|"warm"|"cold", "cum_seconds", "fraction"}``.
    Like ``fix`` it is presentation metadata -- excluded from
    ordering/equality and absent from JSON unless set.
    """

    path: str
    line: int
    col: int
    rule_id: str  # e.g. "SIM001"
    rule_name: str  # e.g. "global-random" (also the pragma name)
    message: str
    provenance: Tuple[str, ...] = field(default=())
    fix: Optional[Dict[str, Any]] = field(default=None, compare=False)
    profile: Optional[Dict[str, Any]] = field(default=None, compare=False)

    def format(self) -> str:
        """``path:line:col: SIM001 [global-random] message`` -- the text
        output format, clickable in editors and CI logs.  Profile-ranked
        findings carry their bucket (and the measured seconds or
        allocated bytes when hot)."""
        marker = ""
        if self.profile is not None:
            bucket = self.profile.get("bucket", "")
            if bucket == "hot":
                if "alloc_bytes" in self.profile:
                    marker = f"hot ({_format_bytes(self.profile['alloc_bytes'])}): "
                else:
                    marker = f"hot ({self.profile.get('cum_seconds', 0.0)}s): "
            elif bucket == "cold":
                marker = "note: "
        text = (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule_id} [{self.rule_name}] {marker}{self.message}"
        )
        if self.provenance:
            text += f"  (via {', '.join(self.provenance)})"
        return text

    def to_dict(self) -> Dict[str, Union[str, int, Tuple[str, ...]]]:
        """JSON-ready form for ``repro-qos lint --format json``."""
        payload: Dict[str, Union[str, int, Tuple[str, ...]]] = {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "name": self.rule_name,
            "message": self.message,
            "provenance": list(self.provenance),  # type: ignore[dict-item]
        }
        if self.fix is not None:
            payload["fix"] = self.fix  # type: ignore[assignment]
        if self.profile is not None:
            payload["profile"] = self.profile  # type: ignore[assignment]
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Violation":
        """Inverse of :meth:`to_dict` (used to replay cached findings)."""
        return cls(
            path=str(payload["path"]),
            line=int(payload["line"]),
            col=int(payload["col"]),
            rule_id=str(payload["rule"]),
            rule_name=str(payload["name"]),
            message=str(payload["message"]),
            provenance=tuple(payload.get("provenance", ())),
            fix=payload.get("fix"),
            profile=payload.get("profile"),
        )
