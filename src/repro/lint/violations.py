"""The unit of lint output: one rule firing at one source location."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Union

__all__ = ["Violation"]


@dataclass(frozen=True, order=True)
class Violation:
    """One rule violation.  Field order gives the natural sort:
    by file, then line, then column, then rule."""

    path: str
    line: int
    col: int
    rule_id: str  # e.g. "SIM001"
    rule_name: str  # e.g. "global-random" (also the pragma name)
    message: str

    def format(self) -> str:
        """``path:line:col: SIM001 [global-random] message`` -- the text
        output format, clickable in editors and CI logs."""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule_id} [{self.rule_name}] {self.message}"
        )

    def to_dict(self) -> Dict[str, Union[str, int]]:
        """JSON-ready form for ``repro-qos lint --format json``."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "name": self.rule_name,
            "message": self.message,
        }
