"""Checked-in finding baseline: adopt new rules without a flag day.

A new rule landing on an old tree usually means a pile of pre-existing
findings nobody can fix in the same change.  The baseline workflow makes
adoption incremental while keeping the gate strict for *new* code:

- ``repro-qos lint --update-baseline`` snapshots today's findings into
  ``lint-baseline.json`` (checked in);
- ``repro-qos lint --baseline lint-baseline.json`` suppresses exactly
  those findings -- they are still counted and rendered as suppressed in
  SARIF -- and fails only on findings *not* in the file;
- fixing a baselined finding and re-running ``--update-baseline``
  shrinks the file toward the goal state: empty.

Findings are matched by :func:`fingerprint` -- a hash of ``(path, rule
id, message)`` that deliberately excludes line/column, so unrelated
edits shifting a finding down the file do not un-baseline it.  The cost
is that two *identical* findings in one file share a fingerprint; they
baseline together, which is the conservative direction (suppressing,
never gating) only for pre-existing duplicates of an accepted finding.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Tuple, Union

from repro.lint.violations import Violation

__all__ = ["Baseline", "fingerprint"]

PathLike = Union[str, Path]

#: Bump when the baseline file format changes (old files read as empty).
BASELINE_SCHEMA_VERSION = 1


def fingerprint(violation: Violation) -> str:
    """Line-drift-tolerant identity of one finding."""
    data = f"{violation.path}\x00{violation.rule_id}\x00{violation.message}"
    return hashlib.sha256(data.encode("utf-8")).hexdigest()[:16]


@dataclass
class Baseline:
    """The accepted-findings set, keyed by fingerprint."""

    #: fingerprint -> context ({"fingerprint", "path", "rule",
    #: "message"}), kept so the checked-in file is reviewable.
    findings: Dict[str, Dict[str, Any]] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.findings)

    @classmethod
    def load(cls, path: PathLike) -> "Baseline":
        """Read a baseline file; missing/corrupt/old-schema reads as
        empty (strictest gate) rather than erroring the lint run."""
        file_path = Path(path)
        if not file_path.is_file():
            return cls()
        try:
            payload = json.loads(file_path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return cls()
        if payload.get("schema") != BASELINE_SCHEMA_VERSION:
            return cls()
        findings: Dict[str, Dict[str, Any]] = {}
        for item in payload.get("findings", ()):
            if isinstance(item, dict) and isinstance(
                item.get("fingerprint"), str
            ):
                findings[item["fingerprint"]] = item
        return cls(findings=findings)

    def save(self, path: PathLike) -> None:
        file_path = Path(path)
        payload = {
            "schema": BASELINE_SCHEMA_VERSION,
            "findings": [
                self.findings[key] for key in sorted(self.findings)
            ],
        }
        file_path.parent.mkdir(parents=True, exist_ok=True)
        tmp = file_path.with_suffix(file_path.suffix + ".tmp")
        tmp.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        tmp.replace(file_path)

    @classmethod
    def from_violations(cls, violations: Iterable[Violation]) -> "Baseline":
        baseline = cls()
        for violation in sorted(violations):
            key = fingerprint(violation)
            baseline.findings.setdefault(
                key,
                {
                    "fingerprint": key,
                    "path": violation.path,
                    "rule": violation.rule_id,
                    "message": violation.message,
                },
            )
        return baseline

    def partition(
        self, violations: Iterable[Violation]
    ) -> Tuple[List[Violation], List[Violation]]:
        """``(new, baselined)``: findings the gate fails on vs. findings
        suppressed-but-counted because this file accepts them."""
        new: List[Violation] = []
        baselined: List[Violation] = []
        for violation in violations:
            if fingerprint(violation) in self.findings:
                baselined.append(violation)
            else:
                new.append(violation)
        return new, baselined
