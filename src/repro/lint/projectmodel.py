"""The whole-program layer under the SIM1xx rules.

Per-file linting (SIM001-SIM006) sees one module at a time; the silent
failures that threaten the reproduction -- a microsecond quantity handed
to a nanosecond parameter two modules away, a set iteration whose order
leaks into the event heap -- only show up when every module of ``src/``
is parsed into one **project model**:

- a *symbol table* per module (top-level defs, classes, constants,
  ``__all__`` exports with their source locations);
- an *import graph* (local name -> absolute dotted origin, resolved
  through ``import``/``from``/relative forms);
- per-function *facts* extracted by :mod:`repro.lint.dataflow` (call
  sites with inferred argument dimensions, set iterations, I/O calls,
  additive-mixing findings).

Each file is summarised exactly once; the summary is JSON-serialisable
and cached by content hash (:mod:`repro.lint.cache`), so a warm
``repro-qos lint --project`` run re-parses **zero** files and the
project rules replay from the summaries alone.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.lint.dataflow import FunctionAnalyzer, FunctionFact, dotted_name
from repro.lint.pragmas import allowed_by_line, parse_pragmas

__all__ = ["ModuleSummary", "ProjectModel", "extract_summary"]

PathLike = Union[str, Path]


def module_name_for(path: Path) -> str:
    """Dotted module name, anchored at the outermost enclosing package.

    Walks up from the file while ``__init__.py`` exists, so
    ``src/repro/sim/units.py`` maps to ``repro.sim.units`` regardless of
    where the scan was rooted, and a loose fixture file maps to its
    stem.
    """
    parts: List[str] = [] if path.stem == "__init__" else [path.stem]
    directory = path.resolve().parent
    while (directory / "__init__.py").is_file() and directory.name:
        parts.insert(0, directory.name)
        parent = directory.parent
        if parent == directory:
            break
        directory = parent
    return ".".join(parts) if parts else path.stem


@dataclass
class ModuleSummary:
    """Everything the project rules need to know about one file."""

    path: str  # posix-style, as handed to the walker (stable in output)
    module: str  # dotted module name
    is_package: bool = False
    #: ``__all__`` entries: (name, line, col) of each string constant.
    exports: List[Tuple[str, int, int]] = field(default_factory=list)
    #: Top-level name -> "function" | "class" | "other".
    symbols: Dict[str, str] = field(default_factory=dict)
    #: Per top-level class: ``{"line", "col", "has_slots", "decorated",
    #: "bases", "init_attrs", "insert_line", "indent"}`` -- what SIM302
    #: needs to flag a slot-less class and synthesise the ``__slots__``
    #: tuple from its ``__init__``'s ``self.x`` stores.
    classes: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    #: Local name -> absolute dotted origin, from the import statements.
    bindings: Dict[str, str] = field(default_factory=dict)
    #: Module-level names bound to mutable containers / registry-style
    #: objects: name -> (line, col, kind), SIM202's candidate set.
    mutable_globals: Dict[str, Tuple[int, int, str]] = field(
        default_factory=dict
    )
    #: Modules star-imported (all their exports count as used).
    star_imports: List[str] = field(default_factory=list)
    #: Absolute dotted names referenced via attribute access.
    uses: List[str] = field(default_factory=list)
    #: Per-function facts, keyed by qualname ("<module>" for top level).
    functions: Dict[str, FunctionFact] = field(default_factory=dict)
    #: line -> rule names allowed by a suppression pragma comment.
    pragmas: Dict[int, List[str]] = field(default_factory=dict)
    #: Cached per-file (SIM0xx) findings, already pragma-filtered.
    file_violations: List[Dict[str, Any]] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "path": self.path,
            "module": self.module,
            "is_package": self.is_package,
            "exports": [list(item) for item in self.exports],
            "symbols": self.symbols,
            "classes": self.classes,
            "bindings": self.bindings,
            "mutable_globals": {
                name: list(item) for name, item in self.mutable_globals.items()
            },
            "star_imports": self.star_imports,
            "uses": self.uses,
            "functions": {
                name: fact.to_dict() for name, fact in self.functions.items()
            },
            "pragmas": {str(line): names for line, names in self.pragmas.items()},
            "file_violations": self.file_violations,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ModuleSummary":
        return cls(
            path=payload["path"],
            module=payload["module"],
            is_package=payload["is_package"],
            exports=[(e[0], e[1], e[2]) for e in payload["exports"]],
            symbols=dict(payload["symbols"]),
            classes={
                name: dict(info)
                for name, info in payload.get("classes", {}).items()
            },
            bindings=dict(payload["bindings"]),
            mutable_globals={
                name: (item[0], item[1], item[2])
                for name, item in payload.get("mutable_globals", {}).items()
            },
            star_imports=list(payload["star_imports"]),
            uses=list(payload["uses"]),
            functions={
                name: FunctionFact.from_dict(fact)
                for name, fact in payload["functions"].items()
            },
            pragmas={
                int(line): list(names) for line, names in payload["pragmas"].items()
            },
            file_violations=list(payload["file_violations"]),
        )

    def allowed_on_line(self, line: int) -> frozenset:
        return frozenset(self.pragmas.get(line, ()))


def _resolve_relative(module_name: str, is_package: bool, level: int) -> str:
    """Base package for a level-``level`` relative import."""
    parts = module_name.split(".")
    if not is_package:
        parts = parts[:-1]
    drop = level - 1
    if drop:
        parts = parts[:-drop] if drop < len(parts) else []
    return ".".join(parts)


def _collect_imports(
    tree: ast.Module, module_name: str, is_package: bool
) -> Tuple[Dict[str, str], List[str]]:
    bindings: Dict[str, str] = {}
    star_imports: List[str] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname is not None:
                    bindings[alias.asname] = alias.name
                else:
                    # `import a.b.c` binds the name `a`.
                    head = alias.name.split(".", 1)[0]
                    bindings.setdefault(head, head)
        elif isinstance(node, ast.ImportFrom):
            if node.level == 0:
                base = node.module or ""
            else:
                package = _resolve_relative(module_name, is_package, node.level)
                base = f"{package}.{node.module}" if node.module else package
            if not base:
                continue
            for alias in node.names:
                if alias.name == "*":
                    star_imports.append(base)
                else:
                    local = alias.asname or alias.name
                    bindings[local] = f"{base}.{alias.name}"
    return bindings, star_imports


def _collect_symbols(tree: ast.Module) -> Dict[str, str]:
    symbols: Dict[str, str] = {}
    for stmt in tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            symbols[stmt.name] = "function"
        elif isinstance(stmt, ast.ClassDef):
            symbols[stmt.name] = "class"
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    symbols.setdefault(target.id, "other")
        elif isinstance(stmt, ast.AnnAssign):
            if isinstance(stmt.target, ast.Name):
                symbols.setdefault(stmt.target.id, "other")
    return symbols


#: ``__init__`` constructor tails that build a long-lived container,
#: mapped to the container kind the SIM5xx lifecycle rules reason about.
_CONTAINER_CTOR_KINDS = {
    "list": "list",
    "dict": "dict",
    "set": "set",
    "deque": "deque",
    "defaultdict": "dict",
    "OrderedDict": "dict",
    "Counter": "dict",
}


def _container_fact(
    value: ast.expr,
    bindings: Mapping[str, str],
    module_name: str,
    symbols: Mapping[str, str],
) -> Optional[Dict[str, Any]]:
    """Container kind/origin for one ``self.X = value`` in ``__init__``.

    Literal displays and builtin constructors yield a *kind* (``list``
    / ``dict`` / ``set`` / ``deque``); a CamelCase constructor call
    yields an *origin* -- the absolute dotted name of the constructed
    class, resolved through the import bindings -- so the lifecycle
    layer can synthesise ``self.X.method()`` dispatch edges.  A
    ``deque(maxlen=...)`` is *bounded*: it can never be unbounded
    growth, whatever its grow/shrink balance looks like.
    """
    span = [
        value.lineno,
        value.col_offset,
        value.end_lineno,
        value.end_col_offset,
    ]
    if isinstance(value, (ast.List, ast.ListComp)):
        empty = isinstance(value, ast.List) and not value.elts
        return {
            "kind": "list",
            "origin": None,
            "value_span": span,
            "bounded": False,
            "empty": empty,
        }
    if isinstance(value, (ast.Dict, ast.DictComp)):
        empty = isinstance(value, ast.Dict) and not value.keys
        return {
            "kind": "dict",
            "origin": None,
            "value_span": span,
            "bounded": False,
            "empty": empty,
        }
    if isinstance(value, (ast.Set, ast.SetComp)):
        return {
            "kind": "set",
            "origin": None,
            "value_span": span,
            "bounded": False,
            "empty": False,
        }
    if not isinstance(value, ast.Call):
        return None
    dotted = dotted_name(value.func)
    if not dotted:
        return None
    tail = dotted.rsplit(".", 1)[-1]
    kind = _CONTAINER_CTOR_KINDS.get(tail)
    if kind is not None:
        bounded = False
        if tail == "deque":
            has_maxlen = any(
                kw.arg == "maxlen"
                and not (
                    isinstance(kw.value, ast.Constant) and kw.value.value is None
                )
                for kw in value.keywords
            )
            bounded = has_maxlen or len(value.args) >= 2
        return {
            "kind": kind,
            "origin": None,
            "value_span": span,
            "bounded": bounded,
            "empty": not value.args and not value.keywords,
        }
    if not tail[:1].isupper():
        return None
    # CamelCase constructor: resolve to an absolute dotted origin.
    head, _, rest = dotted.partition(".")
    if head in bindings:
        origin = bindings[head] + ("." + rest if rest else "")
    elif head in symbols:
        origin = f"{module_name}.{dotted}" if module_name else dotted
    else:
        return None
    return {
        "kind": None,
        "origin": origin,
        "value_span": span,
        "bounded": False,
        "empty": False,
    }


def _collect_classes(
    tree: ast.Module,
    bindings: Optional[Mapping[str, str]] = None,
    module_name: str = "",
    symbols: Optional[Mapping[str, str]] = None,
) -> Dict[str, Dict[str, Any]]:
    """Layout facts per top-level class (SIM302's raw material), plus
    the ``containers`` map the SIM5xx lifecycle rules start from."""
    bindings = bindings or {}
    symbols = symbols or {}
    out: Dict[str, Dict[str, Any]] = {}
    for stmt in tree.body:
        if not isinstance(stmt, ast.ClassDef):
            continue
        has_slots = False
        init_attrs: List[str] = []
        containers: Dict[str, Dict[str, Any]] = {}
        for item in stmt.body:
            targets: List[ast.expr] = []
            if isinstance(item, ast.Assign):
                targets = item.targets
            elif isinstance(item, ast.AnnAssign):
                targets = [item.target]
            if any(
                isinstance(t, ast.Name) and t.id == "__slots__" for t in targets
            ):
                has_slots = True
            if (
                isinstance(item, ast.FunctionDef)
                and item.name == "__init__"
            ):
                seen: Dict[str, None] = {}
                for node in ast.walk(item):
                    if (
                        isinstance(node, ast.Attribute)
                        and isinstance(node.ctx, ast.Store)
                        and isinstance(node.value, ast.Name)
                        and node.value.id == "self"
                    ):
                        seen.setdefault(node.attr)
                init_attrs = list(seen)
                for node in ast.walk(item):
                    value: Optional[ast.expr] = None
                    target: Optional[ast.expr] = None
                    if isinstance(node, ast.Assign) and len(node.targets) == 1:
                        target, value = node.targets[0], node.value
                    elif isinstance(node, ast.AnnAssign):
                        target, value = node.target, node.value
                    if (
                        value is None
                        or not isinstance(target, ast.Attribute)
                        or not isinstance(target.value, ast.Name)
                        or target.value.id != "self"
                    ):
                        continue
                    fact = _container_fact(value, bindings, module_name, symbols)
                    if fact is not None:
                        fact["line"] = node.lineno
                        containers.setdefault(target.attr, fact)
        # Where a synthesised `__slots__` line goes: before the first
        # statement after the docstring, at that statement's indent.
        body = stmt.body
        first = body[0]
        is_docstring = (
            isinstance(first, ast.Expr)
            and isinstance(first.value, ast.Constant)
            and isinstance(first.value.value, str)
        )
        anchor = body[1] if is_docstring and len(body) > 1 else first
        if is_docstring and len(body) == 1:
            insert_line = (first.end_lineno or first.lineno) + 1
            indent = first.col_offset
        else:
            insert_line = anchor.lineno
            indent = anchor.col_offset
        out[stmt.name] = {
            "line": stmt.lineno,
            "col": stmt.col_offset,
            "has_slots": has_slots,
            "decorated": bool(stmt.decorator_list),
            "bases": [dotted_name(base) for base in stmt.bases],
            "init_attrs": init_attrs,
            "insert_line": insert_line,
            "indent": indent,
            "containers": containers,
        }
    return out


#: Constructor call names whose result is a mutable container.
_MUTABLE_CONSTRUCTORS = frozenset(
    {"dict", "list", "set", "defaultdict", "OrderedDict", "Counter", "deque"}
)


def _mutable_kind(value: ast.expr) -> Optional[str]:
    """Container kind when ``value`` builds a mutable object, else None.

    Registry-style classes are recognised by naming convention
    (``*Registry``/``*Cache``): a ``REGISTRY = MetricsRegistry()`` global
    get-or-created from workers diverges per process exactly like a bare
    dict would.
    """
    if isinstance(value, (ast.Dict, ast.DictComp)):
        return "dict"
    if isinstance(value, (ast.List, ast.ListComp)):
        return "list"
    if isinstance(value, (ast.Set, ast.SetComp)):
        return "set"
    if isinstance(value, ast.Call):
        tail = dotted_name(value.func).rsplit(".", 1)[-1]
        if tail in _MUTABLE_CONSTRUCTORS:
            return tail
        if tail.endswith(("Registry", "Cache")):
            return tail
    return None


def _collect_mutable_globals(
    tree: ast.Module,
) -> Dict[str, Tuple[int, int, str]]:
    out: Dict[str, Tuple[int, int, str]] = {}
    for stmt in tree.body:
        targets: List[ast.Name] = []
        value: Optional[ast.expr] = None
        if isinstance(stmt, ast.Assign):
            targets = [t for t in stmt.targets if isinstance(t, ast.Name)]
            value = stmt.value
        elif isinstance(stmt, ast.AnnAssign) and isinstance(
            stmt.target, ast.Name
        ):
            targets = [stmt.target]
            value = stmt.value
        if not targets or value is None:
            continue
        kind = _mutable_kind(value)
        if kind is None:
            continue
        for target in targets:
            if target.id == "__all__":
                continue
            out.setdefault(target.id, (stmt.lineno, stmt.col_offset, kind))
    return out


def _collect_exports(tree: ast.Module) -> List[Tuple[str, int, int]]:
    exports: List[Tuple[str, int, int]] = []
    for stmt in tree.body:
        if not isinstance(stmt, ast.Assign):
            continue
        if not any(
            isinstance(t, ast.Name) and t.id == "__all__" for t in stmt.targets
        ):
            continue
        if isinstance(stmt.value, (ast.List, ast.Tuple)):
            for element in stmt.value.elts:
                if isinstance(element, ast.Constant) and isinstance(
                    element.value, str
                ):
                    exports.append(
                        (element.value, element.lineno, element.col_offset)
                    )
    return exports


def _collect_uses(
    tree: ast.Module, bindings: Mapping[str, str], module_name: str
) -> List[str]:
    """Absolute dotted names referenced via attribute chains."""
    uses = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.Attribute):
            continue
        dotted = dotted_name(node)
        if not dotted:
            continue
        head, _, rest = dotted.partition(".")
        origin = bindings.get(head)
        if origin is not None and rest:
            uses.add(f"{origin}.{rest}")
    return sorted(uses)


def _function_params(node: ast.FunctionDef) -> List[str]:
    return [
        arg.arg
        for arg in [
            *node.args.posonlyargs,
            *node.args.args,
            *node.args.kwonlyargs,
        ]
    ]


def extract_summary(source: str, path: str, *, tree: Optional[ast.Module] = None) -> ModuleSummary:
    """One parse of ``source`` into a :class:`ModuleSummary`.

    This is the only place in the project pass that looks at an AST;
    everything downstream (graphs, rules) works from the summary, which
    is what makes the content-hash cache sound.
    """
    posix_path = str(path).replace("\\", "/")
    if tree is None:
        tree = ast.parse(source, filename=posix_path)
    file_path = Path(path)
    module_name = module_name_for(file_path)
    is_package = file_path.stem == "__init__"

    bindings, star_imports = _collect_imports(tree, module_name, is_package)
    symbols = _collect_symbols(tree)
    summary = ModuleSummary(
        path=posix_path,
        module=module_name,
        is_package=is_package,
        exports=_collect_exports(tree),
        symbols=symbols,
        classes=_collect_classes(tree, bindings, module_name, symbols),
        bindings=bindings,
        mutable_globals=_collect_mutable_globals(tree),
        star_imports=star_imports,
        uses=_collect_uses(tree, bindings, module_name),
        pragmas={
            line: sorted(names)
            for line, names in allowed_by_line(parse_pragmas(source)).items()
        },
    )

    def analyze(
        qualname: str,
        body: List[ast.stmt],
        *,
        line: int,
        params: Optional[List[str]] = None,
        is_method: bool = False,
        class_name: Optional[str] = None,
    ) -> None:
        fact = FunctionFact(
            qualname=qualname,
            line=line,
            params=params or [],
            is_method=is_method,
        )
        analyzer = FunctionAnalyzer(
            bindings, module_name, symbols, class_name=class_name, source=source
        )
        summary.functions[qualname] = analyzer.run(fact, body)

    # Module level: everything except def/class bodies (class field
    # defaults are analyzed by the analyzer's ClassDef handling).
    top_level = [
        stmt
        for stmt in tree.body
        if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]
    analyze("<module>", top_level, line=1)

    for stmt in tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            analyze(
                stmt.name,
                stmt.body,
                line=stmt.lineno,
                params=_function_params(stmt),
            )
        elif isinstance(stmt, ast.ClassDef):
            for item in stmt.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    analyze(
                        f"{stmt.name}.{item.name}",
                        item.body,
                        line=item.lineno,
                        params=_function_params(item),
                        is_method=True,
                        class_name=stmt.name,
                    )
    return summary


class ProjectModel:
    """All module summaries plus cross-module resolution helpers."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleSummary] = {}
        self.by_path: Dict[str, ModuleSummary] = {}

    def add(self, summary: ModuleSummary) -> None:
        self.modules[summary.module] = summary
        self.by_path[summary.path] = summary

    def summaries(self) -> List[ModuleSummary]:
        """All summaries, ordered by path for deterministic iteration."""
        return [self.by_path[path] for path in sorted(self.by_path)]

    def resolve_symbol(
        self, origin: str
    ) -> Optional[Tuple[ModuleSummary, str]]:
        """Split an absolute dotted origin into (defining module,
        symbol path), using the longest module-name prefix in the
        model.  ``repro.sim.units.us`` -> (units summary, "us")."""
        parts = origin.split(".")
        for cut in range(len(parts), 0, -1):
            module_name = ".".join(parts[:cut])
            summary = self.modules.get(module_name)
            if summary is not None:
                symbol = ".".join(parts[cut:])
                return summary, symbol
        return None

    def function_fact(
        self, origin: Optional[str]
    ) -> Optional[Tuple[ModuleSummary, FunctionFact]]:
        """The function (or class constructor) an origin refers to."""
        if origin is None:
            return None
        resolved = self.resolve_symbol(origin)
        if resolved is None:
            return None
        summary, symbol = resolved
        if not symbol:
            return None
        fact = summary.functions.get(symbol)
        if fact is not None:
            return summary, fact
        if summary.symbols.get(symbol) == "class":
            init = summary.functions.get(f"{symbol}.__init__")
            if init is not None:
                return summary, init
        return None
