"""simlint: simulator-specific static analysis for this codebase.

Generic linters cannot know that drawing from the *global* stdlib RNG
breaks run reproducibility, that a wall-clock read inside the simulation
core couples results to the host machine, or that a bare ``assert``
guarding a Lemma 1 invariant vanishes under ``python -O``.  simlint
encodes those project rules as AST checks and gates the tree on them
(``tests/lint/test_src_is_clean.py`` keeps ``src/`` clean forever).

Per-file rules (see :mod:`repro.lint.rules`):

========  ==================  ==================================================
ID        pragma name         what it forbids
========  ==================  ==================================================
SIM001    global-random       importing stdlib ``random`` (use ``repro.sim.rng``)
SIM002    wallclock           wall-clock reads (``time.time`` & friends)
SIM003    float-deadline-eq   float ``==``/``!=`` on deadlines/timestamps
SIM004    bare-assert         bare ``assert`` (use ``repro.core.invariants``)
SIM005    mutable-default     mutable default arguments
SIM006    missing-slots       hot-path queue/packet classes without ``__slots__``
========  ==================  ==================================================

Project rules -- run with ``repro-qos lint --project`` -- parse the whole
tree into a symbol table, import graph and approximate call graph
(:mod:`repro.lint.projectmodel`, :mod:`repro.lint.callgraph`) and check
cross-module properties (see :mod:`repro.lint.project_rules`):

========  ===========================  ====================================
ID        pragma name                  what it forbids
========  ===========================  ====================================
SIM101    unit-dimension               mixing ns/us/bytes quantities
SIM102    nondeterministic-iteration   set iteration reaching the engine
SIM103    dead-export                  ``__all__`` entries imported nowhere
SIM104    hot-path-purity              I/O on the engine/switch/queue path
SIM201    unpicklable-worker           lambdas/closures/bound methods
                                       submitted to a process pool
SIM202    shared-mutable-global        module globals mutated from
                                       worker-reachable code
SIM203    process-varying-value        hash()/pid/wall-clock reaching
                                       digest/cache/summary dataflow
SIM204    non-atomic-shared-write      worker file writes without
                                       write-temp-then-``os.replace``
SIM205    worker-env-mutation          ``os.environ`` writes in workers
SIM301    hot-loop-allocation          per-iteration allocation in hot
                                       loops (literals, closures, ...)
SIM302    hot-missing-slots            hot-instantiated classes without
                                       ``__slots__``
SIM303    hot-attr-reload              repeated attribute-chain loads
                                       per hot-loop iteration
SIM304    hot-global-lookup            repeated global/builtin lookups
                                       per hot-loop iteration
SIM305    hot-exception-flow           exception-based control flow in
                                       hot loops
SIM306    hot-eager-str                eager string building on the hot
                                       path
SIM401    schedule-in-past             scheduling at a time provably
                                       unanchored to ``engine.now``
SIM402    float-time-flow              float-derived quantities flowing
                                       into timestamp state or sinks
SIM403    epsilon-free-float-compare   exact comparisons on float time
                                       or bandwidth ledgers
SIM404    unstable-edf-tiebreak        deadline orderings without a
                                       deterministic tie-break (hot scope)
SIM405    late-binding-callback        loop variables captured late in
                                       scheduled callbacks
SIM406    truncating-time-div          true division on exact ns values
                                       (use ``//`` or ``round``)
========  ===========================  ====================================

The SIM2xx rules rest on the worker-reachability closure of
:mod:`repro.lint.parallel`; the SIM3xx performance family on the
engine-reachability closure of :mod:`repro.lint.hotpath`; the SIM4xx
temporal-soundness family on the abstract time-type lattice of
:mod:`repro.lint.temporal` (exact-int / float-derived / unknown), which
types every expression during the dataflow walk and proves (or fails to
prove) that scheduled times are anchored to ``engine.now``.  The
profile-guided mode ranks SIM3xx/SIM4xx findings by measured cost::

    repro-qos profile run --arch advanced-2vc -o prof.pstats
    repro-qos lint --project --profile prof.pstats src

Top-decile findings (by pstats cumulative seconds) are flagged ``hot:``;
findings the profiled workload never executed become notes and stop
gating the exit code.  Some findings carry machine-applicable
fixes: ``repro-qos lint --fix`` applies them (``--fix --dry-run`` shows
the diffs), and ``--baseline lint-baseline.json`` /
``--update-baseline`` suppress pre-existing findings so the gate fails
only on regressions (:mod:`repro.lint.fixes`,
:mod:`repro.lint.baseline`).  ``--format sarif`` renders findings for
GitHub code scanning (:mod:`repro.lint.sarif`).

A violation is suppressed by putting ``# simlint: allow-<pragma-name>``
(or ``allow-<lowercase-id>``, e.g. ``allow-sim101``) on the offending
line; pragmas naming unknown rules are themselves reported (SIM000) so a
typo cannot silently disable a check.

``--select`` / ``--ignore`` narrow a run to rule IDs or family prefixes
(``--select SIM4``, ``--ignore SIM103,SIM3``); the filter applies to
text, JSON and SARIF output and to the exit gate alike.

Run it as ``repro-qos lint [--project] [paths...]`` or programmatically::

    from repro.lint import lint_paths, lint_project
    violations = lint_paths(["src/repro"])
    violations, cache_stats = lint_project(["src/repro"], cache_dir=".simlint-cache")
"""

from __future__ import annotations

from repro.lint.baseline import Baseline, fingerprint
from repro.lint.fixes import FixReport, apply_fixes
from repro.lint.hotpath import (
    HotPathAnalysis,
    ProfileIndex,
    analyze_hotpath,
    annotate_profile,
)
from repro.lint.pragmas import Pragma, parse_pragmas
from repro.lint.project_rules import PROJECT_RULES, ProjectRule, register_project_rule
from repro.lint.rules import RULES, Rule, register_rule
from repro.lint.runner import (
    iter_python_files,
    lint_file,
    lint_paths,
    lint_project,
    lint_source,
)
from repro.lint.sarif import to_sarif
from repro.lint.violations import Violation

__all__ = [
    "Baseline",
    "FixReport",
    "HotPathAnalysis",
    "PROJECT_RULES",
    "Pragma",
    "ProfileIndex",
    "ProjectRule",
    "RULES",
    "Rule",
    "Violation",
    "analyze_hotpath",
    "annotate_profile",
    "apply_fixes",
    "fingerprint",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "lint_project",
    "lint_source",
    "parse_pragmas",
    "register_project_rule",
    "register_rule",
    "to_sarif",
]
