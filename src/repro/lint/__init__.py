"""simlint: simulator-specific static analysis for this codebase.

Generic linters cannot know that drawing from the *global* stdlib RNG
breaks run reproducibility, that a wall-clock read inside the simulation
core couples results to the host machine, or that a bare ``assert``
guarding a Lemma 1 invariant vanishes under ``python -O``.  simlint
encodes those project rules as AST checks and gates the tree on them
(``tests/lint/test_src_is_clean.py`` keeps ``src/`` clean forever).

Rules (see :mod:`repro.lint.rules` for the registry and how to add one):

========  ==================  ==================================================
ID        pragma name         what it forbids
========  ==================  ==================================================
SIM001    global-random       importing stdlib ``random`` (use ``repro.sim.rng``)
SIM002    wallclock           wall-clock reads (``time.time`` & friends)
SIM003    float-deadline-eq   float ``==``/``!=`` on deadlines/timestamps
SIM004    bare-assert         bare ``assert`` (use ``repro.core.invariants``)
SIM005    mutable-default     mutable default arguments
SIM006    missing-slots       hot-path queue/packet classes without ``__slots__``
========  ==================  ==================================================

A violation is suppressed by putting ``# simlint: allow-<pragma-name>``
on the offending line; pragmas naming unknown rules are themselves
reported (SIM000) so a typo cannot silently disable a check.

Run it as ``repro-qos lint [paths...]`` or programmatically::

    from repro.lint import lint_paths
    violations = lint_paths(["src/repro"])
"""

from __future__ import annotations

from repro.lint.rules import RULES, Rule, register_rule
from repro.lint.runner import iter_python_files, lint_file, lint_paths, lint_source
from repro.lint.violations import Violation

__all__ = [
    "RULES",
    "Rule",
    "Violation",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "lint_source",
    "register_rule",
]
