"""Worker-reachability analysis under the SIM2xx parallel-safety rules.

``repro.exec`` fans simulations out over a :class:`ProcessPoolExecutor`
and guarantees byte-identical merges; that guarantee silently dies the
moment worker-executed code mutates shared module state, feeds a
process-varying value (``hash()``, pids, wall clock) into a digest, or
writes a shared file non-atomically.  This module computes *which
functions can execute inside a worker process*, so the SIM201-SIM205
rules (:mod:`repro.lint.project_rules`) only fire where fork divergence
can actually happen.

Roots of the reachability closure:

- every callable resolved from a **pool submission site** recorded by
  the dataflow pass (``pool.submit(fn, ...)``, ``executor.map(fn, it)``,
  ``SweepExecutor(worker=fn)``);
- the **enclosing function** of each lambda / local-function submission
  -- closure bodies are analyzed into the enclosing
  :class:`~repro.lint.dataflow.FunctionFact`, so the encloser stands in
  for the payload (a deliberate over-approximation: parent-side calls of
  that function are swept in too, which errs toward reporting);
- :data:`KNOWN_WORKER_ENTRY_POINTS` -- the functions this project is
  *known* to hand to pools through indirection no static resolver can
  follow (instance attributes, config tables).

The closure itself is :meth:`~repro.lint.callgraph.CallGraph.
reachable_from`, whose witness map lets every finding name the worker
entry point it is reachable from.  The analysis is memoized per call
graph so the five SIM2xx rules share one traversal.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple
from weakref import WeakKeyDictionary

from repro.lint.callgraph import CallGraph, Node
from repro.lint.dataflow import FunctionFact
from repro.lint.projectmodel import ModuleSummary, ProjectModel

__all__ = ["ParallelAnalysis", "SubmissionSite", "analyze_parallel"]

#: Worker entry points reached through indirection the resolver cannot
#: see (``SweepExecutor`` stores its worker on an instance attribute;
#: ``replicate`` passes ``run_one`` through the executor).  Dotted
#: origins; entries absent from the scanned tree are ignored, so linting
#: a fixture directory does not drag ``src/`` semantics along.
KNOWN_WORKER_ENTRY_POINTS: Tuple[str, ...] = (
    "repro.exec.summary.execute_config",
    "repro.experiments.replication.run_one",
)


@dataclass
class SubmissionSite:
    """One pool-submission record, tied back to its module/function."""

    summary: ModuleSummary
    fact: FunctionFact
    record: Dict[str, Any]

    @property
    def line(self) -> int:
        return int(self.record["line"])

    @property
    def col(self) -> int:
        return int(self.record["col"])

    @property
    def kind(self) -> str:
        return str(self.record["kind"])


@dataclass
class ParallelAnalysis:
    """Submission sites + worker-reachability closure over the model."""

    #: Every pool submission in the scanned tree, in path order.
    submissions: List[SubmissionSite] = field(default_factory=list)
    #: Root node -> human-readable reason it executes in a worker.
    roots: Dict[Node, str] = field(default_factory=dict)
    #: Worker-reachable node -> the root it was first discovered from.
    reachable: Dict[Node, Node] = field(default_factory=dict)

    def reason_for(self, node: Node) -> str:
        """Why ``node`` is worker-reachable (via its witness root)."""
        witness = self.reachable.get(node)
        if witness is None:
            return "not worker-reachable"
        reason = self.roots.get(witness, "worker entry point")
        if witness == node:
            return reason
        return f"reachable from `{witness[0]}.{witness[1]}` ({reason})"


_CACHE: "WeakKeyDictionary[CallGraph, ParallelAnalysis]" = WeakKeyDictionary()


def analyze_parallel(model: ProjectModel, graph: CallGraph) -> ParallelAnalysis:
    """The (memoized) parallel analysis for one model/graph pair."""
    cached = _CACHE.get(graph)
    if cached is not None:
        return cached

    analysis = ParallelAnalysis()
    for summary in model.summaries():
        for qualname in sorted(summary.functions):
            fact = summary.functions[qualname]
            for record in fact.submissions:
                analysis.submissions.append(
                    SubmissionSite(summary=summary, fact=fact, record=record)
                )

    def add_root(node: Node, reason: str) -> None:
        analysis.roots.setdefault(node, reason)

    for site in analysis.submissions:
        record = site.record
        where = f"{site.summary.path}:{record['line']}"
        pool = record.get("pool") or "pool"
        if site.kind in ("named", "bound-method", "variable"):
            resolved = _resolve_node(model, record.get("origin"))
            if resolved is not None:
                add_root(
                    resolved,
                    f"submitted to `{pool}.{record['how']}` at {where}",
                )
        elif site.kind in ("lambda", "local-function"):
            add_root(
                (site.summary.module, site.fact.qualname),
                f"encloses a {site.kind} submitted to "
                f"`{pool}.{record['how']}` at {where}",
            )
    for dotted in KNOWN_WORKER_ENTRY_POINTS:
        resolved = _resolve_node(model, dotted)
        if resolved is not None:
            add_root(resolved, f"known worker entry point `{dotted}`")

    analysis.reachable = graph.reachable_from(analysis.roots)
    _CACHE[graph] = analysis
    return analysis


def _resolve_node(model: ProjectModel, origin: Optional[str]) -> Optional[Node]:
    target = model.function_fact(origin)
    if target is None:
        return None
    summary, fact = target
    return summary.module, fact.qualname
