"""File-hash-keyed incremental cache for the project analysis.

Parsing and summarising every module in ``src/`` dominates the cost of a
``repro-qos lint --project`` run, yet between two runs almost nothing
changes.  The cache stores each file's extracted :class:`~repro.lint.
projectmodel.ModuleSummary` (a plain JSON-serialisable dict) keyed by
the SHA-256 of the file's *content* -- not its mtime -- so a warm run
over an unchanged tree re-parses **zero** files, while any edit (or a
git checkout that restores an old mtime) invalidates exactly the files
whose bytes changed.

Entries are additionally keyed by a schema version: bumping
:data:`CACHE_SCHEMA_VERSION` when the summary format changes makes stale
caches self-invalidate instead of crashing the loader.

The per-file key also folds in :func:`rules_digest` -- a hash over every
registered rule id.  Cached entries embed the *findings* of the rule set
that produced them; without the digest, registering a new rule (or
selecting a plugin that registers one) would warm-replay stale per-file
results and silently skip the new checks.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, Dict, Optional, Union

__all__ = ["SummaryCache", "hash_source", "rules_digest"]

#: Bump when the ModuleSummary serialisation format changes.
#: 2: SIM2xx fields (submissions, global mutations, varying values,
#: file writes, env writes) + mutable_globals on the summary.
#: 3: SIM3xx hot-path fields (loop allocations, repeated attribute /
#: global lookups, loop try/excepts, string builds) + per-class layout
#: facts on the summary.
#: 4: SIM4xx temporal fields (schedule calls, float compares and
#: time-target assigns, deadline sort keys, loop captures, ns true
#: divisions).
#: 5: schedule-call records gained ``in_loop`` and ``fresh_args``
#: (SIM307) and ``at_cancellable``/``after_cancellable`` sinks.
#: 6: SIM5xx scale fields (container ops, pool flows, closure
#: retentions) + per-class ``containers`` lifecycle facts.
CACHE_SCHEMA_VERSION = 6

#: File name used inside the cache directory.
CACHE_FILE_NAME = "projectmodel.json"

JsonDict = Dict[str, Any]


def hash_source(source: str) -> str:
    """Content hash used as the cache key for one file."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def rules_digest() -> str:
    """Short digest over every registered rule id (per-file + project).

    Folded into each cache key by the runner, so a cache written under a
    smaller rule set misses -- and the file is re-linted -- the moment a
    new rule registers, instead of replaying results that never saw it.
    Imports are deferred: the registries import the violation/dataflow
    stack, and this module must stay leaf-light.
    """
    from repro.lint.project_rules import PROJECT_RULES
    from repro.lint.rules import RULES

    ids = sorted(set(RULES) | set(PROJECT_RULES))
    return hashlib.sha256("\x00".join(ids).encode("utf-8")).hexdigest()[:16]


class SummaryCache:
    """Maps file content hashes to serialised module summaries.

    The cache is loaded once, consulted per file during the project
    scan, and written back with :meth:`save`.  ``hits``/``misses`` count
    lookups during this process's lifetime and are surfaced in the CLI's
    JSON output so CI (and the tests) can assert that a warm run
    re-parsed nothing.

    A ``cache_dir`` of ``None`` gives an in-memory cache: same API, no
    persistence -- callers never need to special-case "caching off".
    """

    def __init__(self, cache_dir: Optional[Union[str, Path]] = None) -> None:
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.hits = 0
        self.misses = 0
        self._entries: Dict[str, JsonDict] = {}
        self._load()

    def _cache_file(self) -> Optional[Path]:
        if self.cache_dir is None:
            return None
        return self.cache_dir / CACHE_FILE_NAME

    def _load(self) -> None:
        cache_file = self._cache_file()
        if cache_file is None or not cache_file.is_file():
            return
        try:
            payload = json.loads(cache_file.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return  # unreadable/corrupt cache == cold cache
        if payload.get("schema") != CACHE_SCHEMA_VERSION:
            return
        entries = payload.get("entries")
        if isinstance(entries, dict):
            self._entries = entries

    def get(self, source_hash: str) -> Optional[JsonDict]:
        """The cached summary for a content hash, counting hit/miss."""
        entry = self._entries.get(source_hash)
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        return entry

    def put(self, source_hash: str, summary: JsonDict) -> None:
        self._entries[source_hash] = summary

    def prune(self, live_hashes: "set[str]") -> None:
        """Drop entries for files no longer in the tree, so the cache
        file does not grow without bound across renames/deletions."""
        self._entries = {
            key: value for key, value in self._entries.items() if key in live_hashes
        }

    def save(self) -> None:
        """Persist to disk (no-op for in-memory caches)."""
        cache_file = self._cache_file()
        if cache_file is None:
            return
        cache_file.parent.mkdir(parents=True, exist_ok=True)
        payload = {"schema": CACHE_SCHEMA_VERSION, "entries": self._entries}
        # Write-then-rename so a crashed run never leaves a torn cache.
        tmp = cache_file.with_suffix(".tmp")
        tmp.write_text(json.dumps(payload, sort_keys=True), encoding="utf-8")
        tmp.replace(cache_file)

    def stats(self) -> Dict[str, int]:
        """Hit/miss counters in the shape the CLI JSON schema exposes."""
        return {"hits": self.hits, "misses": self.misses}
