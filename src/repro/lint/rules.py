"""The simlint rule registry and the built-in SIM rules.

A rule is a small class with an ``id`` (``SIM001``), a ``name`` (the
pragma spelling, ``global-random``) and a :meth:`Rule.check` that walks
a parsed module and yields ``(node, message)`` pairs.  Register it with
the :func:`register_rule` decorator and it is automatically picked up by
the runner, the CLI and the fixture-driven test matrix.

Adding a rule therefore takes three steps:

1. subclass :class:`Rule` here (or in your own module) and decorate it
   with ``@register_rule``;
2. add a known-bad and a known-good fixture under
   ``tests/lint/fixtures/``;
3. drive ``src/`` clean (or annotate legitimate uses with
   ``# simlint: allow-<name>``).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Iterator, Tuple, Type

__all__ = ["RULES", "Rule", "register_rule"]

Finding = Tuple[ast.AST, str]


class Rule:
    """Base class for simlint rules."""

    #: Stable identifier, ``SIM`` + three digits.
    id: str = ""
    #: Pragma name: a ``simlint: allow-<name>`` comment suppresses this rule.
    #: (The lowercase id, e.g. ``allow-sim004``, always works as an alias.)
    name: str = ""
    #: One-line human description (shown by ``repro-qos lint --list-rules``).
    description: str = ""
    #: Longer why-this-matters text (``repro-qos lint --explain <RULE>``).
    rationale: str = ""
    #: Minimal embedded bad/good examples for ``--explain``, used when
    #: the fixture tree is not on disk (e.g. an installed package).
    example_bad: str = ""
    example_good: str = ""

    def check(self, tree: ast.Module, path: str) -> Iterator[Finding]:
        """Yield ``(node, message)`` for each violation in ``tree``.

        ``path`` is the posix-style path of the file being linted; rules
        that only apply to part of the tree (e.g. SIM006) scope on it.
        """
        raise NotImplementedError

    def applies_to(self, path: str) -> bool:
        """Whether this rule runs on ``path`` at all (default: always)."""
        return True


#: The global registry, keyed by rule id, populated at import time.
RULES: Dict[str, Rule] = {}


def register_rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: instantiate and register a rule."""
    rule = cls()
    if not rule.id or not rule.name:
        raise ValueError(f"rule {cls.__name__} must define id and name")
    if rule.id in RULES:
        raise ValueError(f"duplicate rule id {rule.id}")
    if any(existing.name == rule.name for existing in RULES.values()):
        raise ValueError(f"duplicate rule name {rule.name!r}")
    RULES[rule.id] = rule
    return cls


def _dotted(node: ast.AST) -> str:
    """``a.b.c`` for a Name/Attribute chain, or '' when not a plain chain."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


# ----------------------------------------------------------------------
# SIM001: no stdlib random in library code
# ----------------------------------------------------------------------
@register_rule
class GlobalRandomRule(Rule):
    id = "SIM001"
    name = "global-random"
    description = (
        "stdlib `random` must not be imported in library code; use the "
        "seeded streams of repro.sim.rng so runs stay reproducible"
    )
    rationale = (
        "The process-global stdlib RNG is shared mutable state: any import "
        "that draws from it perturbs every later draw, so adding a module "
        "changes unrelated results.  repro.sim.rng derives independent "
        "named streams from the run seed instead."
    )
    example_bad = "import random\njitter = random.random()\n"
    example_good = (
        "from repro.sim.rng import local_stream\n"
        "rng = local_stream('jitter', seed)\njitter = rng.random()\n"
    )

    def check(self, tree: ast.Module, path: str) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith("random."):
                        yield (
                            node,
                            "import of stdlib `random`; draw from "
                            "repro.sim.rng (RandomStreams / local_stream) instead",
                        )
                        break
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random" and node.level == 0:
                    yield (
                        node,
                        "import from stdlib `random`; draw from "
                        "repro.sim.rng (RandomStreams / local_stream) instead",
                    )


# ----------------------------------------------------------------------
# SIM002: no wall-clock reads in simulation code
# ----------------------------------------------------------------------
@register_rule
class WallClockRule(Rule):
    id = "SIM002"
    name = "wallclock"
    description = (
        "wall-clock reads (time.time & friends) are forbidden in simulation "
        "code; simulated time is engine.now (integer nanoseconds)"
    )
    rationale = (
        "Reading the host clock couples simulation results to machine "
        "speed and load; simulated time is engine.now, an integer "
        "nanosecond counter advanced only by the event loop."
    )
    example_bad = "import time\nstart = time.time()\n"
    example_good = "start_ns = engine.now\n"

    #: Module-level functions whose *call* reads the host clock.
    WALLCLOCK_CALLS = frozenset(
        {
            "time.time",
            "time.time_ns",
            "time.perf_counter",
            "time.perf_counter_ns",
            "time.monotonic",
            "time.monotonic_ns",
            "time.process_time",
            "time.process_time_ns",
            "time.clock_gettime",
            "datetime.now",
            "datetime.utcnow",
            "datetime.today",
            "datetime.datetime.now",
            "datetime.datetime.utcnow",
            "datetime.datetime.today",
            "date.today",
            "datetime.date.today",
        }
    )
    #: ``from time import <these>`` hides the call sites from the check
    #: above, so the import itself is flagged.
    WALLCLOCK_NAMES = frozenset(
        {
            "time",
            "time_ns",
            "perf_counter",
            "perf_counter_ns",
            "monotonic",
            "monotonic_ns",
            "process_time",
            "process_time_ns",
            "clock_gettime",
        }
    )

    def check(self, tree: ast.Module, path: str) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if isinstance(node, ast.Call):
                dotted = _dotted(node.func)
                if dotted in self.WALLCLOCK_CALLS:
                    yield (
                        node,
                        f"wall-clock read `{dotted}()`; simulation code must "
                        "use engine.now (or pragma a benchmark measurement)",
                    )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "time" and node.level == 0:
                    hidden = sorted(
                        alias.name
                        for alias in node.names
                        if alias.name in self.WALLCLOCK_NAMES
                    )
                    if hidden:
                        yield (
                            node,
                            "importing wall-clock functions by name "
                            f"({', '.join(hidden)}) hides the call sites; "
                            "use `import time` and call via the module",
                        )


# ----------------------------------------------------------------------
# SIM003: no float equality on deadlines / timestamps
# ----------------------------------------------------------------------
@register_rule
class FloatDeadlineEqRule(Rule):
    id = "SIM003"
    name = "float-deadline-eq"
    description = (
        "float ==/!= on deadlines or timestamps is fragile; keep time in "
        "integer nanoseconds (sim/units) or compare with a tolerance"
    )
    rationale = (
        "Two floats that 'should' be equal rarely are after independent "
        "arithmetic; a deadline comparison that ties on one platform and "
        "misses by 1 ULP on another reorders packets.  Integer "
        "nanoseconds make equality exact."
    )
    example_bad = "due = deadline == size / bw\n"
    example_good = "due = deadline_ns == serialization_ns(size_bytes, rate)\n"

    #: Terminal identifiers treated as time-valued.
    TIME_SUFFIXES = ("_ns", "_time", "_deadline")
    TIME_NAMES = frozenset({"deadline", "deadlines", "timestamp", "now", "eligible"})

    def _is_time_named(self, node: ast.AST) -> bool:
        if isinstance(node, ast.Attribute):
            ident = node.attr
        elif isinstance(node, ast.Name):
            ident = node.id
        else:
            return False
        ident_lower = ident.lower()
        return ident_lower in self.TIME_NAMES or ident_lower.endswith(self.TIME_SUFFIXES)

    def _is_floaty(self, node: ast.AST) -> bool:
        """Expressions that produce floats: float literals, true
        division, float()/round(x, n) calls -- recursing through
        arithmetic so `a + b / c` counts."""
        if isinstance(node, ast.Constant):
            return isinstance(node.value, float)
        if isinstance(node, ast.BinOp):
            if isinstance(node.op, ast.Div):
                return True
            return self._is_floaty(node.left) or self._is_floaty(node.right)
        if isinstance(node, ast.UnaryOp):
            return self._is_floaty(node.operand)
        if isinstance(node, ast.Call):
            return _dotted(node.func) == "float"
        return False

    def check(self, tree: ast.Module, path: str) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Compare):
                continue
            left = node.left
            for op, right in zip(node.ops, node.comparators):
                if isinstance(op, (ast.Eq, ast.NotEq)):
                    time_named = self._is_time_named(left) or self._is_time_named(right)
                    floaty = self._is_floaty(left) or self._is_floaty(right)
                    if time_named and floaty:
                        yield (
                            node,
                            "float equality on a deadline/timestamp; use "
                            "integer nanoseconds (repro.sim.units) or an "
                            "explicit tolerance",
                        )
                        break
                left = right


# ----------------------------------------------------------------------
# SIM004: no bare assert for runtime invariants
# ----------------------------------------------------------------------
@register_rule
class BareAssertRule(Rule):
    id = "SIM004"
    name = "bare-assert"
    description = (
        "bare `assert` disappears under python -O; runtime invariants must "
        "use repro.core.invariants.invariant()"
    )
    rationale = (
        "python -O strips assert statements from the bytecode, so a "
        "Lemma 1 invariant guarded by assert simply vanishes in optimized "
        "runs.  invariant() is a real call that survives -O and raises a "
        "typed InvariantViolation."
    )
    example_bad = "assert credits >= 0, 'negative credits'\n"
    example_good = (
        "from repro.core.invariants import invariant\n"
        "invariant(credits >= 0, 'negative credits: %d', credits)\n"
    )

    def check(self, tree: ast.Module, path: str) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if isinstance(node, ast.Assert):
                yield (
                    node,
                    "bare `assert` is stripped by python -O; call "
                    "repro.core.invariants.invariant(cond, msg) so the "
                    "check survives optimization",
                )


# ----------------------------------------------------------------------
# SIM005: no mutable default arguments
# ----------------------------------------------------------------------
@register_rule
class MutableDefaultRule(Rule):
    id = "SIM005"
    name = "mutable-default"
    description = "mutable default arguments are shared across calls"
    rationale = (
        "A mutable default is evaluated once at def time and shared by "
        "every call; state leaks between calls (and between simulation "
        "runs in one process)."
    )
    example_bad = "def run(events=[]):\n    events.append(1)\n"
    example_good = "def run(events=None):\n    events = [] if events is None else events\n"

    MUTABLE_CALLS = frozenset({"list", "dict", "set", "bytearray", "collections.deque", "deque"})
    MUTABLE_NODES = (
        ast.List,
        ast.Dict,
        ast.Set,
        ast.ListComp,
        ast.DictComp,
        ast.SetComp,
    )

    def _is_mutable(self, default: ast.AST) -> bool:
        if isinstance(default, self.MUTABLE_NODES):
            return True
        if isinstance(default, ast.Call):
            return _dotted(default.func) in self.MUTABLE_CALLS
        return False

    def check(self, tree: ast.Module, path: str) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults: Iterable[ast.AST] = [
                d
                for d in [*node.args.defaults, *node.args.kw_defaults]
                if d is not None
            ]
            for default in defaults:
                if self._is_mutable(default):
                    yield (
                        default,
                        f"mutable default argument in `{node.name}()`; "
                        "default to None and construct inside the body",
                    )


# ----------------------------------------------------------------------
# SIM006: hot-path classes must declare __slots__
# ----------------------------------------------------------------------
@register_rule
class SlotsRule(Rule):
    id = "SIM006"
    name = "missing-slots"
    description = (
        "hot-path queue/packet classes must declare __slots__ (per-packet "
        "dict allocation dominates otherwise)"
    )
    rationale = (
        "Per-packet attribute dicts dominated the allocation profile; "
        "__slots__ on queue/packet classes removes the dict and makes "
        "attribute access a fixed-offset load."
    )
    example_bad = "class Packet:\n    def __init__(self):\n        self.size_bytes = 0\n"
    example_good = "class Packet:\n    __slots__ = ('size_bytes',)\n"

    #: Path fragments (posix style) whose classes are considered hot-path.
    HOT_PATH_PATTERNS = ("core/queues/", "network/packet.py")
    #: Base-class suffixes exempt from the requirement.
    EXEMPT_BASE_SUFFIXES = ("Protocol", "Exception", "Error", "Warning", "Enum")

    def applies_to(self, path: str) -> bool:
        return any(pattern in path for pattern in self.HOT_PATH_PATTERNS)

    def _is_exempt(self, node: ast.ClassDef) -> bool:
        for decorator in node.decorator_list:
            target = decorator.func if isinstance(decorator, ast.Call) else decorator
            if "dataclass" in _dotted(target):
                return True
        for base in node.bases:
            dotted = _dotted(base)
            if dotted.endswith(self.EXEMPT_BASE_SUFFIXES):
                return True
        return False

    def _declares_slots(self, node: ast.ClassDef) -> bool:
        for stmt in node.body:
            targets = []
            if isinstance(stmt, ast.Assign):
                targets = stmt.targets
            elif isinstance(stmt, ast.AnnAssign):
                targets = [stmt.target]
            for target in targets:
                if isinstance(target, ast.Name) and target.id == "__slots__":
                    return True
        return False

    def check(self, tree: ast.Module, path: str) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if self._is_exempt(node) or self._declares_slots(node):
                continue
            yield (
                node,
                f"hot-path class `{node.name}` does not declare __slots__",
            )
