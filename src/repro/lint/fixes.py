"""Machine application of the fixes some violations carry.

A :class:`~repro.lint.violations.Violation` may ship a ``fix`` payload:

.. code-block:: python

    {
        "kind": "lift-lambda" | "stable-hash" | ...,
        "path": "pkg/mod.py",          # file the edits apply to
        "description": "...",          # one line, shown in --fix output
        "edits": [                     # span replacements, 1-based lines,
            {"start_line": 3,          # 0-based cols (AST coordinates)
             "start_col": 17,
             "end_line": 3,
             "end_col": 40,
             "replacement": "_lifted_worker_3"},
        ],
        "append": "\\n\\ndef _lifted_worker_3(cfg): ...",   # optional EOF text
        "ensure_import": "from repro.exec.digest import stable_hash",
    }

:func:`apply_fixes` groups payloads by file, applies span edits in
descending source order (so earlier offsets stay valid), appends lifted
definitions at EOF, inserts any missing import after the last top-level
import statement, and rewrites the file -- or, under ``dry_run``, only
renders unified diffs.

**Idempotence is structural, not bookkept**: every fix removes the very
pattern that made its rule fire (the lambda is gone, ``hash()`` became
``stable_hash()``), so a second ``--fix`` run finds no fixable
violations and edits nothing.  Pragma insertion is deliberately *not* a
fix: silencing a finding is a human judgement, never auto-applied.

Overlapping edits within one file (two fixes touching the same span)
are resolved conservatively: the earlier-sorted fix wins, the loser is
counted in ``skipped`` and will be offered again on the next run.
"""

from __future__ import annotations

import ast
import difflib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.lint.violations import Violation

__all__ = ["FixReport", "apply_fixes"]


@dataclass
class FixReport:
    """What one ``--fix`` pass did (or would do, under ``dry_run``)."""

    #: Violations whose fix was applied.
    applied: int = 0
    #: Violations carrying a fix that could not be applied (overlap,
    #: missing file, stale span).
    skipped: int = 0
    #: Files rewritten (or that would be, under ``dry_run``), sorted.
    files_changed: List[str] = field(default_factory=list)
    #: path -> unified diff of the rewrite.
    diffs: Dict[str, str] = field(default_factory=dict)
    #: One line per applied fix: ``path:line: description``.
    notes: List[str] = field(default_factory=list)
    dry_run: bool = False

    def to_dict(self) -> Dict[str, Any]:
        return {
            "applied": self.applied,
            "skipped": self.skipped,
            "files_changed": self.files_changed,
            "dry_run": self.dry_run,
            "notes": self.notes,
        }


def _line_starts(text: str) -> List[int]:
    starts = [0]
    for index, char in enumerate(text):
        if char == "\n":
            starts.append(index + 1)
    return starts


def _span_offsets(
    text: str, starts: List[int], edit: Dict[str, Any]
) -> Optional[Tuple[int, int]]:
    """(start, end) byte offsets of one edit, ``None`` when the span no
    longer exists in the file (stale fix after an external edit)."""
    try:
        start_line = int(edit["start_line"])
        start_col = int(edit["start_col"])
        end_line = int(edit["end_line"])
        end_col = int(edit["end_col"])
    except (KeyError, TypeError, ValueError):
        return None
    if not (1 <= start_line <= len(starts) and 1 <= end_line <= len(starts)):
        return None
    start = starts[start_line - 1] + start_col
    end = starts[end_line - 1] + end_col
    if not (0 <= start <= end <= len(text)):
        return None
    return start, end


def _insert_import(text: str, import_line: str) -> str:
    """``text`` with ``import_line`` added after the last top-level
    import (or the module docstring, or at the top).  No-op when an
    identical line is already present."""
    if any(line.strip() == import_line for line in text.splitlines()):
        return text
    try:
        tree = ast.parse(text)
    except SyntaxError:
        return text  # never make a broken file worse
    insert_after = 0  # line number (1-based) to insert *after*
    for stmt in tree.body:
        if isinstance(stmt, (ast.Import, ast.ImportFrom)):
            insert_after = stmt.end_lineno or stmt.lineno
    if insert_after == 0 and tree.body:
        first = tree.body[0]
        if (
            isinstance(first, ast.Expr)
            and isinstance(first.value, ast.Constant)
            and isinstance(first.value.value, str)
        ):
            insert_after = first.end_lineno or first.lineno
    lines = text.splitlines(keepends=True)
    if lines and not lines[-1].endswith("\n"):
        lines[-1] += "\n"
    lines.insert(insert_after, import_line + "\n")
    return "".join(lines)


def _apply_to_file(
    path: str, fixes: Sequence[Tuple[Violation, Dict[str, Any]]], report: FixReport
) -> Optional[Tuple[str, str]]:
    """Apply every fix for one file; returns (old_text, new_text) or
    ``None`` when nothing changed.  Updates the report's counters."""
    file_path = Path(path)
    try:
        original = file_path.read_text(encoding="utf-8")
    except OSError:
        report.skipped += len(fixes)
        return None
    text = original
    starts = _line_starts(text)

    # Resolve every span against the *original* text, then apply in
    # descending offset order so earlier spans stay valid.
    resolved: List[Tuple[int, int, str, Violation, Dict[str, Any]]] = []
    for violation, fix in fixes:
        spans: List[Tuple[int, int, str]] = []
        usable = True
        for edit in fix.get("edits", ()):
            offsets = _span_offsets(text, starts, edit)
            if offsets is None:
                usable = False
                break
            spans.append(
                (offsets[0], offsets[1], str(edit.get("replacement", "")))
            )
        if not usable:
            report.skipped += 1
            continue
        for start, end, replacement in spans:
            resolved.append((start, end, replacement, violation, fix))

    resolved.sort(key=lambda item: (item[0], item[1]), reverse=True)
    applied_fixes: List[Tuple[Violation, Dict[str, Any]]] = []
    last_applied_start: Optional[int] = None
    lost: Set[int] = set()
    for start, end, replacement, violation, fix in resolved:
        if last_applied_start is not None and end > last_applied_start:
            lost.add(id(fix))  # overlaps an already-applied edit
            continue
        if id(fix) in lost:
            continue
        text = text[:start] + replacement + text[end:]
        last_applied_start = start
        if (violation, fix) not in applied_fixes:
            applied_fixes.append((violation, fix))
    report.skipped += len(lost)

    # EOF appends (lifted definitions), in stable violation order.
    for violation, fix in reversed(applied_fixes):
        append = fix.get("append")
        if append:
            if not text.endswith("\n"):
                text += "\n"
            text += str(append)
    # Missing imports last, against the fully-edited text.
    for violation, fix in reversed(applied_fixes):
        import_line = fix.get("ensure_import")
        if import_line:
            text = _insert_import(text, str(import_line))

    for violation, fix in reversed(applied_fixes):
        report.applied += 1
        report.notes.append(
            f"{violation.path}:{violation.line}: "
            f"{fix.get('description', fix.get('kind', 'fix'))}"
        )
    if text == original:
        return None
    return original, text


def apply_fixes(
    violations: Iterable[Violation], *, dry_run: bool = False
) -> FixReport:
    """Apply (or preview, with ``dry_run``) every machine fix carried by
    ``violations``.  Violations without a fix are ignored."""
    report = FixReport(dry_run=dry_run)
    by_path: Dict[str, List[Tuple[Violation, Dict[str, Any]]]] = {}
    for violation in sorted(violations):
        if violation.fix is None:
            continue
        path = str(violation.fix.get("path") or violation.path)
        by_path.setdefault(path, []).append((violation, violation.fix))

    for path in sorted(by_path):
        result = _apply_to_file(path, by_path[path], report)
        if result is None:
            continue
        original, text = result
        diff = "".join(
            difflib.unified_diff(
                original.splitlines(keepends=True),
                text.splitlines(keepends=True),
                fromfile=f"a/{path}",
                tofile=f"b/{path}",
            )
        )
        report.diffs[path] = diff
        report.files_changed.append(path)
        if not dry_run:
            Path(path).write_text(text, encoding="utf-8")
    report.files_changed.sort()
    return report
