"""Hot-path reachability + profile ranking under the SIM3xx rules.

The SIM104 purity rule introduced the idea of the *hot path*: every
function reachable, through the approximate call graph, from the
modules the paper's forwarding pipeline lives in (the event kernel, the
switch, the host NIC model, the queue structures).  The SIM3xx
performance family (:mod:`repro.lint.project_rules`) needs the same
closure, so this module hoists it into one shared, memoized pass --
:func:`analyze_hotpath` -- that SIM104 and SIM301-SIM306 all consume.

The second half is the **profile-guided mode**: :class:`ProfileIndex`
ingests a ``cProfile``/``pstats`` dump (produced by ``repro-qos profile
run`` or any ``python -m cProfile -o ...`` invocation), maps cumulative
time onto project-model functions by ``(file, def-line)`` -- falling
back to the bare function name -- and :func:`annotate_profile` ranks
SIM3xx findings by measured cost:

- the top decile (by cumulative seconds) is flagged ``hot:``;
- findings whose function never appeared in the profile (or measured
  zero) are demoted to ``note`` severity -- real anti-patterns, but not
  where the time goes *in the profiled workload*;
- everything in between is ``warm``.

The bucket plus the measured seconds ride on
:attr:`repro.lint.violations.Violation.profile` and round-trip through
the JSON and SARIF emitters.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Any, Dict, Iterator, List, Optional, Sequence, Set, Tuple, Union
from weakref import WeakKeyDictionary

from repro.lint.callgraph import CallGraph, Node
from repro.lint.dataflow import FunctionFact
from repro.lint.projectmodel import ModuleSummary, ProjectModel
from repro.lint.violations import Violation

__all__ = [
    "HOT_PATH_PATTERNS",
    "SANCTIONED_PATH_PATTERNS",
    "HotPathAnalysis",
    "MemProfileIndex",
    "ProfileIndex",
    "analyze_hotpath",
    "annotate_memprofile",
    "annotate_profile",
    "is_sanctioned",
]

#: The hot path named by the paper's forwarding pipeline: the event
#: kernel, the switch, the source-host NIC model, and the queue
#: structures under study.  Substring-matched against summary paths
#: (same contract as :meth:`CallGraph.nodes_in_modules`).
HOT_PATH_PATTERNS: Tuple[str, ...] = (
    "sim/engine.py",
    "network/switch.py",
    "network/host.py",
    "core/queues/",
)

#: Sanctioned subsystems: the observability layer (``obs/``) is the one
#: blessed way to look at the hot path and its overhead is policed by a
#: dedicated benchmark; the campaign runner (``exec/``) does its work
#: between simulations, never inside one.
SANCTIONED_PATH_PATTERNS: Tuple[str, ...] = ("obs/", "exec/")


def is_sanctioned(path: str) -> bool:
    """Whether findings in ``path`` are exempt from hot-path rules."""
    return any(
        path.startswith(pattern) or f"/{pattern}" in path
        for pattern in SANCTIONED_PATH_PATTERNS
    )


@dataclass
class HotPathAnalysis:
    """The engine-reachable closure over one project model."""

    #: Every function defined in a hot-path module.
    roots: Set[Node]
    #: Reachable node -> the root that witnesses its reachability.
    reachable: Dict[Node, Node]


_CACHE: "WeakKeyDictionary[CallGraph, HotPathAnalysis]" = WeakKeyDictionary()


def analyze_hotpath(model: ProjectModel, graph: CallGraph) -> HotPathAnalysis:
    """Compute (once per call graph) the hot-path closure SIM104 and the
    SIM3xx rules share."""
    cached = _CACHE.get(graph)
    if cached is not None:
        return cached
    roots = graph.nodes_in_modules(HOT_PATH_PATTERNS)
    analysis = HotPathAnalysis(
        roots=roots, reachable=graph.reachable_from(roots)
    )
    _CACHE[graph] = analysis
    return analysis


def iter_hot_facts(
    model: ProjectModel, graph: CallGraph
) -> Iterator[Tuple[Node, ModuleSummary, FunctionFact, str]]:
    """Hot-reachable ``(node, summary, fact, witness_path)`` quadruples
    in deterministic node order, sanctioned subsystems excluded."""
    analysis = analyze_hotpath(model, graph)
    for node in sorted(analysis.reachable):
        summary = graph.summary_of(node)
        if summary is None or is_sanctioned(summary.path):
            continue
        fact = summary.functions.get(node[1])
        if fact is None:
            continue
        witness = analysis.reachable[node]
        witness_summary = graph.summary_of(witness)
        witness_path = witness_summary.path if witness_summary else summary.path
        yield node, summary, fact, witness_path


# ----------------------------------------------------------------------
# profile-guided ranking
# ----------------------------------------------------------------------
class ProfileIndex:
    """Cumulative-time lookup over one ``pstats`` dump.

    Entries are indexed by file basename; a lookup matches when the
    profiled filename and the model path agree on their common suffix
    *and* either the function's ``def`` line or its bare name matches
    (cProfile keys functions by definition line, which survives the
    relative-vs-absolute path mismatch between a profile taken anywhere
    and a lint run rooted elsewhere).
    """

    def __init__(
        self,
        entries: Sequence[Tuple[str, int, str, float]],
        total_seconds: float,
    ) -> None:
        self.total_seconds = total_seconds
        self._by_base: Dict[str, List[Tuple[str, int, str, float]]] = {}
        for filename, lineno, funcname, cum in entries:
            base = filename.rsplit("/", 1)[-1]
            self._by_base.setdefault(base, []).append(
                (filename, lineno, funcname, cum)
            )

    @classmethod
    def load(cls, path: Union[str, "object"]) -> "ProfileIndex":
        """Read a cProfile/pstats dump.  Raises :class:`FileNotFoundError`
        when missing and :class:`ValueError` when unreadable."""
        import pstats

        try:
            stats = pstats.Stats(str(path))
        except FileNotFoundError:
            raise
        except Exception as exc:  # marshal errors, truncated dumps, ...
            raise ValueError(f"not a readable pstats dump: {path} ({exc})")
        entries: List[Tuple[str, int, str, float]] = []
        raw: Dict[Any, Any] = getattr(stats, "stats", {})
        for (filename, lineno, funcname), row in raw.items():
            cum = float(row[3])
            posix = str(filename).replace("\\", "/")
            if posix.startswith("~") or posix.startswith("<"):
                continue  # builtins / compiled / <string> frames
            entries.append((posix, int(lineno), str(funcname), cum))
        total = float(getattr(stats, "total_tt", 0.0))
        return cls(entries, total)

    def cumtime_for(self, path: str, line: int, name: str) -> Optional[float]:
        """Cumulative seconds for the function defined at ``path:line``
        (bare-name fallback), or ``None`` when the profile never saw it."""
        base = path.rsplit("/", 1)[-1]
        best: Optional[float] = None
        for filename, lineno, funcname, cum in self._by_base.get(base, ()):
            if not (
                filename == path
                or filename.endswith("/" + path)
                or path.endswith("/" + filename)
            ):
                continue
            if lineno == line or funcname == name:
                if best is None or cum > best:
                    best = cum
        return best


def _enclosing_fact(
    summary: ModuleSummary, line: int
) -> Optional[FunctionFact]:
    """The function whose body contains ``line`` (nearest preceding
    ``def``; module level only as a last resort)."""
    best: Optional[FunctionFact] = None
    for fact in summary.functions.values():
        if fact.qualname == "<module>":
            continue
        if fact.line <= line and (best is None or fact.line > best.line):
            best = fact
    return best or summary.functions.get("<module>")


def annotate_profile(
    violations: Sequence[Violation],
    model: ProjectModel,
    index: ProfileIndex,
) -> Tuple[List[Violation], Dict[str, Any]]:
    """Attach ``{bucket, cum_seconds, fraction}`` to every SIM3xx and
    SIM4xx finding, ranking by measured cumulative time.

    The temporal family rides the same attachment so a float deadline
    in a measured-hot function surfaces before one in setup code.

    Returns the annotated list (same order) plus summary stats for the
    runner's ``--format json`` block.
    """
    annotated = list(violations)
    ranked: List[Tuple[int, Optional[float]]] = []
    for i, violation in enumerate(annotated):
        if not violation.rule_id.startswith(("SIM3", "SIM4")):
            continue
        cum: Optional[float] = None
        summary = model.by_path.get(violation.path)
        if summary is not None:
            fact = _enclosing_fact(summary, violation.line)
            if fact is not None:
                bare = fact.qualname.rsplit(".", 1)[-1]
                cum = index.cumtime_for(violation.path, fact.line, bare)
        ranked.append((i, cum))

    timed = sorted(
        [(i, c) for i, c in ranked if c is not None and c > 0.0],
        key=lambda item: (-item[1], item[0]),
    )
    hot_count = max(1, math.ceil(len(timed) / 10)) if timed else 0
    hot_indices = {i for i, _ in timed[:hot_count]}
    total = index.total_seconds
    counts = {"hot": 0, "warm": 0, "cold": 0}
    for i, cum in ranked:
        if cum is None or cum <= 0.0:
            bucket = "cold"
        elif i in hot_indices:
            bucket = "hot"
        else:
            bucket = "warm"
        counts[bucket] += 1
        annotated[i] = replace(
            annotated[i],
            profile={
                "bucket": bucket,
                "cum_seconds": round(cum, 6) if cum else 0.0,
                "fraction": round(cum / total, 6) if cum and total else 0.0,
            },
        )
    stats: Dict[str, Any] = {
        "total_seconds": round(total, 6),
        "ranked": len(ranked),
        "matched": len(timed),
    }
    stats.update(counts)
    return annotated, stats


# ----------------------------------------------------------------------
# allocation-guided ranking (the SIM5xx mirror of the pstats mode)
# ----------------------------------------------------------------------
#: Schema tag written by ``repro-qos profile mem`` and required by the
#: reader -- a dump from a different writer fails fast, not quietly.
MEMPROFILE_SCHEMA = "simlint-memprofile/v1"


class MemProfileIndex:
    """Per-site allocation lookup over one tracemalloc snapshot dump.

    The dump is the JSON produced by ``repro-qos profile mem``: total
    and peak traced bytes plus ``sites`` records of ``{file, line,
    size_bytes, count}`` (one per ``tracemalloc.statistics("lineno")``
    entry).  Sites are indexed by file basename and matched to model
    paths by common suffix, the same contract as :class:`ProfileIndex`.
    """

    def __init__(
        self,
        sites: Sequence[Tuple[str, int, int]],
        total_bytes: int,
        peak_bytes: int,
    ) -> None:
        self.total_bytes = total_bytes
        self.peak_bytes = peak_bytes
        self._by_base: Dict[str, List[Tuple[str, int, int]]] = {}
        for filename, lineno, size in sites:
            base = filename.rsplit("/", 1)[-1]
            self._by_base.setdefault(base, []).append((filename, lineno, size))

    @classmethod
    def load(cls, path: Union[str, "object"]) -> "MemProfileIndex":
        """Read a ``profile mem`` JSON dump.  Raises
        :class:`FileNotFoundError` when missing and :class:`ValueError`
        when unreadable or not a memprofile dump."""
        import json

        try:
            text = open(str(path), "r", encoding="utf-8").read()
        except FileNotFoundError:
            raise
        except OSError as exc:
            raise ValueError(f"unreadable memprofile dump: {path} ({exc})")
        try:
            payload = json.loads(text)
        except ValueError as exc:
            raise ValueError(
                f"not a JSON memprofile dump: {path} ({exc}) "
                "(produce one with `repro-qos profile mem`)"
            )
        if (
            not isinstance(payload, dict)
            or payload.get("schema") != MEMPROFILE_SCHEMA
        ):
            raise ValueError(
                f"not a {MEMPROFILE_SCHEMA} dump: {path} "
                "(produce one with `repro-qos profile mem`)"
            )
        sites: List[Tuple[str, int, int]] = []
        for site in payload.get("sites", ()):
            posix = str(site.get("file", "")).replace("\\", "/")
            if not posix or posix.startswith("<"):
                continue
            sites.append(
                (posix, int(site.get("line", 0)), int(site.get("size_bytes", 0)))
            )
        return cls(
            sites,
            int(payload.get("total_bytes", 0)),
            int(payload.get("peak_bytes", 0)),
        )

    def sites_for(self, path: str) -> Iterator[Tuple[int, int]]:
        """``(line, size_bytes)`` pairs recorded against ``path``
        (suffix-matched, so dumps taken from any working directory
        line up with model paths rooted elsewhere)."""
        base = path.rsplit("/", 1)[-1]
        for filename, lineno, size in self._by_base.get(base, ()):
            if (
                filename == path
                or filename.endswith("/" + path)
                or path.endswith("/" + filename)
            ):
                yield lineno, size


def annotate_memprofile(
    violations: Sequence[Violation],
    model: ProjectModel,
    index: MemProfileIndex,
) -> Tuple[List[Violation], Dict[str, Any]]:
    """Attach ``{bucket, alloc_bytes, fraction}`` to every SIM5xx
    finding, ranking by bytes measured against the finding's enclosing
    function.

    Mirrors :func:`annotate_profile`: the top decile by measured bytes
    is ``hot``, unmeasured findings demote to ``cold`` notes (real
    anti-patterns, but not where the memory goes *in the profiled
    workload*), and the rest are ``warm``.  Only the SIM5xx family is
    touched, so a run may rank by time and bytes simultaneously.
    """
    annotated = list(violations)
    alloc: Dict[Tuple[str, str], int] = {}
    for summary in model.summaries():
        for lineno, size in index.sites_for(summary.path):
            fact = _enclosing_fact(summary, lineno)
            if fact is None:
                continue
            key = (summary.path, fact.qualname)
            alloc[key] = alloc.get(key, 0) + size

    ranked: List[Tuple[int, Optional[int]]] = []
    for i, violation in enumerate(annotated):
        if not violation.rule_id.startswith("SIM5"):
            continue
        measured: Optional[int] = None
        summary = model.by_path.get(violation.path)
        if summary is not None:
            fact = _enclosing_fact(summary, violation.line)
            if fact is not None:
                measured = alloc.get((violation.path, fact.qualname))
        ranked.append((i, measured))

    timed = sorted(
        [(i, b) for i, b in ranked if b],
        key=lambda item: (-item[1], item[0]),
    )
    hot_count = max(1, math.ceil(len(timed) / 10)) if timed else 0
    hot_indices = {i for i, _ in timed[:hot_count]}
    total = index.total_bytes
    counts = {"hot": 0, "warm": 0, "cold": 0}
    for i, measured in ranked:
        if not measured:
            bucket = "cold"
        elif i in hot_indices:
            bucket = "hot"
        else:
            bucket = "warm"
        counts[bucket] += 1
        annotated[i] = replace(
            annotated[i],
            profile={
                "bucket": bucket,
                "alloc_bytes": int(measured or 0),
                "fraction": (
                    round(measured / total, 6) if measured and total else 0.0
                ),
            },
        )
    stats: Dict[str, Any] = {
        "total_bytes": int(total),
        "peak_bytes": int(index.peak_bytes),
        "ranked": len(ranked),
        "matched": len(timed),
    }
    stats.update(counts)
    return annotated, stats
