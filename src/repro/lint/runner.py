"""Walk files, run the rules, apply pragmas, collect violations."""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Sequence, Union

from repro.lint.pragmas import allowed_by_line, parse_pragmas
from repro.lint.rules import RULES, Rule
from repro.lint.violations import Violation

__all__ = ["iter_python_files", "lint_file", "lint_paths", "lint_source"]

PathLike = Union[str, Path]

#: Pseudo-rule id for problems with the lint run itself (unparseable
#: file, pragma naming an unknown rule).  Not suppressible.
META_RULE_ID = "SIM000"

#: Directory names never descended into.
SKIP_DIRS = frozenset({"__pycache__", ".git", ".hypothesis", ".pytest_cache"})


def _select_rules(select: Optional[Iterable[str]]) -> List[Rule]:
    if select is None:
        return [RULES[rule_id] for rule_id in sorted(RULES)]
    rules = []
    for rule_id in select:
        rule = RULES.get(rule_id)
        if rule is None:
            known = ", ".join(sorted(RULES))
            raise KeyError(f"unknown rule {rule_id!r} (known: {known})")
        rules.append(rule)
    return rules


def lint_source(
    source: str,
    path: str = "<string>",
    *,
    select: Optional[Iterable[str]] = None,
) -> List[Violation]:
    """Lint one module given as text.  ``path`` is used for reporting and
    for path-scoped rules (e.g. SIM006)."""
    posix_path = str(path).replace("\\", "/")
    try:
        tree = ast.parse(source, filename=posix_path)
    except SyntaxError as exc:
        return [
            Violation(
                path=posix_path,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                rule_id=META_RULE_ID,
                rule_name="parse-error",
                message=f"file does not parse: {exc.msg}",
            )
        ]

    pragmas = parse_pragmas(source)
    allowed = allowed_by_line(pragmas)
    rule_names = {rule.name for rule in RULES.values()}

    violations: List[Violation] = []
    # A pragma naming an unknown rule would silently fail to suppress
    # anything -- surface the typo instead of honouring it.
    for pragma in pragmas:
        if not pragma.valid or pragma.name not in rule_names:
            detail = pragma.name or "<empty>"
            violations.append(
                Violation(
                    path=posix_path,
                    line=pragma.line,
                    col=0,
                    rule_id=META_RULE_ID,
                    rule_name="unknown-pragma",
                    message=(
                        f"pragma directive {detail!r} does not name a known "
                        f"rule (expected allow-<rule>, rules: "
                        f"{', '.join(sorted(rule_names))})"
                    ),
                )
            )

    for rule in _select_rules(select):
        if not rule.applies_to(posix_path):
            continue
        for node, message in rule.check(tree, posix_path):
            line = getattr(node, "lineno", 1)
            if rule.name in allowed.get(line, ()):
                continue
            violations.append(
                Violation(
                    path=posix_path,
                    line=line,
                    col=getattr(node, "col_offset", 0),
                    rule_id=rule.id,
                    rule_name=rule.name,
                    message=message,
                )
            )
    return sorted(violations)


def lint_file(path: PathLike, *, select: Optional[Iterable[str]] = None) -> List[Violation]:
    """Lint one file on disk."""
    file_path = Path(path)
    source = file_path.read_text(encoding="utf-8")
    return lint_source(source, str(file_path), select=select)


def iter_python_files(paths: Sequence[PathLike]) -> Iterator[Path]:
    """Expand files/directories into the .py files to lint, sorted so
    output order is stable across filesystems."""
    for entry in paths:
        entry_path = Path(entry)
        if entry_path.is_dir():
            for candidate in sorted(entry_path.rglob("*.py")):
                if not SKIP_DIRS.intersection(candidate.parts):
                    yield candidate
        elif entry_path.suffix == ".py" or entry_path.is_file():
            yield entry_path
        else:
            raise FileNotFoundError(f"no such file or directory: {entry_path}")


def lint_paths(
    paths: Sequence[PathLike],
    *,
    select: Optional[Iterable[str]] = None,
) -> List[Violation]:
    """Lint every python file under ``paths`` (files or directories)."""
    violations: List[Violation] = []
    for file_path in iter_python_files(paths):
        violations.extend(lint_file(file_path, select=select))
    return sorted(violations)
