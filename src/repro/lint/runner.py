"""Walk files, run the rules, apply pragmas, collect violations."""

from __future__ import annotations

import ast
import hashlib
from pathlib import Path
from typing import (
    Any,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.lint.pragmas import allowed_by_line, parse_pragmas
from repro.lint.rules import RULES, Rule
from repro.lint.violations import Violation

__all__ = [
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "lint_project",
    "lint_source",
]

PathLike = Union[str, Path]

#: Pseudo-rule id for problems with the lint run itself (unparseable
#: file, pragma naming an unknown rule).  Not suppressible.
META_RULE_ID = "SIM000"

#: Directory names never descended into.
SKIP_DIRS = frozenset({"__pycache__", ".git", ".hypothesis", ".pytest_cache"})


def _expand_rule_tokens(
    tokens: Iterable[str], known: "frozenset[str]"
) -> "set[str]":
    """Expand ``--select``/``--ignore`` tokens into rule ids.

    A token is a full id (``SIM104``) or a prefix (``SIM4`` selects the
    whole temporal family).  A token matching nothing is a usage error,
    not a silent no-op -- raise :class:`KeyError` so the CLI exits 2.
    """
    expanded: set = set()
    for token in tokens:
        wanted = token.strip().upper()
        if not wanted:
            continue
        matches = {
            rule_id
            for rule_id in known
            if rule_id == wanted or rule_id.startswith(wanted)
        }
        if not matches:
            raise KeyError(
                f"unknown rule or prefix {token!r} "
                f"(known: {', '.join(sorted(known))})"
            )
        expanded |= matches
    return expanded


def resolve_rule_filter(
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> Optional["frozenset[str]"]:
    """The effective rule-id set: ``(select or all) - ignore``.

    ``None`` means "no filter" (run everything); tokens may be full ids
    or prefixes, resolved against both the per-file and the project
    registries so ``--select SIM4`` works in either mode.
    """
    from repro.lint.project_rules import PROJECT_RULES

    if select is None and ignore is None:
        return None
    known = frozenset(RULES) | frozenset(PROJECT_RULES)
    effective = (
        _expand_rule_tokens(select, known) if select is not None else set(known)
    )
    if ignore is not None:
        effective -= _expand_rule_tokens(ignore, known)
    return frozenset(effective)


def _select_rules(effective: Optional["frozenset[str]"]) -> List[Rule]:
    if effective is None:
        return [RULES[rule_id] for rule_id in sorted(RULES)]
    return [RULES[rule_id] for rule_id in sorted(effective) if rule_id in RULES]


def _known_pragma_names() -> "frozenset[str]":
    """Every spelling a ``simlint: allow-<...>`` pragma may use: rule
    names plus lowercase rule ids, for both per-file and project rules."""
    from repro.lint.project_rules import PROJECT_RULES

    names = set()
    for registry in (RULES, PROJECT_RULES):
        for rule_id, rule in registry.items():
            names.add(rule.name)
            names.add(rule_id.lower())
    return frozenset(names)


def lint_source(
    source: str,
    path: str = "<string>",
    *,
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> List[Violation]:
    """Lint one module given as text.  ``path`` is used for reporting and
    for path-scoped rules (e.g. SIM006).  ``select``/``ignore`` take rule
    ids or prefixes (``SIM4``); the effective set is
    ``(select or all) - ignore``."""
    posix_path = str(path).replace("\\", "/")
    try:
        tree = ast.parse(source, filename=posix_path)
    except SyntaxError as exc:
        return [
            Violation(
                path=posix_path,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                rule_id=META_RULE_ID,
                rule_name="parse-error",
                message=f"file does not parse: {exc.msg}",
            )
        ]

    effective = resolve_rule_filter(select, ignore)
    pragmas = parse_pragmas(source)
    allowed = allowed_by_line(pragmas)
    rule_names = _known_pragma_names()

    violations: List[Violation] = []
    # A pragma naming an unknown rule would silently fail to suppress
    # anything -- surface the typo instead of honouring it.
    for pragma in pragmas:
        if not pragma.valid or pragma.name not in rule_names:
            detail = pragma.name or "<empty>"
            violations.append(
                Violation(
                    path=posix_path,
                    line=pragma.line,
                    col=0,
                    rule_id=META_RULE_ID,
                    rule_name="unknown-pragma",
                    message=(
                        f"pragma directive {detail!r} does not name a known "
                        f"rule (expected allow-<rule>, rules: "
                        f"{', '.join(sorted(rule_names))})"
                    ),
                )
            )

    for rule in _select_rules(effective):
        if not rule.applies_to(posix_path):
            continue
        for node, message in rule.check(tree, posix_path):
            line = getattr(node, "lineno", 1)
            allowed_here = allowed.get(line, ())
            if rule.name in allowed_here or rule.id.lower() in allowed_here:
                continue
            violations.append(
                Violation(
                    path=posix_path,
                    line=line,
                    col=getattr(node, "col_offset", 0),
                    rule_id=rule.id,
                    rule_name=rule.name,
                    message=message,
                )
            )
    return sorted(violations)


def lint_file(
    path: PathLike,
    *,
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> List[Violation]:
    """Lint one file on disk."""
    file_path = Path(path)
    source = file_path.read_text(encoding="utf-8")
    return lint_source(source, str(file_path), select=select, ignore=ignore)


def _is_skipped(candidate: Path, root: Path) -> bool:
    """Whether ``candidate`` lies under a skipped or hidden directory.

    Only the path *below* ``root`` is inspected, so linting a tree that
    itself lives under a hidden directory (``~/.local/checkout/src``)
    still works.
    """
    relative_parts = candidate.relative_to(root).parts[:-1]
    return any(
        part in SKIP_DIRS or part.startswith(".") for part in relative_parts
    )


def iter_python_files(paths: Sequence[PathLike]) -> Iterator[Path]:
    """Expand files/directories into the .py files to lint.

    Files under ``__pycache__``, VCS/tool state, or any hidden directory
    are skipped, and each directory's files are yielded in sorted order,
    so lint output and exit codes are deterministic across platforms and
    filesystems.
    """
    for entry in paths:
        entry_path = Path(entry)
        if entry_path.is_dir():
            for candidate in sorted(entry_path.rglob("*.py")):
                if not _is_skipped(candidate, entry_path):
                    yield candidate
        elif entry_path.suffix == ".py" or entry_path.is_file():
            yield entry_path
        else:
            raise FileNotFoundError(f"no such file or directory: {entry_path}")


def lint_paths(
    paths: Sequence[PathLike],
    *,
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> List[Violation]:
    """Lint every python file under ``paths`` (files or directories)."""
    violations: List[Violation] = []
    for file_path in iter_python_files(paths):
        violations.extend(lint_file(file_path, select=select, ignore=ignore))
    return sorted(violations)


def lint_project(
    paths: Sequence[PathLike],
    *,
    cache_dir: Optional[PathLike] = None,
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
    profile: Optional[PathLike] = None,
    memprofile: Optional[PathLike] = None,
) -> Tuple[List[Violation], Dict[str, Any]]:
    """Whole-program lint: per-file SIM0xx rules *plus* the
    interprocedural SIM1xx rules over the project model.

    ``select``/``ignore`` take rule ids or prefixes (``SIM4``); the
    effective set is ``(select or all) - ignore`` and gates both the
    per-file and the project rules (and therefore text/JSON/SARIF
    output and the exit code).

    Returns ``(violations, stats)`` where ``stats`` reports how the
    incremental cache behaved: ``files`` scanned, cache ``hits``, cache
    ``misses`` (== files parsed this run).  With ``cache_dir`` set, a
    warm run over an unchanged tree re-parses zero files.

    ``profile`` names a cProfile/pstats dump; when given, SIM3xx
    findings are ranked by measured cumulative time (hot/warm/cold
    buckets on :attr:`Violation.profile`) and ``stats`` gains a
    ``"profile"`` block.  ``memprofile`` names a ``repro-qos profile
    mem`` tracemalloc dump and ranks the SIM5xx family by measured
    bytes the same way (a ``"memprofile"`` stats block); the families
    are disjoint so both rankings may run together.  Raises
    :class:`FileNotFoundError` / :class:`ValueError` for a missing /
    unreadable dump.
    """
    from repro.lint.cache import SummaryCache, hash_source, rules_digest
    from repro.lint.callgraph import CallGraph
    from repro.lint.hotpath import (
        MemProfileIndex,
        ProfileIndex,
        annotate_memprofile,
        annotate_profile,
    )
    from repro.lint.project_rules import PROJECT_RULES
    from repro.lint.projectmodel import ModuleSummary, ProjectModel, extract_summary

    selected = resolve_rule_filter(select, ignore)
    # Load before the scan so a bad --profile/--memprofile fails fast.
    index: Optional[ProfileIndex] = None
    profile_digest = ""
    if profile is not None:
        index = ProfileIndex.load(profile)
        profile_digest = hashlib.sha256(
            Path(profile).read_bytes()
        ).hexdigest()[:16]
    mem_index: Optional[MemProfileIndex] = None
    if memprofile is not None:
        mem_index = MemProfileIndex.load(memprofile)
        mem_digest = hashlib.sha256(
            Path(memprofile).read_bytes()
        ).hexdigest()[:16]
        profile_digest = (
            profile_digest + "\x00" + mem_digest if profile_digest else mem_digest
        )
    cache = SummaryCache(cache_dir)
    model = ProjectModel()
    live_keys = set()
    files = 0
    # Cached entries embed the producing rule set's findings; folding
    # the registry digest into every key makes "new rule registered"
    # indistinguishable from "file edited" -- a miss, then a re-lint.
    # The profile content digest rides along for the same reason: the
    # hot/warm/cold ranking a future cached-findings layer might embed
    # depends on the dump's bytes, so a different dump must miss.
    ruleset = rules_digest()
    if profile_digest:
        ruleset = ruleset + "\x00" + profile_digest
    for file_path in iter_python_files(paths):
        files += 1
        source = file_path.read_text(encoding="utf-8")
        posix_path = str(file_path).replace("\\", "/")
        key = hash_source(posix_path + "\x00" + ruleset + "\x00" + source)
        live_keys.add(key)
        cached = cache.get(key)
        if cached is not None:
            summary = ModuleSummary.from_dict(cached)
        else:
            file_violations = lint_source(source, posix_path)
            try:
                summary = extract_summary(source, posix_path)
            except SyntaxError:
                # lint_source already reported SIM000 parse-error; the
                # project rules see an empty module.
                summary = ModuleSummary(
                    path=posix_path, module=Path(posix_path).stem
                )
            summary.file_violations = [v.to_dict() for v in file_violations]
            cache.put(key, summary.to_dict())
        model.add(summary)
    cache.prune(live_keys)
    cache.save()

    violations: List[Violation] = []
    for summary in model.summaries():
        for payload in summary.file_violations:
            violation = Violation.from_dict(payload)
            if selected is None or violation.rule_id in selected:
                violations.append(violation)

    graph = CallGraph(model)
    for rule_id in sorted(PROJECT_RULES):
        if selected is not None and rule_id not in selected:
            continue
        rule = PROJECT_RULES[rule_id]
        for violation in rule.check(model, graph):
            origin = model.by_path.get(violation.path)
            if origin is not None:
                allowed_here = origin.allowed_on_line(violation.line)
                if (
                    rule.name in allowed_here
                    or rule.id.lower() in allowed_here
                ):
                    continue
            violations.append(violation)

    stats: Dict[str, Any] = {
        "files": files,
        "hits": cache.hits,
        "misses": cache.misses,
    }
    ordered = sorted(violations)
    if index is not None:
        ordered, stats["profile"] = annotate_profile(ordered, model, index)
    if mem_index is not None:
        ordered, stats["memprofile"] = annotate_memprofile(
            ordered, model, mem_index
        )
    return ordered, stats
