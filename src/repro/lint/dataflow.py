"""Lightweight unit-dimension dataflow over naming conventions.

The library's correctness rests on two base quantities -- integer
**nanoseconds** for time and **bytes** for data (`repro.sim.units`) --
and on the naming discipline that marks them: ``*_ns``, ``*_us``,
``*_ms``, ``*_bytes``, ``*_bytes_per_ns``.  This module turns those
conventions into a small dimension domain and an intra-procedural
inference that:

- classifies identifiers by suffix (``deadline_ns`` -> ``ns``,
  ``size_bytes`` -> ``bytes``, ``rate_bytes_per_ns`` -> ``rate``);
- recognises the sanctioned constructions from ``repro.sim.units``
  (``us(20)``/``ms(10)``/``s(1)`` produce ``ns``; ``20 * US`` converts
  to ``ns``; ``8 * KB`` to ``bytes``);
- applies a tiny dimensional algebra (``bytes / rate -> ns``,
  ``ns * rate -> bytes``, division by a scalar preserves dimension);
- flags additive mixing of incompatible dimensions (``x_bytes +
  now_ns``) as it walks.

The per-function walk also records every call site (with the inferred
dimension of each argument -- the raw material for the interprocedural
SIM101 check and for the call graph), every iteration over an unordered
``set`` (SIM102), and every I/O or logging call (SIM104).  For the
parallel-safety pass (SIM201-SIM205, :mod:`repro.lint.parallel`) it
additionally records every **pool submission** (a callable handed to a
``*pool*``/``*executor*`` receiver's ``submit``/``map``, or the
``worker=`` hook of ``SweepExecutor``), every **module-global mutation**
(subscript assignment, mutating method call, ``global``-rebind),
**process-varying calls** (``hash()``, ``id()``, ``os.getpid()``,
wall-clock reads) and the arguments they taint, **file writes** (and
whether the function pairs them with an atomic ``replace``/``rename``),
and ``os.environ`` mutations.  Everything it produces is
JSON-serialisable so the project cache can replay it without re-parsing
the file.

For the hot-path performance pass (SIM301-SIM306,
:mod:`repro.lint.hotpath`) each ``for``/``while`` body additionally gets
one dedicated sub-walk (:class:`_LoopBodyCollector`) recording
**allocations per iteration** (literals, comprehensions, closures,
constructor calls), **repeated attribute-chain loads** with the spans a
hoist fix needs, **repeated global/builtin lookups**, and
**try/except blocks** used inside the loop; eager **string building**
(f-strings, ``%``, ``.format``, ``repr``) is recorded during the normal
walk, skipping ``raise`` statements exactly like SIM104 does.

For the temporal-soundness pass (SIM401-SIM406,
:mod:`repro.lint.temporal`) the walk additionally types every time-sink
expression on the exact-int-ns / float-derived / unknown lattice and
records **schedule calls** (``<engine>.at``/``.after`` with the time
argument's type and its ``>= now`` proof state), **float comparisons**
on ns/rate quantities, **deadline-keyed orderings** without a tie-break
(``sorted``/``.sort``/``heappush``), **loop-variable captures** in
closures handed to the scheduler, and **true divisions on exact-ns
operands** with the operator span the ``/`` -> ``//`` fix needs.
"""

from __future__ import annotations

import ast
import builtins
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Set, Tuple, Union

from repro.lint.temporal import (
    ANCHORED,
    EXACT,
    FLOAT,
    SCHEDULE_SINKS,
    SUBTRACTION,
    UNKNOWN,
    TimeInfo,
    TimeTyper,
    join_time,
    now_proof,
)

__all__ = [
    "FunctionAnalyzer",
    "FunctionFact",
    "classify_name",
    "dims_compatible",
]

#: A dimension is one of: "ns", "us", "ms", "s", "bytes", "rate",
#: "scalar" -- or ``None`` when inference cannot tell (never flagged).
Dim = str

TIME_DIMS = frozenset({"ns", "us", "ms", "s"})

#: Suffix -> dimension, longest suffix first so ``_bytes_per_ns`` is not
#: misread as ``_ns``.
_SUFFIX_DIMS: Tuple[Tuple[str, Dim], ...] = (
    ("_bytes_per_ns", "rate"),
    ("_bytes", "bytes"),
    ("_ns", "ns"),
    ("_us", "us"),
    ("_ms", "ms"),
)

#: Whole identifiers with a known dimension (parameter names in
#: ``sim/units.py`` and ubiquitous locals).
_EXACT_DIMS: Mapping[str, Dim] = {
    "bytes_per_ns": "rate",
    "size_bytes": "bytes",
    "now": "ns",
    "deadline": "ns",
}

#: Well-known origins in ``repro.sim.units``: conversion constants...
_TIME_CONSTS = frozenset({"repro.sim.units.US", "repro.sim.units.MS", "repro.sim.units.S"})
_DATA_CONSTS = frozenset({"repro.sim.units.KB", "repro.sim.units.MB"})
#: ...and the sanctioned constructors, which all return integer ns.
_NS_CONSTRUCTORS = frozenset({"repro.sim.units.us", "repro.sim.units.ms", "repro.sim.units.s"})

#: Calls preserving the dimension of their (first) argument.
_DIM_PRESERVING_CALLS = frozenset({"round", "int", "float", "abs", "min", "max"})

#: Receiver attribute names that read as logging emitters.
_LOG_METHODS = frozenset(
    {"debug", "info", "warning", "warn", "error", "critical", "exception", "log"}
)
_LOG_RECEIVERS = frozenset({"log", "logger", "logging"})

#: Method names that hand a callable to a process/thread pool.  Any
#: ``.submit(...)``/``.map(...)`` counts only when the receiver *names*
#: a pool (``pool.submit``, ``self._executor.map``): this project's own
#: ``Fabric.submit`` is a packet-injection method, so attribute name
#: alone would drown the signal in false positives.
_POOL_SUBMIT_ATTRS = frozenset({"submit", "apply_async"})
_POOL_MAP_ATTRS = frozenset(
    {"map", "imap", "imap_unordered", "starmap", "map_async", "starmap_async"}
)
_POOL_RECEIVER_HINTS = ("pool", "executor")

#: Calls whose value differs between processes (or runs): the SIM203
#: taint sources.  Keyed by the dotted name as written *or* as resolved
#: through the import bindings.
_VARYING_FUNCS: Mapping[str, str] = {
    "hash": "hash() (salted per process via PYTHONHASHSEED)",
    "id": "id() (an address, unique per process)",
    "os.getpid": "os.getpid()",
    "os.urandom": "os.urandom()",
    "time.time": "time.time()",
    "time.time_ns": "time.time_ns()",
    "time.perf_counter": "time.perf_counter()",
    "time.perf_counter_ns": "time.perf_counter_ns()",
    "time.monotonic": "time.monotonic()",
    "time.monotonic_ns": "time.monotonic_ns()",
    "uuid.uuid4": "uuid.uuid4()",
}

#: Method names that mutate their receiver in place (dict/list/set
#: surface plus the get-or-create verbs of registry-style objects such
#: as ``MetricsRegistry``).
_MUTATING_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "add",
        "update",
        "setdefault",
        "pop",
        "popitem",
        "remove",
        "discard",
        "clear",
        "counter",
        "gauge",
        "histogram",
        "get_or_create",
        "register",
    }
)

#: ``os.environ`` methods that write the process environment.
_ENVIRON_WRITE_METHODS = frozenset({"update", "setdefault", "pop", "popitem", "clear"})

#: Rename calls that make a preceding temp-file write atomic.
_ATOMIC_RENAME_ATTRS = frozenset({"replace", "rename", "renames"})

#: Container-method effect classes for the SIM5xx scale-soundness
#: facts: which methods make long-lived ``self.<attr>`` state grow,
#: shrink, or pay an O(n) scan.
_GROW_METHODS = frozenset(
    {"append", "appendleft", "add", "extend", "insert", "setdefault", "update"}
)
_SHRINK_METHODS = frozenset(
    {"pop", "popitem", "popleft", "remove", "discard", "clear"}
)
#: Linear list methods SIM502 treats like membership tests.
_LINEAR_METHODS = frozenset({"index", "count"})
#: ``heapq`` module functions, matched on the terminal name so both
#: ``heapq.heappush(...)`` and a bare imported ``heappush(...)`` count.
_HEAP_GROW_FUNCS = frozenset({"heappush"})
_HEAP_SHRINK_FUNCS = frozenset({"heappop", "heappushpop", "heapreplace"})
#: Builtin calls that rebuild (full-copy/scan) a container per call.
_REBUILD_CALLS = frozenset({"sorted", "list", "set", "dict", "tuple", "frozenset"})
#: Paired resource APIs (SIM503): methods that hand out a pooled object
#: the caller must give back, and the give-back verbs.
_POOL_ACQUIRE_ATTRS = frozenset(
    {"mint", "acquire", "at_cancellable", "after_cancellable"}
)
_POOL_RELEASE_ATTRS = frozenset({"recycle", "release", "cancel"})

#: Constructor names whose every call allocates a fresh container
#: (SIM301).  Matched on the terminal name so both ``deque(...)`` and
#: ``collections.deque(...)`` count.
_CONTAINER_CONSTRUCTORS = frozenset(
    {
        "dict",
        "list",
        "set",
        "frozenset",
        "tuple",
        "bytearray",
        "deque",
        "defaultdict",
        "OrderedDict",
        "Counter",
    }
)


def classify_name(identifier: str) -> Optional[Dim]:
    """Dimension implied by an identifier's naming convention, if any."""
    lowered = identifier.lower()
    exact = _EXACT_DIMS.get(lowered)
    if exact is not None:
        return exact
    for suffix, dim in _SUFFIX_DIMS:
        if lowered.endswith(suffix):
            return dim
    return None


def dims_compatible(a: Optional[Dim], b: Optional[Dim]) -> bool:
    """Whether two inferred dimensions may meet (additively or as an
    argument/parameter pair) without complaint.  Unknown (``None``) and
    ``scalar`` are compatible with everything: the checker only fires
    when *both* sides are confidently dimensioned and disagree."""
    if a is None or b is None:
        return True
    if a == "scalar" or b == "scalar":
        return True
    return a == b


def dotted_name(node: ast.AST) -> str:
    """``a.b.c`` for a Name/Attribute chain, '' when not a plain chain."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


@dataclass
class CallFact:
    """One call site: who is (maybe) called, with what dimensions."""

    raw: str  # dotted callee as written ("self.engine.after"), "" if opaque
    resolved: Optional[str]  # absolute dotted origin, when bindings resolve it
    attr: str  # terminal attribute/function name ("after")
    line: int
    col: int
    arg_dims: List[Optional[Dim]] = field(default_factory=list)
    kw_dims: Dict[str, Optional[Dim]] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "raw": self.raw,
            "resolved": self.resolved,
            "attr": self.attr,
            "line": self.line,
            "col": self.col,
            "arg_dims": self.arg_dims,
            "kw_dims": self.kw_dims,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "CallFact":
        return cls(
            raw=payload["raw"],
            resolved=payload["resolved"],
            attr=payload["attr"],
            line=payload["line"],
            col=payload["col"],
            arg_dims=list(payload["arg_dims"]),
            kw_dims=dict(payload["kw_dims"]),
        )


@dataclass
class FunctionFact:
    """Everything the project rules need to know about one function."""

    qualname: str  # "f", "Class.method", or "<module>"
    line: int
    params: List[str] = field(default_factory=list)
    is_method: bool = False
    calls: List[CallFact] = field(default_factory=list)
    #: (line, col, detail) for each iteration over an unordered set.
    set_iters: List[Tuple[int, int, str]] = field(default_factory=list)
    #: (line, col, detail) for each I/O / logging call.
    io_calls: List[Tuple[int, int, str]] = field(default_factory=list)
    #: (line, col, detail) for additive mixing of incompatible dims.
    mixes: List[Tuple[int, int, str]] = field(default_factory=list)
    #: One record per pool submission site (SIM201 + reachability roots):
    #: ``{"line", "col", "pool", "kind", "callee", "origin", "lambda"}``.
    submissions: List[Dict[str, Any]] = field(default_factory=list)
    #: (line, col, origin, kind, detail) per module-global mutation,
    #: ``kind`` in {"rebind", "subscript", "method"} (SIM202).
    global_mutations: List[Tuple[int, int, str, str, str]] = field(
        default_factory=list
    )
    #: One record per process-varying call site (SIM203): ``{"line",
    #: "col", "end_line", "end_col", "func", "arg_src"}``.
    varying_calls: List[Dict[str, Any]] = field(default_factory=list)
    #: One record per call argument tainted by a process-varying value
    #: (SIM203): ``{"line", "col", "callee", "origin", "hits"}``.
    varying_args: List[Dict[str, Any]] = field(default_factory=list)
    #: (line, col, detail) per file-write call (SIM204).
    file_writes: List[Tuple[int, int, str]] = field(default_factory=list)
    #: Count of atomic ``replace``/``rename`` calls in this function --
    #: a write paired with one follows the temp-then-rename idiom.
    atomic_renames: int = 0
    #: (line, col, detail) per ``os.environ`` mutation (SIM205).
    env_writes: List[Tuple[int, int, str]] = field(default_factory=list)
    #: One record per allocation site inside a loop body (SIM301):
    #: ``{"line", "col", "loop_line", "what", "detail", "callee",
    #: "origin"}`` -- ``what`` in {"literal", "comprehension", "closure",
    #: "container", "call"}; only ``"call"`` records need the rule to
    #: confirm the origin names a class.
    loop_allocs: List[Dict[str, Any]] = field(default_factory=list)
    #: One record per attribute chain read >= 2x per loop iteration with
    #: no intervening write (SIM303): ``{"loop_line", "loop_col",
    #: "chain", "count", "sites", "alias", "alias_ok"}`` -- ``sites`` is
    #: ``[[line, col, end_line, end_col], ...]`` so the hoist fix can
    #: rewrite every occurrence.
    loop_attr_repeats: List[Dict[str, Any]] = field(default_factory=list)
    #: One record per global/builtin name looked up >= 2x per loop
    #: iteration (SIM304): same shape as ``loop_attr_repeats`` plus
    #: ``"kind"`` in {"builtin", "global"}.
    loop_global_lookups: List[Dict[str, Any]] = field(default_factory=list)
    #: One record per ``try``/``except`` inside a loop body (SIM305):
    #: ``{"line", "col", "loop_line", "types", "reraises_only"}``.
    loop_try_excepts: List[Dict[str, Any]] = field(default_factory=list)
    #: (line, col, detail) per eager string construction outside a
    #: ``raise`` (SIM306): f-strings, ``%`` on a string literal,
    #: ``"...".format(...)``, ``repr(...)``.
    str_builds: List[Tuple[int, int, str]] = field(default_factory=list)
    #: One record per ``<engine>.at``/``.after`` call (SIM401/SIM402,
    #: SIM307): ``{"line", "col", "attr", "receiver", "ttype",
    #: "quantity", "ns_divs", "arg_src", "in_loop", "fresh_args",
    #: "proof"}`` -- ``ttype`` on the temporal lattice, ``proof`` in
    #: {"anchored", "subtraction", "unknown"}, ``in_loop`` true when the
    #: call sits inside a loop body, ``fresh_args`` one
    #: ``{"line", "col", "detail", "src"}`` per container display among
    #: the callback arguments.
    schedule_calls: List[Dict[str, Any]] = field(default_factory=list)
    #: One record per float-derived comparison on an ns/rate quantity
    #: (SIM403): ``{"line", "col", "quantity", "ops", "detail"}``.
    float_compares: List[Dict[str, Any]] = field(default_factory=list)
    #: One record per float-derived value assigned to an integer-time
    #: target (SIM402): ``{"line", "col", "target", "detail"}``.
    float_time_assigns: List[Dict[str, Any]] = field(default_factory=list)
    #: One record per deadline-keyed ordering with no tie-break
    #: (SIM404): ``{"line", "col", "kind", "key", "detail", "fix"}`` --
    #: ``kind`` in {"sorted", ".sort", "heappush"}; ``fix`` carries the
    #: span edit appending the stable ``uid`` key, or ``None``.
    sort_keys: List[Dict[str, Any]] = field(default_factory=list)
    #: One record per loop-variable capture in a closure handed to the
    #: scheduler (SIM405): ``{"line", "col", "attr", "kind", "callee",
    #: "vars", "fix"}`` -- ``fix`` rebinds the variables as lambda
    #: default arguments, or ``None`` for local ``def`` closures.
    loop_captures: List[Dict[str, Any]] = field(default_factory=list)
    #: One record per true-division on exact-ns operands flowing to a
    #: time sink (SIM406): ``{"line", "col", "sink", "left_src",
    #: "op_span"}`` -- ``op_span`` is the 1-char ``/`` span the
    #: ``//`` fix replaces (``None`` when the source is unavailable).
    ns_true_divs: List[Dict[str, Any]] = field(default_factory=list)
    #: One record per operation on a ``self.<attr>`` container
    #: (SIM501/502/504/505), collected for methods only: ``{"attr",
    #: "op", "method", "line", "col", "in_loop", "key_src",
    #: "func_span", "recv_src"}`` -- ``op`` in {"grow", "shrink",
    #: "member", "rebuild", "rebind", "iterate", "read", "escape",
    #: "other"}; ``key_src`` is the key expression source for keyed
    #: grows; ``func_span``/``recv_src`` carry what the list->set
    #: rewrite needs for method-call sites.
    container_ops: List[Dict[str, Any]] = field(default_factory=list)
    #: One record per paired-API acquire bound to a local (SIM503):
    #: ``{"var", "line", "col", "attr", "api", "escapes", "released",
    #: "release_lines"}`` -- ``released`` in {"always", "conditional",
    #: "never"}, judged per control-flow path by branch depth.
    pool_flows: List[Dict[str, Any]] = field(default_factory=list)
    #: One record per scheduled callback capturing a container-valued
    #: local by reference (SIM506): ``{"line", "col", "attr", "kind",
    #: "callee", "vars", "fix"}`` -- ``fix`` rebinds the containers as
    #: lambda default arguments, or ``None``.
    closure_retentions: List[Dict[str, Any]] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "qualname": self.qualname,
            "line": self.line,
            "params": self.params,
            "is_method": self.is_method,
            "calls": [call.to_dict() for call in self.calls],
            "set_iters": [list(item) for item in self.set_iters],
            "io_calls": [list(item) for item in self.io_calls],
            "mixes": [list(item) for item in self.mixes],
            "submissions": self.submissions,
            "global_mutations": [list(item) for item in self.global_mutations],
            "varying_calls": self.varying_calls,
            "varying_args": self.varying_args,
            "file_writes": [list(item) for item in self.file_writes],
            "atomic_renames": self.atomic_renames,
            "env_writes": [list(item) for item in self.env_writes],
            "loop_allocs": self.loop_allocs,
            "loop_attr_repeats": self.loop_attr_repeats,
            "loop_global_lookups": self.loop_global_lookups,
            "loop_try_excepts": self.loop_try_excepts,
            "str_builds": [list(item) for item in self.str_builds],
            "schedule_calls": self.schedule_calls,
            "float_compares": self.float_compares,
            "float_time_assigns": self.float_time_assigns,
            "sort_keys": self.sort_keys,
            "loop_captures": self.loop_captures,
            "ns_true_divs": self.ns_true_divs,
            "container_ops": self.container_ops,
            "pool_flows": self.pool_flows,
            "closure_retentions": self.closure_retentions,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "FunctionFact":
        return cls(
            qualname=payload["qualname"],
            line=payload["line"],
            params=list(payload["params"]),
            is_method=payload["is_method"],
            calls=[CallFact.from_dict(c) for c in payload["calls"]],
            set_iters=[(i[0], i[1], i[2]) for i in payload["set_iters"]],
            io_calls=[(i[0], i[1], i[2]) for i in payload["io_calls"]],
            mixes=[(i[0], i[1], i[2]) for i in payload["mixes"]],
            submissions=list(payload.get("submissions", ())),
            global_mutations=[
                (i[0], i[1], i[2], i[3], i[4])
                for i in payload.get("global_mutations", ())
            ],
            varying_calls=list(payload.get("varying_calls", ())),
            varying_args=list(payload.get("varying_args", ())),
            file_writes=[
                (i[0], i[1], i[2]) for i in payload.get("file_writes", ())
            ],
            atomic_renames=payload.get("atomic_renames", 0),
            env_writes=[
                (i[0], i[1], i[2]) for i in payload.get("env_writes", ())
            ],
            loop_allocs=list(payload.get("loop_allocs", ())),
            loop_attr_repeats=list(payload.get("loop_attr_repeats", ())),
            loop_global_lookups=list(payload.get("loop_global_lookups", ())),
            loop_try_excepts=list(payload.get("loop_try_excepts", ())),
            str_builds=[
                (i[0], i[1], i[2]) for i in payload.get("str_builds", ())
            ],
            schedule_calls=list(payload.get("schedule_calls", ())),
            float_compares=list(payload.get("float_compares", ())),
            float_time_assigns=list(payload.get("float_time_assigns", ())),
            sort_keys=list(payload.get("sort_keys", ())),
            loop_captures=list(payload.get("loop_captures", ())),
            ns_true_divs=list(payload.get("ns_true_divs", ())),
            container_ops=list(payload.get("container_ops", ())),
            pool_flows=list(payload.get("pool_flows", ())),
            closure_retentions=list(payload.get("closure_retentions", ())),
        )


class FunctionAnalyzer:
    """One pass over a function (or module-level) body.

    ``bindings`` maps local names to absolute dotted origins (built from
    the module's imports by the project model); ``module_name`` anchors
    module-local symbols so ``US`` inside ``repro.sim.units`` itself
    resolves to ``repro.sim.units.US``.
    """

    def __init__(
        self,
        bindings: Mapping[str, str],
        module_name: str,
        module_symbols: Iterable[str],
        class_name: Optional[str] = None,
        source: Optional[str] = None,
    ) -> None:
        self.bindings = bindings
        self.module_name = module_name
        self.module_symbols = frozenset(module_symbols)
        self.class_name = class_name
        #: Full module source, for :func:`ast.get_source_segment` (the
        #: fix engine needs verbatim expression text).  Optional so
        #: callers replaying from cache need not keep sources around.
        self.source = source
        self.env: Dict[str, Optional[Dim]] = {}
        self.set_vars: Dict[str, bool] = {}
        self.fact: Optional[FunctionFact] = None
        self._in_raise = 0
        #: Names bound locally anywhere in the analyzed body (assignment
        #: makes a name local for the whole scope, so this is pre-scanned
        #: in :meth:`run` rather than accumulated during the walk).
        self.local_names: Set[str] = set()
        #: Names of functions *defined* inside the analyzed body.
        self.local_defs: Set[str] = set()
        #: Locals assigned from a process-varying value (SIM203 taint).
        self.varying_vars: Set[str] = set()
        #: Names the body re-declares with ``global``.
        self.declared_globals: Set[str] = set()
        #: Temporal lattice types of locals (name -> TimeInfo), kept in
        #: sync through assignments; the typer falls back to the SIM101
        #: naming convention for names it has never seen assigned.
        self.time_env: Dict[str, TimeInfo] = {}
        #: SIM401 proof states of locals (name -> anchored/subtraction).
        self.time_proofs: Dict[str, str] = {}
        self.typer = TimeTyper(classify_name, self.resolve_origin, self.time_env)
        #: Target names of the ``for`` loops enclosing the current
        #: statement (SIM405 late-binding capture detection).
        self._loop_stack: List[Set[str]] = []
        #: AST nodes of functions defined in this body, so a local
        #: ``def`` handed to the scheduler can be checked for captures.
        self._local_def_nodes: Dict[str, ast.AST] = {}
        #: Locals currently bound to a container display/constructor
        #: (SIM506 retention detection); membership tracks the *latest*
        #: binding, so a rebind to a scalar clears the mark.
        self.container_locals: Set[str] = set()

    # -- origin resolution -------------------------------------------------

    def resolve_origin(self, node: ast.AST) -> Optional[str]:
        """Absolute dotted origin of a Name/Attribute chain, if known."""
        dotted = dotted_name(node)
        if not dotted:
            return None
        head, _, rest = dotted.partition(".")
        if head == "self":
            if self.class_name is not None and rest and "." not in rest:
                return f"{self.module_name}.{self.class_name}.{rest}"
            return None
        origin = self.bindings.get(head)
        if origin is None:
            if head in self.module_symbols:
                origin = f"{self.module_name}.{head}"
            else:
                return None
        return f"{origin}.{rest}" if rest else origin

    def _const_kind(self, node: ast.AST) -> Optional[str]:
        """'time' / 'data' when ``node`` is a units conversion constant."""
        origin = self.resolve_origin(node)
        if origin in _TIME_CONSTS:
            return "time"
        if origin in _DATA_CONSTS:
            return "data"
        return None

    # -- dimension inference -----------------------------------------------

    def infer(self, node: ast.expr) -> Optional[Dim]:
        """Infer the dimension of an expression, recording call facts,
        mixing findings, and I/O calls along the way."""
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bool):
                return None
            if isinstance(node.value, (int, float)):
                return "scalar"
            return None
        if isinstance(node, ast.Name):
            if node.id in self.env:
                return self.env[node.id]
            const = self._const_kind(node)
            if const is not None:
                return "ns" if const == "time" else "bytes"
            return classify_name(node.id)
        if isinstance(node, ast.Attribute):
            self.infer(node.value)
            const = self._const_kind(node)
            if const is not None:
                return "ns" if const == "time" else "bytes"
            return classify_name(node.attr)
        if isinstance(node, ast.BinOp):
            return self._infer_binop(node)
        if isinstance(node, ast.UnaryOp):
            return self.infer(node.operand)
        if isinstance(node, ast.Call):
            return self._infer_call(node)
        if isinstance(node, ast.IfExp):
            self.infer(node.test)
            a = self.infer(node.body)
            b = self.infer(node.orelse)
            return a if a == b else None
        if isinstance(node, ast.Compare):
            self.infer(node.left)
            for comparator in node.comparators:
                self.infer(comparator)
            self._note_float_compare(node)
            return None
        if isinstance(node, ast.BoolOp):
            for value in node.values:
                self.infer(value)
            return None
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            for element in node.elts:
                self.infer(element)
            return None
        if isinstance(node, ast.Dict):
            for key in node.keys:
                if key is not None:
                    self.infer(key)
            for value in node.values:
                self.infer(value)
            return None
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            self._visit_comprehension(node.generators)
            self.infer(node.elt)
            return None
        if isinstance(node, ast.DictComp):
            self._visit_comprehension(node.generators)
            self.infer(node.key)
            self.infer(node.value)
            return None
        if isinstance(node, ast.JoinedStr):
            interpolates = False
            for value in node.values:
                if isinstance(value, ast.FormattedValue):
                    interpolates = True
                    self.infer(value.value)
            if interpolates and not self._in_raise and self.fact is not None:
                self.fact.str_builds.append(
                    (node.lineno, node.col_offset, "f-string interpolation")
                )
            return None
        if isinstance(node, (ast.Subscript, ast.Starred)):
            self.infer(node.value)
            return None
        return None

    def _infer_binop(self, node: ast.BinOp) -> Optional[Dim]:
        left_dim = self.infer(node.left)
        right_dim = self.infer(node.right)
        if isinstance(node.op, ast.Mult):
            # `x * US` / `KB * x` is the sanctioned conversion idiom:
            # whatever the left operand was scaled in, the product is in
            # base units (ns / bytes).
            for operand in (node.left, node.right):
                const = self._const_kind(operand)
                if const is not None:
                    return "ns" if const == "time" else "bytes"
            if left_dim == "scalar":
                return right_dim
            if right_dim == "scalar":
                return left_dim
            if {left_dim, right_dim} == {"ns", "rate"}:
                return "bytes"
            return None
        if isinstance(node.op, (ast.Div, ast.FloorDiv)):
            if right_dim == "scalar":
                return left_dim
            if left_dim == "bytes" and right_dim == "rate":
                return "ns"
            if left_dim == "bytes" and right_dim == "ns":
                return "rate"
            if left_dim is not None and left_dim == right_dim:
                return "scalar"
            return None
        if isinstance(node.op, (ast.Add, ast.Sub)):
            if not dims_compatible(left_dim, right_dim):
                self._record_mix(node, left_dim, right_dim)
                return None
            if left_dim == "scalar":
                return right_dim
            if right_dim == "scalar":
                return left_dim
            return left_dim if left_dim == right_dim else None
        if isinstance(node.op, ast.Mod):
            if (
                isinstance(node.left, ast.Constant)
                and isinstance(node.left.value, str)
                and not self._in_raise
                and self.fact is not None
            ):
                self.fact.str_builds.append(
                    (node.lineno, node.col_offset, "`%` string formatting")
                )
            return left_dim
        return None

    def _record_mix(self, node: ast.BinOp, left: Optional[Dim], right: Optional[Dim]) -> None:
        if self.fact is None:
            return
        op = "+" if isinstance(node.op, ast.Add) else "-"
        self.fact.mixes.append(
            (
                node.lineno,
                node.col_offset,
                f"arithmetic mixes `{left}` with `{right}` ({left} {op} {right})",
            )
        )

    def _infer_call(self, node: ast.Call) -> Optional[Dim]:
        arg_dims: List[Optional[Dim]] = []
        for arg in node.args:
            if isinstance(arg, ast.Starred):
                self.infer(arg.value)
                arg_dims.append(None)
            else:
                arg_dims.append(self.infer(arg))
        kw_dims: Dict[str, Optional[Dim]] = {}
        for keyword in node.keywords:
            value_dim = self.infer(keyword.value)
            if keyword.arg is not None:
                kw_dims[keyword.arg] = value_dim

        raw = dotted_name(node.func)
        if not raw and isinstance(node.func, (ast.Attribute, ast.Subscript, ast.Call)):
            self.infer(node.func)  # still record nested facts
        resolved = self.resolve_origin(node.func)
        attr = raw.rsplit(".", 1)[-1] if raw else ""
        if self.fact is not None:
            self.fact.calls.append(
                CallFact(
                    raw=raw,
                    resolved=resolved,
                    attr=attr,
                    line=node.lineno,
                    col=node.col_offset,
                    arg_dims=arg_dims,
                    kw_dims=kw_dims,
                )
            )
            self._check_io_call(node, raw, resolved, attr)
            self._check_parallel_call(node, raw, resolved, attr)
            self._check_str_build_call(node, raw, attr)
            self._check_schedule_call(node, raw, attr)
            self._check_sort_call(node, raw, attr)

        # Return dimension of the call, for flow through assignments.
        if resolved in _NS_CONSTRUCTORS:
            return "ns"
        if attr in _DIM_PRESERVING_CALLS and arg_dims:
            known = {d for d in arg_dims if d is not None and d != "scalar"}
            if len(known) == 1:
                return known.pop()
            return arg_dims[0] if len(arg_dims) == 1 else None
        if attr:
            return classify_name(attr)
        return None

    # -- SIM104 raw material -----------------------------------------------

    def _check_io_call(
        self, node: ast.Call, raw: str, resolved: Optional[str], attr: str
    ) -> None:
        if self._in_raise or self.fact is None:
            return
        detail: Optional[str] = None
        if raw in ("print", "open", "input"):
            detail = f"calls `{raw}()`"
        elif raw.startswith(("sys.stdout.", "sys.stderr.")) and attr in ("write", "flush"):
            detail = f"writes to `{raw.rsplit('.', 1)[0]}`"
        elif raw.startswith("logging."):
            detail = f"calls `{raw}()` (logging)"
        else:
            head = raw.split(".", 1)[0] if raw else ""
            receiver = raw.rsplit(".", 2)[-2] if raw.count(".") else ""
            if attr in _LOG_METHODS and (
                head in _LOG_RECEIVERS or receiver in _LOG_RECEIVERS
            ):
                detail = f"calls `{raw}()` (logging; builds its message eagerly)"
        if detail is not None:
            self.fact.io_calls.append((node.lineno, node.col_offset, detail))

    # -- SIM306 raw material -----------------------------------------------

    def _check_str_build_call(self, node: ast.Call, raw: str, attr: str) -> None:
        """Record ``repr(...)`` and ``"...".format(...)`` sites (SIM306).

        f-strings and ``%`` formatting are caught expression-side in
        :meth:`infer`; only call-shaped builders land here.  Error paths
        (``raise``) are exempt, same as SIM104's I/O discipline.
        """
        if self._in_raise or self.fact is None:
            return
        if raw == "repr" and "repr" not in self.local_names:
            self.fact.str_builds.append(
                (node.lineno, node.col_offset, "`repr(...)`")
            )
        elif (
            attr == "format"
            and isinstance(node.func, ast.Attribute)
            and isinstance(node.func.value, ast.Constant)
            and isinstance(node.func.value.value, str)
        ):
            self.fact.str_builds.append(
                (node.lineno, node.col_offset, "`str.format(...)`")
            )

    # -- SIM201-SIM205 raw material ----------------------------------------

    def _global_mutation_origin(
        self, node: ast.AST
    ) -> Optional[Tuple[str, str]]:
        """``(absolute origin, name as written)`` when ``node`` is a
        Name/Attribute chain rooted at a module-level binding that is
        *not* shadowed by a local, else ``None``."""
        dotted = dotted_name(node)
        if not dotted:
            return None
        head = dotted.split(".", 1)[0]
        if head == "self" or head in builtins.__dict__:
            return None
        if head in self.local_names:
            return None
        origin = self.resolve_origin(node)
        if origin is None and head in self.declared_globals:
            rest = dotted.partition(".")[2]
            origin = f"{self.module_name}.{head}"
            if rest:
                origin = f"{origin}.{rest}"
        if origin is None:
            return None
        return origin, dotted

    def _lambda_payload(self, node: ast.Lambda) -> Dict[str, Any]:
        """Everything the lift-lambda fix needs: params, verbatim body
        text, free variables (which veto the lift), and the exact span."""
        params = [
            arg.arg
            for arg in (
                *node.args.posonlyargs,
                *node.args.args,
                *node.args.kwonlyargs,
            )
        ]
        body_src: Optional[str] = None
        if self.source is not None:
            body_src = ast.get_source_segment(self.source, node.body)
        known = (
            set(params)
            | set(self.module_symbols)
            | set(self.bindings)
            | set(dir(builtins))
        )
        free = sorted(
            {
                sub.id
                for sub in ast.walk(node.body)
                if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load)
            }
            - known
        )
        has_defaults = bool(node.args.defaults) or any(
            default is not None for default in node.args.kw_defaults
        )
        return {
            "params": params,
            "body_src": body_src,
            "free_vars": free,
            "line": node.lineno,
            "col": node.col_offset,
            "end_line": node.end_lineno if node.end_lineno else node.lineno,
            "end_col": (
                node.end_col_offset
                if node.end_col_offset is not None
                else node.col_offset
            ),
            "has_varargs": bool(node.args.vararg or node.args.kwarg),
            "has_defaults": has_defaults,
        }

    def _record_submission(
        self, call: ast.Call, payload: ast.expr, pool: str, how: str
    ) -> None:
        """Classify the callable handed to a pool; SIM201's raw material
        and the seed of the worker-reachability roots."""
        if self.fact is None:
            return
        record: Dict[str, Any] = {
            "line": call.lineno,
            "col": call.col_offset,
            "pool": pool,
            "how": how,
            "origin": None,
            "lambda": None,
        }
        if isinstance(payload, ast.Lambda):
            record["kind"] = "lambda"
            record["callee"] = "<lambda>"
            record["lambda"] = self._lambda_payload(payload)
        else:
            dotted = dotted_name(payload)
            origin = self.resolve_origin(payload)
            record["callee"] = dotted
            record["origin"] = origin
            if not dotted:
                record["kind"] = "opaque"
            elif dotted.startswith("self."):
                record["kind"] = "bound-method"
            elif "." not in dotted and dotted in self.local_defs:
                record["kind"] = "local-function"
            elif "." not in dotted and dotted in self.local_names:
                record["kind"] = "variable"
            else:
                record["kind"] = "named"
        self.fact.submissions.append(record)

    def _varying_hits(self, node: ast.expr) -> List[str]:
        """Human-readable descriptions of every process-varying value
        inside ``node`` (direct calls plus tainted locals)."""
        hits: List[str] = []
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call):
                raw = dotted_name(sub.func)
                key: Optional[str] = raw if raw in _VARYING_FUNCS else None
                if key is None:
                    resolved = self.resolve_origin(sub.func)
                    if resolved in _VARYING_FUNCS:
                        key = resolved
                if key is not None:
                    hits.append(_VARYING_FUNCS[key])
            elif isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load):
                if sub.id in self.varying_vars:
                    hits.append(
                        f"`{sub.id}` (assigned from a process-varying value)"
                    )
        return hits

    def _check_parallel_call(
        self, node: ast.Call, raw: str, resolved: Optional[str], attr: str
    ) -> None:
        """Record pool submissions, global mutations, varying values,
        file writes, and environment writes at one call site."""
        if self.fact is None:
            return

        # Pool submissions: `<pool-ish>.submit(fn, ...)` / `.map(fn, it)`.
        receiver = raw.rsplit(".", 1)[0] if "." in raw else ""
        receiver_last = receiver.rsplit(".", 1)[-1].lower()
        if (
            receiver
            and any(hint in receiver_last for hint in _POOL_RECEIVER_HINTS)
            and attr in (_POOL_SUBMIT_ATTRS | _POOL_MAP_ATTRS)
            and node.args
        ):
            payload = node.args[0]
            if not isinstance(payload, ast.Starred):
                self._record_submission(node, payload, pool=receiver, how=attr)
        # The executor's own hook: SweepExecutor(worker=fn).
        callee_tail = (resolved or raw).rsplit(".", 1)[-1]
        if callee_tail == "SweepExecutor":
            for keyword in node.keywords:
                if keyword.arg == "worker":
                    self._record_submission(
                        node, keyword.value, pool=raw or callee_tail, how="worker="
                    )

        # Process-varying calls (SIM203 sources).
        varying_key: Optional[str] = raw if raw in _VARYING_FUNCS else None
        if varying_key is None and resolved in _VARYING_FUNCS:
            varying_key = resolved
        if varying_key is not None:
            arg_src: Optional[str] = None
            call_src: Optional[str] = None
            if self.source is not None:
                if len(node.args) == 1 and not isinstance(
                    node.args[0], ast.Starred
                ):
                    arg_src = ast.get_source_segment(self.source, node.args[0])
                call_src = ast.get_source_segment(self.source, node)
            self.fact.varying_calls.append(
                {
                    "line": node.lineno,
                    "col": node.col_offset,
                    "end_line": (
                        node.end_lineno if node.end_lineno else node.lineno
                    ),
                    "end_col": (
                        node.end_col_offset
                        if node.end_col_offset is not None
                        else node.col_offset
                    ),
                    "func": varying_key,
                    "detail": _VARYING_FUNCS[varying_key],
                    "nargs": len(node.args),
                    "arg_src": arg_src,
                    "call_src": call_src,
                }
            )
        else:
            # Taint flowing *into* this call's arguments (SIM203 sinks).
            hits: List[str] = []
            for arg in node.args:
                target = arg.value if isinstance(arg, ast.Starred) else arg
                hits.extend(self._varying_hits(target))
            for keyword in node.keywords:
                hits.extend(self._varying_hits(keyword.value))
            if hits:
                self.fact.varying_args.append(
                    {
                        "line": node.lineno,
                        "col": node.col_offset,
                        "callee": raw,
                        "origin": resolved,
                        "attr": attr,
                        "hits": sorted(set(hits)),
                    }
                )

        # Environment writes (SIM205).
        if isinstance(node.func, ast.Attribute):
            receiver_origin = self.resolve_origin(node.func.value)
        else:
            receiver_origin = None
        if attr in _ENVIRON_WRITE_METHODS and receiver_origin == "os.environ":
            self.fact.env_writes.append(
                (node.lineno, node.col_offset, f"`os.environ.{attr}(...)`")
            )
        elif resolved in ("os.putenv", "os.unsetenv"):
            self.fact.env_writes.append(
                (node.lineno, node.col_offset, f"`{resolved}(...)`")
            )
        # Mutating method on a module-global receiver (SIM202).
        elif attr in _MUTATING_METHODS and isinstance(node.func, ast.Attribute):
            target_global = self._global_mutation_origin(node.func.value)
            if target_global is not None:
                origin, written = target_global
                self.fact.global_mutations.append(
                    (
                        node.lineno,
                        node.col_offset,
                        origin,
                        "method",
                        f"`{written}.{attr}(...)`",
                    )
                )

        # File writes and the atomic-rename idiom (SIM204).
        if raw == "open":
            mode: Optional[str] = None
            if (
                len(node.args) >= 2
                and isinstance(node.args[1], ast.Constant)
                and isinstance(node.args[1].value, str)
            ):
                mode = node.args[1].value
            for keyword in node.keywords:
                if (
                    keyword.arg == "mode"
                    and isinstance(keyword.value, ast.Constant)
                    and isinstance(keyword.value.value, str)
                ):
                    mode = keyword.value.value
            if mode is not None and any(flag in mode for flag in "wax+"):
                self.fact.file_writes.append(
                    (node.lineno, node.col_offset, f"`open(..., {mode!r})`")
                )
        elif attr in ("write_text", "write_bytes"):
            self.fact.file_writes.append(
                (node.lineno, node.col_offset, f"`.{attr}(...)`")
            )
        if attr in _ATOMIC_RENAME_ATTRS:
            if raw.startswith("os.") or resolved in (
                "os.replace",
                "os.rename",
                "os.renames",
            ):
                self.fact.atomic_renames += 1
            else:
                # `tmp.replace(path)` / `self.tmp_path.rename(...)`:
                # receiver *names* a temp/path object.  Bare
                # `s.replace(old, new)` (str) stays uncounted.
                if any(
                    hint in receiver_last for hint in ("tmp", "temp", "path")
                ):
                    self.fact.atomic_renames += 1

    def _note_store_target(self, target: ast.expr, stmt: ast.stmt) -> None:
        """Record global rebinds, global subscript writes, and
        ``os.environ[...]`` writes hiding in an assignment target."""
        if self.fact is None:
            return
        if isinstance(target, ast.Name):
            if target.id in self.declared_globals:
                self.fact.global_mutations.append(
                    (
                        stmt.lineno,
                        stmt.col_offset,
                        f"{self.module_name}.{target.id}",
                        "rebind",
                        f"rebinds module global `{target.id}` "
                        "(declared `global`)",
                    )
                )
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._note_store_target(element, stmt)
            return
        if not isinstance(target, ast.Subscript):
            return
        base = target.value
        if self.resolve_origin(base) == "os.environ":
            self.fact.env_writes.append(
                (stmt.lineno, stmt.col_offset, "`os.environ[...] = ...`")
            )
            return
        target_global = self._global_mutation_origin(base)
        if target_global is not None:
            origin, written = target_global
            self.fact.global_mutations.append(
                (
                    stmt.lineno,
                    stmt.col_offset,
                    origin,
                    "subscript",
                    f"`{written}[...] = ...`",
                )
            )

    def _note_varying_assign(self, value: ast.expr, targets: List[ast.expr]) -> None:
        """Propagate SIM203 taint through simple assignments."""
        if not self._varying_hits(value):
            return
        for target in targets:
            if isinstance(target, ast.Name):
                self.varying_vars.add(target.id)

    # -- SIM401-SIM406 raw material ----------------------------------------

    _CMP_SYMBOLS: Mapping[type, str] = {
        ast.Eq: "==",
        ast.NotEq: "!=",
        ast.Lt: "<",
        ast.LtE: "<=",
        ast.Gt: ">",
        ast.GtE: ">=",
    }

    def _src(self, node: ast.expr) -> Optional[str]:
        if self.source is None:
            return None
        return ast.get_source_segment(self.source, node)

    @staticmethod
    def _is_int_literal(node: ast.expr) -> bool:
        return (
            isinstance(node, ast.Constant)
            and isinstance(node.value, int)
            and not isinstance(node.value, bool)
        )

    @staticmethod
    def _is_time_target_name(terminal: str) -> bool:
        """Whether an assignment target names an integer-time quantity."""
        return classify_name(terminal) == "ns" or terminal.lower() == "eligible"

    def _note_temporal_assign(
        self, targets: List[ast.expr], value: ast.expr, stmt: ast.stmt
    ) -> None:
        """Track the lattice through assignments and flag float values
        landing on ``*_ns``/deadline/eligible targets (SIM402/SIM406)."""
        info = self.typer.info(value)
        proof = now_proof(value, self.time_proofs)
        for target in targets:
            if isinstance(target, ast.Name):
                self.time_env[target.id] = info
                self.time_proofs[target.id] = proof
        if self.fact is None:
            return
        for target in targets:
            if isinstance(target, ast.Name):
                terminal = target.id
            elif isinstance(target, ast.Attribute):
                terminal = target.attr
            else:
                continue
            if not self._is_time_target_name(terminal):
                continue
            divs = self._ns_div_records(value, f"assignment to `{terminal}`")
            if divs:
                self.fact.ns_true_divs.extend(divs)
            elif info.ttype == FLOAT:
                self.fact.float_time_assigns.append(
                    {
                        "line": stmt.lineno,
                        "col": stmt.col_offset,
                        "target": terminal,
                        "detail": (
                            f"float-derived value assigned to integer-time "
                            f"target `{terminal}`"
                        ),
                    }
                )
            # One record per statement is enough for the rule.
            break

    def _note_float_compare(self, node: ast.Compare) -> None:
        """Record ``==``/``!=``/raw ordering touching a float-derived
        ns/rate quantity (SIM403).  Ordering against a bare *integer*
        literal stays exempt -- ``if bw_bytes_per_ns <= 0`` is a sign
        check, not deadline arithmetic."""
        if self.fact is None:
            return
        operands = [node.left, *node.comparators]
        infos = [self.typer.info(operand) for operand in operands]
        quantity = next(
            (i.quantity for i in infos if i.quantity in ("ns", "rate")), None
        )
        if quantity is None or not any(i.ttype == FLOAT for i in infos):
            return
        symbols: List[str] = []
        flagged = False
        for index, op in enumerate(node.ops):
            symbol = self._CMP_SYMBOLS.get(type(op))
            if symbol is None:
                continue
            symbols.append(symbol)
            left_info, right_info = infos[index], infos[index + 1]
            if left_info.ttype != FLOAT and right_info.ttype != FLOAT:
                continue
            if symbol not in ("==", "!=") and (
                self._is_int_literal(operands[index])
                or self._is_int_literal(operands[index + 1])
            ):
                continue
            flagged = True
        if not flagged:
            return
        src = self._src(node)
        self.fact.float_compares.append(
            {
                "line": node.lineno,
                "col": node.col_offset,
                "quantity": quantity,
                "ops": symbols,
                "detail": f"`{src}`" if src else f"`{'/'.join(symbols)}` comparison",
            }
        )

    def _ns_div_records(self, expr: ast.expr, sink: str) -> List[Dict[str, Any]]:
        """True divisions on exact-ns operands inside a time-sink
        expression (SIM406), with the ``/`` span the ``//`` fix needs."""
        records: List[Dict[str, Any]] = []
        for sub in ast.walk(expr):
            if not (isinstance(sub, ast.BinOp) and isinstance(sub.op, ast.Div)):
                continue
            left = self.typer.info(sub.left)
            right = self.typer.info(sub.right)
            if left.ttype != EXACT or left.quantity != "ns":
                continue
            if right.ttype != EXACT:
                continue
            records.append(
                {
                    "line": sub.lineno,
                    "col": sub.col_offset,
                    "sink": sink,
                    "left_src": self._src(sub.left),
                    "op_span": self._div_op_span(sub),
                }
            )
        return records

    def _div_op_span(self, node: ast.BinOp) -> Optional[List[int]]:
        """The 1-character span of the ``/`` operator between the
        operands, located in the source text (``None`` if unavailable)."""
        if self.source is None:
            return None
        left_end_line = node.left.end_lineno
        left_end_col = node.left.end_col_offset
        if left_end_line is None or left_end_col is None:
            return None
        lines = self.source.splitlines()
        for lineno in range(left_end_line, node.right.lineno + 1):
            if lineno - 1 >= len(lines):
                break
            text = lines[lineno - 1]
            start = left_end_col if lineno == left_end_line else 0
            stop = node.right.col_offset if lineno == node.right.lineno else len(text)
            index = text.find("/", start, stop)
            if index >= 0:
                return [lineno, index, lineno, index + 1]
        return None

    #: Fresh-per-call container displays among callback args (SIM307).
    _FRESH_ARG_KINDS = (
        (ast.Tuple, "a tuple literal"),
        (ast.List, "a list literal"),
        (ast.Dict, "a dict literal"),
        (ast.Set, "a set literal"),
        (ast.ListComp, "a list comprehension"),
        (ast.SetComp, "a set comprehension"),
        (ast.DictComp, "a dict comprehension"),
        (ast.GeneratorExp, "a generator expression"),
    )

    def _check_schedule_call(self, node: ast.Call, raw: str, attr: str) -> None:
        """Record ``<engine>.at``/``.after`` sites: the time argument's
        lattice type, its ``>= now`` proof, any exact-ns true divisions
        inside it, whether the site sits inside a loop, fresh container
        displays among the callback args (SIM307), and loop-captured
        closures among the callback args."""
        if self.fact is None:
            return
        sink = SCHEDULE_SINKS.get(attr)
        if sink is None or len(node.args) <= sink:
            return
        receiver = raw.rsplit(".", 1)[0] if "." in raw else ""
        if "engine" not in receiver.rsplit(".", 1)[-1].lower():
            return
        time_arg = node.args[sink]
        if isinstance(time_arg, ast.Starred):
            return
        info = self.typer.info(time_arg)
        divs = self._ns_div_records(time_arg, f"`{raw}(...)` time argument")
        self.fact.ns_true_divs.extend(divs)
        fresh_args = []
        for arg in node.args[sink + 1 :]:
            for kind, detail in self._FRESH_ARG_KINDS:
                if isinstance(arg, kind):
                    fresh_args.append(
                        {
                            "line": arg.lineno,
                            "col": arg.col_offset,
                            "detail": detail,
                            "src": self._src(arg),
                        }
                    )
                    break
        self.fact.schedule_calls.append(
            {
                "line": node.lineno,
                "col": node.col_offset,
                "attr": attr,
                "receiver": receiver,
                "ttype": info.ttype,
                "quantity": info.quantity,
                "ns_divs": len(divs),
                "arg_src": self._src(time_arg),
                "in_loop": bool(self._loop_stack),
                "fresh_args": fresh_args,
                "proof": (
                    now_proof(time_arg, self.time_proofs)
                    if attr in ("at", "at_cancellable")
                    else ANCHORED
                ),
            }
        )
        for arg in node.args[sink + 1 :]:
            if isinstance(arg, ast.Lambda):
                self._note_closure_retention(node, attr, arg)
            elif isinstance(arg, ast.Name) and arg.id in self.local_defs:
                def_node = self._local_def_nodes.get(arg.id)
                if def_node is not None:
                    self._note_def_retention(node, attr, arg.id, def_node)
        if not self._loop_stack:
            return
        active: Set[str] = set().union(*self._loop_stack)
        for arg in node.args[sink + 1 :]:
            if isinstance(arg, ast.Lambda):
                self._note_lambda_capture(node, attr, arg, active)
            elif isinstance(arg, ast.Name) and arg.id in self.local_defs:
                def_node = self._local_def_nodes.get(arg.id)
                if def_node is not None:
                    self._note_def_capture(node, attr, arg.id, def_node, active)

    def _note_lambda_capture(
        self, call: ast.Call, attr: str, lam: ast.Lambda, active: Set[str]
    ) -> None:
        params = [
            arg.arg
            for arg in (
                *lam.args.posonlyargs,
                *lam.args.args,
                *lam.args.kwonlyargs,
            )
        ]
        if lam.args.vararg is not None:
            params.append(lam.args.vararg.arg)
        if lam.args.kwarg is not None:
            params.append(lam.args.kwarg.arg)
        captured = sorted(
            {
                sub.id
                for sub in ast.walk(lam.body)
                if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load)
            }
            & active
            - set(params)
        )
        if not captured:
            return
        fix: Optional[Dict[str, Any]] = None
        plain_args = [arg.arg for arg in lam.args.args]
        fixable = (
            len(plain_args) == len(params)
            and not lam.args.defaults
            and not any(default is not None for default in lam.args.kw_defaults)
            and lam.body.lineno == lam.lineno
        )
        if fixable:
            bound = ", ".join([*plain_args, *[f"{v}={v}" for v in captured]])
            fix = {
                "span": [
                    lam.lineno,
                    lam.col_offset,
                    lam.body.lineno,
                    lam.body.col_offset,
                ],
                "replacement": f"lambda {bound}: ",
            }
        if self.fact is not None:
            self.fact.loop_captures.append(
                {
                    "line": call.lineno,
                    "col": call.col_offset,
                    "attr": attr,
                    "kind": "lambda",
                    "callee": "<lambda>",
                    "vars": captured,
                    "fix": fix,
                }
            )

    def _note_def_capture(
        self,
        call: ast.Call,
        attr: str,
        name: str,
        def_node: ast.AST,
        active: Set[str],
    ) -> None:
        if not isinstance(def_node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return
        bound = {
            arg.arg
            for arg in (
                *def_node.args.posonlyargs,
                *def_node.args.args,
                *def_node.args.kwonlyargs,
            )
        }
        for node in def_node.body:
            for sub in ast.walk(node):
                if isinstance(sub, ast.Name) and isinstance(
                    sub.ctx, (ast.Store, ast.Del)
                ):
                    bound.add(sub.id)
        captured = sorted(
            {
                sub.id
                for stmt in def_node.body
                for sub in ast.walk(stmt)
                if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load)
            }
            & active
            - bound
        )
        if captured and self.fact is not None:
            self.fact.loop_captures.append(
                {
                    "line": call.lineno,
                    "col": call.col_offset,
                    "attr": attr,
                    "kind": "local-def",
                    "callee": name,
                    "vars": captured,
                    "fix": None,
                }
            )

    def _note_closure_retention(
        self, call: ast.Call, attr: str, lam: ast.Lambda
    ) -> None:
        """SIM506 raw material: a scheduled lambda whose free variables
        include a container-valued local retains the whole container
        until the callback fires (or forever, if it re-arms)."""
        if self.fact is None or not self.container_locals:
            return
        params = {
            arg.arg
            for arg in (
                *lam.args.posonlyargs,
                *lam.args.args,
                *lam.args.kwonlyargs,
            )
        }
        if lam.args.vararg is not None:
            params.add(lam.args.vararg.arg)
        if lam.args.kwarg is not None:
            params.add(lam.args.kwarg.arg)
        retained = sorted(
            {
                sub.id
                for sub in ast.walk(lam.body)
                if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load)
            }
            & self.container_locals
            - params
        )
        if not retained:
            return
        fix: Optional[Dict[str, Any]] = None
        plain_args = [arg.arg for arg in lam.args.args]
        fixable = (
            len(plain_args) == len(params)
            and not lam.args.defaults
            and not any(default is not None for default in lam.args.kw_defaults)
            and lam.body.lineno == lam.lineno
        )
        if fixable:
            bound = ", ".join([*plain_args, *[f"{v}={v}" for v in retained]])
            fix = {
                "span": [
                    lam.lineno,
                    lam.col_offset,
                    lam.body.lineno,
                    lam.body.col_offset,
                ],
                "replacement": f"lambda {bound}: ",
            }
        self.fact.closure_retentions.append(
            {
                "line": call.lineno,
                "col": call.col_offset,
                "attr": attr,
                "kind": "lambda",
                "callee": "<lambda>",
                "vars": retained,
                "fix": fix,
            }
        )

    def _note_def_retention(
        self, call: ast.Call, attr: str, name: str, def_node: ast.AST
    ) -> None:
        if self.fact is None or not self.container_locals:
            return
        if not isinstance(def_node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return
        bound = {
            arg.arg
            for arg in (
                *def_node.args.posonlyargs,
                *def_node.args.args,
                *def_node.args.kwonlyargs,
            )
        }
        for stmt in def_node.body:
            for sub in ast.walk(stmt):
                if isinstance(sub, ast.Name) and isinstance(
                    sub.ctx, (ast.Store, ast.Del)
                ):
                    bound.add(sub.id)
        retained = sorted(
            {
                sub.id
                for stmt in def_node.body
                for sub in ast.walk(stmt)
                if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load)
            }
            & self.container_locals
            - bound
        )
        if retained:
            self.fact.closure_retentions.append(
                {
                    "line": call.lineno,
                    "col": call.col_offset,
                    "attr": attr,
                    "kind": "local-def",
                    "callee": name,
                    "vars": retained,
                    "fix": None,
                }
            )

    #: Terminal names read as deadline keys by the SIM404 detector.
    @staticmethod
    def _deadline_terminal(node: ast.expr) -> Optional[str]:
        if isinstance(node, ast.Name):
            name = node.id
        elif isinstance(node, ast.Attribute):
            name = node.attr
        else:
            return None
        lowered = name.lower()
        if (
            lowered == "deadline"
            or lowered.endswith("_deadline")
            or lowered.startswith("deadline")
            or lowered == "eligible"
        ):
            return name
        return None

    def _check_sort_call(self, node: ast.Call, raw: str, attr: str) -> None:
        """Record deadline-keyed orderings with no tie-break (SIM404):
        ``sorted``/``.sort`` whose key lambda returns a bare deadline,
        and ``heappush`` of a ``(deadline, payload)`` 2-tuple."""
        if self.fact is None:
            return
        if (raw == "sorted" and "sorted" not in self.local_names) or attr == "sort":
            key_lambda: Optional[ast.Lambda] = None
            for keyword in node.keywords:
                if keyword.arg == "key" and isinstance(keyword.value, ast.Lambda):
                    key_lambda = keyword.value
            if key_lambda is None:
                return
            body = key_lambda.body
            key_name = self._deadline_terminal(body)
            if key_name is None:
                return
            kind = "sorted" if raw == "sorted" else ".sort"
            fix: Optional[Dict[str, Any]] = None
            params = [arg.arg for arg in key_lambda.args.args]
            if (
                isinstance(body, ast.Attribute)
                and isinstance(body.value, ast.Name)
                and len(params) == 1
                and body.value.id == params[0]
            ):
                body_src = self._src(body)
                if body_src is not None and body.end_lineno is not None:
                    fix = {
                        "span": [
                            body.lineno,
                            body.col_offset,
                            body.end_lineno,
                            body.end_col_offset,
                        ],
                        "replacement": f"({body_src}, {params[0]}.uid)",
                    }
            self.fact.sort_keys.append(
                {
                    "line": node.lineno,
                    "col": node.col_offset,
                    "kind": kind,
                    "key": key_name,
                    "detail": f"`{kind}` keyed on `{key_name}` alone",
                    "fix": fix,
                }
            )
            return
        if "heappush" not in (attr or raw):
            return
        if len(node.args) < 2 or isinstance(node.args[1], ast.Starred):
            return
        item = node.args[1]
        if isinstance(item, ast.Tuple):
            if len(item.elts) != 2:
                return
            first, last = item.elts
            key_name = self._deadline_terminal(first)
            if key_name is None:
                return
            fix = None
            if isinstance(last, (ast.Name, ast.Attribute)):
                last_src = self._src(last)
                if last_src is not None:
                    fix = {
                        "span": [
                            last.lineno,
                            last.col_offset,
                            last.lineno,
                            last.col_offset,
                        ],
                        "replacement": f"{last_src}.uid, ",
                    }
            self.fact.sort_keys.append(
                {
                    "line": node.lineno,
                    "col": node.col_offset,
                    "kind": "heappush",
                    "key": key_name,
                    "detail": f"`heappush` of `({key_name}, <payload>)` with no tie-break",
                    "fix": fix,
                }
            )
        else:
            key_name = self._deadline_terminal(item)
            if key_name is not None:
                self.fact.sort_keys.append(
                    {
                        "line": node.lineno,
                        "col": node.col_offset,
                        "kind": "heappush",
                        "key": key_name,
                        "detail": f"`heappush` keyed on bare `{key_name}`",
                        "fix": None,
                    }
                )

    # -- SIM102 raw material -----------------------------------------------

    def _is_set_expr(self, node: ast.expr) -> Optional[str]:
        """A human-readable description when ``node`` is unordered-set
        valued, else ``None``."""
        if isinstance(node, ast.Set):
            return "a set literal"
        if isinstance(node, ast.SetComp):
            return "a set comprehension"
        if isinstance(node, ast.Call):
            dotted = dotted_name(node.func)
            if dotted in ("set", "frozenset"):
                return f"`{dotted}(...)`"
        if isinstance(node, ast.Name) and self.set_vars.get(node.id):
            return f"set-valued variable `{node.id}`"
        return None

    def _note_iteration(self, iter_node: ast.expr) -> None:
        if self.fact is None:
            return
        detail = self._is_set_expr(iter_node)
        if detail is not None:
            self.fact.set_iters.append(
                (
                    iter_node.lineno,
                    iter_node.col_offset,
                    f"iterates over {detail} (unordered)",
                )
            )

    def _visit_comprehension(self, generators: List[ast.comprehension]) -> None:
        for generator in generators:
            self._note_iteration(generator.iter)
            self.infer(generator.iter)
            for condition in generator.ifs:
                self.infer(condition)

    # -- SIM301/303/304/305 raw material -----------------------------------

    def _analyze_loop(self, loop: Union[ast.For, ast.While]) -> None:
        """Per-iteration cost facts for one ``for``/``while`` statement."""
        if self.fact is not None:
            _LoopBodyCollector(self, loop).run()

    # -- statement walk ----------------------------------------------------

    def run(self, fact: FunctionFact, body: List[ast.stmt]) -> FunctionFact:
        """Analyze ``body`` into ``fact`` (env seeded from parameters)."""
        self.fact = fact
        for param in fact.params:
            dim = classify_name(param)
            if dim is not None:
                self.env[param] = dim
        # Pre-scan for scoping: Python makes a name local to the whole
        # scope on *any* assignment, so mutation/shadow checks below need
        # the full set up front, not discovery order.
        for stmt in body:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Global):
                    self.declared_globals.update(node.names)
                elif isinstance(node, ast.Name) and isinstance(
                    node.ctx, (ast.Store, ast.Del)
                ):
                    self.local_names.add(node.id)
                elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    self.local_defs.add(node.name)
                    self.local_names.add(node.name)
                    self._local_def_nodes[node.name] = node
        self.local_names.update(fact.params)
        self.local_names -= self.declared_globals
        self._visit_block(body)
        if fact.qualname != "<module>":
            # Second, dedicated walk for the SIM5xx scale facts: the
            # container-op/pool-flow classification needs its own loop
            # and branch depth tracking (covering ``while`` bodies the
            # main walk's loop stack skips) and a local alias map.
            _ScaleCollector(self, fact, body).run()
        return fact

    def _is_container_expr(self, node: ast.expr) -> bool:
        """Whether ``node`` builds a container object (SIM506)."""
        if isinstance(
            node,
            (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.SetComp, ast.DictComp),
        ):
            return True
        if isinstance(node, ast.Call):
            tail = dotted_name(node.func).rsplit(".", 1)[-1]
            return tail in _CONTAINER_CONSTRUCTORS
        return False

    def _assign_target(
        self,
        target: ast.expr,
        dim: Optional[Dim],
        is_set: bool,
        is_container: bool = False,
    ) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = dim
            self.set_vars[target.id] = is_set
            if is_container:
                self.container_locals.add(target.id)
            else:
                self.container_locals.discard(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._assign_target(element, None, False)

    def _visit_block(self, body: List[ast.stmt]) -> None:
        for stmt in body:
            self._visit_stmt(stmt)

    def _visit_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            dim = self.infer(stmt.value)
            is_set = self._is_set_expr(stmt.value) is not None
            self._note_varying_assign(stmt.value, stmt.targets)
            self._note_temporal_assign(stmt.targets, stmt.value, stmt)
            is_container = self._is_container_expr(stmt.value)
            for target in stmt.targets:
                self._note_store_target(target, stmt)
                self._assign_target(target, dim, is_set, is_container)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                value_dim = self.infer(stmt.value)
                if isinstance(stmt.target, ast.Name):
                    declared = classify_name(stmt.target.id)
                    if not dims_compatible(declared, value_dim) and self.fact is not None:
                        self.fact.mixes.append(
                            (
                                stmt.lineno,
                                stmt.col_offset,
                                f"`{stmt.target.id}` ({declared}) assigned a "
                                f"`{value_dim}` value",
                            )
                        )
                self._note_varying_assign(stmt.value, [stmt.target])
                self._note_temporal_assign([stmt.target], stmt.value, stmt)
                self._note_store_target(stmt.target, stmt)
                self._assign_target(
                    stmt.target,
                    value_dim,
                    self._is_set_expr(stmt.value) is not None,
                    self._is_container_expr(stmt.value),
                )
        elif isinstance(stmt, ast.AugAssign):
            target_dim = self.infer(stmt.target) if isinstance(
                stmt.target, (ast.Name, ast.Attribute)
            ) else None
            value_dim = self.infer(stmt.value)
            self._note_store_target(stmt.target, stmt)
            if isinstance(stmt.op, (ast.Add, ast.Sub)) and not dims_compatible(
                target_dim, value_dim
            ):
                if self.fact is not None:
                    self.fact.mixes.append(
                        (
                            stmt.lineno,
                            stmt.col_offset,
                            f"augmented assignment mixes `{target_dim}` "
                            f"with `{value_dim}`",
                        )
                    )
            if isinstance(stmt.target, ast.Name):
                name = stmt.target.id
                prior = self.time_env.get(name, TimeInfo(ttype=UNKNOWN, quantity=None))
                value_info = self.typer.info(stmt.value)
                if isinstance(stmt.op, ast.Div):
                    self.time_env[name] = TimeInfo(FLOAT, prior.quantity)
                else:
                    self.time_env[name] = TimeInfo(
                        join_time(prior.ttype, value_info.ttype), prior.quantity
                    )
                if isinstance(stmt.op, ast.Sub):
                    self.time_proofs[name] = SUBTRACTION
        elif isinstance(stmt, (ast.Expr, ast.Return)):
            if stmt.value is not None:
                self.infer(stmt.value)
        elif isinstance(stmt, ast.For):
            self._note_iteration(stmt.iter)
            self.infer(stmt.iter)
            self._assign_target(stmt.target, None, False)
            self._analyze_loop(stmt)
            loop_vars = {
                sub.id
                for sub in ast.walk(stmt.target)
                if isinstance(sub, ast.Name)
            }
            for name in loop_vars:
                self.time_env.pop(name, None)
                self.time_proofs.pop(name, None)
            self._loop_stack.append(loop_vars)
            try:
                self._visit_block(stmt.body)
            finally:
                self._loop_stack.pop()
            self._visit_block(stmt.orelse)
        elif isinstance(stmt, ast.While):
            self.infer(stmt.test)
            self._analyze_loop(stmt)
            self._visit_block(stmt.body)
            self._visit_block(stmt.orelse)
        elif isinstance(stmt, ast.If):
            self.infer(stmt.test)
            self._visit_block(stmt.body)
            self._visit_block(stmt.orelse)
        elif isinstance(stmt, ast.With):
            for item in stmt.items:
                self.infer(item.context_expr)
                if item.optional_vars is not None:
                    self._assign_target(item.optional_vars, None, False)
            self._visit_block(stmt.body)
        elif isinstance(stmt, ast.Try):
            self._visit_block(stmt.body)
            for handler in stmt.handlers:
                self._visit_block(handler.body)
            self._visit_block(stmt.orelse)
            self._visit_block(stmt.finalbody)
        elif isinstance(stmt, ast.Raise):
            # Building an error message on the way out is fine; only the
            # happy path must stay pure (SIM104) -- but the calls are
            # still recorded for the call graph.
            self._in_raise += 1
            if stmt.exc is not None:
                self.infer(stmt.exc)
            if stmt.cause is not None:
                self.infer(stmt.cause)
            self._in_raise -= 1
        elif isinstance(stmt, (ast.Assert, ast.Delete)):
            for value in ast.iter_child_nodes(stmt):
                if isinstance(value, ast.expr):
                    self.infer(value)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # A closure's calls are attributed to the enclosing function:
            # an inner callback handed to the engine still runs on the
            # caller's path, so its facts belong to the caller.
            for arg in [
                *stmt.args.posonlyargs,
                *stmt.args.args,
                *stmt.args.kwonlyargs,
            ]:
                dim = classify_name(arg.arg)
                if dim is not None:
                    self.env[arg.arg] = dim
            self._visit_block(stmt.body)
        elif isinstance(stmt, ast.ClassDef):
            # Nested class in a function body: analyze field defaults.
            for inner in stmt.body:
                if isinstance(inner, (ast.Assign, ast.AnnAssign)):
                    self._visit_stmt(inner)
        # Import/Global/Pass/etc. carry no expressions to analyze.


class _LoopBodyCollector:
    """Sub-walk of one loop body for the SIM3xx hot-path rules.

    Scope rules, chosen so every record describes *per-iteration* cost:

    - ``raise`` statements and ``except``-handler bodies are skipped --
      error paths may allocate and format freely;
    - nested ``for``/``while`` loops are not descended for reads (each
      loop gets its own collector at its own visit);
    - closure bodies (``lambda``/``def``) are recorded as allocations
      but not descended -- their reads run when called, not here;
    - ``orelse`` blocks run once after the loop and are excluded;
    - a ``while`` loop's *test* is included (re-evaluated per iteration).

    The **write** pre-scan is deliberately wider than the read walk: it
    covers the full body *including* nested loops plus the ``for``
    target (and any walrus in a ``while`` test), because a store
    anywhere inside the iteration invalidates hoisting a load out of it.
    """

    def __init__(
        self, analyzer: FunctionAnalyzer, loop: Union[ast.For, ast.While]
    ) -> None:
        self.analyzer = analyzer
        self.loop = loop
        self.allocs: List[Dict[str, Any]] = []
        self.attr_sites: Dict[str, List[List[int]]] = {}
        self.global_sites: Dict[Tuple[str, str], List[List[int]]] = {}
        self.tries: List[Dict[str, Any]] = []
        self.written: Set[str] = set()
        write_roots: List[ast.AST] = list(loop.body)
        if isinstance(loop, ast.For):
            write_roots.append(loop.target)
        else:
            write_roots.append(loop.test)
        for root in write_roots:
            for node in ast.walk(root):
                self._note_write(node)

    def _note_write(self, node: ast.AST) -> None:
        if isinstance(node, ast.Name) and isinstance(
            node.ctx, (ast.Store, ast.Del)
        ):
            self.written.add(node.id)
        elif isinstance(node, ast.Attribute) and isinstance(
            node.ctx, (ast.Store, ast.Del)
        ):
            dotted = dotted_name(node)
            if dotted:
                self.written.add(dotted)

    # -- read walk ---------------------------------------------------------

    def run(self) -> None:
        if isinstance(self.loop, ast.While):
            self._visit(self.loop.test)
        for stmt in self.loop.body:
            self._visit(stmt)
        self._finish()

    def _visit(self, node: ast.AST) -> None:
        if isinstance(node, (ast.Raise, ast.For, ast.AsyncFor, ast.While)):
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self._alloc(node, "closure", f"nested function `{node.name}`")
            return
        if isinstance(node, ast.Lambda):
            self._alloc(node, "closure", "a `lambda` closure")
            return
        if isinstance(node, ast.Try):
            self._note_try(node)
            for stmt in [*node.body, *node.orelse, *node.finalbody]:
                self._visit(stmt)
            return
        if isinstance(
            node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
        ):
            kinds = {
                ast.ListComp: "a list comprehension",
                ast.SetComp: "a set comprehension",
                ast.DictComp: "a dict comprehension",
                ast.GeneratorExp: "a generator expression",
            }
            self._alloc(node, "comprehension", kinds[type(node)])
            return
        if isinstance(node, ast.List) and isinstance(node.ctx, ast.Load):
            self._alloc(node, "literal", "a list literal")
        elif isinstance(node, ast.Set):
            self._alloc(node, "literal", "a set literal")
        elif isinstance(node, ast.Dict):
            self._alloc(node, "literal", "a dict literal")
        elif isinstance(node, ast.Tuple) and isinstance(node.ctx, ast.Load):
            if any(isinstance(elt, ast.Starred) for elt in node.elts):
                self._alloc(node, "literal", "a splatted (varying-size) tuple")
        elif isinstance(node, ast.Call):
            self._note_call(node)
        elif isinstance(node, ast.Attribute):
            if isinstance(node.ctx, ast.Load):
                dotted = dotted_name(node)
                if dotted:
                    # The whole chain is one lookup site; don't recurse
                    # into its parts or they double-count.
                    self._note_chain(dotted, node)
                    return
            self._visit(node.value)
            return
        elif isinstance(node, ast.Name):
            if isinstance(node.ctx, ast.Load):
                self._note_name(node)
            return
        for child in ast.iter_child_nodes(node):
            self._visit(child)

    # -- recorders ---------------------------------------------------------

    @staticmethod
    def _span(node: ast.AST) -> List[int]:
        end_line = getattr(node, "end_lineno", None) or node.lineno  # type: ignore[attr-defined]
        end_col = getattr(node, "end_col_offset", None)
        if end_col is None:
            end_col = node.col_offset  # type: ignore[attr-defined]
        return [node.lineno, node.col_offset, end_line, end_col]  # type: ignore[attr-defined]

    def _alloc(
        self,
        node: ast.AST,
        what: str,
        detail: str,
        callee: str = "",
        origin: Optional[str] = None,
    ) -> None:
        self.allocs.append(
            {
                "line": node.lineno,  # type: ignore[attr-defined]
                "col": node.col_offset,  # type: ignore[attr-defined]
                "loop_line": self.loop.lineno,
                "what": what,
                "detail": detail,
                "callee": callee,
                "origin": origin,
            }
        )

    def _note_call(self, node: ast.Call) -> None:
        dotted = dotted_name(node.func)
        tail = dotted.rsplit(".", 1)[-1] if dotted else ""
        if (
            tail in _CONTAINER_CONSTRUCTORS
            and dotted.split(".", 1)[0] not in self.analyzer.local_names
        ):
            self._alloc(node, "container", f"`{dotted}(...)`", callee=dotted)
        elif tail[:1].isupper():
            # CamelCase call: candidate class instantiation.  The rule
            # confirms against the project model before flagging.
            origin = self.analyzer.resolve_origin(node.func)
            if origin is not None:
                self._alloc(
                    node, "call", f"`{dotted}(...)`", callee=dotted, origin=origin
                )

    def _note_chain(self, dotted: str, node: ast.Attribute) -> None:
        head = dotted.split(".", 1)[0]
        analyzer = self.analyzer
        if head in analyzer.local_names:
            self.attr_sites.setdefault(dotted, []).append(self._span(node))
        elif head in analyzer.bindings or head in analyzer.module_symbols:
            self.global_sites.setdefault((dotted, "global"), []).append(
                self._span(node)
            )

    def _note_name(self, node: ast.Name) -> None:
        name = node.id
        analyzer = self.analyzer
        if name in analyzer.local_names:
            return
        if name in analyzer.bindings or name in analyzer.module_symbols:
            self.global_sites.setdefault((name, "global"), []).append(
                self._span(node)
            )
        elif name in builtins.__dict__:
            self.global_sites.setdefault((name, "builtin"), []).append(
                self._span(node)
            )

    def _note_try(self, node: ast.Try) -> None:
        types: List[str] = []
        reraises_only = True
        for handler in node.handlers:
            types.extend(self._handler_types(handler.type))
            if not (
                len(handler.body) == 1 and isinstance(handler.body[0], ast.Raise)
            ):
                reraises_only = False
        if node.handlers:
            self.tries.append(
                {
                    "line": node.lineno,
                    "col": node.col_offset,
                    "loop_line": self.loop.lineno,
                    "types": sorted(set(types)),
                    "reraises_only": reraises_only,
                }
            )

    @staticmethod
    def _handler_types(type_node: Optional[ast.expr]) -> List[str]:
        if type_node is None:
            return ["BaseException"]
        nodes = type_node.elts if isinstance(type_node, ast.Tuple) else [type_node]
        out: List[str] = []
        for sub in nodes:
            dotted = dotted_name(sub)
            if dotted:
                out.append(dotted.rsplit(".", 1)[-1])
        return out

    # -- aggregation -------------------------------------------------------

    def _written_prefix(self, chain: str) -> bool:
        """Is the chain, or any prefix of it, stored to in the loop?"""
        parts = chain.split(".")
        return any(
            ".".join(parts[:i]) in self.written for i in range(1, len(parts) + 1)
        )

    def _pick_alias(self, chain: str) -> Tuple[str, bool]:
        """A local name the hoist fix can bind the chain to, plus
        whether it is collision-free in this scope."""
        parts = chain.split(".")
        tail_parts = parts[1:] if parts[0] == "self" and len(parts) > 1 else parts
        candidates = [tail_parts[-1], "_".join(tail_parts), "_" + tail_parts[-1]]
        analyzer = self.analyzer
        taken = (
            analyzer.local_names
            | set(analyzer.bindings)
            | set(analyzer.module_symbols)
            | set(builtins.__dict__)
        )
        for cand in dict.fromkeys(candidates):
            if (
                cand != parts[0]
                and cand.isidentifier()
                and not cand.startswith("__")
                and cand not in taken
            ):
                return cand, True
        return candidates[0], False

    def _finish(self) -> None:
        fact = self.analyzer.fact
        if fact is None:
            return
        fact.loop_allocs.extend(self.allocs)
        fact.loop_try_excepts.extend(self.tries)
        loop_line = self.loop.lineno
        loop_col = self.loop.col_offset
        used_aliases: Set[str] = set()

        def record(
            out: List[Dict[str, Any]],
            key: str,
            name: str,
            sites: List[List[int]],
            extra: Dict[str, Any],
        ) -> None:
            alias, alias_ok = self._pick_alias(name)
            if alias_ok and alias in used_aliases:
                alias_ok = False
            if alias_ok:
                used_aliases.add(alias)
            entry = {
                "loop_line": loop_line,
                "loop_col": loop_col,
                key: name,
                "count": len(sites),
                "sites": sorted(sites),
                "alias": alias,
                "alias_ok": alias_ok,
            }
            entry.update(extra)
            out.append(entry)

        for chain, sites in sorted(self.attr_sites.items()):
            if len(sites) >= 2 and not self._written_prefix(chain):
                record(fact.loop_attr_repeats, "chain", chain, sites, {})
        for (name, kind), sites in sorted(self.global_sites.items()):
            if len(sites) >= 2 and not self._written_prefix(name):
                record(
                    fact.loop_global_lookups, "name", name, sites, {"kind": kind}
                )


class _ScaleCollector:
    """Dedicated walk of one function body for the SIM5xx scale facts.

    Two fact families come out of it:

    - **container ops** (methods only): every touch of a 2-part
      ``self.<attr>`` chain -- or of a plain local *alias* of one
      (``pending = self._pending``) -- classified by effect (grow,
      shrink, member, rebuild, rebind, iterate, read, escape, other).
      The lifecycle layer (:mod:`repro.lint.lifecycle`) aggregates
      these per class to decide whether long-lived state can shrink.
    - **pool flows** (SIM503): paired-API acquires bound to a local
      (``pkt = factory.mint(...)``) matched against their releases
      (``factory.recycle(pkt)``, ``handle.cancel()``) and escapes
      (passed on, returned, stored, captured), judged per control-flow
      path by branch depth.

    Loop depth counts ``for`` *and* ``while`` bodies plus comprehension
    bodies (the main walk's loop stack is ``for``-only); branch depth
    counts ``if`` arms and ``except`` handlers, so a release that only
    happens on some of those paths reads as *conditional*.  ``raise``
    and closure bodies are skipped for ops -- error paths may shuffle
    state freely -- but closure bodies still count as escapes for any
    pooled handle they reference.
    """

    def __init__(
        self,
        analyzer: FunctionAnalyzer,
        fact: FunctionFact,
        body: List[ast.stmt],
    ) -> None:
        self.analyzer = analyzer
        self.fact = fact
        self.body = body
        self.is_method = fact.is_method and analyzer.class_name is not None
        #: local name -> the ``self`` attribute it aliases.
        self.aliases: Dict[str, str] = {}
        self.loop_depth = 0
        self.branch_depth = 0
        self._in_finally = False
        #: local name -> acquire record (var bound from a paired API).
        self.pool_vars: Dict[str, Dict[str, Any]] = {}
        #: local name -> [(branch_depth, in_finally, line)] per release.
        self.releases: Dict[str, List[Tuple[int, bool, int]]] = {}
        #: local name -> count of frame-escaping uses.
        self.uses: Dict[str, int] = {}

    def run(self) -> None:
        for stmt in self.body:
            self._stmt(stmt)
        self._finish()

    # -- shared helpers ----------------------------------------------------

    def _self_attr(self, node: Optional[ast.AST]) -> Optional[str]:
        """The class attribute ``node`` denotes (directly or through a
        local alias), restricted to 2-part ``self.X`` chains."""
        if not self.is_method or node is None:
            return None
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            return node.attr
        if isinstance(node, ast.Name):
            return self.aliases.get(node.id)
        return None

    def _op(
        self,
        attr: str,
        op: str,
        method: str,
        node: ast.AST,
        key_src: Optional[str] = None,
        func: Optional[ast.Attribute] = None,
    ) -> None:
        rec: Dict[str, Any] = {
            "attr": attr,
            "op": op,
            "method": method,
            "line": node.lineno,  # type: ignore[attr-defined]
            "col": node.col_offset,  # type: ignore[attr-defined]
            "in_loop": self.loop_depth > 0,
            "key_src": key_src,
            "func_span": None,
            "recv_src": None,
        }
        if func is not None and getattr(func, "end_lineno", None) is not None:
            rec["func_span"] = [
                func.lineno,
                func.col_offset,
                func.end_lineno,
                func.end_col_offset,
            ]
            rec["recv_src"] = self.analyzer._src(func.value)
        self.fact.container_ops.append(rec)

    def _use(self, var: str) -> None:
        self.uses[var] = self.uses.get(var, 0) + 1

    def _note_release(self, var: str, node: ast.AST) -> None:
        self.releases.setdefault(var, []).append(
            (self.branch_depth, self._in_finally, node.lineno)  # type: ignore[attr-defined]
        )

    def _release_by_arg(self, node: ast.Call) -> None:
        if node.args and isinstance(node.args[0], ast.Name):
            self._note_release(node.args[0].id, node)

    def _closure_uses(self, node: ast.AST) -> None:
        """Pooled handles referenced inside a closure body escape into
        it; nothing else in a closure is this walk's business."""
        for sub in ast.walk(node):
            if (
                isinstance(sub, ast.Name)
                and isinstance(sub.ctx, ast.Load)
                and sub.id in self.pool_vars
            ):
                self._use(sub.id)

    # -- statement walk ----------------------------------------------------

    def _stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            self._assign(stmt.targets, stmt.value)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._assign([stmt.target], stmt.value)
        elif isinstance(stmt, ast.AugAssign):
            self._augassign(stmt)
            self._expr(stmt.value)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Subscript):
                    attr = self._self_attr(target.value)
                    if attr is not None:
                        self._op(attr, "shrink", "delitem", target)
                        self._expr(target.slice)
                        continue
                if isinstance(target, ast.Name):
                    self.aliases.pop(target.id, None)
                else:
                    self._expr(target)
        elif isinstance(stmt, ast.Expr):
            self._expr(stmt.value)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                attr = self._self_attr(stmt.value)
                if attr is not None:
                    self._op(attr, "escape", "return", stmt.value)
                elif (
                    isinstance(stmt.value, ast.Name)
                    and stmt.value.id in self.pool_vars
                ):
                    self._use(stmt.value.id)
                else:
                    self._expr(stmt.value)
        elif isinstance(stmt, ast.If):
            if not isinstance(stmt.test, ast.Name):
                self._expr(stmt.test)  # bare-Name truthiness is not a use
            self.branch_depth += 1
            try:
                for sub in stmt.body:
                    self._stmt(sub)
                for sub in stmt.orelse:
                    self._stmt(sub)
            finally:
                self.branch_depth -= 1
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            attr = self._self_attr(stmt.iter)
            if attr is not None:
                self._op(attr, "iterate", "for", stmt.iter)
            else:
                self._expr(stmt.iter)
            for sub in ast.walk(stmt.target):
                if isinstance(sub, ast.Name):
                    self.aliases.pop(sub.id, None)
            self.loop_depth += 1
            try:
                for sub in stmt.body:
                    self._stmt(sub)
            finally:
                self.loop_depth -= 1
            for sub in stmt.orelse:
                self._stmt(sub)
        elif isinstance(stmt, ast.While):
            self.loop_depth += 1
            try:
                self._expr(stmt.test)
                for sub in stmt.body:
                    self._stmt(sub)
            finally:
                self.loop_depth -= 1
            for sub in stmt.orelse:
                self._stmt(sub)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._expr(item.context_expr)
            for sub in stmt.body:
                self._stmt(sub)
        elif isinstance(stmt, ast.Try):
            for sub in stmt.body:
                self._stmt(sub)
            self.branch_depth += 1
            try:
                for handler in stmt.handlers:
                    for sub in handler.body:
                        self._stmt(sub)
            finally:
                self.branch_depth -= 1
            for sub in stmt.orelse:
                self._stmt(sub)
            previous = self._in_finally
            self._in_finally = True
            try:
                for sub in stmt.finalbody:
                    self._stmt(sub)
            finally:
                self._in_finally = previous
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self._closure_uses(stmt)
        elif isinstance(stmt, ast.Assert):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._expr(child)
        # Raise/Import/Global/Pass/Break/Continue/ClassDef: error paths
        # and declarations record nothing here.

    def _assign(self, targets: List[ast.expr], value: ast.expr) -> None:
        single = targets[0] if len(targets) == 1 else None
        if isinstance(single, ast.Name):
            if isinstance(value, ast.Attribute) and isinstance(
                value.ctx, ast.Load
            ):
                alias_of = self._self_attr(value)
                if alias_of is not None:
                    if single.id in self.pool_vars:
                        self._use(single.id)
                    self.aliases[single.id] = alias_of
                    return
            self.aliases.pop(single.id, None)
            if (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Attribute)
                and value.func.attr in _POOL_ACQUIRE_ATTRS
            ):
                if single.id in self.pool_vars:
                    self._use(single.id)  # overwritten before release
                self.pool_vars[single.id] = {
                    "line": value.lineno,
                    "col": value.col_offset,
                    "attr": value.func.attr,
                    "depth": self.branch_depth,
                }
                self._walk_args(value, skip_first=False)
                return
        for target in targets:
            if isinstance(target, ast.Attribute):
                if (
                    self.is_method
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    self._op(target.attr, "rebind", "=", target)
            elif isinstance(target, ast.Subscript):
                attr = self._self_attr(target.value)
                if attr is not None:
                    self._op(
                        attr,
                        "grow",
                        "setitem",
                        target,
                        key_src=self.analyzer._src(target.slice),
                    )
                    self._expr(target.slice)
                else:
                    self._expr(target)
            elif isinstance(target, ast.Name):
                if target.id in self.pool_vars:
                    self._use(target.id)
                self.aliases.pop(target.id, None)
            elif isinstance(target, (ast.Tuple, ast.List)):
                for element in target.elts:
                    if isinstance(element, ast.Name):
                        self.aliases.pop(element.id, None)
        self._expr(value)

    def _augassign(self, stmt: ast.AugAssign) -> None:
        target = stmt.target
        if not isinstance(stmt.op, ast.Add):
            return
        if isinstance(target, ast.Attribute):
            attr = self._self_attr(target)
            if attr is not None:
                self._op(attr, "grow", "iadd", target)
        elif isinstance(target, ast.Subscript):
            attr = self._self_attr(target.value)
            if attr is not None:
                self._op(
                    attr,
                    "grow",
                    "setitem",
                    target,
                    key_src=self.analyzer._src(target.slice),
                )
                self._expr(target.slice)

    # -- expression walk ---------------------------------------------------

    def _expr(self, node: Optional[ast.AST]) -> None:
        if node is None:
            return
        if isinstance(node, ast.Call):
            self._call(node)
            return
        if isinstance(node, ast.Compare):
            for op, comparator in zip(node.ops, node.comparators):
                if isinstance(op, (ast.In, ast.NotIn)):
                    attr = self._self_attr(comparator)
                    if attr is not None:
                        self._op(attr, "member", "in", comparator)
            self._expr(node.left)
            for comparator in node.comparators:
                if self._self_attr(comparator) is None:
                    self._expr(comparator)
            return
        if isinstance(node, ast.Subscript):
            attr = self._self_attr(node.value)
            if attr is not None:
                self._op(attr, "read", "getitem", node)
                self._expr(node.slice)
                return
            self._expr(node.value)
            self._expr(node.slice)
            return
        if isinstance(
            node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
        ):
            self.loop_depth += 1
            try:
                for generator in node.generators:
                    attr = self._self_attr(generator.iter)
                    if attr is not None:
                        self._op(attr, "iterate", "comprehension", generator.iter)
                    else:
                        self._expr(generator.iter)
                    for condition in generator.ifs:
                        self._expr(condition)
                if isinstance(node, ast.DictComp):
                    self._expr(node.key)
                    self._expr(node.value)
                else:
                    self._expr(node.elt)
            finally:
                self.loop_depth -= 1
            return
        if isinstance(node, ast.Lambda):
            self._closure_uses(node.body)
            return
        if isinstance(node, ast.Name):
            if isinstance(node.ctx, ast.Load) and node.id in self.pool_vars:
                self._use(node.id)
            return
        if isinstance(node, ast.Attribute):
            if isinstance(node.value, ast.Name):
                return  # `x.field` / `self.x`: a field read, not an escape
            self._expr(node.value)
            return
        if isinstance(node, ast.Starred):
            self._expr(node.value)
            return
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._expr(child)

    def _walk_args(self, node: ast.Call, skip_first: bool) -> None:
        args = node.args[1:] if skip_first and node.args else node.args
        for arg in args:
            attr = self._self_attr(arg)
            if attr is not None:
                self._op(attr, "escape", "arg", arg)
            else:
                self._expr(arg)
        for keyword in node.keywords:
            attr = self._self_attr(keyword.value)
            if attr is not None:
                self._op(attr, "escape", "arg", keyword.value)
            else:
                self._expr(keyword.value)

    def _call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            recv_attr = self._self_attr(func.value)
            method = func.attr
            if recv_attr is not None:
                if method in _GROW_METHODS:
                    key_src = None
                    if method == "setdefault" and node.args:
                        key_src = self.analyzer._src(node.args[0])
                    self._op(
                        recv_attr, "grow", method, node, key_src=key_src, func=func
                    )
                elif method in _SHRINK_METHODS:
                    self._op(recv_attr, "shrink", method, node, func=func)
                elif method in _LINEAR_METHODS:
                    self._op(recv_attr, "member", method, node, func=func)
                elif method == "copy":
                    self._op(recv_attr, "rebuild", "copy", node, func=func)
                elif method in _POOL_RELEASE_ATTRS:
                    self._release_by_arg(node)
                elif method in ("get", "keys", "values", "items"):
                    self._op(recv_attr, "read", method, node)
                else:
                    self._op(recv_attr, "other", method, node)
                self._walk_args(node, skip_first=method in _POOL_RELEASE_ATTRS)
                return
            if (
                isinstance(func.value, ast.Name)
                and func.value.id in self.pool_vars
                and method in _POOL_RELEASE_ATTRS
            ):
                self._note_release(func.value.id, node)
                self._walk_args(node, skip_first=False)
                return
            # Module-qualified heap ops: heapq.heappush(self._pending, x).
            first_attr = self._self_attr(node.args[0]) if node.args else None
            if first_attr is not None and method in _HEAP_GROW_FUNCS:
                self._op(first_attr, "grow", method, node)
                self._walk_args(node, skip_first=True)
                return
            if first_attr is not None and method in (
                _HEAP_SHRINK_FUNCS | _REBUILD_CALLS
            ):
                kind = "shrink" if method in _HEAP_SHRINK_FUNCS else "rebuild"
                self._op(first_attr, kind, method, node)
                self._walk_args(node, skip_first=True)
                return
            if method in _POOL_RELEASE_ATTRS:
                self._release_by_arg(node)
                self._expr(func.value)
                self._walk_args(node, skip_first=True)
                return
            self._expr(func.value)
            self._walk_args(node, skip_first=False)
            return
        dotted = dotted_name(func)
        tail = dotted.rsplit(".", 1)[-1] if dotted else ""
        first = node.args[0] if node.args else None
        first_attr = self._self_attr(first)
        if first_attr is not None and tail in _HEAP_GROW_FUNCS:
            self._op(first_attr, "grow", tail, node)
            self._walk_args(node, skip_first=True)
            return
        if first_attr is not None and tail in _HEAP_SHRINK_FUNCS:
            self._op(first_attr, "shrink", tail, node)
            self._walk_args(node, skip_first=True)
            return
        if first_attr is not None and tail in _REBUILD_CALLS:
            self._op(first_attr, "rebuild", tail, node)
            self._walk_args(node, skip_first=True)
            return
        if first_attr is not None and tail == "len":
            self._op(first_attr, "read", "len", node)
            return
        if tail in _POOL_RELEASE_ATTRS:
            self._release_by_arg(node)
            self._walk_args(node, skip_first=True)
            return
        if not isinstance(func, (ast.Name, ast.Attribute)):
            self._expr(func)
        self._walk_args(node, skip_first=False)

    # -- aggregation -------------------------------------------------------

    def _finish(self) -> None:
        for var, acquire in sorted(self.pool_vars.items()):
            releases = self.releases.get(var, [])
            if any(
                in_finally or depth <= acquire["depth"]
                for depth, in_finally, _ in releases
            ):
                released = "always"
            elif releases:
                released = "conditional"
            else:
                released = "never"
            self.fact.pool_flows.append(
                {
                    "var": var,
                    "line": acquire["line"],
                    "col": acquire["col"],
                    "attr": acquire["attr"],
                    "api": (
                        "event-handle"
                        if acquire["attr"].endswith("cancellable")
                        else "object-pool"
                    ),
                    "escapes": self.uses.get(var, 0) > 0,
                    "released": released,
                    "release_lines": sorted(line for _, _, line in releases),
                }
            )
