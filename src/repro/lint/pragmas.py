"""``# simlint: allow-<rule>`` pragma parsing.

A pragma comment suppresses named rules *on its own line*::

    import random  # simlint: allow-global-random
    t0 = time.perf_counter()  # simlint: allow-wallclock

Several rules may be allowed at once, separated by commas or spaces::

    # simlint: allow-wallclock, allow-global-random

Parsing uses :mod:`tokenize` rather than a regex over raw lines so a
``# simlint:`` sequence inside a string literal is never mistaken for a
pragma.
"""

from __future__ import annotations

import io
import re
import tokenize
from typing import Dict, List, NamedTuple, Set

__all__ = ["Pragma", "parse_pragmas"]

_PRAGMA_RE = re.compile(r"#\s*simlint\s*:\s*(?P<body>.*)$")
_ALLOW_RE = re.compile(r"^allow-(?P<name>[a-z0-9][a-z0-9-]*)$")


class Pragma(NamedTuple):
    """One ``allow-`` directive: the rule name it names and where."""

    line: int
    name: str
    valid: bool  # False for a directive that is not ``allow-<name>``


def parse_pragmas(source: str) -> List[Pragma]:
    """All simlint pragma directives in ``source``, in file order.

    Tokenization errors (possible on files that do not parse anyway)
    yield an empty list -- the caller reports the parse failure itself.
    """
    pragmas: List[Pragma] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return pragmas
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        match = _PRAGMA_RE.search(tok.string)
        if match is None:
            continue
        line = tok.start[0]
        body = match.group("body").strip()
        directives = [d for d in re.split(r"[,\s]+", body) if d]
        if not directives:
            pragmas.append(Pragma(line, "", False))
            continue
        for directive in directives:
            allow = _ALLOW_RE.match(directive)
            if allow is None:
                pragmas.append(Pragma(line, directive, False))
            else:
                pragmas.append(Pragma(line, allow.group("name"), True))
    return pragmas


def allowed_by_line(pragmas: List[Pragma]) -> Dict[int, Set[str]]:
    """Map line number -> set of rule names allowed on that line."""
    allowed: Dict[int, Set[str]] = {}
    for pragma in pragmas:
        if pragma.valid:
            allowed.setdefault(pragma.line, set()).add(pragma.name)
    return allowed
