"""Container-lifecycle aggregation + the scale scope under SIM5xx.

The SIM5xx scale-soundness family asks questions no single function can
answer: *can this attribute ever shrink?* is a property of the whole
class, and *does growth happen under load?* is a property of the call
graph.  This module folds the per-function ``container_ops`` facts
(:mod:`repro.lint.dataflow`) and the per-class ``containers`` map
(:mod:`repro.lint.projectmodel`) into two shared artifacts:

- :class:`ClassLifecycle` / :class:`AttrLifecycle` -- for every
  long-lived container attribute, the grow/shrink/member/rebuild sites
  across *all* methods of the owning class;
- the **scale scope** -- the closure of functions that run per-packet
  or per-tick at scale.  Its roots are the hot-path modules (reusing
  :data:`repro.lint.hotpath.HOT_PATH_PATTERNS`) plus every function
  that schedules engine callbacks (a self-re-arming heartbeat runs
  forever even though no hot module calls it).  Edges are the
  approximate call graph's, extended with *synthesised dispatch
  edges*: when ``__init__`` stores ``self.X = SomeClass(...)`` and a
  method calls ``self.X.m(...)``, the resolver cannot see through the
  attribute, but the container fact's constructor origin can --
  ``(module_of(SomeClass), "SomeClass.m")`` joins the closure.

Unlike the SIM3xx hot-path pass there is **no sanctioned exemption**:
``obs/`` may be allowed to spend time, but memory it never returns is
still a leak at 1024 endpoints.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Set, Tuple
from weakref import WeakKeyDictionary

from repro.lint.callgraph import CallGraph, Node
from repro.lint.dataflow import FunctionFact
from repro.lint.hotpath import HOT_PATH_PATTERNS
from repro.lint.projectmodel import ModuleSummary, ProjectModel

__all__ = [
    "AttrLifecycle",
    "ClassLifecycle",
    "ScaleAnalysis",
    "analyze_scale",
]

#: A container op site: (method qualname, raw op record).
OpSite = Tuple[str, Dict[str, Any]]


@dataclass
class AttrLifecycle:
    """Every touch of one long-lived container attribute, class-wide."""

    attr: str
    #: The ``containers`` fact from ``__init__``: kind / origin /
    #: value_span / bounded / line.
    info: Dict[str, Any]
    grows: List[OpSite] = field(default_factory=list)
    shrinks: List[OpSite] = field(default_factory=list)
    members: List[OpSite] = field(default_factory=list)
    rebuilds: List[OpSite] = field(default_factory=list)
    rebinds: List[OpSite] = field(default_factory=list)
    iterates: List[OpSite] = field(default_factory=list)
    reads: List[OpSite] = field(default_factory=list)
    escapes: List[OpSite] = field(default_factory=list)
    others: List[OpSite] = field(default_factory=list)

    _BUCKETS = {
        "grow": "grows",
        "shrink": "shrinks",
        "member": "members",
        "rebuild": "rebuilds",
        "rebind": "rebinds",
        "iterate": "iterates",
        "read": "reads",
        "escape": "escapes",
        "other": "others",
    }

    def record(self, qualname: str, op: Dict[str, Any]) -> None:
        bucket = self._BUCKETS.get(op.get("op", ""), "others")
        getattr(self, bucket).append((qualname, op))

    @property
    def bounded(self) -> bool:
        return bool(self.info.get("bounded"))

    @property
    def kind(self) -> Optional[str]:
        return self.info.get("kind")


@dataclass
class ClassLifecycle:
    """One class's container attributes plus its method facts."""

    module: str
    name: str
    summary: ModuleSummary
    attrs: Dict[str, AttrLifecycle] = field(default_factory=dict)
    methods: Dict[str, FunctionFact] = field(default_factory=dict)

    @property
    def node_prefix(self) -> str:
        return f"{self.name}."


@dataclass
class ScaleAnalysis:
    """The shared SIM5xx artifact: lifecycles + the scale closure."""

    #: (module, class_name) -> lifecycle, deterministic iteration via
    #: :meth:`classes`.
    lifecycles: Dict[Tuple[str, str], ClassLifecycle]
    #: Scale-scope roots (hot modules + schedulers).
    roots: Set[Node]
    #: Reachable node -> witness root.
    reachable: Dict[Node, Node]
    #: Synthesised ``self.X.m()`` dispatch edges (for provenance).
    dispatch_edges: Dict[Node, Set[Node]]

    def classes(self) -> Iterator[ClassLifecycle]:
        for key in sorted(self.lifecycles):
            yield self.lifecycles[key]

    def is_scale_hot(self, module: str, qualname: str) -> bool:
        return (module, qualname) in self.reachable


_CACHE: "WeakKeyDictionary[CallGraph, ScaleAnalysis]" = WeakKeyDictionary()


def _collect_lifecycles(
    model: ProjectModel,
) -> Dict[Tuple[str, str], ClassLifecycle]:
    lifecycles: Dict[Tuple[str, str], ClassLifecycle] = {}
    for summary in model.summaries():
        for class_name, info in sorted(summary.classes.items()):
            containers = info.get("containers") or {}
            if not containers:
                continue
            lifecycle = ClassLifecycle(
                module=summary.module, name=class_name, summary=summary
            )
            for attr, attr_info in sorted(containers.items()):
                lifecycle.attrs[attr] = AttrLifecycle(attr=attr, info=attr_info)
            prefix = lifecycle.node_prefix
            for qualname, fact in summary.functions.items():
                if not qualname.startswith(prefix):
                    continue
                lifecycle.methods[qualname] = fact
                for op in fact.container_ops:
                    attr_cycle = lifecycle.attrs.get(op.get("attr", ""))
                    if attr_cycle is None:
                        continue
                    # __init__ populates; it runs once per object, so
                    # its grows/rebinds are construction, not lifetime.
                    if qualname.endswith(".__init__"):
                        continue
                    attr_cycle.record(qualname, op)
            lifecycles[(summary.module, class_name)] = lifecycle
    return lifecycles


def _dispatch_edges(
    model: ProjectModel,
    lifecycles: Dict[Tuple[str, str], ClassLifecycle],
) -> Dict[Node, Set[Node]]:
    """Synthesise ``self.X.m()`` edges through constructor origins."""
    edges: Dict[Node, Set[Node]] = {}
    for lifecycle in (lifecycles[key] for key in sorted(lifecycles)):
        targets: Dict[str, Tuple[ModuleSummary, str]] = {}
        for attr, attr_cycle in lifecycle.attrs.items():
            origin = attr_cycle.info.get("origin")
            if not origin:
                continue
            resolved = model.resolve_symbol(origin)
            if resolved is None:
                continue
            target_summary, symbol = resolved
            if symbol and target_summary.symbols.get(symbol) == "class":
                targets[attr] = (target_summary, symbol)
        if not targets:
            continue
        for qualname, fact in lifecycle.methods.items():
            caller: Node = (lifecycle.module, qualname)
            for call in fact.calls:
                if call.resolved is not None:
                    continue
                parts = call.raw.split(".")
                if len(parts) != 3 or parts[0] != "self":
                    continue
                target = targets.get(parts[1])
                if target is None:
                    continue
                target_summary, symbol = target
                callee_qualname = f"{symbol}.{parts[2]}"
                if callee_qualname not in target_summary.functions:
                    continue
                callee: Node = (target_summary.module, callee_qualname)
                edges.setdefault(caller, set()).add(callee)
    return edges


def _scale_roots(model: ProjectModel, graph: CallGraph) -> Set[Node]:
    roots = graph.nodes_in_modules(HOT_PATH_PATTERNS)
    for summary in model.summaries():
        for qualname, fact in summary.functions.items():
            if fact.schedule_calls:
                roots.add((summary.module, qualname))
    return roots


def _closure(
    graph: CallGraph,
    extra_edges: Dict[Node, Set[Node]],
    roots: Set[Node],
) -> Dict[Node, Node]:
    witness: Dict[Node, Node] = {}
    queue: deque = deque()
    for root in sorted(roots):
        if root not in witness:
            witness[root] = root
            queue.append(root)
    while queue:
        node = queue.popleft()
        successors = set(graph.edges.get(node, ()))
        successors.update(extra_edges.get(node, ()))
        for successor in sorted(successors):
            if successor not in witness:
                witness[successor] = witness[node]
                queue.append(successor)
    return witness


def analyze_scale(model: ProjectModel, graph: CallGraph) -> ScaleAnalysis:
    """Compute (once per call graph) the shared SIM5xx analysis."""
    cached = _CACHE.get(graph)
    if cached is not None:
        return cached
    lifecycles = _collect_lifecycles(model)
    dispatch = _dispatch_edges(model, lifecycles)
    roots = _scale_roots(model, graph)
    analysis = ScaleAnalysis(
        lifecycles=lifecycles,
        roots=roots,
        reachable=_closure(graph, dispatch, roots),
        dispatch_edges=dispatch,
    )
    _CACHE[graph] = analysis
    return analysis
