"""Samplers for the workload models.

- :class:`BoundedPareto` -- the heavy-tailed size distribution the NPF
  benchmark (and Jain's methodology book, cited by the paper) recommends
  for internet-like traffic, truncated to a [low, high] range.
- :func:`pareto_interarrival` -- heavy-tailed gaps with a prescribed
  mean; aggregating many ON/OFF sources with Pareto periods is the
  classic construction of self-similar traffic.
- :class:`GopFrameSizes` -- MPEG-style group-of-pictures frame sizes:
  a repeating I/P/B pattern with per-type mean sizes and lognormal
  variation, clipped to the paper's [1 KB, 120 KB] frame range.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.sim.rng import RandomStream

__all__ = ["BoundedPareto", "GopFrameSizes", "pareto_interarrival"]


class BoundedPareto:
    """Pareto distribution truncated to ``[low, high]`` (inclusive).

    Sampling is by inversion of the truncated CDF.  ``alpha`` is the tail
    index; smaller alpha = heavier tail.  ``mean`` is the analytic mean of
    the *truncated* distribution, used to calibrate arrival rates exactly
    rather than empirically.
    """

    __slots__ = ("alpha", "low", "high", "_low_a", "_high_a")

    def __init__(self, alpha: float, low: float, high: float):
        if alpha <= 0:
            raise ValueError(f"alpha must be positive, got {alpha}")
        if not 0 < low < high:
            raise ValueError(f"need 0 < low < high, got [{low}, {high}]")
        self.alpha = alpha
        self.low = low
        self.high = high
        self._low_a = low**alpha
        self._high_a = high**alpha

    @property
    def mean(self) -> float:
        a, l, h = self.alpha, self.low, self.high
        if math.isclose(a, 1.0):
            # The a==1 limit of the general formula.
            return math.log(h / l) / (1.0 / l - 1.0 / h)
        num = (a / (a - 1.0)) * (l ** (1 - a) - h ** (1 - a))
        den = l**-a - h**-a
        return num / den

    def sample(self, rng: RandomStream) -> float:
        u = rng.random()
        # Inverse CDF of the bounded Pareto.
        value = (
            -((u * self._high_a - u * self._low_a - self._high_a) / (self._high_a * self._low_a))
        ) ** (-1.0 / self.alpha)
        # Guard against float round-off at the edges.
        if value < self.low:
            return self.low
        if value > self.high:
            return self.high
        return value

    def sample_int(self, rng: RandomStream) -> int:
        return max(int(self.low), min(int(self.high), round(self.sample(rng))))


def pareto_interarrival(rng: RandomStream, mean: float, alpha: float = 1.9) -> float:
    """A Pareto-distributed gap with the given mean.

    Uses an (unbounded) Pareto with tail index ``alpha > 1`` and scale
    chosen so the mean comes out exactly; with ``1 < alpha < 2`` the
    variance is infinite, which is what produces long-range dependence
    when many sources aggregate.
    """
    if mean <= 0:
        raise ValueError(f"mean must be positive, got {mean}")
    if alpha <= 1:
        raise ValueError(f"alpha must exceed 1 for a finite mean, got {alpha}")
    scale = mean * (alpha - 1.0) / alpha
    return scale * rng.random() ** (-1.0 / alpha)


class GopFrameSizes:
    """MPEG group-of-pictures frame-size generator.

    ``pattern`` is the repeating frame-type string (default the common
    12-frame ``IBBPBBPBBPBB``).  Frame sizes are the per-type weight,
    scaled so the long-run mean matches ``mean_frame_bytes``, with
    lognormal jitter of ``sigma`` and clipping to [low, high] -- the
    paper's frame range is [1 KB, 120 KB].

    The generator is stateful (cycles through the GoP); one instance per
    video stream.
    """

    #: Relative sizes of I, P and B frames (roughly 5:3:1 for MPEG-4).
    TYPE_WEIGHTS = {"I": 5.0, "P": 3.0, "B": 1.0}

    def __init__(
        self,
        mean_frame_bytes: float,
        *,
        pattern: str = "IBBPBBPBBPBB",
        sigma: float = 0.25,
        low: int = 1024,
        high: int = 122_880,
        start_index: int = 0,
    ):
        if mean_frame_bytes <= 0:
            raise ValueError(f"mean frame size must be positive, got {mean_frame_bytes}")
        if not pattern or any(c not in self.TYPE_WEIGHTS for c in pattern):
            raise ValueError(f"pattern must be a non-empty I/P/B string, got {pattern!r}")
        if not 0 < low < high:
            raise ValueError(f"need 0 < low < high, got [{low}, {high}]")
        self.pattern = pattern
        self.sigma = sigma
        self.low = low
        self.high = high
        weights: Sequence[float] = [self.TYPE_WEIGHTS[c] for c in pattern]
        mean_weight = sum(weights) / len(weights)
        # Lognormal with mu = -sigma^2/2 has mean 1, so the scale below
        # keeps the long-run mean at mean_frame_bytes (before clipping).
        self._scales = [w / mean_weight * mean_frame_bytes for w in weights]
        # Streams join mid-GoP in reality; a caller-chosen start phase keeps
        # an *ensemble* of short-lived streams from all opening on the big
        # I frame (which would bias the offered load upward by ~2x).
        self._index = start_index % len(pattern)

    def next_frame(self, rng: RandomStream) -> int:
        scale = self._scales[self._index]
        self._index = (self._index + 1) % len(self.pattern)
        jitter = rng.lognormvariate(-self.sigma**2 / 2.0, self.sigma)
        size = round(scale * jitter)
        return max(self.low, min(self.high, size))

    @property
    def frame_type(self) -> str:
        """Type of the *next* frame :meth:`next_frame` will produce."""
        return self.pattern[self._index]
