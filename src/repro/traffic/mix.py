"""The Table 1 workload: four classes, 25% of the offered load each.

:func:`build_mix` attaches to *every* host of a fabric:

- a :class:`~repro.traffic.control.ControlSource` at
  ``load * share_control`` of the link rate;
- enough :class:`~repro.traffic.multimedia.VideoStream` instances (to
  balanced destinations) to fill ``load * share_multimedia``, each
  admitted with its average rate reserved;
- one :class:`~repro.traffic.selfsimilar.SelfSimilarSource` each for the
  *best-effort* and *background* classes, at ``load * share`` apiece.

The two best-effort classes are identical except for the deadline-
generation weight of their aggregated flow records (default 2:1), which
is what lets the EDF architectures differentiate them in Figure 4.

Video destinations use a balanced rotation (stream ``s`` of host ``h``
targets ``(h + 1 + s) mod n``) so every host *receives* the same
multimedia load and per-host reservations always fit; control and
best-effort destinations are uniform random per message, as in the NPF
benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

from repro.network.fabric import Fabric
from repro.sim import units
from repro.sim.rng import RandomStreams
from repro.traffic.base import TrafficSource
from repro.traffic.control import ControlSource
from repro.traffic.multimedia import VideoStream
from repro.traffic.selfsimilar import SelfSimilarSource

__all__ = ["TrafficMix", "TrafficMixConfig", "build_mix", "CLASS_NAMES"]

#: The four traffic classes of Table 1, in presentation order.
CLASS_NAMES = ("control", "multimedia", "best-effort", "background")


@dataclass(frozen=True)
class TrafficMixConfig:
    """Knobs of the Table 1 workload.  Defaults follow the paper."""

    #: Offered load per host as a fraction of the link bandwidth.
    load: float = 1.0
    #: Bandwidth share of each class (Table 1: 25% each).
    share_control: float = 0.25
    share_multimedia: float = 0.25
    share_best_effort: float = 0.25
    share_background: float = 0.25
    #: Control message sizes (Table 1: 128 B - 2 KB).
    control_size_range: tuple[int, int] = (128, 2048)
    #: Nominal per-stream video rate.  The paper quotes "3 Mbyte/s MPEG-4
    #: traces" but its own Section 3.1 example uses 400 KB/s streams with
    #: frames of 1-120 KB; we default between the two (1.5 MB/s, i.e. a
    #: 60 KB mean frame at 25 fps) so frame sizes actually *span* the
    #: paper's [1 KB, 120 KB] range instead of pinning at the cap.
    video_stream_rate_bytes_per_ns: float = 1.5e6 / units.S
    video_fps: float = 25.0
    #: Desired per-frame latency (Section 3.1: 10 ms).
    video_target_latency_ns: int = units.ms(10)
    video_smoothing: bool = True
    video_gop_pattern: str = "IBBPBBPBBPBB"
    #: Deadline-bandwidth weights of the two best-effort classes; their
    #: ratio is the throughput ratio EDF enforces under saturation.
    weight_best_effort: float = 2.0
    weight_background: float = 1.0
    #: Self-similar burst parameters (Pareto sizes over 128 B - 100 KB).
    burst_size_alpha: float = 1.3
    burst_size_range: tuple[int, int] = (128, 102_400)
    burst_gap_alpha: float = 1.9
    #: Optional class -> VC assignment.  None = the paper's two-VC layout
    #: (control+multimedia on VC0, best-effort classes on VC1).  The
    #: Section 6 counterfactual maps each class to its own priority VC on
    #: a fabric built with ``FabricParams(n_vcs=4)``.
    vc_map: Optional[Mapping[str, int]] = None

    def __post_init__(self) -> None:
        if not 0 < self.load <= 2.0:
            raise ValueError(f"load should be a link fraction in (0, 2], got {self.load}")
        total = (
            self.share_control
            + self.share_multimedia
            + self.share_best_effort
            + self.share_background
        )
        if total > 1.0 + 1e-9:
            raise ValueError(f"class shares sum to {total}, must be <= 1")

    def class_rate(self, tclass: str, link_bytes_per_ns: float) -> float:
        """Offered rate of one class at one host, in bytes/ns."""
        share = {
            "control": self.share_control,
            "multimedia": self.share_multimedia,
            "best-effort": self.share_best_effort,
            "background": self.share_background,
        }[tclass]
        return self.load * share * link_bytes_per_ns


@dataclass
class TrafficMix:
    """All sources attached to a fabric, grouped by class."""

    config: TrafficMixConfig
    sources: Dict[str, List[TrafficSource]] = field(default_factory=dict)

    def all_sources(self) -> List[TrafficSource]:
        return [s for group in self.sources.values() for s in group]

    def start(self) -> None:
        for source in self.all_sources():
            source.start()

    def stop(self) -> None:
        for source in self.all_sources():
            source.stop()

    def offered_bytes(self, tclass: str) -> int:
        return sum(s.bytes_generated for s in self.sources.get(tclass, []))


def build_mix(
    fabric: Fabric,
    streams: RandomStreams,
    config: TrafficMixConfig = TrafficMixConfig(),
) -> TrafficMix:
    """Attach the full Table 1 workload to every host of ``fabric``."""
    link_bw = fabric.params.bytes_per_ns
    n_hosts = fabric.topology.n_hosts
    if n_hosts < 2:
        raise ValueError("the mix needs at least two hosts")
    mix = TrafficMix(config=config)
    sources = mix.sources
    for name in CLASS_NAMES:
        sources[name] = []

    # Deadline-generation bandwidths of the aggregated best-effort records:
    # the weights split the classes' *aggregate offered share* of the link.
    # This matters: a class offered more than its deadline bandwidth has a
    # virtual clock that runs ahead of real time, pushing its deadlines ever
    # further into the future -- that is precisely how EDF throttles it in
    # favour of the heavier class under saturation (Figure 4).  Normalizing
    # to the full link rate instead would leave both clocks anchored at
    # "now" and the weights would never bite.
    weight_total = config.weight_best_effort + config.weight_background
    be_aggregate = config.class_rate("best-effort", link_bw) + config.class_rate(
        "background", link_bw
    )
    deadline_bw = {
        "best-effort": config.weight_best_effort / weight_total * be_aggregate,
        "background": config.weight_background / weight_total * be_aggregate,
    }

    vc_of = (config.vc_map or {}).get

    for host in range(n_hosts):
        control_rate = config.class_rate("control", link_bw)
        if control_rate > 0:
            sources["control"].append(
                ControlSource(
                    fabric,
                    host,
                    control_rate,
                    streams.stream(f"control.h{host}"),
                    size_range=config.control_size_range,
                    vc=vc_of("control"),
                )
            )

        video_rate = config.class_rate("multimedia", link_bw)
        if video_rate > 0:
            n_streams = max(1, round(video_rate / config.video_stream_rate_bytes_per_ns))
            per_stream = video_rate / n_streams
            for s in range(n_streams):
                dst = (host + 1 + s) % n_hosts
                if dst == host:  # only when n_streams >= n_hosts
                    dst = (dst + 1) % n_hosts
                sources["multimedia"].append(
                    VideoStream(
                        fabric,
                        host,
                        dst,
                        streams.stream(f"video.h{host}.s{s}"),
                        rate_bytes_per_ns=per_stream,
                        fps=config.video_fps,
                        target_latency_ns=config.video_target_latency_ns,
                        smoothing=config.video_smoothing,
                        gop_pattern=config.video_gop_pattern,
                        vc=vc_of("multimedia"),
                    )
                )

        for tclass in ("best-effort", "background"):
            rate = config.class_rate(tclass, link_bw)
            if rate > 0:
                sources[tclass].append(
                    SelfSimilarSource(
                        fabric,
                        host,
                        rate,
                        streams.stream(f"{tclass}.h{host}"),
                        tclass=tclass,
                        deadline_bw_bytes_per_ns=deadline_bw[tclass],
                        size_alpha=config.burst_size_alpha,
                        size_range=config.burst_size_range,
                        gap_alpha=config.burst_gap_alpha,
                        vc=vc_of(tclass, 1),
                    )
                )
    return mix
