"""Self-similar best-effort traffic (Table 1, rows 3-4).

"Self-similar internet-like traffic ... composed of bursts of packets
heading to the same destination.  The packet size is governed by a
Pareto distribution" (Section 4.2, following Jain's methodology book).

A :class:`SelfSimilarSource` emits application messages ("bursts") whose
sizes follow a bounded Pareto over [128 B, 100 KB]; the NIC segments a
burst into back-to-back MTU packets to one destination.  Burstiness
comes from the heavy-tailed *sizes* (ON periods); each burst is followed
by a gap proportional to the burst it compensates (``size/rate``,
optionally stretched by a heavy-tailed factor in ``gap_mode="pareto"``).

Gap policy matters for calibration: with independent Pareto gaps the
*realized* rate over a finite window systematically overshoots the
nominal rate (the sample mean of an infinite-variance Pareto converges
from below), which would silently raise the offered load of every
experiment by tens of percent.  The default ``gap_mode="compensating"``
pins the long-run rate exactly -- after emitting an ``s``-byte burst the
source is idle for ``s/rate`` -- while keeping the heavy-tailed ON-period
distribution that produces self-similar aggregates.  The workload
calibration tests quantify both modes.

Traffic rides the **unregulated VC**: no bandwidth reservation, no
delivery guarantee.  Deadlines are still stamped, from a per-host
*aggregated flow record* whose ``BW_avg`` is the class's configured
weight share of the link -- Section 3's "several aggregated flows, each
one with a different bandwidth to compute deadlines".  Under contention
the EDF fabric then serves the classes in proportion to those weights,
which is exactly the differentiation Figure 4 demonstrates (and which
the Traditional architecture cannot provide).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.constants import VC_BEST_EFFORT
from repro.core.deadline import RateBasedStamper
from repro.core.flow import FlowKind, FlowState
from repro.network.fabric import Fabric
from repro.sim.rng import RandomStream
from repro.traffic.base import TrafficSource
from repro.traffic.distributions import BoundedPareto, pareto_interarrival

__all__ = ["SelfSimilarSource"]


class SelfSimilarSource(TrafficSource):
    """Heavy-tailed burst generator for one best-effort class at one host."""

    def __init__(
        self,
        fabric: Fabric,
        src: int,
        rate_bytes_per_ns: float,
        rng: RandomStream,
        *,
        tclass: str = "best-effort",
        deadline_bw_bytes_per_ns: Optional[float] = None,
        size_alpha: float = 1.3,
        size_range: tuple[int, int] = (128, 102_400),
        gap_alpha: float = 1.9,
        gap_mode: str = "compensating",
        vc: int = VC_BEST_EFFORT,
    ):
        super().__init__(fabric, src, f"{tclass}@h{src}", rng)
        if rate_bytes_per_ns <= 0:
            raise ValueError(f"rate must be positive, got {rate_bytes_per_ns}")
        if gap_mode not in ("compensating", "pareto"):
            raise ValueError(f"gap_mode must be 'compensating' or 'pareto', got {gap_mode!r}")
        self.rate = rate_bytes_per_ns
        self.tclass = tclass
        self.vc = vc
        self.gap_alpha = gap_alpha
        self.gap_mode = gap_mode
        self.sizes = BoundedPareto(size_alpha, *size_range)
        # Mean of the Pareto interarrival process, kept float so the
        # sampler is unbiased; the schedule sink rounds per sample.
        self.mean_gap_ns = self.sizes.mean / rate_bytes_per_ns  # simlint: allow-float-time-flow
        #: deadline-generation bandwidth of this class's aggregated record
        self.deadline_bw = (
            deadline_bw_bytes_per_ns
            if deadline_bw_bytes_per_ns is not None
            else fabric.params.bytes_per_ns
        )
        #: one aggregated record per (host, class): a single virtual clock
        self.stamper = RateBasedStamper(self.deadline_bw)
        self._flows: Dict[int, FlowState] = {}

    def _flow_to(self, dst: int) -> FlowState:
        flow = self._flows.get(dst)
        if flow is None:
            flow = self.fabric.open_flow(
                self.src,
                dst,
                self.tclass,
                kind=FlowKind.RATE,
                vc=self.vc,
                bw_bytes_per_ns=self.deadline_bw,
            )
            # Aggregated class record: all destinations share one clock.
            flow.stamper = self.stamper
            self._flows[dst] = flow
        return flow

    def _pick_dst(self) -> int:
        n = self.fabric.topology.n_hosts
        dst = self.rng.randrange(n - 1)
        return dst if dst < self.src else dst + 1

    def _emit(self) -> Optional[float]:
        size = self.sizes.sample_int(self.rng)
        flow = self._flow_to(self._pick_dst())
        self.fabric.submit(flow, size)
        self._account(size)
        if self.gap_mode == "compensating":
            # Exactly restore the average rate after this burst.
            return size / self.rate
        return pareto_interarrival(self.rng, self.mean_gap_ns, self.gap_alpha)
