"""Scripted traffic: write a workload as a plain Python generator.

For scenarios that are awkward to express as stochastic sources --
synchronized bursts, request/response chains, staged phase changes --
a :class:`ScriptedSource` runs a user generator as a simulation process
(:mod:`repro.sim.process`): yield ``(delay_ns, dst, nbytes)`` steps and
the source sleeps, then submits.

Example -- an all-to-one barrier followed by a staggered broadcast::

    def barrier_then_fanout(src):
        yield 1_000 * src, 0, 64          # skewed arrival at the root
        yield 50_000, 0, 2048             # barrier payload
        for dst in range(1, 16):
            yield 500, dst, 1024          # fan-out, 500 ns apart

    for src in range(1, 16):
        ScriptedSource(fabric, src, barrier_then_fanout(src)).start()
"""

from __future__ import annotations

from typing import Dict, Generator, Optional, Tuple

from repro.core.flow import FlowKind, FlowState
from repro.network.fabric import Fabric
from repro.sim.process import Delay, process
from repro.sim.rng import local_stream
from repro.traffic.base import TrafficSource

__all__ = ["ScriptedSource"]

Step = Tuple[int, int, int]  # (delay_ns, dst, nbytes)


class ScriptedSource(TrafficSource):
    """Replays a user generator of ``(delay_ns, dst, nbytes)`` steps.

    Flows are opened lazily per destination with ``flow_kwargs``
    (default: an unreserved rate flow on the regulated VC at 10% link
    rate -- override for control/frame/best-effort semantics).
    """

    def __init__(
        self,
        fabric: Fabric,
        src: int,
        script: Generator[Step, None, None],
        *,
        tclass: str = "scripted",
        flow_kwargs: Optional[dict] = None,
    ):
        super().__init__(fabric, src, f"scripted@h{src}", local_stream(f"traffic.scripted.h{src}"))
        self._script = script
        self.tclass = tclass
        self._flow_kwargs = flow_kwargs or {
            "kind": FlowKind.RATE,
            "bw_bytes_per_ns": 0.1 * fabric.params.bytes_per_ns,
        }
        self._flows: Dict[int, FlowState] = {}
        self._process = None

    def _flow_to(self, dst: int) -> FlowState:
        flow = self._flows.get(dst)
        if flow is None:
            flow = self.fabric.open_flow(self.src, dst, self.tclass, **self._flow_kwargs)
            self._flows[dst] = flow
        return flow

    def start(self, at: Optional[int] = None) -> None:
        if self.running:
            raise RuntimeError(f"{self.name} already started")
        self.running = True

        def runner():
            if at is not None and at > self.engine.now:
                yield Delay(at - self.engine.now)
            for delay, dst, nbytes in self._script:
                if delay:
                    yield Delay(delay)
                if not self.running:
                    return
                self.fabric.submit(self._flow_to(dst), nbytes)
                self._account(nbytes)
            self.running = False

        self._process = process(self.engine, runner())

    def stop(self) -> None:
        self.running = False
        if self._process is not None and self._process.alive:
            self._process.kill()
