"""Common machinery for traffic sources.

A :class:`TrafficSource` owns one or more flows on a fabric and injects
application messages through them via self-rescheduling engine callbacks
(cheaper than generator processes on the hot path).  Subclasses implement
:meth:`_emit`, which submits message(s) for "now" and returns the delay
until the next emission (or ``None`` to stop).

Sources track offered load so experiments can verify the generator is
actually producing the configured rate (the workload tests do).
"""

from __future__ import annotations

from typing import Optional

from repro.network.fabric import Fabric
from repro.sim.rng import RandomStream

__all__ = ["TrafficSource"]


class TrafficSource:
    """Base class for message generators attached to one source host."""

    def __init__(self, fabric: Fabric, src: int, name: str, rng: RandomStream):
        if not 0 <= src < fabric.topology.n_hosts:
            raise ValueError(f"source host {src} out of range")
        self.fabric = fabric
        self.engine = fabric.engine
        self.src = src
        self.name = name
        self.rng = rng
        self.running = False
        self.messages_generated = 0
        self.bytes_generated = 0

    # ------------------------------------------------------------------
    def start(self, at: Optional[int] = None) -> None:
        """Begin generating; by default at a small random phase offset so
        the fleet of sources does not fire in lockstep."""
        if self.running:
            raise RuntimeError(f"{self.name} already started")
        self.running = True
        when = self.engine.now if at is None else at
        self.engine.at(when, self._tick)

    def stop(self) -> None:
        self.running = False

    # ------------------------------------------------------------------
    def _tick(self) -> None:
        if not self.running:
            return
        delay = self._emit()
        if delay is None:
            self.running = False
            return
        self.engine.after(max(1, round(delay)), self._tick)

    def _emit(self) -> Optional[float]:
        """Submit message(s) now; return ns until the next emission."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    def _account(self, nbytes: int) -> None:
        self.messages_generated += 1
        self.bytes_generated += nbytes

    def offered_bytes_per_ns(self, elapsed_ns: int) -> float:
        """Measured offered load since time zero (for calibration tests)."""
        if elapsed_ns <= 0:
            return 0.0
        return self.bytes_generated / elapsed_ns
