"""Workload substrate: the traffic of Table 1.

Following the Network Processing Forum switch-fabric benchmark the paper
cites, each host injects four classes, 25% of the offered load each:

- **Control** (:mod:`~repro.traffic.control`): small messages
  (128 B - 2 KB), latency critical, no admission, full-link-bandwidth
  deadlines.
- **Multimedia** (:mod:`~repro.traffic.multimedia`): MPEG-4-like video
  streams -- one frame per 40 ms, GoP-structured frame sizes clipped to
  [1 KB, 120 KB], frame-based deadlines targeting 10 ms, eligible-time
  smoothing.
- **Best-effort** and **Background**
  (:mod:`~repro.traffic.selfsimilar`): self-similar bursts (Pareto
  message sizes in [128 B, 100 KB], heavy-tailed inter-burst gaps) on the
  unregulated VC, distinguished only by the deadline-generation weight of
  their aggregated flows.

:mod:`~repro.traffic.mix` composes all four per host at a given load
fraction; :mod:`~repro.traffic.cbr` provides a deterministic
constant-bit-rate source for tests and examples, and
:mod:`~repro.traffic.distributions` the bounded-Pareto/GoP samplers.
"""

from repro.traffic.base import TrafficSource
from repro.traffic.cbr import CbrSource
from repro.traffic.control import ControlSource
from repro.traffic.distributions import BoundedPareto, GopFrameSizes, pareto_interarrival
from repro.traffic.multimedia import VideoStream
from repro.traffic.selfsimilar import SelfSimilarSource
from repro.traffic.mix import TrafficMix, TrafficMixConfig, build_mix
from repro.traffic.scripted import ScriptedSource
from repro.traffic.trace import (
    FrameSizeTrace,
    TraceRecorder,
    TraceReplaySource,
    load_trace,
    replay_all,
    video_stream_from_trace,
)

__all__ = [
    "BoundedPareto",
    "CbrSource",
    "ControlSource",
    "FrameSizeTrace",
    "GopFrameSizes",
    "ScriptedSource",
    "SelfSimilarSource",
    "TraceRecorder",
    "TraceReplaySource",
    "TrafficMix",
    "TrafficMixConfig",
    "TrafficSource",
    "VideoStream",
    "build_mix",
    "load_trace",
    "pareto_interarrival",
    "replay_all",
    "video_stream_from_trace",
]
