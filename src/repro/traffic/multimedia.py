"""Multimedia traffic: MPEG-4-like video streams (Table 1, row 2).

The paper transmits actual MPEG-4 traces; lacking those, each
:class:`VideoStream` synthesizes a GoP-structured sequence (I/P/B frame
pattern, lognormal size variation, frames clipped to the paper's
[1 KB, 120 KB] range) at a configurable frame rate and average bit rate.
That reproduces the two properties the deadline algorithm interacts
with -- bursts of packets (a whole frame arrives at once) and widely
varying frame sizes -- which is what the frame-based deadline rule of
Section 3.1 was designed for.

Each stream is one **admitted flow**: it reserves its average bandwidth
end-to-end, stamps frame-based deadlines against the configured target
latency (10 ms in the paper), and uses eligible-time smoothing.
"""

from __future__ import annotations

from typing import Optional

from repro.core.flow import FlowKind, FlowState
from repro.network.fabric import Fabric
from repro.sim import units
from repro.sim.rng import RandomStream
from repro.traffic.base import TrafficSource
from repro.traffic.distributions import GopFrameSizes

__all__ = ["VideoStream"]


class VideoStream(TrafficSource):
    """One video stream from ``src`` to ``dst``.

    ``rate_bytes_per_ns`` is the stream's average bandwidth (reserved at
    admission); the mean frame size is ``rate / fps``.
    """

    def __init__(
        self,
        fabric: Fabric,
        src: int,
        dst: int,
        rng: RandomStream,
        *,
        rate_bytes_per_ns: float = 1.5e6 / units.S,  # 1.5 MB/s in B/ns
        fps: float = 25.0,
        target_latency_ns: int = units.ms(10),
        smoothing: bool = True,
        gop_pattern: str = "IBBPBBPBBPBB",
        size_sigma: float = 0.25,
        tclass: str = "multimedia",
        vc: Optional[int] = None,
    ):
        super().__init__(fabric, src, f"video@h{src}->h{dst}", rng)
        if rate_bytes_per_ns <= 0:
            raise ValueError(f"stream rate must be positive, got {rate_bytes_per_ns}")
        if fps <= 0:
            raise ValueError(f"fps must be positive, got {fps}")
        self.dst = dst
        self.rate = rate_bytes_per_ns
        # Kept float so non-integer fps (e.g. 29.97) accumulates no
        # per-frame truncation bias; the schedule sink rounds per frame.
        self.frame_period_ns = units.S / fps  # simlint: allow-float-time-flow
        mean_frame = rate_bytes_per_ns * self.frame_period_ns
        self.frames = GopFrameSizes(
            mean_frame,
            pattern=gop_pattern,
            sigma=size_sigma,
            # Join mid-GoP at a random phase, like a real trace excerpt.
            start_index=rng.randrange(len(gop_pattern)),
        )
        self.flow: FlowState = fabric.open_flow(
            src,
            dst,
            tclass,
            kind=FlowKind.FRAME,
            vc=vc,
            bw_bytes_per_ns=rate_bytes_per_ns,
            target_latency_ns=target_latency_ns,
            smoothing=smoothing,
        )
        self.frames_sent = 0

    def start(self, at: Optional[int] = None) -> None:
        """Default start: a random phase within one frame period, so the
        many streams of a host do not all burst in the same cycle."""
        if at is None:
            at = self.engine.now + self.rng.randrange(max(1, round(self.frame_period_ns)))
        super().start(at)

    def _emit(self) -> Optional[float]:
        size = self.frames.next_frame(self.rng)
        self.fabric.submit(self.flow, size)
        self._account(size)
        self.frames_sent += 1
        return self.frame_period_ns
