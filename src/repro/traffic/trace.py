"""Workload trace record & replay.

Two jobs:

1. **Apples-to-apples workloads.**  The paper compares four architectures
   under "the same" traffic; with stochastic generators that is only true
   in distribution.  Recording one run's submissions and replaying the
   trace gives *literally identical* offered traffic to every
   architecture -- the replication tests use this to isolate scheduling
   effects from workload noise.
2. **Real video traces.**  The paper transmits actual MPEG-4 sequences.
   :class:`FrameSizeTrace` loads the standard frame-size-trace format
   (one frame size per line, ``#`` comments -- the layout of the public
   video-trace archives) so users who have such files can drive
   :class:`~repro.traffic.multimedia.VideoStream`-style flows with them
   verbatim; :func:`video_stream_from_trace` wires one up.

Trace files are JSON-lines: one record per submitted message,
``{"t": ns, "src": int, "dst": int, "tclass": str, "bytes": int}`` plus a
flow-parameter header line.  Plain text keeps them diff-able and
tool-friendly; gzip transparently supported by extension.
"""

from __future__ import annotations

import gzip
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, IO, Iterator, List, Optional, Sequence, Tuple, Union

from repro.core.flow import FlowKind, FlowState
from repro.network.fabric import Fabric
from repro.sim.rng import local_stream
from repro.traffic.base import TrafficSource

__all__ = [
    "FrameSizeTrace",
    "TraceRecorder",
    "TraceReplaySource",
    "load_trace",
    "video_stream_from_trace",
]

PathLike = Union[str, Path]


def _open(path: PathLike, mode: str) -> IO[str]:
    path = Path(path)
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t", encoding="utf-8")  # type: ignore[return-value]
    return open(path, mode, encoding="utf-8")


# ----------------------------------------------------------------------
# recording
# ----------------------------------------------------------------------
class TraceRecorder:
    """Records every message submitted to a fabric.

    Install with :meth:`attach` (wraps ``fabric.submit``); write out with
    :meth:`save`, or hand :attr:`records` directly to
    :class:`TraceReplaySource`.
    """

    def __init__(self) -> None:
        #: (time_ns, src, dst, tclass, message_bytes)
        self.records: List[Tuple[int, int, int, str, int]] = []
        self._fabric: Optional[Fabric] = None
        self._original_submit = None

    def attach(self, fabric: Fabric) -> None:
        if self._fabric is not None:
            raise RuntimeError("recorder is already attached")
        self._fabric = fabric
        self._original_submit = fabric.submit

        def recording_submit(flow: FlowState, message_bytes: int) -> None:
            self.records.append(
                (
                    fabric.engine.now,
                    flow.spec.src,
                    flow.spec.dst,
                    flow.spec.tclass,
                    message_bytes,
                )
            )
            self._original_submit(flow, message_bytes)

        fabric.submit = recording_submit  # type: ignore[assignment]

    def detach(self) -> None:
        if self._fabric is not None:
            self._fabric.submit = self._original_submit  # type: ignore[assignment]
            self._fabric = None

    def save(self, path: PathLike) -> None:
        with _open(path, "w") as fh:
            fh.write(json.dumps({"format": "repro-trace", "version": 1}) + "\n")
            for t, src, dst, tclass, nbytes in self.records:
                fh.write(
                    json.dumps(
                        {"t": t, "src": src, "dst": dst, "tclass": tclass, "bytes": nbytes},
                        separators=(",", ":"),
                    )
                    + "\n"
                )


def load_trace(path: PathLike) -> List[Tuple[int, int, int, str, int]]:
    """Read a trace file back into (t, src, dst, tclass, bytes) tuples."""
    records: List[Tuple[int, int, int, str, int]] = []
    with _open(path, "r") as fh:
        header = json.loads(fh.readline())
        if header.get("format") != "repro-trace":
            raise ValueError(f"{path}: not a repro trace file (header {header!r})")
        for line in fh:
            rec = json.loads(line)
            records.append((rec["t"], rec["src"], rec["dst"], rec["tclass"], rec["bytes"]))
    records.sort(key=lambda r: r[0])
    return records


# ----------------------------------------------------------------------
# replay
# ----------------------------------------------------------------------
class TraceReplaySource(TrafficSource):
    """Replays recorded messages from *one* source host, timestamp-exact.

    Flow parameters (VC, deadline rule) are re-derived per traffic class
    with the same conventions the live generators use; pass
    ``flow_params`` to override per class.
    """

    def __init__(
        self,
        fabric: Fabric,
        src: int,
        records: Sequence[Tuple[int, int, int, str, int]],
        *,
        flow_params: Optional[Dict[str, dict]] = None,
    ):
        super().__init__(fabric, src, f"replay@h{src}", local_stream(f"traffic.replay.h{src}"))
        self._records = [r for r in records if r[1] == src]
        self._cursor = 0
        self._flows: Dict[Tuple[int, str], FlowState] = {}
        self._flow_params = flow_params or {}

    def _flow_for(self, dst: int, tclass: str) -> FlowState:
        key = (dst, tclass)
        flow = self._flows.get(key)
        if flow is None:
            params = dict(self._flow_params.get(tclass, {}))
            if not params:
                if tclass == "control":
                    params = {"kind": FlowKind.CONTROL}
                elif tclass == "multimedia":
                    params = {
                        "kind": FlowKind.FRAME,
                        "bw_bytes_per_ns": 0.003,
                        "target_latency_ns": 10_000_000,
                        "smoothing": True,
                    }
                else:
                    params = {"kind": FlowKind.RATE, "bw_bytes_per_ns": 0.25, "vc": 1}
            flow = self.fabric.open_flow(self.src, dst, tclass, **params)
            self._flows[key] = flow
        return flow

    def start(self, at: Optional[int] = None) -> None:
        if not self._records:
            return
        if at is None:
            at = self._records[0][0]
        self.running = True
        self.engine.at(max(at, self.engine.now), self._tick)

    def _emit(self) -> Optional[float]:
        now = self.engine.now
        records = self._records
        while self._cursor < len(records) and records[self._cursor][0] <= now:
            _, _, dst, tclass, nbytes = records[self._cursor]
            self.fabric.submit(self._flow_for(dst, tclass), nbytes)
            self._account(nbytes)
            self._cursor += 1
        if self._cursor >= len(records):
            return None
        return records[self._cursor][0] - now


def replay_all(
    fabric: Fabric,
    records: Sequence[Tuple[int, int, int, str, int]],
    **kwargs,
) -> List[TraceReplaySource]:
    """One replay source per host that appears in the trace."""
    sources = []
    for src in sorted({r[1] for r in records}):
        source = TraceReplaySource(fabric, src, records, **kwargs)
        sources.append(source)
        source.start()
    return sources


# ----------------------------------------------------------------------
# real video frame-size traces
# ----------------------------------------------------------------------
@dataclass
class FrameSizeTrace:
    """Frame sizes of a real video sequence (one size per line format).

    The public video-trace archives distribute MPEG-4 sequences as text
    files with one frame size (bytes or bits) per line; ``#`` starts a
    comment.  ``unit='bits'`` converts on load.
    """

    sizes: Tuple[int, ...]

    @classmethod
    def from_file(cls, path: PathLike, *, unit: str = "bytes") -> "FrameSizeTrace":
        if unit not in ("bytes", "bits"):
            raise ValueError(f"unit must be 'bytes' or 'bits', got {unit!r}")
        sizes: List[int] = []
        with _open(path, "r") as fh:
            for line in fh:
                text = line.split("#", 1)[0].strip()
                if not text:
                    continue
                # Some archives use "<index> <type> <size>" columns; take
                # the last numeric field.
                value = float(text.split()[-1])
                sizes.append(round(value / 8) if unit == "bits" else round(value))
        if not sizes:
            raise ValueError(f"{path}: no frame sizes found")
        return cls(tuple(sizes))

    @property
    def mean(self) -> float:
        return sum(self.sizes) / len(self.sizes)

    def rate_bytes_per_ns(self, fps: float) -> float:
        """Average bandwidth of the sequence at ``fps`` frames/second."""
        return self.mean * fps / 1e9

    def __len__(self) -> int:
        return len(self.sizes)

    def __iter__(self) -> Iterator[int]:
        return iter(self.sizes)


class _TraceFrames:
    """Adapter with the GopFrameSizes interface, cycling a real trace."""

    def __init__(self, trace: FrameSizeTrace, start_index: int = 0):
        self._sizes = trace.sizes
        self._index = start_index % len(self._sizes)

    def next_frame(self, _rng) -> int:
        size = self._sizes[self._index]
        self._index = (self._index + 1) % len(self._sizes)
        return size


def video_stream_from_trace(
    fabric: Fabric,
    src: int,
    dst: int,
    trace: FrameSizeTrace,
    *,
    fps: float = 25.0,
    target_latency_ns: int = 10_000_000,
    smoothing: bool = True,
    start_index: int = 0,
    tclass: str = "multimedia",
):
    """A :class:`~repro.traffic.multimedia.VideoStream` that sends the
    real sequence's frames instead of synthetic GoP sizes."""
    from repro.traffic.multimedia import VideoStream

    stream = VideoStream(
        fabric,
        src,
        dst,
        local_stream(f"traffic.video-trace.h{src}.h{dst}", start_index),
        rate_bytes_per_ns=trace.rate_bytes_per_ns(fps),
        fps=fps,
        target_latency_ns=target_latency_ns,
        smoothing=smoothing,
        tclass=tclass,
    )
    stream.frames = _TraceFrames(trace, start_index)  # type: ignore[assignment]
    return stream
