"""Constant-bit-rate source.

Not part of the paper's Table 1 mix, but indispensable for unit tests
(deterministic arrivals make assertions exact) and for examples such as
storage streams.  Emits fixed-size messages at fixed intervals on one
flow, which may be regulated (reserved) or best-effort.
"""

from __future__ import annotations

from typing import Optional

from repro.core.flow import FlowKind, FlowState
from repro.network.fabric import Fabric
from repro.sim.rng import RandomStream, local_stream
from repro.traffic.base import TrafficSource

__all__ = ["CbrSource"]


class CbrSource(TrafficSource):
    """Fixed-size messages every ``message_bytes / rate`` nanoseconds."""

    def __init__(
        self,
        fabric: Fabric,
        src: int,
        dst: int,
        rate_bytes_per_ns: float,
        *,
        message_bytes: int = 2048,
        tclass: str = "cbr",
        vc: Optional[int] = None,
        smoothing: bool = False,
        rng: Optional[RandomStream] = None,
    ):
        # CBR emission is deterministic; the stream only exists so the
        # TrafficSource interface is uniform.  Derive it by name anyway so
        # any future stochastic knob stays reproducible per source.
        super().__init__(
            fabric, src, f"cbr@h{src}->h{dst}", rng or local_stream(f"traffic.cbr.h{src}.h{dst}")
        )
        if rate_bytes_per_ns <= 0:
            raise ValueError(f"rate must be positive, got {rate_bytes_per_ns}")
        if message_bytes <= 0:
            raise ValueError(f"message size must be positive, got {message_bytes}")
        self.dst = dst
        self.rate = rate_bytes_per_ns
        self.message_bytes = message_bytes
        self.period_ns = round(message_bytes / rate_bytes_per_ns)
        self.flow: FlowState = fabric.open_flow(
            src,
            dst,
            tclass,
            kind=FlowKind.RATE,
            vc=vc,
            bw_bytes_per_ns=rate_bytes_per_ns,
            smoothing=smoothing,
        )

    def _emit(self) -> Optional[float]:
        self.fabric.submit(self.flow, self.message_bytes)
        self._account(self.message_bytes)
        return self.period_ns
