"""Control traffic: small latency-critical messages (Table 1, row 1).

Models management/administration messages: sizes uniform in
[128 B, 2 KB], Poisson arrivals, destinations uniform over the other
hosts.  Per Section 3.1, control traffic gets **no admission control**
and its deadlines are computed with ``BW_avg`` equal to the link
bandwidth, so a control packet's deadline is essentially
``now + serialization time`` -- the earliest possible -- giving it
maximum priority under EDF.

One host keeps a *single* control record: all control flows from this
source share one deadline stamper (one virtual clock), exactly as a
per-host control record would in hardware.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.core.deadline import ControlStamper
from repro.core.flow import FlowKind, FlowState
from repro.network.fabric import Fabric
from repro.sim.rng import RandomStream
from repro.traffic.base import TrafficSource

__all__ = ["ControlSource"]


class ControlSource(TrafficSource):
    """Poisson stream of small control messages from one host."""

    def __init__(
        self,
        fabric: Fabric,
        src: int,
        rate_bytes_per_ns: float,
        rng: RandomStream,
        *,
        size_range: Tuple[int, int] = (128, 2048),
        tclass: str = "control",
        vc: Optional[int] = None,
    ):
        super().__init__(fabric, src, f"control@h{src}", rng)
        if rate_bytes_per_ns <= 0:
            raise ValueError(f"rate must be positive, got {rate_bytes_per_ns}")
        lo, hi = size_range
        if not 0 < lo <= hi:
            raise ValueError(f"bad size range {size_range}")
        self.rate = rate_bytes_per_ns
        self.size_range = size_range
        self.tclass = tclass
        self.vc = vc
        self.mean_size = (lo + hi) / 2.0
        # Mean of a continuous distribution, kept float for expovariate;
        # the schedule sink rounds per sample (base.py _tick).
        self.mean_gap_ns = self.mean_size / rate_bytes_per_ns  # simlint: allow-float-time-flow
        #: one shared per-host control record (Section 3.1)
        self.stamper = ControlStamper(fabric.params.bytes_per_ns)
        self._flows: Dict[int, FlowState] = {}

    def _flow_to(self, dst: int) -> FlowState:
        flow = self._flows.get(dst)
        if flow is None:
            flow = self.fabric.open_flow(
                self.src, dst, self.tclass, kind=FlowKind.CONTROL, vc=self.vc
            )
            # All control flows from this host share one virtual clock.
            flow.stamper = self.stamper
            self._flows[dst] = flow
        return flow

    def _pick_dst(self) -> int:
        n = self.fabric.topology.n_hosts
        dst = self.rng.randrange(n - 1)
        return dst if dst < self.src else dst + 1

    def _emit(self) -> Optional[float]:
        size = self.rng.randint(*self.size_range)
        flow = self._flow_to(self._pick_dst())
        self.fabric.submit(flow, size)
        self._account(size)
        return self.rng.expovariate(1.0 / self.mean_gap_ns)
