"""Parallel campaign execution over a process pool.

Every headline artifact of the reproduction -- the figure sweeps, the
order-error penalties, multi-seed replication -- is a batch of
independent, CPU-bound, pure-Python simulations.  :class:`SweepExecutor`
runs such a batch:

- **Deterministically.**  Results merge by *submission index*, never by
  completion order, so the output of ``--jobs 8`` is bit-for-bit the
  output of ``--jobs 1``.  Each task is seeded entirely by its config
  (the simulator draws every stream from the config seed; there is no
  process-global RNG state), so where a task runs cannot matter.
- **Through one code path.**  ``jobs=1`` calls the same
  :func:`~repro.exec.summary.execute_config` worker in-process that the
  pool calls in children -- serial and parallel cannot drift.
- **With failures surfaced.**  A worker exception, a dead worker
  process, or a task exceeding ``timeout_s`` raises a structured
  :class:`SweepTaskError` naming the task, instead of a hung sweep or a
  bare traceback from a nameless child.
- **Against a content-addressed cache.**  Points whose digest is cached
  are replayed without simulating; fresh points are written to the
  cache as they finish, so an interrupted campaign resumes where it
  stopped (see :mod:`repro.exec.cache`).
"""

from __future__ import annotations

from concurrent.futures import (
    BrokenExecutor,
    Future,
    ProcessPoolExecutor,
    TimeoutError as FutureTimeoutError,
    as_completed,
)
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.invariants import invariant
from repro.exec.cache import ResultCache
from repro.exec.digest import config_digest
from repro.exec.summary import DEFAULT_CDF_SAMPLES, RunSummary, execute_config
from repro.experiments.config import ExperimentConfig

__all__ = ["SweepExecutor", "SweepTaskError"]

Worker = Callable[..., RunSummary]


class SweepTaskError(RuntimeError):
    """One sweep task failed, crashed, or timed out.

    Carries enough structure (task index, config, digest, failure kind)
    for a campaign driver to report, skip, or retry the point; the
    original exception rides along as ``__cause__``.
    """

    #: Failure kinds.
    FAILED = "failed"  # the worker raised
    CRASHED = "crashed"  # the worker process died (segfault, OOM-kill)
    TIMEOUT = "timeout"  # no result within timeout_s

    def __init__(
        self,
        index: int,
        config: ExperimentConfig,
        digest: str,
        kind: str,
        detail: str = "",
    ) -> None:
        self.index = index
        self.config = config
        self.digest = digest
        self.kind = kind
        self.detail = detail
        message = (
            f"sweep task #{index} (arch={config.architecture}, "
            f"load={config.load:g}, seed={config.seed}) {kind}"
        )
        if detail:
            message += f": {detail}"
        super().__init__(message)


class SweepExecutor:
    """Run batches of :class:`ExperimentConfig` to :class:`RunSummary`.

    ``jobs=1`` (the default) executes in-process; ``jobs=N`` fans out
    over a :class:`~concurrent.futures.ProcessPoolExecutor`.  One
    executor can serve several batches (e.g. a sweep followed by a
    replication) and accumulates campaign totals in :meth:`stats`.

    ``worker`` swaps the task function (testing / extension hook); the
    cache is keyed by config digest regardless, so only pass a
    ``cache_dir`` with workers whose output is a pure function of the
    config, as :func:`execute_config` is.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache_dir: Optional[Union[str, "object"]] = None,
        *,
        timeout_s: Optional[float] = None,
        collect_obs: bool = False,
        cdf_samples: int = DEFAULT_CDF_SAMPLES,
        worker: Optional[Worker] = None,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = int(jobs)
        self.cache = ResultCache(cache_dir)
        self.timeout_s = timeout_s
        self.collect_obs = collect_obs
        self.cdf_samples = cdf_samples
        self.worker: Worker = worker if worker is not None else execute_config
        #: Campaign totals across every run() call on this executor.
        self.tasks = 0
        self.cache_hits = 0
        self.executed = 0

    # ------------------------------------------------------------------
    def digest_of(self, config: ExperimentConfig) -> str:
        """The cache key for one task under this executor's options."""
        return config_digest(
            config, cdf_samples=self.cdf_samples, collect_obs=self.collect_obs
        )

    def stats(self) -> Dict[str, int]:
        """Campaign totals: submitted points, cache replays, simulations."""
        return {
            "tasks": self.tasks,
            "cache_hits": self.cache_hits,
            "executed": self.executed,
            "jobs": self.jobs,
        }

    # ------------------------------------------------------------------
    def run(self, configs: Sequence[ExperimentConfig]) -> List[RunSummary]:
        """Execute every config; results align with ``configs`` by index."""
        configs = list(configs)
        self.tasks += len(configs)
        out: List[Optional[RunSummary]] = [None] * len(configs)
        # Unique work units in first-appearance order: digest -> indices.
        pending: Dict[str, List[int]] = {}
        for index, config in enumerate(configs):
            digest = self.digest_of(config)
            if digest in pending:
                pending[digest].append(index)  # duplicate point: coalesce
                continue
            cached = self.cache.get(digest)
            if cached is not None:
                out[index] = cached
                self.cache_hits += 1
                pending.setdefault(digest, [])  # claim slot to catch dups
                pending[digest].append(index)
                # mark as satisfied: indices already filled below
                continue
            pending[digest] = [index]
        units: List[Tuple[str, List[int]]] = [
            (digest, indices)
            for digest, indices in pending.items()
            if out[indices[0]] is None
        ]
        # Fan duplicate/cached indices out to their shared summary.
        for digest, indices in pending.items():
            first = out[indices[0]]
            if first is not None:
                for index in indices[1:]:
                    out[index] = first
                    self.cache_hits += 1
        if units:
            if self.jobs == 1 or len(units) == 1:
                self._run_serial(configs, units, out)
            else:
                self._run_pool(configs, units, out)
        invariant(
            all(summary is not None for summary in out),
            "sweep merge left %d of %d positions unfilled",
            sum(1 for summary in out if summary is None),
            len(out),
        )
        return out  # type: ignore[return-value]

    # ------------------------------------------------------------------
    def _worker_kwargs(self) -> Dict[str, object]:
        return {"cdf_samples": self.cdf_samples, "collect_obs": self.collect_obs}

    def _finish(
        self,
        digest: str,
        indices: List[int],
        summary: RunSummary,
        out: List[Optional[RunSummary]],
        *,
        store: bool = True,
    ) -> None:
        if store:
            self.cache.put(digest, summary)
        self.executed += 1
        for index in indices:
            out[index] = summary

    def _run_serial(
        self,
        configs: Sequence[ExperimentConfig],
        units: Sequence[Tuple[str, List[int]]],
        out: List[Optional[RunSummary]],
    ) -> None:
        kwargs = self._worker_kwargs()
        for digest, indices in units:
            config = configs[indices[0]]
            try:
                summary = self.worker(config, **kwargs)
            except Exception as exc:
                raise SweepTaskError(
                    indices[0],
                    config,
                    digest,
                    SweepTaskError.FAILED,
                    f"{type(exc).__name__}: {exc}",
                ) from exc
            self._finish(digest, indices, summary, out)

    def _run_pool(
        self,
        configs: Sequence[ExperimentConfig],
        units: Sequence[Tuple[str, List[int]]],
        out: List[Optional[RunSummary]],
    ) -> None:
        kwargs = self._worker_kwargs()
        max_workers = min(self.jobs, len(units))
        stored: set = set()
        pool = ProcessPoolExecutor(max_workers=max_workers)
        try:
            # `self.worker` looks like a bound-method submission but is a
            # plain module-level function stored on the instance
            # (execute_config by default; the constructor documents the
            # picklability requirement for overrides), so only the
            # function reference pickles, never `self`.
            futures: List[Future] = [
                pool.submit(self.worker, configs[indices[0]], **kwargs)  # simlint: allow-unpicklable-worker
                for _, indices in units
            ]
            position: Dict[Future, int] = {
                future: pos for pos, future in enumerate(futures)
            }
            try:
                if self.timeout_s is None:
                    # Persist points as they finish (completion order is
                    # fine here: the cache is content-addressed), so an
                    # interrupt keeps every completed point.  Failures
                    # are deliberately deferred to the ordered pass
                    # below, which surfaces the *lowest-index* failure
                    # deterministically.
                    for future in as_completed(futures):
                        try:
                            summary = future.result()
                        except Exception:
                            continue
                        digest, _ = units[position[future]]
                        self.cache.put(digest, summary)
                        stored.add(position[future])
                # Deterministic merge: strictly by submission index.
                for pos, future in enumerate(futures):
                    digest, indices = units[pos]
                    config = configs[indices[0]]
                    try:
                        summary = future.result(timeout=self.timeout_s)
                    except FutureTimeoutError as exc:
                        raise SweepTaskError(
                            indices[0],
                            config,
                            digest,
                            SweepTaskError.TIMEOUT,
                            f"no result within {self.timeout_s}s",
                        ) from exc
                    except BrokenExecutor as exc:
                        raise SweepTaskError(
                            indices[0],
                            config,
                            digest,
                            SweepTaskError.CRASHED,
                            "worker process died before returning a result",
                        ) from exc
                    except Exception as exc:
                        raise SweepTaskError(
                            indices[0],
                            config,
                            digest,
                            SweepTaskError.FAILED,
                            f"{type(exc).__name__}: {exc}",
                        ) from exc
                    self._finish(
                        digest, indices, summary, out, store=pos not in stored
                    )
            except SweepTaskError:
                # Abort the campaign *now*: cancel queued tasks and kill
                # running workers, otherwise shutdown would block on the
                # very task that just timed out (the hung sweep this
                # error exists to prevent).  Completed points are
                # already in the cache.
                for future in futures:
                    future.cancel()
                for proc in list(getattr(pool, "_processes", {}).values()):
                    proc.terminate()
                raise
        finally:
            pool.shutdown(wait=True)
