"""Picklable, compact run summaries.

A :class:`~repro.experiments.runner.RunResult` pins the entire simulation
graph -- the fabric, every queue, every traffic source, the engine's
event heap.  That is the right return value for interactive use (you can
inspect link utilization afterwards), but it is exactly wrong for a
process pool: pickling it would ship megabytes of live object graph (or
fail outright on unpicklable callbacks) for every sweep point.

:class:`RunSummary` is the wire/cache format instead: per-class latency,
jitter, CDF samples, and throughput, plus the run's config and event
counts -- everything :mod:`repro.experiments.figures` reads, nothing it
does not.  It crosses a process boundary in kilobytes, serializes to
JSON for the content-addressed result cache, and exposes the same
metric-access surface as the collector (``get(tclass)``, ``throughput``,
``normalized_throughput``), so figure code runs identically on a live
``RunResult`` or a summary replayed from cache.

:func:`execute_config` is the process-pool worker entry point: config in,
summary out, nothing else crosses the boundary.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Sequence, Tuple, Union

from repro.exec.digest import (
    SUMMARY_SCHEMA_VERSION,
    canonical_config_dict,
    config_from_dict,
)
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import RunResult, run_experiment
from repro.stats.cdf import EmpiricalCDF
from repro.stats.collectors import ClassStats
from repro.stats.running import RunningStats

__all__ = [
    "DEFAULT_CDF_SAMPLES",
    "ClassSummary",
    "FrozenStats",
    "RunSummary",
    "downsample_sorted",
    "ensure_summary",
    "execute_config",
    "summarize_run",
]

#: Per-CDF sample budget: enough for 0.1%-granular quantiles, small
#: enough that a four-class summary stays well under a megabyte.
DEFAULT_CDF_SAMPLES = 4096


def downsample_sorted(values: Sequence[float], cap: int) -> Tuple[float, ...]:
    """At most ``cap`` evenly-spaced order statistics of a sorted sample.

    Always keeps the minimum and maximum; a deterministic pure function
    of the input, so serial and parallel sweeps (and cache replays)
    produce bit-identical curves.  Samples at or under the cap pass
    through untouched (the exact regime -- quantiles match the full
    reservoir bit-for-bit).
    """
    if cap < 2:
        raise ValueError(f"cdf sample cap must be >= 2, got {cap}")
    n = len(values)
    if n <= cap:
        return tuple(values)
    last = n - 1
    return tuple(values[round(i * last / (cap - 1))] for i in range(cap))


@dataclass(frozen=True)
class FrozenStats:
    """Immutable snapshot of a :class:`~repro.stats.running.RunningStats`."""

    count: int
    mean: float
    std: float
    min: float
    max: float

    @classmethod
    def from_running(cls, stats: RunningStats) -> "FrozenStats":
        return cls(
            count=stats.count,
            mean=stats.mean,
            std=stats.std,
            min=stats.min,
            max=stats.max,
        )

    def to_dict(self) -> Dict[str, Any]:
        # min/max are +/-inf for an empty accumulator; JSON has no inf,
        # so empties serialize as null and round-trip back exactly.
        return {
            "count": self.count,
            "mean": self.mean,
            "std": self.std,
            "min": self.min if math.isfinite(self.min) else None,
            "max": self.max if math.isfinite(self.max) else None,
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "FrozenStats":
        return cls(
            count=doc["count"],
            mean=doc["mean"],
            std=doc["std"],
            min=doc["min"] if doc["min"] is not None else math.inf,
            max=doc["max"] if doc["max"] is not None else -math.inf,
        )


@dataclass(frozen=True)
class ClassSummary:
    """One traffic class's measured QoS, detached from the collector.

    Mirrors the :class:`~repro.stats.collectors.ClassStats` reading
    surface (``message_latency``, ``message_cdf()``, ``jitter``, ...)
    over frozen data, so figure code is agnostic to which one it holds.
    """

    tclass: str
    packets: int
    bytes: int
    messages: int
    packet_latency: FrozenStats
    message_latency: FrozenStats
    jitter: FrozenStats
    #: Sorted (possibly downsampled) latency samples backing the CDFs.
    packet_samples: Tuple[float, ...] = ()
    message_samples: Tuple[float, ...] = ()

    @classmethod
    def from_stats(
        cls, stats: ClassStats, *, cdf_samples: int = DEFAULT_CDF_SAMPLES
    ) -> "ClassSummary":
        return cls(
            tclass=stats.tclass,
            packets=stats.packets,
            bytes=stats.bytes,
            messages=stats.messages,
            packet_latency=FrozenStats.from_running(stats.packet_latency),
            message_latency=FrozenStats.from_running(stats.message_latency),
            jitter=FrozenStats.from_running(stats.jitter),
            packet_samples=downsample_sorted(
                sorted(stats.packet_reservoir.items), cdf_samples
            ),
            message_samples=downsample_sorted(
                sorted(stats.message_reservoir.items), cdf_samples
            ),
        )

    def packet_cdf(self) -> EmpiricalCDF:
        return EmpiricalCDF(self.packet_samples)

    def message_cdf(self) -> EmpiricalCDF:
        return EmpiricalCDF(self.message_samples)

    def throughput_bytes_per_ns(self, window_ns: int) -> float:
        if window_ns <= 0:
            return 0.0
        return self.bytes / window_ns

    def to_dict(self) -> Dict[str, Any]:
        return {
            "tclass": self.tclass,
            "packets": self.packets,
            "bytes": self.bytes,
            "messages": self.messages,
            "packet_latency": self.packet_latency.to_dict(),
            "message_latency": self.message_latency.to_dict(),
            "jitter": self.jitter.to_dict(),
            "packet_samples": list(self.packet_samples),
            "message_samples": list(self.message_samples),
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "ClassSummary":
        return cls(
            tclass=doc["tclass"],
            packets=doc["packets"],
            bytes=doc["bytes"],
            messages=doc["messages"],
            packet_latency=FrozenStats.from_dict(doc["packet_latency"]),
            message_latency=FrozenStats.from_dict(doc["message_latency"]),
            jitter=FrozenStats.from_dict(doc["jitter"]),
            packet_samples=tuple(doc["packet_samples"]),
            message_samples=tuple(doc["message_samples"]),
        )


@dataclass(frozen=True)
class RunSummary:
    """Everything the figure/replication layers read from one run.

    Holds no :class:`~repro.network.fabric.Fabric` or
    :class:`~repro.traffic.mix.TrafficMix` reference -- only the config
    (itself plain data) and reduced statistics -- so it pickles in
    kilobytes and serializes losslessly to JSON.
    """

    config: ExperimentConfig
    window_ns: int
    n_hosts: int
    events_executed: int
    wall_seconds: float
    classes: Dict[str, ClassSummary] = field(default_factory=dict)
    #: Optional observability snapshot (metrics registry + engine
    #: counters) captured by :func:`execute_config` on request.
    obs: Optional[Dict[str, Any]] = None

    # -- collector-compatible reading surface ---------------------------
    def get(self, tclass: str) -> ClassSummary:
        try:
            return self.classes[tclass]
        except KeyError:
            known = ", ".join(sorted(self.classes)) or "(none)"
            raise KeyError(
                f"no deliveries recorded for class {tclass!r}; classes seen: {known}"
            ) from None

    @property
    def collector(self) -> "RunSummary":
        """Compatibility shim: ``summary.collector.get(c)`` keeps working
        for code written against ``RunResult.collector.get(c)``."""
        return self

    def throughput(self, tclass: str) -> float:
        """Delivered bytes/ns of a class over the measurement window."""
        stats = self.classes.get(tclass)
        if stats is None:
            return 0.0
        return stats.throughput_bytes_per_ns(self.window_ns)

    def offered(self, tclass: str) -> float:
        """Configured offered bytes/ns of a class, fabric-wide."""
        per_host = self.config.mix_config.class_rate(
            tclass, self.config.params.bytes_per_ns
        )
        return per_host * self.n_hosts

    def normalized_throughput(self, tclass: str) -> float:
        offered = self.offered(tclass)
        return self.throughput(tclass) / offered if offered > 0 else 0.0

    # -- serialization --------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": SUMMARY_SCHEMA_VERSION,
            "config": canonical_config_dict(self.config),
            "window_ns": self.window_ns,
            "n_hosts": self.n_hosts,
            "events_executed": self.events_executed,
            "wall_seconds": self.wall_seconds,
            "classes": {
                tclass: self.classes[tclass].to_dict()
                for tclass in sorted(self.classes)
            },
            "obs": self.obs,
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "RunSummary":
        if doc.get("schema") != SUMMARY_SCHEMA_VERSION:
            raise ValueError(
                f"summary schema {doc.get('schema')!r} != "
                f"{SUMMARY_SCHEMA_VERSION} (stale cache entry?)"
            )
        return cls(
            config=config_from_dict(doc["config"]),
            window_ns=doc["window_ns"],
            n_hosts=doc["n_hosts"],
            events_executed=doc["events_executed"],
            wall_seconds=doc["wall_seconds"],
            classes={
                tclass: ClassSummary.from_dict(entry)
                for tclass, entry in sorted(doc["classes"].items())
            },
            obs=doc.get("obs"),
        )


def summarize_run(
    result: RunResult,
    *,
    cdf_samples: int = DEFAULT_CDF_SAMPLES,
    obs: Optional[Dict[str, Any]] = None,
) -> RunSummary:
    """Reduce a finished :class:`RunResult` to a :class:`RunSummary`."""
    classes = {
        tclass: ClassSummary.from_stats(stats, cdf_samples=cdf_samples)
        for tclass, stats in sorted(result.collector.classes.items())
    }
    return RunSummary(
        config=result.config,
        window_ns=result.collector.window_ns,
        n_hosts=result.fabric.topology.n_hosts,
        events_executed=result.events_executed,
        wall_seconds=result.wall_seconds,
        classes=classes,
        obs=obs,
    )


def ensure_summary(
    result: Union[RunResult, RunSummary],
    *,
    cdf_samples: int = DEFAULT_CDF_SAMPLES,
) -> RunSummary:
    """Pass summaries through; reduce live results on the fly."""
    if isinstance(result, RunSummary):
        return result
    return summarize_run(result, cdf_samples=cdf_samples)


def execute_config(
    config: ExperimentConfig,
    *,
    cdf_samples: int = DEFAULT_CDF_SAMPLES,
    collect_obs: bool = False,
) -> RunSummary:
    """Run one configuration and return its summary.

    The process-pool worker entry point (top-level, so it pickles by
    reference); also the ``--jobs 1`` in-process path, so serial and
    parallel campaigns execute the exact same code.
    """
    metrics = None
    if collect_obs:
        from repro.obs.metrics import MetricsRegistry

        metrics = MetricsRegistry()
    result = run_experiment(config, metrics=metrics)
    obs_doc: Optional[Dict[str, Any]] = None
    if metrics is not None:
        from repro.obs.snapshot import run_snapshot

        obs_doc = run_snapshot(metrics, engine=result.fabric.engine)
    return summarize_run(result, cdf_samples=cdf_samples, obs=obs_doc)
