"""Parallel campaign execution: summaries, executor, result cache.

The figure sweeps and replication campaigns are batches of independent
CPU-bound simulations.  This package runs them across a process pool
with deterministic merge order (``--jobs N`` output is byte-identical
to serial), compact picklable results (:class:`RunSummary`), and a
content-addressed on-disk cache keyed by :func:`config_digest` so warm
replays and interrupted-campaign resume cost no simulation time.
"""

from repro.exec.cache import ResultCache
from repro.exec.digest import (
    SUMMARY_SCHEMA_VERSION,
    canonical_config_dict,
    config_digest,
    config_from_dict,
    stable_hash,
)
from repro.exec.executor import SweepExecutor, SweepTaskError
from repro.exec.summary import (
    DEFAULT_CDF_SAMPLES,
    ClassSummary,
    FrozenStats,
    RunSummary,
    downsample_sorted,
    ensure_summary,
    execute_config,
    summarize_run,
)

__all__ = [
    "DEFAULT_CDF_SAMPLES",
    "SUMMARY_SCHEMA_VERSION",
    "ClassSummary",
    "FrozenStats",
    "ResultCache",
    "RunSummary",
    "SweepExecutor",
    "SweepTaskError",
    "canonical_config_dict",
    "config_digest",
    "config_from_dict",
    "downsample_sorted",
    "ensure_summary",
    "execute_config",
    "stable_hash",
    "summarize_run",
]
