"""Canonical config serialization and content-addressed cache keys.

Every campaign artifact (a cached sweep point, a parallel worker's task)
is identified by :func:`config_digest`: the SHA-256 of a *canonical*
JSON rendering of the :class:`~repro.experiments.config.ExperimentConfig`
plus the package version and summary-schema version.  Canonical means:

- ``json.dumps(..., sort_keys=True, separators=(",", ":"))`` -- key
  order cannot depend on dict insertion history;
- floats serialize via ``repr`` (shortest round-trip), which is a pure
  function of the value -- identical in every process;
- SHA-256, never :func:`hash` -- Python's string hashing is salted per
  process (``PYTHONHASHSEED``), so ``hash()``-derived keys would make a
  cache that never warms across runs.

The version salt means a ``pip install -U`` (or any release that could
change simulation behaviour) invalidates every cached result instead of
silently replaying stale physics.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Any, Dict, Optional

from repro import __version__
from repro.experiments.config import ExperimentConfig
from repro.network.fabric import FabricParams
from repro.traffic.mix import TrafficMixConfig

__all__ = [
    "SUMMARY_SCHEMA_VERSION",
    "canonical_config_dict",
    "config_digest",
    "config_from_dict",
    "stable_hash",
]

#: Bump when the RunSummary serialization format changes; part of every
#: digest so stale cache entries self-invalidate (cf. lint/cache.py).
SUMMARY_SCHEMA_VERSION = 1

#: TrafficMixConfig fields declared as tuples (JSON round-trips them as
#: lists, so reconstruction must convert back for dataclass equality).
_MIX_TUPLE_FIELDS = ("control_size_range", "burst_size_range")


def canonical_config_dict(config: ExperimentConfig) -> Dict[str, Any]:
    """One run's complete parameterization as a plain JSON-safe dict.

    Nested dataclasses (:class:`FabricParams`, :class:`TrafficMixConfig`)
    become nested dicts; tuples become lists.  The result feeds both the
    digest and the on-disk summary cache, and
    :func:`config_from_dict` inverts it exactly
    (``config_from_dict(canonical_config_dict(c)) == c``).
    """
    return _jsonify(dataclasses.asdict(config))


def _jsonify(value: Any) -> Any:
    if isinstance(value, dict):
        return {str(key): _jsonify(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonify(item) for item in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(
        f"cannot canonicalize {type(value).__name__!r} value {value!r} "
        "for a config digest"
    )


def config_from_dict(doc: Dict[str, Any]) -> ExperimentConfig:
    """Rebuild an :class:`ExperimentConfig` from its canonical dict."""
    params = FabricParams(**doc["params"])
    mix_doc: Optional[Dict[str, Any]] = doc.get("mix")
    mix: Optional[TrafficMixConfig] = None
    if mix_doc is not None:
        kwargs = dict(mix_doc)
        for name in _MIX_TUPLE_FIELDS:
            if kwargs.get(name) is not None:
                kwargs[name] = tuple(kwargs[name])
        mix = TrafficMixConfig(**kwargs)
    return ExperimentConfig(
        architecture=doc["architecture"],
        load=doc["load"],
        seed=doc["seed"],
        topology=doc["topology"],
        warmup_ns=doc["warmup_ns"],
        measure_ns=doc["measure_ns"],
        params=params,
        mix=mix,
    )


def stable_hash(value: Any) -> int:
    """A drop-in for :func:`hash` that is identical in every process.

    Builtin ``hash()`` on str/bytes is salted per process by
    ``PYTHONHASHSEED``, so anything derived from it (cache keys, bucket
    assignments, tie-breaks) silently differs between pool workers.
    This helper hashes the value's *content*: str/bytes directly,
    anything else through the same canonical JSON rendering the config
    digest uses -- so two equal values give the same 64-bit integer on
    every worker, every run, every platform.

    >>> stable_hash("advanced-2vc")
    5507327187000418832
    >>> stable_hash((1, 2, 3)) == stable_hash([1, 2, 3])
    True
    """
    if isinstance(value, bytes):
        blob = value
    elif isinstance(value, str):
        blob = value.encode("utf-8")
    else:
        blob = json.dumps(
            _jsonify(value), sort_keys=True, separators=(",", ":")
        ).encode("utf-8")
    return int.from_bytes(hashlib.sha256(blob).digest()[:8], "big")


def config_digest(config: ExperimentConfig, **extras: Any) -> str:
    """Content hash identifying one run's results.

    ``extras`` fold execution options that change the *summary* content
    (e.g. ``cdf_samples``, ``collect_obs``) into the key, so a cached
    bare summary is never replayed for a request that wanted an
    observability snapshot.  Stable across processes and
    ``PYTHONHASHSEED`` values by construction (SHA-256 over canonical
    JSON; no use of :func:`hash` anywhere).
    """
    payload: Dict[str, Any] = {
        "repro_version": __version__,
        "summary_schema": SUMMARY_SCHEMA_VERSION,
        "config": canonical_config_dict(config),
    }
    if extras:
        payload["extras"] = _jsonify(extras)
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()
