"""Content-addressed on-disk cache of run summaries.

Layout: one ``<digest>.json`` file per sweep point under ``cache_dir``,
where the digest is :func:`repro.exec.digest.config_digest` -- SHA-256
over the canonical config JSON plus package/schema versions.  Properties
that follow directly from that addressing:

- **Resume for free.**  Entries are written atomically as each point
  finishes, so an interrupted 20-point campaign replays its finished
  points and simulates only the remainder.
- **Safe sharing.**  Two concurrent campaigns that collide on a point
  write byte-identical content to the same name (last rename wins,
  both are correct); different configs can never collide.
- **Self-invalidation.**  A package upgrade or summary-schema bump
  changes every digest; stale entries are simply never addressed again
  (and a corrupt/foreign file degrades to a cache miss, mirroring
  ``lint/cache.py``).

A ``cache_dir`` of ``None`` gives an in-memory cache: same API, no
persistence -- callers never special-case "caching off", and duplicate
points within one campaign still coalesce.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Optional, Union

from repro.exec.digest import SUMMARY_SCHEMA_VERSION
from repro.exec.summary import RunSummary

__all__ = ["ResultCache"]


class ResultCache:
    """Maps config digests to :class:`RunSummary` entries.

    ``hits``/``misses`` count :meth:`get` lookups over this instance's
    lifetime; the CLI and CI surface them so a warm re-run can be
    *asserted* to have simulated nothing.
    """

    def __init__(self, cache_dir: Optional[Union[str, Path]] = None) -> None:
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.hits = 0
        self.misses = 0
        self._memory: Dict[str, RunSummary] = {}

    def _entry_path(self, digest: str) -> Optional[Path]:
        if self.cache_dir is None:
            return None
        return self.cache_dir / f"{digest}.json"

    def get(self, digest: str) -> Optional[RunSummary]:
        """The cached summary for a digest, counting hit/miss."""
        summary = self._memory.get(digest)
        if summary is not None:
            self.hits += 1
            return summary
        summary = self._load(digest)
        if summary is None:
            self.misses += 1
            return None
        self._memory[digest] = summary
        self.hits += 1
        return summary

    def _load(self, digest: str) -> Optional[RunSummary]:
        path = self._entry_path(digest)
        if path is None or not path.is_file():
            return None
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None  # unreadable/corrupt entry == miss
        if not isinstance(payload, dict) or payload.get("digest") != digest:
            return None  # foreign or renamed file: never trust the name alone
        try:
            return RunSummary.from_dict(payload["summary"])
        except (KeyError, TypeError, ValueError):
            return None

    def put(self, digest: str, summary: RunSummary) -> None:
        """Store one finished point (written to disk immediately, so an
        interrupted campaign keeps everything completed so far)."""
        self._memory[digest] = summary
        path = self._entry_path(digest)
        if path is None:
            return
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "schema": SUMMARY_SCHEMA_VERSION,
            "digest": digest,
            "summary": summary.to_dict(),
        }
        # Write-then-rename so a crashed run never leaves a torn entry.
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(payload, sort_keys=True), encoding="utf-8")
        tmp.replace(path)

    def stats(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses}
