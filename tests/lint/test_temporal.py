"""Tests for the temporal-soundness layer (SIM401-SIM406).

Covers the fixture matrix (each bad fixture flags exactly its rule,
each good fixture is clean), the time-type lattice and the ``>= now``
proof classifier as units, the SIM404/405/406 machine fixes and their
idempotence, pragma suppression, ``--select``/``--ignore`` interaction,
the profile-ranking attachment on SIM4xx findings, and the cache
round-trip of the temporal dataflow facts.
"""

from __future__ import annotations

import ast
import cProfile
import heapq
import shutil
from pathlib import Path
from typing import Optional

import pytest

from repro.cli import main
from repro.lint import apply_fixes, lint_project
from repro.lint.dataflow import classify_name
from repro.lint.projectmodel import extract_summary
from repro.lint.temporal import (
    ANCHORED,
    EXACT,
    FLOAT,
    SUBTRACTION,
    UNKNOWN,
    UNPROVEN,
    TimeTyper,
    join_time,
    now_proof,
    ttype_for_dim,
)

HERE = Path(__file__).parent
PROJECT_FIXTURES = HERE / "fixtures" / "project"

FIXTURE_MATRIX = [
    ("SIM401", "sim401_past_schedule", "sim401_clamped_schedule"),
    ("SIM402", "sim402_float_time", "sim402_exact_time"),
    ("SIM403", "sim403_float_compare", "sim403_integer_books"),
    ("SIM404", "sim404_edf_tiebreak", "sim404_stable_tiebreak"),
    ("SIM405", "sim405_late_binding", "sim405_bound_callback"),
    ("SIM406", "sim406_time_div", "sim406_floor_div"),
]

FIXABLE = [
    "sim404_edf_tiebreak",
    "sim405_late_binding",
    "sim406_time_div",
]


def _expr(source: str) -> ast.expr:
    return ast.parse(source, mode="eval").body


def _typer(env: Optional[dict] = None) -> TimeTyper:
    return TimeTyper(classify_name, lambda node: None, env or {})


class TestTimeLattice:
    def test_join_float_taints(self):
        assert join_time(EXACT, FLOAT) == FLOAT
        assert join_time(FLOAT, UNKNOWN) == FLOAT
        assert join_time(EXACT, EXACT) == EXACT
        assert join_time(EXACT, UNKNOWN) == UNKNOWN

    def test_dim_presumptions(self):
        assert ttype_for_dim("ns") == EXACT
        assert ttype_for_dim("bytes") == EXACT
        assert ttype_for_dim("rate") == FLOAT
        assert ttype_for_dim(None) == UNKNOWN

    @pytest.mark.parametrize(
        "source,expected",
        [
            ("5", EXACT),
            ("1.5", FLOAT),
            ("a_ns + b_ns", EXACT),
            ("a_ns / 2", FLOAT),  # true division is SIM406's signal
            ("a_ns // 2", EXACT),
            ("round(a_ns / 2)", EXACT),
            ("int(x)", EXACT),
            ("float(a_ns)", FLOAT),
            ("gbps(8.0)", FLOAT),
            ("max(a_ns, b_ns)", EXACT),
            ("max(a_ns, rate_bytes_per_ns)", FLOAT),
            ("mystery(x)", UNKNOWN),
        ],
    )
    def test_expression_types(self, source, expected):
        assert _typer().info(_expr(source)).ttype == expected

    def test_env_overrides_naming(self):
        from repro.lint.temporal import TimeInfo

        env = {"gap_ns": TimeInfo(FLOAT, "ns")}
        assert _typer(env).info(_expr("gap_ns")).ttype == FLOAT
        assert _typer().info(_expr("gap_ns")).ttype == EXACT

    def test_get_default_taints_the_read(self):
        # The admission.py reservation-table pattern.
        assert _typer().info(_expr("table.get(k, 0.0)")).ttype == FLOAT
        assert _typer().info(_expr("table.get(k, 0)")).ttype == UNKNOWN

    def test_quantity_tracks_dimension_algebra(self):
        info = _typer().info(_expr("size_bytes / rate_bytes_per_ns"))
        assert (info.ttype, info.quantity) == (FLOAT, "ns")

    def test_round_with_ndigits_keeps_floatness(self):
        assert _typer().info(_expr("round(x / 3, 2)")).ttype == FLOAT


class TestNowProof:
    @pytest.mark.parametrize(
        "source,expected",
        [
            ("engine.now", ANCHORED),
            ("engine.now + delay_ns", ANCHORED),
            ("max(engine.now, deadline_ns - guard_ns)", ANCHORED),
            ("round(engine.now + delay_ns)", ANCHORED),
            ("deadline_ns - guard_ns", SUBTRACTION),
            ("deadline_ns", UNPROVEN),
            ("compute_time()", UNPROVEN),
        ],
    )
    def test_direct_expressions(self, source, expected):
        assert now_proof(_expr(source), {}) == expected

    def test_proofs_flow_through_names(self):
        assert now_proof(_expr("t"), {"t": SUBTRACTION}) == SUBTRACTION
        assert now_proof(_expr("t"), {"t": ANCHORED}) == ANCHORED
        assert now_proof(_expr("t"), {}) == UNPROVEN

    def test_ifexp_needs_both_arms_anchored(self):
        both = _expr("engine.now if fast else engine.now + gap_ns")
        one = _expr("engine.now if fast else deadline_ns")
        assert now_proof(both, {}) == ANCHORED
        assert now_proof(one, {}) == UNPROVEN


class TestTemporalFacts:
    def test_schedule_call_records_proof_and_type(self):
        summary = extract_summary(
            "def arm(engine, deadline_ns, guard_ns, cb):\n"
            "    t = deadline_ns - guard_ns\n"
            "    engine.at(t, cb)\n",
            "mod.py",
        )
        (rec,) = summary.functions["arm"].schedule_calls
        assert rec["attr"] == "at"
        assert rec["proof"] == SUBTRACTION
        assert rec["ttype"] == EXACT

    def test_non_engine_receiver_is_ignored(self):
        summary = extract_summary(
            "def arm(scheduler, t, cb):\n"
            "    scheduler.at(t - 1, cb)\n",
            "mod.py",
        )
        assert summary.functions["arm"].schedule_calls == []

    def test_loop_capture_skips_default_bound_lambda(self):
        summary = extract_summary(
            "def arm(engine, flows, send):\n"
            "    for flow in flows:\n"
            "        engine.after(10, lambda flow=flow: send(flow))\n",
            "mod.py",
        )
        assert summary.functions["arm"].loop_captures == []

    def test_local_def_capture_is_recorded_without_fix(self):
        summary = extract_summary(
            "def arm(engine, flows, send):\n"
            "    for flow in flows:\n"
            "        def fire():\n"
            "            send(flow)\n"
            "        engine.after(10, fire)\n",
            "mod.py",
        )
        (rec,) = summary.functions["arm"].loop_captures
        assert rec["kind"] == "local-def"
        assert rec["vars"] == ["flow"]
        assert rec["fix"] is None


class TestFixtureMatrix:
    @pytest.mark.parametrize(
        "rule_id,bad_dir,good_dir",
        FIXTURE_MATRIX,
        ids=[row[0] for row in FIXTURE_MATRIX],
    )
    def test_bad_fixture_flags_exactly_its_rule(self, rule_id, bad_dir, good_dir):
        violations, _ = lint_project([PROJECT_FIXTURES / "bad" / bad_dir])
        assert violations, f"{bad_dir} produced no findings"
        assert {v.rule_id for v in violations} == {rule_id}

    @pytest.mark.parametrize(
        "rule_id,bad_dir,good_dir",
        FIXTURE_MATRIX,
        ids=[row[0] for row in FIXTURE_MATRIX],
    )
    def test_good_fixture_is_clean(self, rule_id, bad_dir, good_dir):
        violations, _ = lint_project([PROJECT_FIXTURES / "good" / good_dir])
        assert violations == [], "\n".join(v.format() for v in violations)


class TestMachineFixes:
    @pytest.mark.parametrize("bad_dir", FIXABLE)
    def test_fix_resolves_the_finding(self, tmp_path, bad_dir):
        target = tmp_path / bad_dir
        shutil.copytree(PROJECT_FIXTURES / "bad" / bad_dir, target)
        violations, _ = lint_project([target])
        report = apply_fixes(violations, dry_run=False)
        assert report.files_changed
        after, _ = lint_project([target])
        assert after == [], "\n".join(v.format() for v in after)

    @pytest.mark.parametrize("bad_dir", FIXABLE)
    def test_fix_is_idempotent(self, tmp_path, bad_dir):
        target = tmp_path / bad_dir
        shutil.copytree(PROJECT_FIXTURES / "bad" / bad_dir, target)
        violations, _ = lint_project([target])
        apply_fixes(violations, dry_run=False)
        snapshot = {
            p: p.read_text(encoding="utf-8") for p in target.rglob("*.py")
        }
        after, _ = lint_project([target])
        report = apply_fixes(after, dry_run=False)
        assert not report.files_changed
        assert snapshot == {
            p: p.read_text(encoding="utf-8") for p in target.rglob("*.py")
        }

    @pytest.mark.parametrize("bad_dir", FIXABLE)
    def test_dry_run_leaves_files_alone(self, tmp_path, bad_dir):
        target = tmp_path / bad_dir
        shutil.copytree(PROJECT_FIXTURES / "bad" / bad_dir, target)
        before = {
            p: p.read_text(encoding="utf-8") for p in target.rglob("*.py")
        }
        violations, _ = lint_project([target])
        report = apply_fixes(violations, dry_run=True)
        assert report.files_changed
        assert before == {
            p: p.read_text(encoding="utf-8") for p in target.rglob("*.py")
        }

    def test_sim404_fix_produces_stable_edf_order(self, tmp_path):
        target = tmp_path / "sim404"
        shutil.copytree(
            PROJECT_FIXTURES / "bad" / "sim404_edf_tiebreak", target
        )
        violations, _ = lint_project([target])
        apply_fixes(violations, dry_run=False)
        text = (target / "core" / "queues" / "edfq.py").read_text(
            encoding="utf-8"
        )
        assert "(pkt.deadline, pkt.uid, pkt)" in text
        assert "(p.deadline, p.uid)" in text
        namespace: dict = {}
        exec(compile(text, "edfq.py", "exec"), namespace)

        class Pkt:
            def __init__(self, deadline, uid):
                self.deadline, self.uid = deadline, uid

        heap: list = []
        first, second = Pkt(100, 1), Pkt(100, 2)
        namespace["push"](heap, second)
        namespace["push"](heap, first)
        assert heapq.heappop(heap)[2] is first  # FIFO on equal deadlines

    def test_sim405_fix_binds_each_iteration(self, tmp_path):
        target = tmp_path / "sim405"
        shutil.copytree(
            PROJECT_FIXTURES / "bad" / "sim405_late_binding", target
        )
        violations, _ = lint_project([target])
        apply_fixes(violations, dry_run=False)
        text = (target / "armer.py").read_text(encoding="utf-8")
        namespace: dict = {}
        exec(compile(text, "armer.py", "exec"), namespace)

        callbacks = []

        class FakeEngine:
            def after(self, delay, cb):
                callbacks.append(cb)

        seen: list = []
        namespace["arm_all"](FakeEngine(), ["a", "b", "c"], seen.append)
        for cb in callbacks:
            cb()
        assert seen == ["a", "b", "c"]  # not ["c", "c", "c"]


class TestPragmas:
    @pytest.mark.parametrize(
        "spelling", ["allow-truncating-time-div", "allow-sim406"]
    )
    def test_pragma_on_offending_line_suppresses(self, tmp_path, spelling):
        target = tmp_path / "sim406"
        shutil.copytree(PROJECT_FIXTURES / "bad" / "sim406_time_div", target)
        module = target / "splitter.py"
        lines = module.read_text(encoding="utf-8").splitlines()
        lines[4] += f"  # simlint: {spelling}"
        lines[8] += f"  # simlint: {spelling}"
        module.write_text("\n".join(lines) + "\n", encoding="utf-8")
        violations, _ = lint_project([target])
        assert violations == [], "\n".join(v.format() for v in violations)

    def test_pragma_on_other_line_does_not_suppress(self, tmp_path):
        target = tmp_path / "sim401"
        shutil.copytree(
            PROJECT_FIXTURES / "bad" / "sim401_past_schedule", target
        )
        module = target / "timer.py"
        lines = module.read_text(encoding="utf-8").splitlines()
        lines[0] += "  # simlint: allow-schedule-in-past"
        module.write_text("\n".join(lines) + "\n", encoding="utf-8")
        violations, _ = lint_project([target])
        assert [v.rule_id for v in violations] == ["SIM401"]


class TestSelectIgnore:
    def test_prefix_selects_the_family(self):
        bad = PROJECT_FIXTURES / "bad"
        violations, _ = lint_project(
            [bad / "sim402_float_time", bad / "sim301_loop_allocation"],
            select=["SIM4"],
        )
        assert violations
        assert all(v.rule_id.startswith("SIM4") for v in violations)

    def test_ignore_subtracts_from_select(self):
        bad = PROJECT_FIXTURES / "bad"
        violations, _ = lint_project(
            [bad / "sim402_float_time", bad / "sim406_time_div"],
            select=["SIM4"],
            ignore=["SIM406"],
        )
        assert {v.rule_id for v in violations} == {"SIM402"}

    def test_ignore_alone_subtracts_from_all(self):
        bad = PROJECT_FIXTURES / "bad"
        violations, _ = lint_project(
            [bad / "sim402_float_time"], ignore=["SIM4"]
        )
        assert violations == []

    def test_unknown_prefix_raises(self):
        with pytest.raises(KeyError, match="SIM9"):
            lint_project(
                [PROJECT_FIXTURES / "bad" / "sim402_float_time"],
                select=["SIM9"],
            )


class TestProfileAttachment:
    def test_hot_temporal_finding_ranks_first(self, tmp_path):
        project = tmp_path / "proj"
        shutil.copytree(
            PROJECT_FIXTURES / "bad" / "sim404_edf_tiebreak", project
        )
        module = project / "core" / "queues" / "edfq.py"
        namespace: dict = {}
        exec(
            compile(
                module.read_text(encoding="utf-8"),
                str(module).replace("\\", "/"),
                "exec",
            ),
            namespace,
        )
        class Pkt:
            def __init__(self, deadline):
                self.deadline = deadline

        profiler = cProfile.Profile()
        profiler.enable()
        for i in range(20000):
            namespace["push"]([], Pkt(i))
        profiler.disable()
        dump = tmp_path / "prof.pstats"
        profiler.dump_stats(str(dump))

        violations, stats = lint_project([project], profile=dump)
        by_line = {v.line: v for v in violations if v.rule_id == "SIM404"}
        assert by_line[7].profile["bucket"] == "hot"
        assert by_line[7].profile["cum_seconds"] > 0.0
        assert by_line[11].profile["bucket"] == "cold"  # never executed
        assert stats["profile"]["ranked"] == 2


class TestCacheRoundTrip:
    def test_warm_run_reparses_nothing_and_agrees(self, tmp_path):
        cache_dir = tmp_path / "cache"
        target = PROJECT_FIXTURES / "bad" / "sim404_edf_tiebreak"
        cold, cold_stats = lint_project([target], cache_dir=cache_dir)
        warm, warm_stats = lint_project([target], cache_dir=cache_dir)
        assert cold_stats["misses"] == 1 and cold_stats["hits"] == 0
        assert warm_stats["misses"] == 0 and warm_stats["hits"] == 1
        # The temporal facts (sort_keys incl. fix spans) survived the
        # to_dict/from_dict round trip: identical findings either way.
        assert warm == cold
        assert any(v.fix for v in warm)

    def test_schema_version_fingerprints_temporal_fields(self):
        from repro.lint.cache import CACHE_SCHEMA_VERSION

        assert CACHE_SCHEMA_VERSION >= 5


class TestCli:
    @pytest.mark.parametrize(
        "rule_id",
        ["SIM401", "SIM402", "SIM403", "SIM404", "SIM405", "SIM406"],
    )
    def test_explain_covers_the_family(self, rule_id, capsys):
        assert main(["lint", "--explain", rule_id]) == 0
        out = capsys.readouterr().out
        assert rule_id in out
        assert "example" in out.lower()

    def test_select_prefix_gates_exit_code(self):
        bad = PROJECT_FIXTURES / "bad" / "sim402_float_time"
        assert main(["lint", "--project", "--select", "SIM4", str(bad)]) == 1
        assert main(["lint", "--project", "--select", "SIM1", str(bad)]) == 0

    def test_ignore_flag_gates_exit_code(self):
        bad = PROJECT_FIXTURES / "bad" / "sim402_float_time"
        assert main(["lint", "--project", "--ignore", "SIM4", str(bad)]) == 0

    def test_unknown_ignore_is_usage_error(self, capsys):
        bad = PROJECT_FIXTURES / "bad" / "sim402_float_time"
        assert main(["lint", "--project", "--ignore", "SIM9", str(bad)]) == 2
        assert "SIM9" in capsys.readouterr().err

    @pytest.mark.parametrize("fmt", ["json", "sarif"])
    def test_structured_output_honors_the_filter(self, fmt, capsys):
        import json

        bad = PROJECT_FIXTURES / "bad"
        argv = [
            "lint",
            "--project",
            "--format",
            fmt,
            "--select",
            "SIM4",
            "--ignore",
            "SIM406",
            str(bad / "sim402_float_time"),
            str(bad / "sim406_time_div"),
        ]
        assert main(argv) == 1
        payload = json.loads(capsys.readouterr().out)
        if fmt == "json":
            rules = {v["rule"] for v in payload["violations"]}
        else:
            rules = {
                r["ruleId"] for r in payload["runs"][0]["results"]
            }
        assert rules == {"SIM402"}
