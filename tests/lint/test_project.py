"""Tests for the project-wide (SIM1xx) analysis layer.

Covers the fixture matrix (each bad fixture flags exactly its rule, each
good fixture is clean), the content-hash cache (a warm run re-parses
zero files), pragma suppression of cross-module findings, provenance in
the JSON schema, the ``--project``/``--explain`` CLI surface, and the
gate that keeps ``src/`` clean under the project rules.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.cli import main
from repro.lint import iter_python_files, lint_project
from repro.sim import units

HERE = Path(__file__).parent
PROJECT_FIXTURES = HERE / "fixtures" / "project"
SRC = HERE.resolve().parents[1] / "src" / "repro"

FIXTURE_MATRIX = [
    ("SIM101", "sim101_unit_mismatch", "sim101_unit_match"),
    ("SIM102", "sim102_unordered_dispatch", "sim102_ordered_dispatch"),
    ("SIM103", "sim103_dead_export", "sim103_live_exports"),
    ("SIM104", "sim104_logging_hot_path", "sim104_pure_hot_path"),
    ("SIM104", "sim104_obs_impostor", "sim104_obs_sanctioned"),
    ("SIM104", "sim104_exec_impostor", "sim104_exec_sanctioned"),
    ("SIM104", "sim104_tracing_impostor", "sim104_tracing_sanctioned"),
]


class TestFixtureMatrix:
    @pytest.mark.parametrize(
        "rule_id,bad_dir,good_dir",
        FIXTURE_MATRIX,
        ids=[row[0] for row in FIXTURE_MATRIX],
    )
    def test_bad_fixture_flags_exactly_its_rule(self, rule_id, bad_dir, good_dir):
        violations, _ = lint_project([PROJECT_FIXTURES / "bad" / bad_dir])
        assert violations, f"{bad_dir} produced no findings"
        assert {v.rule_id for v in violations} == {rule_id}

    @pytest.mark.parametrize(
        "rule_id,bad_dir,good_dir",
        FIXTURE_MATRIX,
        ids=[row[0] for row in FIXTURE_MATRIX],
    )
    def test_good_fixture_is_clean(self, rule_id, bad_dir, good_dir):
        violations, _ = lint_project([PROJECT_FIXTURES / "good" / good_dir])
        assert violations == [], "\n".join(v.format() for v in violations)

    def test_cross_module_finding_carries_provenance(self):
        violations, _ = lint_project(
            [PROJECT_FIXTURES / "bad" / "sim101_unit_mismatch"]
        )
        (violation,) = violations
        assert len(violation.provenance) == 2
        assert any("caller.py" in step for step in violation.provenance)
        assert any("timers.py" in step for step in violation.provenance)
        assert "(via " in violation.format()


class TestIncrementalCache:
    def test_warm_run_reparses_zero_files(self, tmp_path):
        cache_dir = tmp_path / "cache"
        target = PROJECT_FIXTURES / "bad" / "sim101_unit_mismatch"

        cold_violations, cold = lint_project([target], cache_dir=cache_dir)
        assert cold["files"] == 2
        assert cold["misses"] == 2 and cold["hits"] == 0

        warm_violations, warm = lint_project([target], cache_dir=cache_dir)
        assert warm["files"] == 2
        assert warm["misses"] == 0, "warm run re-parsed a file"
        assert warm["hits"] == warm["files"]
        assert [v.to_dict() for v in warm_violations] == [
            v.to_dict() for v in cold_violations
        ]

    def test_edit_invalidates_only_the_changed_file(self, tmp_path):
        cache_dir = tmp_path / "cache"
        project = tmp_path / "proj"
        project.mkdir()
        (project / "a.py").write_text("A = 1\n", encoding="utf-8")
        (project / "b.py").write_text("B = 2\n", encoding="utf-8")

        lint_project([project], cache_dir=cache_dir)
        (project / "b.py").write_text("B = 3\n", encoding="utf-8")
        _, stats = lint_project([project], cache_dir=cache_dir)
        assert stats == {"files": 2, "hits": 1, "misses": 1}

    def test_corrupt_cache_degrades_to_cold(self, tmp_path):
        cache_dir = tmp_path / "cache"
        cache_dir.mkdir()
        (cache_dir / "projectmodel.json").write_text("{not json", encoding="utf-8")
        violations, stats = lint_project(
            [PROJECT_FIXTURES / "bad" / "sim103_dead_export"], cache_dir=cache_dir
        )
        assert stats["misses"] == stats["files"] == 2
        assert {v.rule_id for v in violations} == {"SIM103"}


def _write_sim101_project(root: Path, call_line_suffix: str = "") -> None:
    (root / "timers.py").write_text(
        textwrap.dedent(
            '''
            def schedule_wakeup(deadline_ns):
                return deadline_ns
            '''
        ),
        encoding="utf-8",
    )
    (root / "caller.py").write_text(
        textwrap.dedent(
            f'''
            from timers import schedule_wakeup

            TIMEOUT_US = 50


            def arm():
                return schedule_wakeup(TIMEOUT_US){call_line_suffix}
            '''
        ),
        encoding="utf-8",
    )


class TestPragmaSuppression:
    def test_unsuppressed_project_finding_fires(self, tmp_path):
        _write_sim101_project(tmp_path)
        violations, _ = lint_project([tmp_path])
        assert {v.rule_id for v in violations} == {"SIM101"}

    @pytest.mark.parametrize("spelling", ["allow-sim101", "allow-unit-dimension"])
    def test_pragma_on_offending_line_suppresses(self, tmp_path, spelling):
        _write_sim101_project(tmp_path, f"  # simlint: {spelling}")
        violations, _ = lint_project([tmp_path])
        assert violations == [], "\n".join(v.format() for v in violations)

    def test_pragma_on_other_line_does_not_suppress(self, tmp_path):
        _write_sim101_project(tmp_path)
        source = (tmp_path / "caller.py").read_text(encoding="utf-8")
        (tmp_path / "caller.py").write_text(
            source.replace("TIMEOUT_US = 50", "TIMEOUT_US = 50  # simlint: allow-sim101"),
            encoding="utf-8",
        )
        violations, _ = lint_project([tmp_path])
        assert {v.rule_id for v in violations} == {"SIM101"}

    def test_unknown_pragma_is_reported_in_project_mode(self, tmp_path):
        (tmp_path / "mod.py").write_text(
            "X = 1  # simlint: allow-no-such-rule\n", encoding="utf-8"
        )
        violations, _ = lint_project([tmp_path])
        assert {v.rule_id for v in violations} == {"SIM000"}

    def test_unknown_pragma_survives_the_cache(self, tmp_path):
        """SIM000 comes from the cached per-file pass; a warm run must
        still report it."""
        cache_dir = tmp_path / "cache"
        project = tmp_path / "proj"
        project.mkdir()
        (project / "mod.py").write_text(
            "X = 1  # simlint: allow-no-such-rule\n", encoding="utf-8"
        )
        lint_project([project], cache_dir=cache_dir)
        violations, stats = lint_project([project], cache_dir=cache_dir)
        assert stats["misses"] == 0
        assert {v.rule_id for v in violations} == {"SIM000"}


class TestProjectCli:
    def test_bad_fixture_exits_one(self, capsys):
        code = main(
            ["lint", "--project", str(PROJECT_FIXTURES / "bad" / "sim101_unit_mismatch")]
        )
        assert code == 1
        assert "SIM101" in capsys.readouterr().out

    def test_good_fixture_exits_zero(self, capsys):
        code = main(
            ["lint", "--project", str(PROJECT_FIXTURES / "good" / "sim101_unit_match")]
        )
        assert code == 0

    def test_json_schema_has_cache_and_provenance(self, capsys, tmp_path):
        code = main(
            [
                "lint",
                "--project",
                "--format",
                "json",
                "--cache-dir",
                str(tmp_path / "cache"),
                str(PROJECT_FIXTURES / "bad" / "sim104_logging_hot_path"),
            ]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert set(payload) == {"violations", "count", "cache"}
        assert payload["cache"] == {"files": 2, "hits": 0, "misses": 2}
        (violation,) = payload["violations"]
        assert set(violation) == {
            "path",
            "line",
            "col",
            "rule",
            "name",
            "message",
            "provenance",
        }
        assert violation["rule"] == "SIM104"
        assert violation["provenance"], "project finding lost its provenance"

    def test_list_rules_includes_project_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("SIM101", "SIM102", "SIM103", "SIM104"):
            assert rule_id in out
        assert "allow-unit-dimension" in out
        assert "allow-dead-export" in out

    def test_explain_known_rule(self, capsys):
        assert main(["lint", "--explain", "sim101"]) == 0
        out = capsys.readouterr().out
        assert "SIM101" in out
        assert "Rationale:" in out
        assert "Bad example" in out
        assert "Good example" in out

    def test_explain_accepts_pragma_name(self, capsys):
        assert main(["lint", "--explain", "hot-path-purity"]) == 0
        assert "SIM104" in capsys.readouterr().out

    def test_explain_unknown_rule_is_usage_error(self, capsys):
        assert main(["lint", "--explain", "SIM999"]) == 2
        assert "unknown rule" in capsys.readouterr().err


class TestSrcIsProjectClean:
    def test_src_tree_passes_project_rules(self):
        violations, stats = lint_project([SRC])
        assert not violations, "project-rule violations in src/:\n" + "\n".join(
            v.format() for v in violations
        )
        assert stats["files"] > 40


class TestFileWalk:
    def test_skips_pycache_and_hidden_dirs(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "real.py").write_text("A = 1\n", encoding="utf-8")
        (tmp_path / "pkg" / "__pycache__").mkdir()
        (tmp_path / "pkg" / "__pycache__" / "real.py").write_text(
            "B = 2\n", encoding="utf-8"
        )
        (tmp_path / ".hidden").mkdir()
        (tmp_path / ".hidden" / "secret.py").write_text("C = 3\n", encoding="utf-8")
        files = list(iter_python_files([tmp_path]))
        assert files == [tmp_path / "pkg" / "real.py"]

    def test_order_is_sorted_and_deterministic(self, tmp_path):
        for name in ("zeta.py", "alpha.py", "mid.py"):
            (tmp_path / name).write_text("X = 1\n", encoding="utf-8")
        first = list(iter_python_files([tmp_path]))
        assert first == sorted(first)
        assert first == list(iter_python_files([tmp_path]))

    def test_hidden_scan_root_is_still_linted(self, tmp_path):
        """Only directories *below* the entry point are skip-checked: a
        tree that happens to live under a dot-directory must lint."""
        root = tmp_path / ".work" / "proj"
        root.mkdir(parents=True)
        (root / "mod.py").write_text("A = 1\n", encoding="utf-8")
        assert list(iter_python_files([root])) == [root / "mod.py"]


class TestUnitConstructors:
    def test_constructors_match_constants(self):
        assert units.us(20) == 20 * units.US == 20_000
        assert units.ms(10) == 10 * units.MS == 10_000_000
        assert units.s(1) == units.S == 1_000_000_000

    def test_fractional_inputs_round_to_integer_ns(self):
        assert units.us(0.5) == 500
        assert isinstance(units.us(0.5), int)
