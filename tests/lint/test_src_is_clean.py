"""The enforcement gate: the whole library tree must stay simlint-clean.

This is the test that makes the determinism/invariant discipline
permanent: any new stdlib-``random`` import, wall-clock read, bare
assert, mutable default, float deadline comparison, or slotless hot-path
class under ``src/`` fails CI with a file:line diagnostic.
"""

from __future__ import annotations

from pathlib import Path

from repro.lint import iter_python_files, lint_paths

SRC = Path(__file__).resolve().parents[2] / "src" / "repro"


def test_src_tree_is_lint_clean():
    violations = lint_paths([SRC])
    assert not violations, "simlint violations in src/:\n" + "\n".join(
        v.format() for v in violations
    )


def test_gate_actually_covers_the_tree():
    """Guard the gate itself: the walk must see the whole library (a
    path typo would make the clean-tree test pass vacuously)."""
    files = list(iter_python_files([SRC]))
    assert len(files) > 40
    names = {f.name for f in files}
    assert {"takeover.py", "reservoir.py", "rng.py", "runner.py"} <= names
