"""Per-rule fixture tests plus focused unit tests for each SIM rule.

Every rule gets (a) a known-bad fixture file that must trigger it, (b) a
known-good fixture that must stay silent, and (c) unit tests via
``lint_source`` pinning down edge cases -- including pragma suppression
and the SIM000 meta-diagnostics.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.lint import RULES, lint_file, lint_paths, lint_source

FIXTURES = Path(__file__).parent / "fixtures"

BAD_FIXTURES = {
    "SIM001": "bad/sim001_global_random.py",
    "SIM002": "bad/sim002_wallclock.py",
    "SIM003": "bad/sim003_float_deadline_eq.py",
    "SIM004": "bad/sim004_bare_assert.py",
    "SIM005": "bad/sim005_mutable_default.py",
    "SIM006": "bad/core/queues/sim006_missing_slots.py",
}

GOOD_FIXTURES = [
    "good/clean_module.py",
    "good/pragma_suppressed.py",
    "good/core/queues/slotted.py",
]


class TestRegistry:
    def test_all_six_rules_registered(self):
        assert set(RULES) >= {f"SIM00{i}" for i in range(1, 7)}

    def test_ids_match_keys_and_names_unique(self):
        names = [rule.name for rule in RULES.values()]
        assert len(names) == len(set(names))
        for rule_id, rule in RULES.items():
            assert rule.id == rule_id
            assert rule.description

    def test_register_rejects_duplicates(self):
        from repro.lint.rules import Rule, register_rule

        with pytest.raises(ValueError, match="duplicate rule id"):

            @register_rule
            class Clone(Rule):  # noqa: F811 - intentionally conflicting
                id = "SIM001"
                name = "clone-of-sim001"


class TestFixtures:
    @pytest.mark.parametrize("rule_id", sorted(BAD_FIXTURES))
    def test_bad_fixture_triggers_exactly_its_rule(self, rule_id):
        violations = lint_file(FIXTURES / BAD_FIXTURES[rule_id])
        assert violations, f"{BAD_FIXTURES[rule_id]} triggered nothing"
        assert {v.rule_id for v in violations} == {rule_id}
        for v in violations:
            assert v.line > 0
            assert v.rule_name == RULES[rule_id].name

    @pytest.mark.parametrize("fixture", GOOD_FIXTURES)
    def test_good_fixture_is_clean(self, fixture):
        assert lint_file(FIXTURES / fixture) == []

    def test_bad_directory_collects_all_rules(self):
        violations = lint_paths([FIXTURES / "bad"])
        assert {v.rule_id for v in violations} == set(BAD_FIXTURES)
        # Output is sorted by (path, line, col) for stable CI diffs.
        assert violations == sorted(violations)


class TestSim001GlobalRandom:
    def test_both_import_forms_flagged(self):
        found = lint_source("import random\nfrom random import randint\n")
        assert [v.line for v in found] == [1, 2]
        assert all(v.rule_id == "SIM001" for v in found)

    def test_rng_wrapper_import_is_fine(self):
        assert lint_source("from repro.sim.rng import RandomStream\n") == []

    def test_unrelated_module_named_randomish_is_fine(self):
        assert lint_source("import randomforest\n") == []


class TestSim002WallClock:
    def test_direct_calls_flagged(self):
        source = "import time\nt = time.time()\np = time.perf_counter()\n"
        found = lint_source(source)
        assert [v.line for v in found] == [2, 3]
        assert all(v.rule_id == "SIM002" for v in found)

    def test_datetime_now_flagged(self):
        found = lint_source("import datetime\nd = datetime.datetime.now()\n")
        assert [v.rule_id for v in found] == ["SIM002"]

    def test_from_import_of_clock_functions_flagged(self):
        found = lint_source("from time import perf_counter, sleep\n")
        assert [v.rule_id for v in found] == ["SIM002"]
        assert "perf_counter" in found[0].message

    def test_sleep_alone_is_fine(self):
        assert lint_source("from time import sleep\n") == []

    def test_engine_now_is_fine(self):
        assert lint_source("t = engine.now\n") == []


class TestSim003FloatDeadlineEq:
    def test_float_literal_vs_deadline(self):
        found = lint_source("due = deadline == 1.5\n")
        assert [v.rule_id for v in found] == ["SIM003"]

    def test_division_vs_time_name(self):
        found = lint_source("hit = arrival_ns != size / bw\n")
        assert [v.rule_id for v in found] == ["SIM003"]

    def test_integer_comparison_is_fine(self):
        assert lint_source("due = deadline == other.deadline\n") == []
        assert lint_source("due = deadline == 5\n") == []

    def test_float_eq_without_time_name_is_not_this_rules_business(self):
        assert lint_source("x = ratio == 1.5\n") == []

    def test_ordering_comparisons_are_fine(self):
        assert lint_source("late = deadline < now + size / bw\n") == []


class TestSim004BareAssert:
    def test_assert_flagged_and_points_at_invariant(self):
        found = lint_source("assert x, 'boom'\n")
        assert [v.rule_id for v in found] == ["SIM004"]
        assert "invariant" in found[0].message

    def test_invariant_call_is_fine(self):
        source = "from repro.core.invariants import invariant\ninvariant(x, 'boom')\n"
        assert lint_source(source) == []


class TestSim005MutableDefault:
    def test_literal_and_constructor_defaults_flagged(self):
        source = "def f(a=[], b=dict(), *, c={1}):\n    return a, b, c\n"
        found = lint_source(source)
        assert len(found) == 3
        assert all(v.rule_id == "SIM005" for v in found)

    def test_none_and_immutable_defaults_are_fine(self):
        assert lint_source("def f(a=None, b=(), c=0, d='x'):\n    return a\n") == []

    def test_arbitrary_call_default_is_fine(self):
        # e.g. a frozen dataclass default: not list/dict/set-like.
        assert lint_source("def f(cfg=Config()):\n    return cfg\n") == []


class TestSim006Slots:
    def test_only_applies_on_hot_paths(self):
        source = "class Anywhere:\n    def __init__(self):\n        self.x = 1\n"
        assert lint_source(source, path="repro/analysis/foo.py") == []
        found = lint_source(source, path="repro/core/queues/foo.py")
        assert [v.rule_id for v in found] == ["SIM006"]
        assert "Anywhere" in found[0].message

    def test_packet_module_is_hot_path(self):
        source = "class P:\n    pass\n"
        found = lint_source(source, path="src/repro/network/packet.py")
        assert [v.rule_id for v in found] == ["SIM006"]

    def test_slots_dataclass_protocol_exception_pass(self):
        source = (
            "from dataclasses import dataclass\n"
            "from typing import Protocol\n"
            "class A:\n    __slots__ = ('x',)\n"
            "@dataclass\nclass B:\n    x: int = 0\n"
            "class C(Protocol):\n    x: int\n"
            "class D(ValueError):\n    pass\n"
        )
        assert lint_source(source, path="repro/core/queues/foo.py") == []


class TestPragmas:
    def test_line_pragma_suppresses_only_its_line(self):
        source = (
            "import random  # simlint: allow-global-random\n"
            "from random import randint\n"
        )
        found = lint_source(source)
        assert [(v.rule_id, v.line) for v in found] == [("SIM001", 2)]

    def test_multi_rule_pragma(self):
        source = (
            "import time, random\n"  # SIM001 fires here, unsuppressed
            "t = time.time()  # simlint: allow-wallclock, allow-global-random\n"
        )
        found = lint_source(source)
        assert [(v.rule_id, v.line) for v in found] == [("SIM001", 1)]

    def test_pragma_does_not_suppress_other_rules(self):
        source = "assert x  # simlint: allow-wallclock\n"
        found = lint_source(source)
        # The assert still fires; the mismatched pragma itself is NOT an
        # unknown-rule typo (wallclock exists), so only SIM004 reports.
        assert [v.rule_id for v in found] == ["SIM004"]

    def test_unknown_pragma_name_reported(self):
        found = lint_source("x = 1  # simlint: allow-wibble\n")
        assert [v.rule_id for v in found] == ["SIM000"]
        assert found[0].rule_name == "unknown-pragma"
        assert "wibble" in found[0].message

    def test_malformed_directive_reported(self):
        found = lint_source("x = 1  # simlint: disable-all\n")
        assert [v.rule_id for v in found] == ["SIM000"]

    def test_pragma_inside_string_is_ignored(self):
        source = "s = 'text with # simlint: allow-global-random inside'\n"
        assert lint_source(source) == []


class TestRunner:
    def test_parse_error_reported_not_raised(self):
        found = lint_source("def broken(:\n")
        assert [v.rule_id for v in found] == ["SIM000"]
        assert found[0].rule_name == "parse-error"

    def test_select_restricts_rules(self):
        source = "import random\nassert x\n"
        assert {v.rule_id for v in lint_source(source)} == {"SIM001", "SIM004"}
        only = lint_source(source, select=["SIM004"])
        assert {v.rule_id for v in only} == {"SIM004"}

    def test_select_unknown_rule_raises(self):
        with pytest.raises(KeyError, match="SIM999"):
            lint_source("x = 1\n", select=["SIM999"])

    def test_missing_path_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            lint_paths([tmp_path / "nope"])

    def test_violation_format_is_clickable(self):
        violation = lint_source("import random\n", path="pkg/mod.py")[0]
        assert violation.format().startswith("pkg/mod.py:1:0: SIM001 [global-random]")
        assert set(violation.to_dict()) == {
            "path",
            "line",
            "col",
            "rule",
            "name",
            "message",
            "provenance",
        }
