"""Regression tests for the lint cache key.

The per-file key folds in the rule-set digest *and*, for profile-guided
runs, the profile dump's content hash: a cached entry produced without
(or under a different) profile must miss, because the ranking baked
into downstream consumers depends on the dump's bytes.
"""

from __future__ import annotations

import cProfile
from pathlib import Path

from repro.lint import lint_project
from repro.lint.cache import rules_digest

HERE = Path(__file__).parent
TARGET = HERE / "fixtures" / "project" / "bad" / "sim301_loop_allocation"


def _make_dump(path: Path, label: str) -> Path:
    """A tiny but valid pstats dump; ``label`` names the profiled
    function so two dumps differ structurally, not just by timing."""
    namespace: dict = {}
    exec(f"def work_{label}(n):\n    return sum(range(n))\n", namespace)
    profiler = cProfile.Profile()
    profiler.enable()
    namespace[f"work_{label}"](10_000)
    profiler.disable()
    profiler.dump_stats(str(path))
    return path


def test_rules_digest_covers_the_sim3xx_family():
    from repro.lint.project_rules import PROJECT_RULES

    assert {"SIM301", "SIM302", "SIM303", "SIM304", "SIM305", "SIM306"} <= set(
        PROJECT_RULES
    )
    assert len(rules_digest()) == 16


def test_schema_v5_cache_entries_are_invalidated(tmp_path):
    """Warm entries written under schema v5 (no container-lifecycle
    facts) must not replay once the v6 reader is in charge."""
    import json

    from repro.lint.cache import CACHE_FILE_NAME, CACHE_SCHEMA_VERSION

    assert CACHE_SCHEMA_VERSION == 6  # SIM5xx scale facts
    cache_dir = tmp_path / "cache"
    _, cold = lint_project([TARGET], cache_dir=cache_dir)
    assert cold["misses"] == cold["files"] > 0

    cache_file = cache_dir / CACHE_FILE_NAME
    payload = json.loads(cache_file.read_text(encoding="utf-8"))
    assert payload["schema"] == CACHE_SCHEMA_VERSION
    payload["schema"] = 5  # as the previous release would have written
    cache_file.write_text(json.dumps(payload), encoding="utf-8")

    _, rerun = lint_project([TARGET], cache_dir=cache_dir)
    assert (rerun["hits"], rerun["misses"]) == (0, rerun["files"])


def test_profile_content_hash_is_part_of_the_cache_key(tmp_path):
    cache_dir = tmp_path / "cache"
    dump_a = _make_dump(tmp_path / "a.pstats", "a")
    dump_b = _make_dump(tmp_path / "b.pstats", "b")
    assert dump_a.read_bytes() != dump_b.read_bytes()

    _, cold = lint_project([TARGET], cache_dir=cache_dir)
    assert cold["misses"] == cold["files"] > 0

    # Unprofiled warm run: every file replays from cache.
    _, warm = lint_project([TARGET], cache_dir=cache_dir)
    assert (warm["hits"], warm["misses"]) == (warm["files"], 0)

    # A profile changes the key: the unprofiled entries must not replay.
    _, first_profiled = lint_project(
        [TARGET], cache_dir=cache_dir, profile=dump_a
    )
    assert first_profiled["misses"] == first_profiled["files"]

    # Same dump bytes -> same key -> warm.
    _, second_profiled = lint_project(
        [TARGET], cache_dir=cache_dir, profile=dump_a
    )
    assert (second_profiled["hits"], second_profiled["misses"]) == (
        second_profiled["files"],
        0,
    )

    # A different dump -> different key -> cold again.
    _, other_profiled = lint_project(
        [TARGET], cache_dir=cache_dir, profile=dump_b
    )
    assert other_profiled["misses"] == other_profiled["files"]


def test_profiled_and_unprofiled_runs_agree_on_findings(tmp_path):
    dump = _make_dump(tmp_path / "a.pstats", "a")
    plain, _ = lint_project([TARGET])
    profiled, _ = lint_project([TARGET], profile=dump)
    # Equality ignores the presentation-only profile attachment.
    assert plain == profiled
    assert all(v.profile is not None for v in profiled if v.rule_id.startswith("SIM3"))
