"""CLI tests for ``repro-qos lint``."""

from __future__ import annotations

import json
from pathlib import Path

from repro.cli import main

HERE = Path(__file__).parent
FIXTURES = HERE / "fixtures"
SRC = HERE.resolve().parents[1] / "src" / "repro"


class TestExitCodes:
    def test_clean_tree_exits_zero(self, capsys):
        assert main(["lint", str(SRC)]) == 0
        assert capsys.readouterr().out == ""

    def test_bad_fixtures_exit_nonzero(self, capsys):
        assert main(["lint", str(FIXTURES / "bad")]) == 1

    def test_missing_path_is_usage_error(self, capsys):
        assert main(["lint", str(FIXTURES / "does-not-exist")]) == 2
        assert "lint" in capsys.readouterr().err

    def test_unknown_select_is_usage_error(self, capsys):
        assert main(["lint", "--select", "SIM999", str(SRC)]) == 2


class TestTextOutput:
    def test_reports_rule_ids_and_locations(self, capsys):
        main(["lint", str(FIXTURES / "bad")])
        out = capsys.readouterr().out
        for rule_id in ("SIM001", "SIM002", "SIM003", "SIM004", "SIM005", "SIM006"):
            assert rule_id in out
        assert "sim004_bare_assert.py:5:" in out
        assert "violation(s) found" in out

    def test_select_limits_output(self, capsys):
        assert main(["lint", "--select", "SIM004", str(FIXTURES / "bad")]) == 1
        out = capsys.readouterr().out
        assert "SIM004" in out
        assert "SIM001" not in out


class TestJsonOutput:
    def test_json_format(self, capsys):
        assert main(["lint", "--format", "json", str(FIXTURES / "bad")]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] == len(payload["violations"]) > 0
        first = payload["violations"][0]
        assert set(first) == {
            "path",
            "line",
            "col",
            "rule",
            "name",
            "message",
            "provenance",
        }
        assert first["provenance"] == []  # per-file rules have no provenance
        assert first["rule"].startswith("SIM")

    def test_json_clean_tree(self, capsys):
        assert main(["lint", "--format", "json", str(SRC)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload == {"violations": [], "count": 0}


class TestListRules:
    def test_lists_all_rules_with_pragma_spelling(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("SIM001", "SIM002", "SIM003", "SIM004", "SIM005", "SIM006"):
            assert rule_id in out
        assert "allow-global-random" in out
        assert "allow-wallclock" in out
