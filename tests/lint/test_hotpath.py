"""Tests for the hot-path performance layer (SIM301-SIM307).

Covers the fixture matrix (each bad fixture flags exactly its rule,
each good fixture is clean), the SIM302/303/304 machine fixes and their
idempotence, pragma suppression, the profile-guided ranking end to end
(cProfile dump -> hot/warm/cold buckets -> JSON and SARIF), and the
``--explain`` surface for every rule in the family.
"""

from __future__ import annotations

import cProfile
import json
import shutil
from pathlib import Path

import pytest

from repro.cli import main
from repro.lint import (
    ProfileIndex,
    Violation,
    apply_fixes,
    lint_project,
    to_sarif,
)

HERE = Path(__file__).parent
PROJECT_FIXTURES = HERE / "fixtures" / "project"

FIXTURE_MATRIX = [
    ("SIM301", "sim301_loop_allocation", "sim301_hoisted_allocation"),
    ("SIM302", "sim302_slotless_hot_class", "sim302_slotted_hot_class"),
    ("SIM303", "sim303_attr_reload", "sim303_attr_hoisted"),
    ("SIM304", "sim304_global_lookup", "sim304_global_aliased"),
    ("SIM305", "sim305_exception_flow", "sim305_dict_get"),
    ("SIM306", "sim306_eager_str", "sim306_lazy_str"),
    ("SIM307", "sim307_hot_unpooled_event", "sim307_pooled_event"),
]

FIXABLE = [
    "sim302_slotless_hot_class",
    "sim303_attr_reload",
    "sim304_global_lookup",
]


class TestFixtureMatrix:
    @pytest.mark.parametrize(
        "rule_id,bad_dir,good_dir",
        FIXTURE_MATRIX,
        ids=[row[0] for row in FIXTURE_MATRIX],
    )
    def test_bad_fixture_flags_exactly_its_rule(self, rule_id, bad_dir, good_dir):
        violations, _ = lint_project([PROJECT_FIXTURES / "bad" / bad_dir])
        assert violations, f"{bad_dir} produced no findings"
        assert {v.rule_id for v in violations} == {rule_id}

    @pytest.mark.parametrize(
        "rule_id,bad_dir,good_dir",
        FIXTURE_MATRIX,
        ids=[row[0] for row in FIXTURE_MATRIX],
    )
    def test_good_fixture_is_clean(self, rule_id, bad_dir, good_dir):
        violations, _ = lint_project([PROJECT_FIXTURES / "good" / good_dir])
        assert violations == [], "\n".join(v.format() for v in violations)

    def test_sim302_finding_names_the_instantiation_site(self):
        violations, _ = lint_project(
            [PROJECT_FIXTURES / "bad" / "sim302_slotless_hot_class"]
        )
        (violation,) = violations
        assert violation.path.endswith("model.py")
        assert "`admit`" in violation.message
        assert len(violation.provenance) == 2


class TestMachineFixes:
    @pytest.mark.parametrize("bad_dir", FIXABLE)
    def test_fix_resolves_the_finding(self, tmp_path, bad_dir):
        target = tmp_path / bad_dir
        shutil.copytree(PROJECT_FIXTURES / "bad" / bad_dir, target)
        violations, _ = lint_project([target])
        report = apply_fixes(violations, dry_run=False)
        assert report.files_changed
        after, _ = lint_project([target])
        assert after == [], "\n".join(v.format() for v in after)

    @pytest.mark.parametrize("bad_dir", FIXABLE)
    def test_fix_is_idempotent(self, tmp_path, bad_dir):
        target = tmp_path / bad_dir
        shutil.copytree(PROJECT_FIXTURES / "bad" / bad_dir, target)
        violations, _ = lint_project([target])
        apply_fixes(violations, dry_run=False)
        snapshot = {
            p: p.read_text(encoding="utf-8") for p in target.rglob("*.py")
        }
        after, _ = lint_project([target])
        report = apply_fixes(after, dry_run=False)
        assert not report.files_changed
        assert snapshot == {
            p: p.read_text(encoding="utf-8") for p in target.rglob("*.py")
        }

    def test_dry_run_leaves_files_alone(self, tmp_path):
        target = tmp_path / "sim304"
        shutil.copytree(
            PROJECT_FIXTURES / "bad" / "sim304_global_lookup", target
        )
        before = {
            p: p.read_text(encoding="utf-8") for p in target.rglob("*.py")
        }
        violations, _ = lint_project([target])
        report = apply_fixes(violations, dry_run=True)
        assert report.files_changed  # a diff was produced ...
        assert before == {  # ... but nothing was written
            p: p.read_text(encoding="utf-8") for p in target.rglob("*.py")
        }

    def test_sim302_fix_inserts_a_valid_slots_tuple(self, tmp_path):
        target = tmp_path / "sim302"
        shutil.copytree(
            PROJECT_FIXTURES / "bad" / "sim302_slotless_hot_class", target
        )
        violations, _ = lint_project([target])
        apply_fixes(violations, dry_run=False)
        text = (target / "model.py").read_text(encoding="utf-8")
        assert '__slots__ = ("count", "limit")' in text
        namespace: dict = {}
        exec(compile(text, "model.py", "exec"), namespace)
        tracker = namespace["Tracker"](3)
        assert not hasattr(tracker, "__dict__")
        assert (tracker.count, tracker.limit) == (3, 6)


class TestPragmas:
    @pytest.mark.parametrize(
        "spelling", ["allow-hot-loop-allocation", "allow-sim301"]
    )
    def test_pragma_on_offending_line_suppresses(self, tmp_path, spelling):
        target = tmp_path / "sim301"
        shutil.copytree(
            PROJECT_FIXTURES / "bad" / "sim301_loop_allocation", target
        )
        hot = target / "core" / "queues" / "drainq.py"
        lines = hot.read_text(encoding="utf-8").splitlines()
        lines[6] += f"  # simlint: {spelling}"
        hot.write_text("\n".join(lines) + "\n", encoding="utf-8")
        violations, _ = lint_project([target])
        assert violations == [], "\n".join(v.format() for v in violations)

    def test_pragma_on_other_line_does_not_suppress(self, tmp_path):
        target = tmp_path / "sim301"
        shutil.copytree(
            PROJECT_FIXTURES / "bad" / "sim301_loop_allocation", target
        )
        hot = target / "core" / "queues" / "drainq.py"
        lines = hot.read_text(encoding="utf-8").splitlines()
        lines[0] += "  # simlint: allow-hot-loop-allocation"
        hot.write_text("\n".join(lines) + "\n", encoding="utf-8")
        violations, _ = lint_project([target])
        assert [v.rule_id for v in violations] == ["SIM301"]


def _profiled_project(tmp_path: Path) -> "tuple[Path, Path]":
    """One project holding the SIM303 (made hot), SIM306 (made warm) and
    SIM301 (never executed -> cold) bad fixtures, plus a pstats dump of
    actually running the first two."""
    project = tmp_path / "proj"
    for bad_dir in (
        "sim303_attr_reload",
        "sim306_eager_str",
        "sim301_loop_allocation",
    ):
        source = PROJECT_FIXTURES / "bad" / bad_dir / "core" / "queues"
        for py in source.glob("*.py"):
            dest = project / "core" / "queues" / py.name
            dest.parent.mkdir(parents=True, exist_ok=True)
            dest.write_text(py.read_text(encoding="utf-8"), encoding="utf-8")

    def load(name: str) -> dict:
        path = project / "core" / "queues" / name
        namespace: dict = {}
        exec(
            compile(
                path.read_text(encoding="utf-8"),
                str(path).replace("\\", "/"),
                "exec",
            ),
            namespace,
        )
        return namespace

    ring = load("ring.py")["RingBuffer"](list(range(256)))
    stamper = load("stamp.py")["Stamper"]("pkt")
    profiler = cProfile.Profile()
    profiler.enable()
    for _ in range(300):
        ring.occupancy(range(200))  # dominates -> hot
    stamper.label(1)  # measured but cheap -> warm
    profiler.disable()
    dump = tmp_path / "prof.pstats"
    profiler.dump_stats(str(dump))
    return project, dump


class TestProfileRanking:
    def test_buckets_follow_measured_time(self, tmp_path):
        project, dump = _profiled_project(tmp_path)
        violations, stats = lint_project([project], profile=dump)
        by_rule = {v.rule_id: v for v in violations}
        assert set(by_rule) == {"SIM301", "SIM303", "SIM306"}
        assert by_rule["SIM303"].profile["bucket"] == "hot"
        assert by_rule["SIM303"].profile["cum_seconds"] > 0.0
        assert by_rule["SIM306"].profile["bucket"] == "warm"
        assert by_rule["SIM301"].profile["bucket"] == "cold"
        profile_stats = stats["profile"]
        assert profile_stats["ranked"] == 3
        assert profile_stats["matched"] == 2
        assert (
            profile_stats["hot"],
            profile_stats["warm"],
            profile_stats["cold"],
        ) == (1, 1, 1)

    def test_text_format_carries_the_bucket_markers(self, tmp_path):
        project, dump = _profiled_project(tmp_path)
        violations, _ = lint_project([project], profile=dump)
        formatted = {v.rule_id: v.format() for v in violations}
        assert "hot (" in formatted["SIM303"]
        assert "note: " in formatted["SIM301"]

    def test_ranking_round_trips_through_json(self, tmp_path):
        project, dump = _profiled_project(tmp_path)
        violations, _ = lint_project([project], profile=dump)
        for violation in violations:
            replayed = Violation.from_dict(
                json.loads(json.dumps(violation.to_dict()))
            )
            assert replayed == violation
            assert replayed.profile == violation.profile

    def test_ranking_round_trips_through_sarif(self, tmp_path):
        project, dump = _profiled_project(tmp_path)
        violations, _ = lint_project([project], profile=dump)
        document = to_sarif(violations)
        results = {
            r["ruleId"]: r for r in document["runs"][0]["results"]
        }
        assert results["SIM303"]["message"]["text"].startswith("hot: ")
        assert results["SIM303"]["level"] == "error"
        assert results["SIM301"]["level"] == "note"
        for rule_id in ("SIM301", "SIM303", "SIM306"):
            assert "profile" in results[rule_id]["properties"]

    def test_cold_findings_do_not_gate_the_cli(self, tmp_path):
        _, dump = _profiled_project(tmp_path)
        cold_only = tmp_path / "cold"
        shutil.copytree(
            PROJECT_FIXTURES / "bad" / "sim301_loop_allocation", cold_only
        )
        assert (
            main(
                [
                    "lint",
                    "--project",
                    "--profile",
                    str(dump),
                    str(cold_only),
                ]
            )
            == 0
        )

    def test_hot_findings_still_gate_the_cli(self, tmp_path):
        project, dump = _profiled_project(tmp_path)
        assert (
            main(
                ["lint", "--project", "--profile", str(dump), str(project)]
            )
            == 1
        )

    def test_unprofiled_run_attaches_nothing(self):
        violations, stats = lint_project(
            [PROJECT_FIXTURES / "bad" / "sim301_loop_allocation"]
        )
        assert all(v.profile is None for v in violations)
        assert "profile" not in stats


class TestProfileIndex:
    def test_matches_by_def_line_or_bare_name(self):
        index = ProfileIndex(
            [("/abs/core/queues/ring.py", 10, "occupancy", 1.5)], 2.0
        )
        assert index.cumtime_for("/abs/core/queues/ring.py", 10, "x") == 1.5
        assert (
            index.cumtime_for("/abs/core/queues/ring.py", 99, "occupancy")
            == 1.5
        )
        assert (
            index.cumtime_for("/abs/core/queues/ring.py", 99, "other") is None
        )
        assert index.cumtime_for("core/queues/ring.py", 10, "x") == 1.5

    def test_missing_dump_raises_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            ProfileIndex.load(tmp_path / "nope.pstats")

    def test_garbage_dump_raises_value_error(self, tmp_path):
        garbage = tmp_path / "garbage.pstats"
        garbage.write_bytes(b"this is not marshal data")
        with pytest.raises(ValueError):
            ProfileIndex.load(garbage)


class TestCli:
    def test_profile_without_project_exits_two(self, capsys, tmp_path):
        dump = tmp_path / "prof.pstats"
        dump.write_bytes(b"")
        assert main(["lint", "--profile", str(dump), str(tmp_path)]) == 2
        assert "--profile requires --project" in capsys.readouterr().err

    def test_unreadable_profile_exits_two(self, capsys, tmp_path):
        garbage = tmp_path / "garbage.pstats"
        garbage.write_bytes(b"not marshal")
        assert (
            main(
                [
                    "lint",
                    "--project",
                    "--profile",
                    str(garbage),
                    str(PROJECT_FIXTURES / "good" / "sim301_hoisted_allocation"),
                ]
            )
            == 2
        )
        assert "not a readable pstats dump" in capsys.readouterr().err

    def test_profile_run_produces_a_rankable_dump(self, tmp_path, capsys):
        dump = tmp_path / "prof.pstats"
        code = main(
            [
                "profile",
                "run",
                "--arch",
                "simple-2vc",
                "--load",
                "0.2",
                "--warmup-us",
                "20",
                "--measure-us",
                "100",
                "-o",
                str(dump),
            ]
        )
        assert code == 0
        assert dump.is_file()
        index = ProfileIndex.load(dump)
        assert index.total_seconds > 0.0
        # The engine's run loop must be attributable for ranking to work.
        assert (
            index.cumtime_for("src/repro/sim/engine.py", 1, "run") is not None
        )

    @pytest.mark.parametrize(
        "rule_id", [row[0] for row in FIXTURE_MATRIX], ids=str
    )
    def test_explain_covers_every_rule(self, capsys, rule_id):
        assert main(["lint", "--explain", rule_id]) == 0
        out = capsys.readouterr().out
        assert rule_id in out
        assert "Rationale:" in out
        assert "example" in out
