"""Tests for the scale-soundness layer (SIM501-SIM506).

Covers the fixture matrix (each bad fixture flags exactly its rule,
each good fixture is clean), the container-lifecycle and pool-flow
dataflow facts as units, the SIM502/506 machine fixes and their
idempotence, pragma suppression, ``--select`` interaction, the
allocation-guided ranking (``--memprofile``) end to end including the
``repro-qos profile mem`` producer, and the cache round-trip of the
scale facts.
"""

from __future__ import annotations

import json
import shutil
from pathlib import Path

import pytest

from repro.cli import main
from repro.lint import apply_fixes, lint_project
from repro.lint.hotpath import MemProfileIndex
from repro.lint.projectmodel import extract_summary

HERE = Path(__file__).parent
PROJECT_FIXTURES = HERE / "fixtures" / "project"

FIXTURE_MATRIX = [
    ("SIM501", "sim501_unbounded_hot_growth", "sim501_bounded_growth"),
    ("SIM502", "sim502_linear_membership", "sim502_set_membership"),
    ("SIM503", "sim503_pool_leak", "sim503_pool_discipline"),
    ("SIM504", "sim504_keyed_growth", "sim504_keyed_churn"),
    ("SIM505", "sim505_hot_rebuild", "sim505_hoisted_rebuild"),
    ("SIM506", "sim506_closure_retention", "sim506_bound_callback"),
]


class TestScaleFacts:
    def test_append_in_loop_records_grow_op(self):
        summary = extract_summary(
            "class Q:\n"
            "    def __init__(self):\n"
            "        self.items = []\n"
            "    def pump(self, batch):\n"
            "        for item in batch:\n"
            "            self.items.append(item)\n",
            "mod.py",
        )
        (grow,) = summary.functions["Q.pump"].container_ops
        assert grow["attr"] == "items"
        assert grow["op"] == "grow"
        assert grow["method"] == "append"
        assert grow["in_loop"] is True
        fact = summary.classes["Q"]["containers"]["items"]
        assert fact["kind"] == "list"
        assert fact["empty"] is True
        assert fact["bounded"] is False

    def test_deque_maxlen_is_bounded(self):
        summary = extract_summary(
            "from collections import deque\n"
            "class R:\n"
            "    def __init__(self, cap):\n"
            "        self.ring = deque(maxlen=cap)\n",
            "mod.py",
        )
        fact = summary.classes["R"]["containers"]["ring"]
        assert fact["kind"] == "deque"
        assert fact["bounded"] is True

    def test_module_qualified_heappush_is_a_grow(self):
        summary = extract_summary(
            "import heapq\n"
            "class H:\n"
            "    def __init__(self):\n"
            "        self.heap = []\n"
            "    def push(self, item):\n"
            "        heapq.heappush(self.heap, item)\n",
            "mod.py",
        )
        ops = summary.functions["H.push"].container_ops
        assert [(o["attr"], o["op"]) for o in ops] == [("heap", "grow")]

    def test_unreleased_mint_is_a_never_flow(self):
        summary = extract_summary(
            "class Burst:\n"
            "    def __init__(self, factory):\n"
            "        self.factory = factory\n"
            "    def fire(self, size):\n"
            "        pkt = self.factory.mint(size=size)\n"
            "        pkt.deadline = size + 10\n",
            "mod.py",
        )
        (flow,) = summary.functions["Burst.fire"].pool_flows
        assert flow["api"] == "object-pool"
        assert flow["released"] == "never"
        assert flow["escapes"] is False

    def test_recycled_mint_is_released_always(self):
        summary = extract_summary(
            "class Burst:\n"
            "    def __init__(self, factory):\n"
            "        self.factory = factory\n"
            "    def fire(self, size):\n"
            "        pkt = self.factory.mint(size=size)\n"
            "        pkt.deadline = size + 10\n"
            "        self.factory.recycle(pkt)\n",
            "mod.py",
        )
        (flow,) = summary.functions["Burst.fire"].pool_flows
        assert flow["released"] == "always"

    def test_escaping_mint_is_the_callers_problem(self):
        summary = extract_summary(
            "class Burst:\n"
            "    def __init__(self, factory):\n"
            "        self.factory = factory\n"
            "    def fire(self, size):\n"
            "        return self.factory.mint(size=size)\n",
            "mod.py",
        )
        flows = summary.functions["Burst.fire"].pool_flows
        assert all(f["escapes"] for f in flows) or flows == []


class TestFixtureMatrix:
    @pytest.mark.parametrize(
        "rule_id,bad_dir,good_dir",
        FIXTURE_MATRIX,
        ids=[row[0] for row in FIXTURE_MATRIX],
    )
    def test_bad_fixture_flags_exactly_its_rule(self, rule_id, bad_dir, good_dir):
        violations, _ = lint_project([PROJECT_FIXTURES / "bad" / bad_dir])
        assert violations, f"{bad_dir} produced no findings"
        assert {v.rule_id for v in violations} == {rule_id}

    @pytest.mark.parametrize(
        "rule_id,bad_dir,good_dir",
        FIXTURE_MATRIX,
        ids=[row[0] for row in FIXTURE_MATRIX],
    )
    def test_good_fixture_is_clean(self, rule_id, bad_dir, good_dir):
        violations, _ = lint_project([PROJECT_FIXTURES / "good" / good_dir])
        assert violations == [], "\n".join(v.format() for v in violations)


class TestPoolLeakInjection:
    """SIM503 catches an injected PacketFactory mint-without-recycle."""

    LEAKY = (
        '"""Pooled burst generator missing its recycle."""\n'
        "\n"
        "\n"
        "class Burst:\n"
        "    def __init__(self, factory):\n"
        "        self.factory = factory\n"
        "\n"
        "    def fire(self, size):\n"
        "        pkt = self.factory.mint(size=size)\n"
        "        pkt.deadline = size + 10\n"
    )

    def test_injected_leak_is_flagged(self, tmp_path):
        (tmp_path / "burst.py").write_text(self.LEAKY, encoding="utf-8")
        violations, _ = lint_project([tmp_path])
        (violation,) = violations
        assert violation.rule_id == "SIM503"
        assert "never released" in violation.message

    def test_recycle_restores_discipline(self, tmp_path):
        fixed = self.LEAKY + "        self.factory.recycle(pkt)\n"
        (tmp_path / "burst.py").write_text(fixed, encoding="utf-8")
        violations, _ = lint_project([tmp_path])
        assert violations == [], "\n".join(v.format() for v in violations)


class TestMachineFixes:
    def test_sim502_fix_switches_to_a_set(self, tmp_path):
        target = tmp_path / "sim502"
        shutil.copytree(
            PROJECT_FIXTURES / "bad" / "sim502_linear_membership", target
        )
        violations, _ = lint_project([target])
        report = apply_fixes(violations, dry_run=False)
        assert report.files_changed
        text = (target / "core" / "queues" / "dedup.py").read_text(
            encoding="utf-8"
        )
        assert "self._live = set()" in text
        assert "self._live.add(" in text
        assert ".append(" not in text
        after, _ = lint_project([target])
        assert after == [], "\n".join(v.format() for v in after)

    def test_sim502_fix_is_idempotent(self, tmp_path):
        target = tmp_path / "sim502"
        shutil.copytree(
            PROJECT_FIXTURES / "bad" / "sim502_linear_membership", target
        )
        violations, _ = lint_project([target])
        apply_fixes(violations, dry_run=False)
        after, _ = lint_project([target])
        report = apply_fixes(after, dry_run=False)
        assert not report.files_changed

    def test_sim502_fixed_module_still_dedups(self, tmp_path):
        target = tmp_path / "sim502"
        shutil.copytree(
            PROJECT_FIXTURES / "bad" / "sim502_linear_membership", target
        )
        violations, _ = lint_project([target])
        apply_fixes(violations, dry_run=False)
        text = (target / "core" / "queues" / "dedup.py").read_text(
            encoding="utf-8"
        )
        namespace: dict = {}
        exec(compile(text, "dedup.py", "exec"), namespace)
        index = namespace["MemberIndex"]()
        assert index.admit(7) is True
        assert index.admit(7) is False
        index.retire(7)
        assert index.admit(7) is True

    def test_sim506_fix_binds_the_lambda_default(self, tmp_path):
        target = tmp_path / "sim506"
        shutil.copytree(
            PROJECT_FIXTURES / "bad" / "sim506_closure_retention", target
        )
        violations, _ = lint_project([target])
        report = apply_fixes(violations, dry_run=False)
        assert report.files_changed
        text = (target / "flusher.py").read_text(encoding="utf-8")
        assert "lambda batch=batch:" in text
        # The local-def retention has no machine fix; it remains, but a
        # second fix pass has nothing left to apply.
        after, _ = lint_project([target])
        assert [v for v in after if v.fix is not None] == []
        report = apply_fixes(after, dry_run=False)
        assert not report.files_changed


class TestPragmas:
    @pytest.mark.parametrize(
        "spelling", ["allow-unbounded-hot-growth", "allow-sim501"]
    )
    def test_pragma_on_offending_line_suppresses(self, tmp_path, spelling):
        target = tmp_path / "sim501"
        shutil.copytree(
            PROJECT_FIXTURES / "bad" / "sim501_unbounded_hot_growth", target
        )
        module = target / "core" / "queues" / "ticklog.py"
        lines = module.read_text(encoding="utf-8").splitlines()
        lines[10] += f"  # simlint: {spelling}"
        module.write_text("\n".join(lines) + "\n", encoding="utf-8")
        violations, _ = lint_project([target])
        assert violations == [], "\n".join(v.format() for v in violations)

    def test_pragma_on_other_line_does_not_suppress(self, tmp_path):
        target = tmp_path / "sim501"
        shutil.copytree(
            PROJECT_FIXTURES / "bad" / "sim501_unbounded_hot_growth", target
        )
        module = target / "core" / "queues" / "ticklog.py"
        lines = module.read_text(encoding="utf-8").splitlines()
        lines[0] += "  # simlint: allow-unbounded-hot-growth"
        module.write_text("\n".join(lines) + "\n", encoding="utf-8")
        violations, _ = lint_project([target])
        assert [v.rule_id for v in violations] == ["SIM501"]


def _memdump(path: Path, sites, *, peak_bytes=1 << 20) -> Path:
    payload = {
        "schema": "simlint-memprofile/v1",
        "total_bytes": sum(s["size_bytes"] for s in sites),
        "peak_bytes": peak_bytes,
        "events_executed": 1000,
        "sites": sites,
    }
    path.write_text(json.dumps(payload), encoding="utf-8")
    return path


class TestMemProfileRanking:
    def _ranked(self, tmp_path):
        bad = PROJECT_FIXTURES / "bad"
        dump = _memdump(
            tmp_path / "mem.json",
            [
                {
                    "file": str(
                        bad
                        / "sim501_unbounded_hot_growth"
                        / "core"
                        / "queues"
                        / "ticklog.py"
                    ),
                    "line": 11,
                    "size_bytes": 8_000_000,
                    "count": 100_000,
                },
                {
                    "file": str(bad / "sim504_keyed_growth" / "registry.py"),
                    "line": 9,
                    "size_bytes": 1_000,
                    "count": 10,
                },
            ],
        )
        return lint_project(
            [
                bad / "sim501_unbounded_hot_growth",
                bad / "sim504_keyed_growth",
            ],
            memprofile=dump,
        )

    def test_measured_findings_rank_by_bytes(self, tmp_path):
        violations, stats = self._ranked(tmp_path)
        by_rule = {v.rule_id: v for v in violations}
        assert by_rule["SIM501"].profile["bucket"] == "hot"
        assert by_rule["SIM501"].profile["alloc_bytes"] == 8_000_000
        assert by_rule["SIM504"].profile["bucket"] == "warm"
        mem = stats["memprofile"]
        assert mem["ranked"] == 2 and mem["matched"] == 2
        assert (mem["hot"], mem["warm"], mem["cold"]) == (1, 1, 0)

    def test_unmeasured_findings_demote_to_cold(self, tmp_path):
        dump = _memdump(tmp_path / "mem.json", [])
        violations, stats = lint_project(
            [PROJECT_FIXTURES / "bad" / "sim501_unbounded_hot_growth"],
            memprofile=dump,
        )
        (violation,) = violations
        assert violation.profile["bucket"] == "cold"
        assert violation.format().split("] ")[1].startswith("note: ")
        assert stats["memprofile"]["cold"] == 1

    def test_hot_rendering_shows_bytes(self, tmp_path):
        violations, _ = self._ranked(tmp_path)
        hot = next(v for v in violations if v.rule_id == "SIM501")
        assert "hot (7.6 MB): " in hot.format()

    def test_ranking_survives_the_dict_round_trip(self, tmp_path):
        from repro.lint.violations import Violation

        violations, _ = self._ranked(tmp_path)
        for violation in violations:
            replayed = Violation.from_dict(violation.to_dict())
            assert replayed.profile == violation.profile

    def test_time_and_memory_rankings_are_disjoint(self, tmp_path):
        # --memprofile only touches SIM5xx findings, so a combined
        # --profile/--memprofile run never double-ranks a finding.
        violations, _ = self._ranked(tmp_path)
        assert all(v.rule_id.startswith("SIM5") for v in violations)
        assert all(
            "alloc_bytes" in v.profile
            for v in violations
            if v.profile is not None
        )

    def test_mem_digest_invalidates_the_cache(self, tmp_path):
        cache_dir = tmp_path / "cache"
        target = PROJECT_FIXTURES / "bad" / "sim501_unbounded_hot_growth"
        dump = _memdump(tmp_path / "mem.json", [])
        _, cold = lint_project(
            [target], cache_dir=cache_dir, memprofile=dump
        )
        _, warm = lint_project(
            [target], cache_dir=cache_dir, memprofile=dump
        )
        assert cold["misses"] == 1 and warm["hits"] == 1
        # A different dump is a different ruleset fingerprint: re-parse.
        other = _memdump(
            tmp_path / "other.json",
            [
                {
                    "file": "x.py",
                    "line": 1,
                    "size_bytes": 1,
                    "count": 1,
                }
            ],
        )
        _, invalidated = lint_project(
            [target], cache_dir=cache_dir, memprofile=other
        )
        assert invalidated["misses"] == 1


class TestMemProfileIndex:
    def test_matches_by_path_suffix(self, tmp_path):
        dump = _memdump(
            tmp_path / "mem.json",
            [
                {
                    "file": "/abs/core/queues/ring.py",
                    "line": 10,
                    "size_bytes": 42,
                    "count": 1,
                }
            ],
        )
        index = MemProfileIndex.load(dump)
        assert list(index.sites_for("core/queues/ring.py")) == [(10, 42)]
        assert list(index.sites_for("other/ring.py")) == []

    def test_missing_dump_raises_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            MemProfileIndex.load(tmp_path / "nope.json")

    def test_garbage_dump_raises_value_error(self, tmp_path):
        garbage = tmp_path / "garbage.json"
        garbage.write_text("this is not json", encoding="utf-8")
        with pytest.raises(ValueError, match="profile mem"):
            MemProfileIndex.load(garbage)

    def test_wrong_schema_raises_value_error(self, tmp_path):
        wrong = tmp_path / "wrong.json"
        wrong.write_text(json.dumps({"schema": "bogus/v9"}), encoding="utf-8")
        with pytest.raises(ValueError, match="profile mem"):
            MemProfileIndex.load(wrong)


class TestCacheRoundTrip:
    def test_warm_run_reparses_nothing_and_agrees(self, tmp_path):
        cache_dir = tmp_path / "cache"
        target = PROJECT_FIXTURES / "bad" / "sim502_linear_membership"
        cold, cold_stats = lint_project([target], cache_dir=cache_dir)
        warm, warm_stats = lint_project([target], cache_dir=cache_dir)
        assert cold_stats["misses"] == 1 and cold_stats["hits"] == 0
        assert warm_stats["misses"] == 0 and warm_stats["hits"] == 1
        # The scale facts (container ops incl. fix spans) survived the
        # to_dict/from_dict round trip: identical findings either way.
        assert warm == cold
        assert any(v.fix for v in warm)


class TestCli:
    @pytest.mark.parametrize(
        "rule_id",
        ["SIM501", "SIM502", "SIM503", "SIM504", "SIM505", "SIM506"],
    )
    def test_explain_covers_the_family(self, rule_id, capsys):
        assert main(["lint", "--explain", rule_id]) == 0
        out = capsys.readouterr().out
        assert rule_id in out
        assert "example" in out.lower()

    def test_select_prefix_gates_exit_code(self):
        bad = PROJECT_FIXTURES / "bad" / "sim501_unbounded_hot_growth"
        assert main(["lint", "--project", "--select", "SIM5", str(bad)]) == 1
        assert main(["lint", "--project", "--select", "SIM1", str(bad)]) == 0

    def test_memprofile_without_project_exits_two(self, capsys, tmp_path):
        dump = _memdump(tmp_path / "mem.json", [])
        assert main(["lint", "--memprofile", str(dump), str(tmp_path)]) == 2
        assert "--memprofile requires --project" in capsys.readouterr().err

    def test_unreadable_memprofile_exits_two(self, capsys, tmp_path):
        garbage = tmp_path / "garbage.json"
        garbage.write_text("not json", encoding="utf-8")
        bad = PROJECT_FIXTURES / "bad" / "sim501_unbounded_hot_growth"
        assert (
            main(
                [
                    "lint",
                    "--project",
                    "--memprofile",
                    str(garbage),
                    str(bad),
                ]
            )
            == 2
        )
        assert "profile mem" in capsys.readouterr().err

    def test_cold_findings_do_not_gate_the_cli(self, tmp_path):
        dump = _memdump(tmp_path / "mem.json", [])
        bad = PROJECT_FIXTURES / "bad" / "sim501_unbounded_hot_growth"
        assert (
            main(
                ["lint", "--project", "--memprofile", str(dump), str(bad)]
            )
            == 0
        )

    def test_sarif_carries_the_memprofile_attachment(self, tmp_path, capsys):
        dump = _memdump(tmp_path / "mem.json", [])
        bad = PROJECT_FIXTURES / "bad" / "sim501_unbounded_hot_growth"
        argv = [
            "lint",
            "--project",
            "--format",
            "sarif",
            "--memprofile",
            str(dump),
            str(bad),
        ]
        assert main(argv) == 0
        payload = json.loads(capsys.readouterr().out)
        (result,) = payload["runs"][0]["results"]
        assert result["properties"]["profile"]["bucket"] == "cold"

    def test_profile_mem_end_to_end(self, tmp_path, capsys):
        dump = tmp_path / "mem.json"
        argv = [
            "profile",
            "mem",
            "--topology",
            "tiny",
            "--warmup-us",
            "10",
            "--measure-us",
            "40",
            "-o",
            str(dump),
        ]
        assert main(argv) == 0
        payload = json.loads(dump.read_text(encoding="utf-8"))
        assert payload["schema"] == "simlint-memprofile/v1"
        assert payload["peak_bytes"] > 0
        assert payload["events_executed"] > 0
        assert payload["sites"], "no allocation sites recorded"
        site = payload["sites"][0]
        assert set(site) == {"file", "line", "size_bytes", "count"}
        # The dump is immediately consumable by --memprofile.
        bad = PROJECT_FIXTURES / "bad" / "sim501_unbounded_hot_growth"
        assert (
            main(
                ["lint", "--project", "--memprofile", str(dump), str(bad)]
            )
            == 0
        )
        assert "[memprofile:" in capsys.readouterr().err
