"""Known-bad fixture: SIM005 must fire on mutable default arguments."""


def collect(pkt, seen=[]):
    seen.append(pkt)
    return seen


def tally(counts={}, *, index=set()):
    return counts, index
