"""Known-bad fixture: SIM003 must fire on float equality with time values."""


def is_due(deadline, now_ns):
    return deadline == now_ns * 1.0


def matches_serialization(arrival_ns, size, bw):
    return arrival_ns != size / bw
