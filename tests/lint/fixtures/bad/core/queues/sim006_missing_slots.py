"""Known-bad fixture: SIM006 must fire on slotless hot-path classes.

The path of this file contains ``core/queues/`` on purpose -- SIM006 is
scoped to hot-path modules.
"""


class HotQueue:
    def __init__(self):
        self.items = ()
