"""Known-bad fixture: SIM002 must fire on wall-clock reads."""

import time

from time import perf_counter


def stamp():
    return time.time()


def elapsed():
    return time.perf_counter_ns()
