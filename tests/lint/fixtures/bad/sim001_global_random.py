"""Known-bad fixture: SIM001 must fire on both import forms."""

import random

from random import randint


def roll():
    return random.random() + randint(1, 6)
