"""Known-bad fixture: SIM004 must fire on bare assert statements."""


def pop_head(queue):
    assert queue, "queue unexpectedly empty"
    return queue[0]
