"""Submits a module-level function: picklable by qualified name."""

from concurrent.futures import ProcessPoolExecutor


def double(cfg):
    return cfg * 2


def run_all(configs):
    with ProcessPoolExecutor() as pool:
        futures = [pool.submit(double, cfg) for cfg in configs]
        return [future.result() for future in futures]
