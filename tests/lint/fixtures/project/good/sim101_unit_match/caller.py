"""Caller module: converts to nanoseconds before crossing the boundary."""

from repro.sim.units import us

from timers import schedule_wakeup

TIMEOUT_NS = us(50)


def arm():
    return schedule_wakeup(TIMEOUT_NS)
