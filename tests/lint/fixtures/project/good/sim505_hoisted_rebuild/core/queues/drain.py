"""Hot-path drain with the backlog sort hoisted out of the loop."""


class SlotDrain:
    __slots__ = ("_backlog", "_slots")

    def __init__(self):
        self._backlog = []
        self._slots = []

    def push(self, item):
        self._backlog.append(item)

    def reset(self):
        self._backlog = []

    def drain(self):
        total = 0
        order = sorted(self._backlog)
        for slot in self._slots:
            if order:
                total += order[0] + slot
        return total
