"""Hot-path module: the library's (deadline, uid, payload) idiom."""

import heapq


def push(heap, pkt):
    heapq.heappush(heap, (pkt.deadline, pkt.uid, pkt))


def order(queue):
    queue.sort(key=lambda p: (p.deadline, p.uid))
