"""Hot-path module calling the sanctioned obs/ instrumentation helper."""

from metrics import count_pop


def pop(queue):
    item = queue[0]
    count_pop(item)
    return item
