"""Observability module (under obs/): sanctioned on the hot path, even
where it performs I/O (e.g. heartbeat-gated live progress)."""


def count_pop(item):
    print("pop", item)
    return item
