"""Cache key built on sha256: identical in every process."""

import hashlib


def cache_key(payload):
    blob = repr(payload).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()
