"""Feeds the engine in sorted order: deterministic regardless of hashing."""

from engine import post


def flush(events):
    for event in sorted(set(events)):
        post(event)
