"""Hot-path module: instantiates a properly slotted class."""

from model import Tracker


def admit(start):
    tracker = Tracker(start)
    return tracker
