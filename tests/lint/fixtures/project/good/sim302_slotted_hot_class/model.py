"""Cold module defining a slotted class the hot path instantiates."""


class Tracker:
    __slots__ = ("count", "limit")

    def __init__(self, start):
        self.count = start
        self.limit = start * 2
