"""Merges worker return values in the parent, by submission order."""

from concurrent.futures import ProcessPoolExecutor

from worker import execute_point


def run_all(configs):
    with ProcessPoolExecutor() as pool:
        merged = {}
        for results in pool.map(execute_point, configs):
            merged.update(results)
    return merged
