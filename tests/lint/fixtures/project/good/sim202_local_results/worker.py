"""Worker accumulates locally and returns: survives the pickle hop."""


def execute_point(cfg):
    results = {}
    results[cfg] = cfg * 2
    return results
