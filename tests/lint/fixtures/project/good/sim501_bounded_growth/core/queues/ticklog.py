"""Bounded or drainable tick logs: growth always has an exit."""

from collections import deque


class BoundedTickLog:
    __slots__ = ("samples",)

    def __init__(self, capacity):
        self.samples = deque(maxlen=capacity)

    def on_tick(self, now_ns):
        self.samples.append(now_ns)


class DrainedTickLog:
    __slots__ = ("samples",)

    def __init__(self):
        self.samples = []

    def on_tick(self, now_ns):
        self.samples.append(now_ns)

    def drain(self):
        out = self.samples
        self.samples = []
        return out
