"""Hot-path module: formats only on the error path."""


class Stamper:
    __slots__ = ("prefix",)

    def __init__(self, prefix):
        self.prefix = prefix

    def label(self, uid):
        if uid < 0:
            raise ValueError(f"negative uid {uid}")
        return (self.prefix, uid)
