"""Hot-path module: the only allocation happens once, outside the loop."""


def drain(batch):
    out = list(batch)
    total = 0
    for item in out:
        total += item
    return out, total
