"""Floor division keeps time arithmetic closed over integers."""


def half_delay(engine, span_ns, fire):
    engine.after(span_ns // 2, fire)


def phase(span_ns):
    step_ns = span_ns // 4
    return step_ns
