"""The float arithmetic is rounded at the time boundary."""


def schedule(engine, size_bytes, rate_bytes_per_ns, fire):
    gap_ns = round(size_bytes / rate_bytes_per_ns)
    engine.after(gap_ns, fire)
