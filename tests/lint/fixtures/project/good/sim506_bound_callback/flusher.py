"""Scheduled callbacks binding their containers at definition time."""


class Flusher:
    def __init__(self, engine):
        self.engine = engine

    def flush_later(self, items):
        batch = list(items)
        self.engine.after(1000, lambda batch=batch: self.commit(batch))

    def commit(self, batch):
        return len(batch)
