"""Worker writes to a temp file and renames: readers see old or new."""

import os


def save_point(summary, path):
    tmp = path + ".tmp"
    with open(tmp, "w") as handle:
        handle.write(repr(summary))
    os.replace(tmp, path)
    return path
