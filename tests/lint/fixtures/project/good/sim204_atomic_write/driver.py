"""Fans save_point out over a pool; renames land whole files."""

from concurrent.futures import ProcessPoolExecutor

from writer import save_point


def run_all(points):
    with ProcessPoolExecutor() as pool:
        futures = [
            pool.submit(save_point, point, "sweep.out") for point in points
        ]
        return [future.result() for future in futures]
