"""Integer bytes/second bookkeeping: exact subtraction, no epsilon."""


def settle(table, link, bw_bps):
    remaining = table.get(link, 0) - bw_bps
    return remaining
