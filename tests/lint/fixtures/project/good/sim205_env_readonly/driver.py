"""Fans execute_point out over a pool."""

from concurrent.futures import ProcessPoolExecutor

from worker import execute_point


def run_all(configs):
    with ProcessPoolExecutor() as pool:
        return list(pool.map(execute_point, configs))
