"""Worker reads settings from its config argument, never the env."""

import os


def execute_point(cfg, mode=None):
    if mode is None:
        mode = os.environ.get("QOS_MODE", "strict")
    return (cfg, mode)
