"""Hot-path module: the global is bound to a local alias once."""

import heapq


def merge(items, extra):
    heappush = heapq.heappush
    for value in extra:
        heappush(items, value)
        heappush(items, value + 1)
    return items
