"""Default-argument binding captures each iteration's value."""


def arm_all(engine, flows, send):
    for flow in flows:
        engine.after(10, lambda flow=flow: send(flow))
