"""Hot-path module: scalars ride the pooled event record directly."""


def respawn(engine, handler, batch, delay):
    for item in batch:
        engine.after(delay, handler, item.src, item.dst)
