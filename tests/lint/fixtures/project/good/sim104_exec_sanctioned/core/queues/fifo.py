"""Hot-path module calling the sanctioned exec/ campaign-runner helper."""

from results import persist_pop


def pop(queue):
    item = queue[0]
    persist_pop(item)
    return item
