"""Campaign-execution module (under exec/): sanctioned for file I/O --
writing result-cache entries between simulations is its job."""


def persist_pop(item):
    with open("results.json", "a") as fp:
        fp.write(str(item))
    return item
