"""Hot-path module: the attribute chain is hoisted to a local."""


class RingBuffer:
    __slots__ = ("buffer",)

    def __init__(self, buffer):
        self.buffer = buffer

    def occupancy(self, packets):
        total = 0
        buffer = self.buffer
        for _pkt in packets:
            if buffer is not None:
                total += len(buffer)
        return total
