"""Anchors the schedule time with a max(now, ...) clamp."""


def arm(engine, deadline_ns, guard_ns, fire):
    t = max(engine.now, deadline_ns - guard_ns)
    engine.at(t, fire)
