"""Span-trace export under obs/: sanctioned on the hot path by design --
its JSONL/Chrome-trace writes happen at finish/export time and the
tracer's overhead is budgeted by a benchmark, not by SIM104."""


def record_span(line):
    with open("spans.jsonl", "a") as fp:
        fp.write(line)
    return line
