"""Hot-path module calling the sanctioned obs/ span-trace recorder."""

from tracing import record_span


def pop(queue):
    item = queue[0]
    record_span(item)
    return item
