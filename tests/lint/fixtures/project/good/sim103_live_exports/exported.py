"""Every ``__all__`` entry is imported somewhere in the project."""

__all__ = ["other_helper", "used_helper"]


def used_helper():
    return 1


def other_helper():
    return 2
