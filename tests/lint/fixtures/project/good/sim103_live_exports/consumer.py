"""Imports both exported helpers."""

from exported import other_helper, used_helper


def run():
    return used_helper() + other_helper()
