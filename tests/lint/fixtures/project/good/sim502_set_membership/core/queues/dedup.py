"""Hot-path membership index backed by a set: O(1) per probe."""


class MemberIndex:
    __slots__ = ("_live",)

    def __init__(self):
        self._live = set()

    def admit(self, uid):
        if uid in self._live:
            return False
        self._live.add(uid)
        return True

    def retire(self, uid):
        self._live.discard(uid)
