"""Hot-path module: probes the dict once instead of unwinding."""


def lookup_all(table, keys):
    out = []
    for key in keys:
        out.append(table.get(key))
    return out
