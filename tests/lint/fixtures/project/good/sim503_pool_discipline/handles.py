"""Cancellable-handle discipline: every acquire released or owned."""


class Prober:
    def __init__(self, engine):
        self.engine = engine
        self._armed = []

    def arm_tracked(self):
        handle = self.engine.after_cancellable(1000, self._fire)
        self._armed.append(handle)

    def arm_scoped(self):
        handle = self.engine.after_cancellable(2000, self._fire)
        try:
            self._fire()
        finally:
            handle.cancel()

    def cancel_all(self):
        while self._armed:
            self._armed.pop().cancel()

    def _fire(self):
        pass
