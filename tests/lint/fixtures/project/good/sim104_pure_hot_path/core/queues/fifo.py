"""Hot-path module: dequeue stays pure (error strings only under raise)."""

from helpers import note_pop


def pop(queue):
    if not queue:
        raise IndexError("pop from an empty queue")
    item = queue[0]
    note_pop(item)
    return item
