"""Helper that records a counter instead of doing I/O."""

POPS = [0]


def note_pop(item):
    POPS[0] += 1
    return item
