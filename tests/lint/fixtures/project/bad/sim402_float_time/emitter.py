"""A float-derived gap flows into an integer-time name and a sink."""


def schedule(engine, size_bytes, rate_bytes_per_ns, fire):
    gap_ns = size_bytes / rate_bytes_per_ns
    engine.after(gap_ns, fire)
