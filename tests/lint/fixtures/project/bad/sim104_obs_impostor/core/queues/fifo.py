"""Hot-path module calling a printing helper that merely *looks* like
observability code (lives outside obs/)."""

from progress import count_pop


def pop(queue):
    item = queue[0]
    count_pop(item)
    return item
