"""Instrumentation look-alike that is NOT under an obs/ directory: its
console I/O must still be flagged when reached from the hot path."""


def count_pop(item):
    print("pop", item)
    return item
