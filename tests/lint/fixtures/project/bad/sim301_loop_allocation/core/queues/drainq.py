"""Hot-path module: builds a fresh list on every loop iteration."""


def drain_pairs(batch):
    out = []
    for item in batch:
        out.append([item, item])
    return out
