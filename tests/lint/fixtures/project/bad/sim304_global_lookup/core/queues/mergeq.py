"""Hot-path module: resolves heapq.heappush twice per iteration."""

import heapq


def merge(items, extra):
    for value in extra:
        heapq.heappush(items, value)
        heapq.heappush(items, value + 1)
    return items
