"""Hot-path module calling a cache-writing helper that merely *looks*
like campaign-execution code (lives outside exec/)."""

from results import persist_pop


def pop(queue):
    item = queue[0]
    persist_pop(item)
    return item
