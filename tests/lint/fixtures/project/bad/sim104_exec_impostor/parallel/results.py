"""Campaign-runner look-alike that is NOT under an exec/ directory: its
file I/O must still be flagged when reached from the hot path."""


def persist_pop(item):
    with open("results.json", "a") as fp:
        fp.write(str(item))
    return item
