"""Imports only one of the two exported helpers."""

from exported import used_helper


def run():
    return used_helper()
