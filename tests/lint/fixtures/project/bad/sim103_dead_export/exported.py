"""Exports two helpers; only one is ever imported."""

__all__ = ["dead_helper", "used_helper"]


def used_helper():
    return 1


def dead_helper():
    return 2
