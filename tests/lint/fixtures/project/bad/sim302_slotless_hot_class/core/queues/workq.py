"""Hot-path module: instantiates a slot-less class per admission."""

from model import Tracker


def admit(start):
    tracker = Tracker(start)
    return tracker
