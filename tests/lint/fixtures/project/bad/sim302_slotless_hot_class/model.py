"""Cold module defining a class the hot path instantiates."""


class Tracker:
    def __init__(self, start):
        self.count = start
        self.limit = start * 2
