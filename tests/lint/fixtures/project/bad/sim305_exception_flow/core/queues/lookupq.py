"""Hot-path module: treats a routine dict miss as an exception."""


def lookup_all(table, keys):
    out = []
    for key in keys:
        try:
            out.append(table[key])
        except KeyError:
            out.append(None)
    return out
