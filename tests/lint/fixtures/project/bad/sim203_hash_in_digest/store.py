"""Content-addressed store keyed by the (unstable) digest."""

from digest import cache_key


def remember(table, payload):
    key = cache_key(payload)
    table[key] = payload
    return key
