"""Cache key built on hash(): salted per process since PEP 456."""


def cache_key(payload):
    return hash(payload)
