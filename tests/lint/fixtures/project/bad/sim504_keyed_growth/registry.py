"""Flow registry that only ever gains keys."""


class FlowTable:
    def __init__(self):
        self._flows = {}

    def open_flow(self, flow_id, state):
        self._flows[flow_id] = state

    def lookup(self, flow_id):
        return self._flows.get(flow_id)
