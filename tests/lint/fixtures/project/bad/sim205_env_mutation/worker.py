"""Worker mutates os.environ: dies with the child, races its siblings."""

import os


def execute_point(cfg):
    os.environ["QOS_MODE"] = repr(cfg)
    return cfg
