"""Worker writes a shared file in place: readers can see half a file."""


def save_point(summary, path):
    with open(path, "w") as handle:
        handle.write(repr(summary))
    return path
