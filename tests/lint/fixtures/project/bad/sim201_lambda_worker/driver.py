"""Submits a lambda to a process pool: it cannot pickle."""

from concurrent.futures import ProcessPoolExecutor


def run_all(configs):
    with ProcessPoolExecutor() as pool:
        futures = [pool.submit(lambda cfg: cfg * 2, cfg) for cfg in configs]
        return [future.result() for future in futures]
