"""Scheduled callbacks pinning whole staging containers."""


class Flusher:
    def __init__(self, engine):
        self.engine = engine

    def flush_later(self, items):
        batch = list(items)
        self.engine.after(1000, lambda: self.commit(batch))

    def flush_named(self, items):
        staged = list(items)

        def run():
            self.commit(staged)

        self.engine.after(2000, run)

    def commit(self, batch):
        return len(batch)
