"""Hot-path module: reads the same attribute chain twice per iteration."""


class RingBuffer:
    __slots__ = ("buffer",)

    def __init__(self, buffer):
        self.buffer = buffer

    def occupancy(self, packets):
        total = 0
        for _pkt in packets:
            if self.buffer is not None:
                total += len(self.buffer)
        return total
