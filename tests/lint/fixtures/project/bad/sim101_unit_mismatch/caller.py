"""Caller module: hands a microsecond quantity to a ``*_ns`` parameter."""

from timers import schedule_wakeup

TIMEOUT_US = 50


def arm():
    return schedule_wakeup(TIMEOUT_US)
