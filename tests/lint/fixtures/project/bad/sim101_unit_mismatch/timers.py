"""Callee module: a nanosecond-typed scheduling helper."""


def schedule_wakeup(deadline_ns):
    """Pretend to arm a timer at an absolute nanosecond deadline."""
    return deadline_ns
