"""Hot-path drain that re-sorts its whole backlog once per slot."""


class SlotDrain:
    __slots__ = ("_backlog", "_slots")

    def __init__(self):
        self._backlog = []
        self._slots = []

    def push(self, item):
        self._backlog.append(item)

    def reset(self):
        self._backlog = []

    def drain(self):
        total = 0
        for slot in self._slots:
            order = sorted(self._backlog)
            if order:
                total += order[0] + slot
        return total
