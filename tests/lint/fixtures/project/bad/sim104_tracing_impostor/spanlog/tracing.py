"""Span-trace look-alike that is NOT under an obs/ directory: its file
I/O must still be flagged when reached from the hot path."""


def record_span(line):
    with open("spans.jsonl", "a") as fp:
        fp.write(line)
    return line
