"""Hot-path module calling a span recorder that merely *looks* like
tracing code (lives outside obs/)."""

from tracing import record_span


def pop(queue):
    item = queue[0]
    record_span(item)
    return item
