"""Hot-path tick log whose sample list only ever grows."""


class TickLog:
    __slots__ = ("samples",)

    def __init__(self):
        self.samples = []

    def on_tick(self, now_ns):
        self.samples.append(now_ns)
