"""Hot-path module: hands the scheduler a fresh tuple per event."""


def respawn(engine, handler, batch, delay):
    for item in batch:
        engine.after(delay, handler, (item.src, item.dst))
