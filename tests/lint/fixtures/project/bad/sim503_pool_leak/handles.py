"""Cancellable-handle discipline: acquisitions that never release."""


class Prober:
    def __init__(self, engine):
        self.engine = engine

    def arm_and_forget(self):
        handle = self.engine.after_cancellable(1000, self._fire)
        return None

    def arm_half_released(self, done):
        handle = self.engine.after_cancellable(2000, self._fire)
        if done:
            handle.cancel()

    def _fire(self):
        pass
