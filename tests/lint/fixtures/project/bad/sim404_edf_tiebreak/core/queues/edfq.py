"""Hot-path module: deadline orderings with no deterministic tie-break."""

import heapq


def push(heap, pkt):
    heapq.heappush(heap, (pkt.deadline, pkt))


def order(queue):
    queue.sort(key=lambda p: p.deadline)
