"""Float reservation bookkeeping compared against an ad-hoc epsilon."""


def settle(table, link, bw_bytes_per_ns):
    remaining = table.get(link, 0.0) - bw_bytes_per_ns
    return remaining if remaining > 1e-12 else 0.0
