"""Hot-path module: formats a label string on every call."""


class Stamper:
    __slots__ = ("prefix",)

    def __init__(self, prefix):
        self.prefix = prefix

    def label(self, uid):
        return f"{self.prefix}:{uid}"
