"""Loop-variable capture in callbacks handed to the engine."""


def arm_all(engine, flows, send):
    for flow in flows:
        engine.after(10, lambda: send(flow))
