"""Fans execute_point out over a pool, then reads the (empty) dict."""

from concurrent.futures import ProcessPoolExecutor

from worker import RESULTS, execute_point


def run_all(configs):
    with ProcessPoolExecutor() as pool:
        list(pool.map(execute_point, configs))
    return dict(RESULTS)
