"""Worker mutates a module-level dict: lost in the parent process."""

RESULTS = {}


def execute_point(cfg):
    RESULTS[cfg] = cfg * 2
    return cfg
