"""Schedules a subtraction-derived time with no clamp."""


def arm(engine, deadline_ns, guard_ns, fire):
    t = deadline_ns - guard_ns
    engine.at(t, fire)
