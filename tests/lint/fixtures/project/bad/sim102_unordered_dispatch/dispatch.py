"""Feeds the engine from an unordered set: heap order becomes random."""

from engine import post


def flush(events):
    for event in set(events):
        post(event)
