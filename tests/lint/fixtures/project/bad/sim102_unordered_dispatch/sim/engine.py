"""Sink module: anything that feeds this reaches the event heap."""


def post(event):
    """Pretend to push one event onto the simulation heap."""
    return event
