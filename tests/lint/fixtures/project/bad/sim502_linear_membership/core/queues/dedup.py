"""Hot-path membership index backed by a list: O(n) per probe."""


class MemberIndex:
    __slots__ = ("_live",)

    def __init__(self):
        self._live = []

    def admit(self, uid):
        if uid in self._live:
            return False
        self._live.append(uid)
        return True

    def retire(self, uid):
        self._live.remove(uid)
