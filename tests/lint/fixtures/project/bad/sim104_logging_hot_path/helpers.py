"""Helper that performs console I/O (reached from the hot path)."""


def log_pop(item):
    print("popped", item)
