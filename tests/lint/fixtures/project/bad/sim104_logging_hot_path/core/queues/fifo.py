"""Hot-path module: dequeue calls a helper that prints."""

from helpers import log_pop


def pop(queue):
    item = queue[0]
    log_pop(item)
    return item
