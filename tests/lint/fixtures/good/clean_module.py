"""Known-good fixture: compliant idioms that must not trigger any rule."""


def emit(rng, deadline_ns, now_ns, sizes=None):
    """Randomness comes from an injected stream, time stays integer,
    and the mutable default is constructed inside the body."""
    if sizes is None:
        sizes = []
    if deadline_ns <= now_ns:
        sizes.append(rng.random())
    return sizes


def same_tick(a_ns, b_ns):
    # Integer-to-integer equality on time values is fine.
    return a_ns == b_ns


def check(queue):
    if not queue:
        raise ValueError("queue unexpectedly empty")  # not a bare assert
    return queue[0]
