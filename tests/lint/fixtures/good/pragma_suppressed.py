"""Known-good fixture: pragmas legitimize the flagged constructs."""

import random  # simlint: allow-global-random

import time


def measure_wall_time():
    return time.perf_counter()  # simlint: allow-wallclock


def legacy_seed():
    return random.Random(0)
