"""Known-good fixture: hot-path classes that satisfy (or are exempt
from) SIM006."""

from dataclasses import dataclass
from typing import Protocol


class Tagged(Protocol):  # Protocols carry no instance state
    deadline: int


class QueueBroken(RuntimeError):  # exceptions are exempt
    pass


@dataclass
class QueueConfig:  # dataclasses manage their own layout
    depth: int = 4


class HotQueue:
    __slots__ = ("items",)

    def __init__(self):
        self.items = ()
