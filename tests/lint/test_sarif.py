"""Shape tests for the SARIF 2.1.0 emitter (``--format sarif``)."""

from __future__ import annotations

import json
from pathlib import Path

from repro.cli import main
from repro.lint import Baseline, fingerprint, lint_project, to_sarif
from repro.lint.sarif import FINGERPRINT_KEY, SARIF_VERSION

HERE = Path(__file__).parent
PROJECT_FIXTURES = HERE / "fixtures" / "project"


def _violations(name: str):
    violations, _ = lint_project([PROJECT_FIXTURES / "bad" / name])
    return violations


class TestSarifShape:
    def test_document_skeleton(self):
        violations = _violations("sim201_lambda_worker")
        doc = to_sarif(violations)
        assert doc["version"] == SARIF_VERSION == "2.1.0"
        assert doc["$schema"].endswith("sarif-schema-2.1.0.json")
        (run,) = doc["runs"]
        assert run["tool"]["driver"]["name"] == "simlint"
        assert len(run["results"]) == len(violations)

    def test_rules_and_results_cross_reference(self):
        violations = _violations("sim202_shared_registry")
        (run,) = to_sarif(violations)["runs"]
        rules = run["tool"]["driver"]["rules"]
        assert [rule["id"] for rule in rules] == ["SIM202"]
        assert rules[0]["name"] == "shared-mutable-global"
        assert rules[0]["shortDescription"]["text"]
        assert rules[0]["fullDescription"]["text"]
        (result,) = run["results"]
        assert result["ruleId"] == "SIM202"
        assert rules[result["ruleIndex"]]["id"] == result["ruleId"]

    def test_location_is_one_based(self):
        (violation,) = _violations("sim205_env_mutation")
        (run,) = to_sarif([violation])["runs"]
        (result,) = run["results"]
        (location,) = result["locations"]
        region = location["physicalLocation"]["region"]
        assert region["startLine"] == violation.line
        assert region["startColumn"] == violation.col + 1
        uri = location["physicalLocation"]["artifactLocation"]["uri"]
        assert uri.endswith("worker.py")

    def test_fingerprint_matches_baseline_scheme(self):
        (violation,) = _violations("sim204_raw_shared_write")
        (run,) = to_sarif([violation])["runs"]
        (result,) = run["results"]
        assert result["partialFingerprints"] == {
            FINGERPRINT_KEY: fingerprint(violation)
        }

    def test_baselined_findings_emit_suppressed_not_dropped(self):
        violations = _violations("sim203_hash_in_digest")
        baseline = Baseline.from_violations(violations)
        new, baselined = baseline.partition(violations)
        assert new == []
        (run,) = to_sarif(new, suppressed=baselined)["runs"]
        (result,) = run["results"]
        (suppression,) = result["suppressions"]
        assert suppression["kind"] == "external"
        # Active results carry no suppressions key at all.
        (active,) = to_sarif(violations)["runs"][0]["results"]
        assert "suppressions" not in active

    def test_cli_emits_parseable_sarif(self, capsys):
        target = PROJECT_FIXTURES / "bad" / "sim201_lambda_worker"
        code = main(["lint", "--project", str(target), "--format", "sarif"])
        assert code == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == "2.1.0"
        assert [r["ruleId"] for r in doc["runs"][0]["results"]] == ["SIM201"]
