"""Tests for the parallel-safety layer (SIM201-SIM205), the fix engine,
the baseline workflow, and the rules-digest cache key.

Covers the fixture matrix (each bad fixture flags exactly its rule, each
good fixture is clean), worker-reachability roots and witnesses,
machine-fix application (idempotent; dry-run writes nothing), the
``--baseline``/``--update-baseline`` gate, and the cache regression that
registering a new rule invalidates warm per-file entries.
"""

from __future__ import annotations

import json
import shutil
from pathlib import Path

import pytest

from repro.cli import main
from repro.exec.digest import stable_hash
from repro.lint import (
    PROJECT_RULES,
    Baseline,
    apply_fixes,
    fingerprint,
    lint_project,
)
from repro.lint.cache import rules_digest
from repro.lint.callgraph import CallGraph
from repro.lint.parallel import analyze_parallel
from repro.lint.project_rules import ProjectRule, register_project_rule
from repro.lint.projectmodel import ProjectModel, extract_summary

HERE = Path(__file__).parent
PROJECT_FIXTURES = HERE / "fixtures" / "project"

FIXTURE_MATRIX = [
    ("SIM201", "sim201_lambda_worker", "sim201_module_worker"),
    ("SIM202", "sim202_shared_registry", "sim202_local_results"),
    ("SIM203", "sim203_hash_in_digest", "sim203_sha_digest"),
    ("SIM204", "sim204_raw_shared_write", "sim204_atomic_write"),
    ("SIM205", "sim205_env_mutation", "sim205_env_readonly"),
]


class TestFixtureMatrix:
    @pytest.mark.parametrize(
        "rule_id,bad_dir,good_dir",
        FIXTURE_MATRIX,
        ids=[row[0] for row in FIXTURE_MATRIX],
    )
    def test_bad_fixture_flags_exactly_its_rule(self, rule_id, bad_dir, good_dir):
        violations, _ = lint_project([PROJECT_FIXTURES / "bad" / bad_dir])
        assert violations, f"{bad_dir} produced no findings"
        assert {v.rule_id for v in violations} == {rule_id}

    @pytest.mark.parametrize(
        "rule_id,bad_dir,good_dir",
        FIXTURE_MATRIX,
        ids=[row[0] for row in FIXTURE_MATRIX],
    )
    def test_good_fixture_is_clean(self, rule_id, bad_dir, good_dir):
        violations, _ = lint_project([PROJECT_FIXTURES / "good" / good_dir])
        assert violations == [], "\n".join(v.format() for v in violations)

    def test_finding_names_its_submission_site(self):
        violations, _ = lint_project(
            [PROJECT_FIXTURES / "bad" / "sim202_shared_registry"]
        )
        (violation,) = violations
        assert "pool.map" in violation.message
        assert "driver.py" in violation.message
        assert any("worker.py" in step for step in violation.provenance)

    @pytest.mark.parametrize(
        "spelling", ["allow-sim202", "allow-shared-mutable-global"]
    )
    def test_pragma_suppresses_parallel_finding(self, tmp_path, spelling):
        src = PROJECT_FIXTURES / "bad" / "sim202_shared_registry"
        shutil.copytree(src, tmp_path / "proj")
        worker = tmp_path / "proj" / "worker.py"
        text = worker.read_text(encoding="utf-8")
        worker.write_text(
            text.replace(
                "RESULTS[cfg] = cfg * 2",
                f"RESULTS[cfg] = cfg * 2  # simlint: {spelling}",
            ),
            encoding="utf-8",
        )
        violations, _ = lint_project([tmp_path / "proj"])
        assert violations == [], "\n".join(v.format() for v in violations)


def _model_for(directory: Path):
    model = ProjectModel()
    for path in sorted(directory.rglob("*.py")):
        source = path.read_text(encoding="utf-8")
        model.add(extract_summary(source, path.as_posix()))
    graph = CallGraph(model)
    return model, graph


class TestReachability:
    def test_named_submission_roots_the_worker(self):
        model, graph = _model_for(
            PROJECT_FIXTURES / "bad" / "sim202_shared_registry"
        )
        analysis = analyze_parallel(model, graph)
        assert [site.kind for site in analysis.submissions] == ["named"]
        assert ("worker", "execute_point") in analysis.roots
        assert ("worker", "execute_point") in analysis.reachable
        reason = analysis.reason_for(("worker", "execute_point"))
        assert "pool.map" in reason

    def test_lambda_submission_roots_the_encloser(self):
        model, graph = _model_for(
            PROJECT_FIXTURES / "bad" / "sim201_lambda_worker"
        )
        analysis = analyze_parallel(model, graph)
        assert [site.kind for site in analysis.submissions] == ["lambda"]
        assert ("driver", "run_all") in analysis.roots
        assert "encloses a lambda" in analysis.roots[("driver", "run_all")]

    def test_unsubmitted_function_is_not_reachable(self):
        model, graph = _model_for(
            PROJECT_FIXTURES / "good" / "sim205_env_readonly"
        )
        analysis = analyze_parallel(model, graph)
        assert ("worker", "execute_point") in analysis.reachable
        assert ("driver", "run_all") not in analysis.reachable
        assert analysis.reason_for(("driver", "run_all")) == (
            "not worker-reachable"
        )


class TestFixEngine:
    def _copy(self, tmp_path: Path, name: str) -> Path:
        target = tmp_path / name
        shutil.copytree(PROJECT_FIXTURES / "bad" / name, target)
        return target

    @pytest.mark.parametrize(
        "name", ["sim201_lambda_worker", "sim203_hash_in_digest"]
    )
    def test_fix_applies_and_is_idempotent(self, tmp_path, name):
        target = self._copy(tmp_path, name)
        violations, _ = lint_project([target])
        report = apply_fixes(violations)
        assert report.applied == 1 and report.skipped == 0
        assert len(report.files_changed) == 1

        # The fix removed the pattern that made the rule fire.
        fixed, _ = lint_project([target])
        assert fixed == [], "\n".join(v.format() for v in fixed)

        # A second pass finds nothing fixable and edits nothing.
        second = apply_fixes(fixed)
        assert second.applied == 0 and second.files_changed == []

    def test_lifted_lambda_compiles(self, tmp_path):
        target = self._copy(tmp_path, "sim201_lambda_worker")
        violations, _ = lint_project([target])
        apply_fixes(violations)
        text = (target / "driver.py").read_text(encoding="utf-8")
        compile(text, "driver.py", "exec")
        assert "lambda cfg" not in text
        assert "pool.submit(_lifted_worker_8, cfg)" in text
        assert "def _lifted_worker_8(cfg):" in text

    def test_stable_hash_fix_inserts_import(self, tmp_path):
        target = self._copy(tmp_path, "sim203_hash_in_digest")
        violations, _ = lint_project([target])
        apply_fixes(violations)
        text = (target / "digest.py").read_text(encoding="utf-8")
        assert "from repro.exec.digest import stable_hash" in text
        assert "stable_hash(payload)" in text
        assert "hash(payload)" not in text.replace("stable_hash(payload)", "")

    def test_dry_run_writes_nothing(self, tmp_path):
        target = self._copy(tmp_path, "sim203_hash_in_digest")
        before = (target / "digest.py").read_text(encoding="utf-8")
        violations, _ = lint_project([target])
        report = apply_fixes(violations, dry_run=True)
        assert report.dry_run and report.applied == 1
        assert (target / "digest.py").read_text(encoding="utf-8") == before
        diff = report.diffs[str(target / "digest.py")]
        assert "-    return hash(payload)" in diff
        assert "+    return stable_hash(payload)" in diff

    def test_cli_fix_loop(self, tmp_path, capsys):
        target = self._copy(tmp_path, "sim201_lambda_worker")
        assert main(["lint", "--project", str(target), "--fix"]) == 0
        assert "fixed" in capsys.readouterr().err
        # Fixed tree stays clean without --fix.
        assert main(["lint", "--project", str(target)]) == 0


class TestBaseline:
    def test_fingerprint_ignores_line_drift(self):
        violations, _ = lint_project(
            [PROJECT_FIXTURES / "bad" / "sim205_env_mutation"]
        )
        (violation,) = violations
        from dataclasses import replace

        drifted = replace(violation, line=violation.line + 40)
        assert fingerprint(drifted) == fingerprint(violation)

    def test_partition_suppresses_known_gates_new(self):
        known, _ = lint_project(
            [PROJECT_FIXTURES / "bad" / "sim204_raw_shared_write"]
        )
        fresh, _ = lint_project(
            [PROJECT_FIXTURES / "bad" / "sim205_env_mutation"]
        )
        baseline = Baseline.from_violations(known)
        new, baselined = baseline.partition(known + fresh)
        assert baselined == known
        assert new == fresh

    def test_save_load_roundtrip(self, tmp_path):
        violations, _ = lint_project(
            [PROJECT_FIXTURES / "bad" / "sim202_shared_registry"]
        )
        path = tmp_path / "baseline.json"
        Baseline.from_violations(violations).save(path)
        loaded = Baseline.load(path)
        assert len(loaded) == len(violations)
        new, baselined = loaded.partition(violations)
        assert new == [] and baselined == violations

    def test_corrupt_baseline_reads_as_empty(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text("{not json", encoding="utf-8")
        assert len(Baseline.load(path)) == 0
        path.write_text(json.dumps({"schema": 999, "findings": []}))
        assert len(Baseline.load(path)) == 0

    def test_cli_update_then_gate(self, tmp_path, capsys):
        proj = tmp_path / "proj"
        shutil.copytree(
            PROJECT_FIXTURES / "bad" / "sim202_shared_registry", proj
        )
        base = tmp_path / "base.json"

        # Snapshot today's findings: gate passes.
        assert (
            main(
                [
                    "lint",
                    "--project",
                    str(proj),
                    "--baseline",
                    str(base),
                    "--update-baseline",
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert (
            main(["lint", "--project", str(proj), "--baseline", str(base)])
            == 0
        )
        assert "1 baselined" in capsys.readouterr().err

        # A regression is gated even though the old finding is accepted.
        worker = proj / "worker.py"
        worker.write_text(
            worker.read_text(encoding="utf-8")
            + "\n\ndef execute_more(cfg):\n    RESULTS[repr(cfg)] = cfg\n",
            encoding="utf-8",
        )
        driver = proj / "driver.py"
        driver.write_text(
            driver.read_text(encoding="utf-8").replace(
                "from worker import RESULTS, execute_point",
                "from worker import RESULTS, execute_more, execute_point",
            )
            + (
                "\n\ndef run_more(configs):\n"
                "    with ProcessPoolExecutor() as pool:\n"
                "        return list(pool.map(execute_more, configs))\n"
            ),
            encoding="utf-8",
        )
        assert (
            main(["lint", "--project", str(proj), "--baseline", str(base)])
            == 1
        )
        out = capsys.readouterr().out
        assert "execute_more" in out
        assert "execute_point" not in out  # the accepted finding stays quiet


class TestRulesDigestCache:
    def test_new_rule_invalidates_warm_cache(self, tmp_path):
        cache_dir = tmp_path / "cache"
        target = PROJECT_FIXTURES / "good" / "sim203_sha_digest"

        _, cold = lint_project([target], cache_dir=cache_dir)
        assert cold["misses"] == cold["files"] == 2
        _, warm = lint_project([target], cache_dir=cache_dir)
        assert warm == {"files": 2, "hits": 2, "misses": 0}

        digest_before = rules_digest()

        class TemporaryRule(ProjectRule):
            id = "SIM999"
            name = "temporary-test-rule"
            description = "registered by a test, removed in finally"

            def check(self, model, graph):
                return iter(())

        register_project_rule(TemporaryRule)
        try:
            assert rules_digest() != digest_before
            _, invalidated = lint_project([target], cache_dir=cache_dir)
            assert invalidated["misses"] == 2, (
                "registering a rule must re-lint cached files"
            )
        finally:
            del PROJECT_RULES["SIM999"]
        assert rules_digest() == digest_before


class TestStableHash:
    def test_deterministic_across_calls(self):
        assert stable_hash("advanced-2vc") == 5507327187000418832
        assert stable_hash(b"raw") == stable_hash(b"raw")

    def test_canonical_json_for_structures(self):
        assert stable_hash((1, 2, 3)) == stable_hash([1, 2, 3])
        assert stable_hash({"b": 1, "a": 2}) == stable_hash({"a": 2, "b": 1})
        assert stable_hash("x") != stable_hash("y")
