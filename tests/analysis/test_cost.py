"""Tests for the scheduling-cost instrumentation."""

import pytest

from repro.analysis.cost import (
    CostCounters,
    instrument_architecture,
    measure_scheduling_cost,
    static_inventory,
)
from repro.core.architectures import (
    ADVANCED_2VC,
    IDEAL,
    SIMPLE_2VC,
    TRADITIONAL_2VC,
)
from tests.helpers import mkpkt


class TestCountingShims:
    def test_queue_ops_counted(self):
        arch, counters = instrument_architecture(ADVANCED_2VC)
        queue = arch.make_queue(None)
        queue.push(mkpkt(10))
        queue.push(mkpkt(5))
        queue.pop()
        assert counters.queue_pushes == 2
        assert counters.queue_pops == 1
        assert counters.queue_comparisons == 3  # 1 per push, 1 per pop

    def test_fifo_costs_nothing(self):
        arch, counters = instrument_architecture(TRADITIONAL_2VC)
        queue = arch.make_queue(None)
        for d in (3, 1, 2):
            queue.push(mkpkt(d))
        queue.pop()
        assert counters.queue_comparisons == 0

    def test_heap_cost_grows_logarithmically(self):
        arch, counters = instrument_architecture(IDEAL)
        queue = arch.make_queue(None)
        for d in range(64):
            queue.push(mkpkt(d))
        per_push = counters.queue_comparisons / counters.queue_pushes
        assert 1.0 <= per_push <= 7.0  # log2-ish, definitely not O(1)

    def test_counting_queue_preserves_behaviour(self):
        arch, _ = instrument_architecture(ADVANCED_2VC)
        queue = arch.make_queue(None)
        queue.push(mkpkt(100))
        queue.push(mkpkt(50))  # take-over
        assert queue.head().deadline == 50
        assert queue.pop().deadline == 50
        assert len(queue) == 1
        assert queue.used_bytes == 256

    def test_edf_picker_comparisons(self):
        arch, counters = instrument_architecture(SIMPLE_2VC)
        queues = [arch.make_queue(None) for _ in range(4)]
        for i, q in enumerate(queues[:3]):  # one queue left empty
            q.push(mkpkt(10 + i))
        picker = arch.make_picker()
        index = picker.pick(queues)
        assert index == 0
        assert counters.arbiter_picks == 1
        assert counters.arbiter_comparisons == 2  # 3 live heads -> 2 compares

    def test_rr_picker_comparisons_zero(self):
        arch, counters = instrument_architecture(TRADITIONAL_2VC)
        queues = [arch.make_queue(None) for _ in range(4)]
        queues[2].push(mkpkt(1))
        picker = arch.make_picker()
        assert picker.pick(queues) == 2
        assert counters.arbiter_comparisons == 0

    def test_granted_passthrough(self):
        arch, _ = instrument_architecture(TRADITIONAL_2VC)
        queues = [arch.make_queue(None) for _ in range(2)]
        queues[0].push(mkpkt(1))
        queues[1].push(mkpkt(1))
        picker = arch.make_picker()
        assert picker.pick(queues) == 0
        picker.granted(0)
        assert picker.pick(queues) == 1  # rotation advanced in the inner RR


class TestStaticInventory:
    def test_traditional(self):
        inv = static_inventory(TRADITIONAL_2VC, radix=16)
        assert inv.fifo_memories == 2
        assert not inv.needs_sorting_hardware
        assert inv.arbiter_comparators_per_port == 0

    def test_advanced_doubles_fifos_only(self):
        trad = static_inventory(TRADITIONAL_2VC, radix=16)
        adv = static_inventory(ADVANCED_2VC, radix=16)
        assert adv.fifo_memories == 2 * trad.fifo_memories
        assert not adv.needs_sorting_hardware
        assert adv.arbiter_comparators_per_port == 15

    def test_ideal_needs_sorting_hardware(self):
        assert static_inventory(IDEAL, radix=16).needs_sorting_hardware

    def test_no_architecture_keeps_flow_state(self):
        for arch in (TRADITIONAL_2VC, IDEAL, SIMPLE_2VC, ADVANCED_2VC):
            assert static_inventory(arch, 16).per_flow_state is False


class TestMeasuredCost:
    @pytest.fixture(scope="class")
    def reports(self):
        from repro.experiments.config import scaled_video_mix

        return {
            name: measure_scheduling_cost(
                arch,
                horizon_ns=200_000,
                mix_config=scaled_video_mix(0.8, 0.02),
            )
            for name, arch in (
                ("traditional", TRADITIONAL_2VC),
                ("simple", SIMPLE_2VC),
                ("advanced", ADVANCED_2VC),
                ("ideal", IDEAL),
            )
        }

    def test_cost_ordering_matches_paper(self, reports):
        """Traditional < Simple < Advanced < Ideal in scheduling work --
        and only Ideal needs content-sorted buffers."""
        cost = {k: r.comparisons_per_packet for k, r in reports.items()}
        assert cost["traditional"] == 0.0
        assert cost["traditional"] < cost["simple"] < cost["advanced"] < cost["ideal"]

    def test_all_forwarded_similar_traffic(self, reports):
        counts = [r.packets_forwarded for r in reports.values()]
        assert min(counts) > 0.7 * max(counts)

    def test_per_packet_cost_is_small_constant_for_fifo_designs(self, reports):
        """The implementability claim: the deployable designs pay a few
        comparisons per packet, independent of buffer occupancy."""
        assert reports["simple"].comparisons_per_packet < 4
        assert reports["advanced"].comparisons_per_packet < 8

    def test_report_rows_render(self, reports):
        row = reports["advanced"].row()
        assert row[0] == "advanced-2vc"
        assert isinstance(row[2], float)
