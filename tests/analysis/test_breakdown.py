"""Tests for the latency-decomposition collector."""

import pytest

from repro.analysis.breakdown import LatencyBreakdown
from tests.helpers import mkpkt


def delivered(*, birth, inject, tclass="control", msg_id=0, msg_seq=0, msg_parts=1, flow_id=1):
    pkt = mkpkt(
        0,
        tclass=tclass,
        birth=birth,
        msg_id=msg_id,
        msg_seq=msg_seq,
        msg_parts=msg_parts,
        flow_id=flow_id,
    )
    pkt.inject = inject
    return pkt


class TestStageAccounting:
    def test_source_hold_and_network_split(self):
        breakdown = LatencyBreakdown()
        breakdown.on_delivery(delivered(birth=0, inject=300), 1000)
        entry = breakdown.get("control")
        assert entry.source_hold.mean == 300
        assert entry.network.mean == 700

    def test_message_spread_measured_on_completion(self):
        breakdown = LatencyBreakdown()
        parts = [
            delivered(birth=0, inject=0, tclass="multimedia", msg_id=5, msg_seq=i, msg_parts=3)
            for i in range(3)
        ]
        breakdown.on_delivery(parts[0], 100)
        breakdown.on_delivery(parts[1], 400)
        entry = breakdown.get("multimedia")
        assert entry.message_spread.count == 0  # incomplete
        breakdown.on_delivery(parts[2], 900)
        assert entry.message_spread.count == 1
        assert entry.message_spread.mean == 800  # 900 - 100

    def test_single_packet_messages_have_no_spread(self):
        breakdown = LatencyBreakdown()
        breakdown.on_delivery(delivered(birth=0, inject=0), 500)
        assert breakdown.get("control").message_spread.count == 0

    def test_warmup_filter(self):
        breakdown = LatencyBreakdown(warmup_ns=1000)
        breakdown.on_delivery(delivered(birth=500, inject=600), 1500)
        assert breakdown.classes == {}

    def test_dominant_stage(self):
        breakdown = LatencyBreakdown()
        breakdown.on_delivery(delivered(birth=0, inject=900), 1000)  # hold-heavy
        breakdown.on_delivery(
            delivered(birth=0, inject=10, tclass="bulk"), 1000
        )  # net-heavy
        assert breakdown.dominant_stage("control") == "source-hold"
        assert breakdown.dominant_stage("bulk") == "network"

    def test_unknown_class_raises(self):
        with pytest.raises(KeyError, match="seen"):
            LatencyBreakdown().get("nope")

    def test_table_renders(self):
        breakdown = LatencyBreakdown()
        breakdown.on_delivery(delivered(birth=0, inject=100), 400)
        text = breakdown.table()
        assert "source hold" in text
        assert "control" in text


class TestEndToEnd:
    def test_smoothing_shows_up_as_source_hold(self, make_fabric):
        """Multimedia's intentional pacing lands in source-hold; control's
        latency is network-dominated -- the split that diagnoses which
        mechanism is responsible for a class's latency."""
        from repro.experiments.config import scaled_video_mix
        from repro.sim.rng import RandomStreams
        from repro.traffic.mix import build_mix

        fabric = make_fabric()
        breakdown = LatencyBreakdown(warmup_ns=100_000)
        fabric.subscribe_delivery(breakdown.on_delivery)
        mix = build_mix(fabric, RandomStreams(8), scaled_video_mix(0.6, 0.02))
        mix.start()
        fabric.run(until=600_000)
        video = breakdown.get("multimedia")
        control = breakdown.get("control")
        assert video.source_hold.mean > 5 * video.network.mean
        assert breakdown.dominant_stage("multimedia") == "source-hold"
        assert breakdown.dominant_stage("control") == "network"
        assert control.source_hold.mean < 10_000  # < 10 us at 60% load
